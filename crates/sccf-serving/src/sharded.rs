//! Sharded multi-writer realtime engine with live resharding.
//!
//! [`crate::stream`] replays events in one thread and PR 1 made each
//! event allocation-free — but a single-writer [`RealtimeEngine`] still
//! tops out at one core. This module scales ingestion the way
//! industrial neighborhood systems do: **partition users across shards**
//! through a deterministic router ([`crate::ring::HashRing`] — the
//! legacy modulo mapping or a consistent-hash ring with virtual nodes),
//! give every shard its own single-writer engine on a dedicated worker
//! thread, and feed each worker through a bounded SPSC event queue with
//! backpressure.
//!
//! ```text
//! try_ingest(user, item) ──► shard router (HashRing::route(user))
//!                               │ bounded SPSC queue per shard
//!        ┌──────────────────────┼──────────────────┐
//!        ▼                      ▼                  ▼
//!   shard 0 worker         shard 1 worker     shard N−1 worker
//!   RealtimeEngine         RealtimeEngine     RealtimeEngine
//!   + QueryScratch         + QueryScratch     + QueryScratch
//!        │                      │                  │
//!        └── Arc<SccfShared>: item embeddings, HNSW item index,
//!            integrator — one copy, read-only, shared by all shards
//! ```
//!
//! The engine is driven through the unified
//! [`ServingApi`] surface (typed queries,
//! `Result` everywhere, batch entry points, [`ServingStats`]); the old
//! infallible methods remain as deprecated wrappers. Invalid ids are
//! rejected at the router — they return
//! [`ServingError`] and never reach (or kill)
//! a worker.
//!
//! State split (the contract that keeps the hot path lock-free):
//!
//! * **Shared, read-only** (`Arc<SccfShared>`): item embeddings, the
//!   optional HNSW item index, the trained integrator, configuration.
//! * **Shard-local, single-writer**: the per-user histories, the cosine
//!   user index over *owned* users, the recent-item rings, and the
//!   engine's [`sccf_core::QueryScratch`] — so PR 1's zero-allocation
//!   invariant holds per shard, and no lock is ever contended on the
//!   event hot path. All four are *compact* (owned users only,
//!   slot↔global map at the boundary), so total serving-state memory
//!   across shards stays one population's worth.
//!
//! Because a user's events and recommendation requests all route to the
//! same queue, per-user ordering is preserved: a recommendation observes
//! every event the same caller ingested before it. Neighborhoods
//! (Eq. 11) are searched over the shard's own users — exact at `N = 1`
//! (bit-identical to the plain engine, pinned by `tests/sharded.rs`),
//! in-shard approximations for `N > 1`; see `docs/ARCHITECTURE.md`.
//!
//! ## Snapshot and offline resharding
//!
//! [`ShardedEngine::snapshot`] merges every shard's histories into the
//! same whole-population artifact [`RealtimeEngine::snapshot`] writes
//! ([`sccf_core::encode_histories`]), and
//! [`ShardedEngine::restore`] re-partitions that artifact under a *new*
//! [`ShardedConfig`] at load time. Offline resharding N→M is therefore
//! `snapshot()` on the old fleet + `restore(.., new_cfg)` on the new —
//! a full stop-the-world reload.
//!
//! ## Live resharding
//!
//! [`ShardedEngine::reshard`] transitions the fleet N→M **while
//! ingestion continues**. The router enters a *migration epoch*: users
//! whose shard changes under the new ring are handed off incrementally,
//! one bounded batch per [`ShardedEngine::reshard_step`], each moving
//! user's complete state travelling as one
//! [`sccf_core::encode_user_state`] blob
//! ([`RealtimeEngine::export_user`] → [`RealtimeEngine::import_user`])
//! over the same FIFO worker queues events use. Because the router is
//! the single writer of every queue, a moving user's events are either
//! queued ahead of her export (the source shard applies them before
//! exporting) or routed to her new shard behind her import — per-user
//! read-your-writes ordering holds end to end, and every event lands
//! exactly once. After the last batch the router *quiesces*: workers
//! canonicalize their slot layout, surplus workers retire (scale-in),
//! and the new ring becomes the stable epoch — from then on the fleet
//! is bit-identical to an offline `snapshot()` + `restore(.., new_cfg)`
//! of the same histories (pinned by `tests/serving_api.rs`).
//! [`ServingStats::migration`] exposes live progress counters; the
//! operational runbook is `docs/OPERATIONS.md`.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use sccf_core::{
    decode_histories, decode_user_state, encode_histories, CandidateSource, EngineTimings,
    Exclusion, FrozenTierMode, GlobalNeighborSnapshot, NeighborSource, RealtimeEngine, Sccf,
    SccfShared, TierScratch,
};
use sccf_models::InductiveUiModel;
use sccf_util::timer::Stopwatch;
use sccf_util::topk::Scored;
use sccf_util::FxHashSet;

use crate::api::{
    DurabilityStats, MigrationStats, NeighborhoodStats, PressureStats, RecQuery, RecResponse,
    ServingApi, ServingError, ServingStats,
};
use crate::ring::HashRing;
use crate::stream::StreamEvent;
use crate::wal::{self, WalRecord, WalStatus, WalTail, WalWriter};

/// Deprecated legacy router: FxHash of the user id, mod `n_shards`.
///
/// Kept as a pinned-equivalence shim over the ring abstraction —
/// bit-identical to [`HashRing::modulo`]`(n_shards).route(user)`, which
/// is what [`ShardedConfig`]'s default [`RouterKind::Modulo`] routes
/// through (the equivalence is pinned by `ring::tests`). New code
/// should build a [`HashRing`] (or read the engine's placement through
/// its config) instead of calling a free function that cannot describe
/// consistent-hash placement.
#[deprecated(
    note = "route through `ring::HashRing` (see `ShardedConfig::router`); this free \
            function is the legacy modulo router only"
)]
pub fn shard_of(user: u32, n_shards: usize) -> usize {
    HashRing::modulo(n_shards).route(user)
}

/// Which routing function maps users to shards (see
/// [`crate::ring::HashRing`] for the trade-off).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RouterKind {
    /// `FxHash(user) % n_shards` — the legacy router and the default.
    /// Perfect balance, but resharding N→M moves almost every user.
    #[default]
    Modulo,
    /// Consistent-hash ring with `vnodes` virtual nodes per shard.
    /// Resharding moves only the users whose ring arc changed hands
    /// (≈ `1 − N/M` on scale-out) — the router to deploy when the fleet
    /// is expected to [`ShardedEngine::reshard`] live. 64–128 vnodes is
    /// a good default.
    Consistent { vnodes: usize },
    /// A contiguous window of a `total`-shard global ring: this engine
    /// hosts global shards `[base, base + n_shards)` and rejects users
    /// outside the window with [`ServingError::NotOwned`]. `vnodes = 0`
    /// slices the global modulo ring; `vnodes > 0` slices a global
    /// consistent ring. This is the multi-process fleet's shard-server
    /// shape (`sccf serve-shard`): each process owns one window, the
    /// network router in front owns the whole ring, and placement is
    /// identical to a single `total`-shard process — the fleet's pinned
    /// equivalence. Slice engines cannot [`ShardedEngine::reshard`] or
    /// [`ShardedEngine::refresh_global_tier`] on their own (ownership
    /// and the population span processes); the fleet layer orchestrates
    /// those instead.
    Slice {
        total: usize,
        base: usize,
        vnodes: usize,
    },
}

/// Sharded-engine knobs.
#[derive(Debug, Clone)]
pub struct ShardedConfig {
    /// Number of worker shards. 1 reproduces the single-writer engine
    /// bit-for-bit. Must be ≥ 1.
    pub n_shards: usize,
    /// Bounded capacity of each shard's event queue. A full queue blocks
    /// the router — backpressure, never unbounded memory. Must be ≥ 1.
    pub queue_capacity: usize,
    /// The user→shard routing function. [`RouterKind::Modulo`] is the
    /// legacy-pinned default; choose [`RouterKind::Consistent`] when the
    /// fleet will be resharded live.
    pub router: RouterKind,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        Self {
            n_shards: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .clamp(1, 16),
            queue_capacity: 1024,
            router: RouterKind::Modulo,
        }
    }
}

impl ShardedConfig {
    /// Build this config's routing ring, validating the router knobs.
    pub fn ring(&self) -> Result<HashRing, ServingError> {
        if self.n_shards == 0 {
            return Err(ServingError::InvalidConfig(
                "n_shards must be ≥ 1".to_string(),
            ));
        }
        match self.router {
            RouterKind::Modulo => Ok(HashRing::modulo(self.n_shards)),
            RouterKind::Consistent { vnodes } => {
                if vnodes == 0 {
                    return Err(ServingError::InvalidConfig(
                        "consistent router needs vnodes ≥ 1".to_string(),
                    ));
                }
                Ok(HashRing::consistent(self.n_shards, vnodes))
            }
            RouterKind::Slice {
                total,
                base,
                vnodes,
            } => {
                if total == 0 {
                    return Err(ServingError::InvalidConfig(
                        "slice router needs a global ring of ≥ 1 shards".to_string(),
                    ));
                }
                if base
                    .checked_add(self.n_shards)
                    .is_none_or(|end| end > total)
                {
                    return Err(ServingError::InvalidConfig(format!(
                        "slice window [{base}, {base}+{}) exceeds the global ring of {total} \
                         shards",
                        self.n_shards
                    )));
                }
                let global = if vnodes == 0 {
                    HashRing::modulo(total)
                } else {
                    HashRing::consistent(total, vnodes)
                };
                Ok(HashRing::slice(global, base, self.n_shards))
            }
        }
    }
}

/// What one shard worker reports: the per-shard slice of
/// [`ServingStats`], also returned by [`ShardedEngine::shutdown`].
#[derive(Debug, Clone)]
pub struct ShardReport {
    pub shard: usize,
    /// Events ingested (each one ran the infer + identify refresh).
    pub events: u64,
    /// Recommendation requests served.
    pub recommends: u64,
    /// The shard engine's Table III timing split.
    pub timings: EngineTimings,
    /// Final report of a worker retired by a live scale-in. A later
    /// scale-out may re-spawn a worker under the same shard id, so
    /// consumers keying on `shard` must treat `(shard, retired)` as the
    /// key to avoid conflating a retired worker's life with its
    /// successor's.
    pub retired: bool,
    /// Capacity of the bounded queue this worker currently drains.
    /// Reshards swap surviving workers onto fresh queues when the new
    /// config's capacity differs, so this reflects the live value, not
    /// the spawn-time one.
    pub queue_capacity: usize,
    /// Users on this shard dirtied since their last tier export — the
    /// shard's share of the next *delta* refresh
    /// ([`ShardedEngine::refresh_global_tier_delta`]).
    pub tier_dirty: u64,
}

/// What one completed [`ShardedEngine::reshard`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReshardReport {
    pub from_shards: usize,
    pub to_shards: usize,
    /// Users whose owning shard changed (each handed off exactly once).
    pub moved_users: u64,
    /// Handoff batches the migration took.
    pub batches: u64,
}

/// Default users-per-batch for [`ShardedEngine::reshard`]. Ingestion
/// can stall for at most one batch's export+import, so this bounds the
/// worst-case router pause; [`ShardedEngine::begin_reshard`] takes an
/// explicit batch size for other trade-offs.
pub const DEFAULT_HANDOFF_BATCH: usize = 64;

/// Default users-per-batch for [`ShardedEngine::refresh_global_tier`].
/// Each [`ShardedEngine::refresh_step`] blocks the router for one
/// batch's export round trip (the inference runs on the worker
/// threads), so — exactly like the reshard handoff batch — this bounds
/// the worst-case ingestion pause a background refresh can introduce.
pub const DEFAULT_REFRESH_BATCH: usize = 256;

/// What one completed [`ShardedEngine::refresh_global_tier`] did.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefreshReport {
    /// The epoch of the snapshot now installed in every worker.
    pub epoch: u64,
    /// Users exported into the snapshot: the whole population on a
    /// full refresh, only the dirty set on a delta refresh.
    pub users: u64,
    /// Export batches the collection took.
    pub batches: u64,
    /// Wall time from `begin_refresh` to the install broadcast, ms.
    pub duration_ms: f64,
    /// This was a delta refresh
    /// ([`ShardedEngine::refresh_global_tier_delta`]): unexported users
    /// kept their previous tier rows verbatim.
    pub delta: bool,
}

/// Durability knobs: where the WAL + checkpoint files live and how
/// aggressively they are flushed. See `docs/OPERATIONS.md` for sizing
/// guidance — `fsync_every` trades ingest throughput against the crash
/// loss window, `checkpoint_every_events` trades checkpoint I/O against
/// replay time.
#[derive(Debug, Clone)]
pub struct DurabilityConfig {
    /// Directory holding `wal-{shard}.log` and `ckpt-{epoch}.ckpt`
    /// files. Created if missing by
    /// [`ShardedEngine::enable_durability`]; must already hold state
    /// for [`ShardedEngine::recover`].
    pub dir: PathBuf,
    /// WAL records per `fsync`, per shard. 1 = durable on every event
    /// (zero loss window, slowest); larger values batch the syncs and
    /// risk at most that many acknowledged-but-unsynced events per
    /// shard on a crash. Must be ≥ 1.
    pub fsync_every: u32,
    /// Write an incremental checkpoint automatically every this many
    /// routed events (0 = manual [`ShardedEngine::checkpoint`] only).
    /// Auto-checkpoints are skipped while a reshard or refresh epoch
    /// is in flight and retried on the next ingest after it clears.
    pub checkpoint_every_events: u64,
}

impl DurabilityConfig {
    /// Durability into `dir` with the default cadences: fsync every 64
    /// records, manual checkpoints only.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            fsync_every: 64,
            checkpoint_every_events: 0,
        }
    }
}

/// What [`ShardedEngine::recover`] found and did. The `replayed`
/// records are the exact events re-applied on top of the checkpoint
/// chain — the chaos harness uses them to reconstruct the acknowledged
/// stream a recovered engine must be bit-identical to.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Checkpoints in the usable chain (epochs `0..checkpoints_loaded`).
    pub checkpoints_loaded: usize,
    /// A trailing checkpoint file failed validation and was ignored
    /// (the shape a crash *during* a checkpoint write leaves behind).
    pub trailing_checkpoint_skipped: bool,
    /// Global sequence number the newest usable checkpoint is
    /// consistent with; replay starts after it.
    pub watermark: u64,
    /// Distinct users restored from checkpoint blobs.
    pub users_restored: usize,
    /// WAL files scanned (including files of shards retired by past
    /// fleet shapes — their records still replay).
    pub wal_files: usize,
    /// Records that survived scanning across all WAL files.
    pub wal_records: usize,
    /// Surviving records with `seq > watermark`, ascending by `seq` —
    /// exactly what was re-applied to the checkpoint state.
    pub replayed: Vec<WalRecord>,
    /// WAL files whose tail failed validation (torn write or bit flip).
    pub torn_files: usize,
    /// Bytes truncated off those tails.
    pub truncated_bytes: u64,
    /// Highest sequence number seen anywhere (watermark included); the
    /// recovered engine's sequence counter resumes after it, so new
    /// events never collide with surviving records.
    pub max_seq: u64,
    /// Point-in-time restore only ([`ShardedEngine::recover_at`]): the
    /// highest sequence number actually applied — the checkpoint
    /// watermark if no WAL record `<=` the target survived, otherwise
    /// the last replayed record's `seq`. `None` for a full
    /// [`ShardedEngine::recover`].
    pub stopped_at: Option<u64>,
}

/// Router-side durability state (the worker-side halves are the
/// per-shard [`WalWriter`]s).
struct DurabilityState {
    cfg: DurabilityConfig,
    /// Checkpoint epochs written so far (the next one gets this index).
    checkpoints: u64,
    /// Watermark of the newest checkpoint.
    watermark: u64,
    /// Byte size of the newest checkpoint file.
    last_checkpoint_bytes: u64,
    /// `events_routed` as of the newest checkpoint — the difference is
    /// the replay debt a crash right now would pay.
    events_at_checkpoint: u64,
}

/// Router-side state of an in-flight incremental tier refresh.
struct RefreshEpoch {
    /// `None` — a *full* refresh: the plan is simply `0..n_users`
    /// (every user is owned by exactly one stable-epoch shard).
    /// `Some(users)` — a *delta* refresh over exactly these users (the
    /// fleet's tier-dirty sets at `begin_delta_refresh`, ascending).
    plan: Option<Vec<u32>>,
    /// Next unexported index into the plan.
    cursor: usize,
    /// Users exported per [`ShardedEngine::refresh_step`].
    batch: usize,
    /// Decoded `(user, representation, history)` entries collected so
    /// far.
    entries: Vec<(u32, Vec<f32>, Vec<u32>)>,
    batches: u64,
    started: Stopwatch,
}

enum ShardMsg {
    Event {
        /// Router-assigned global sequence number; logged to the WAL
        /// (when durability is armed) before the event is applied.
        seq: u64,
        user: u32,
        item: u32,
    },
    Recommend {
        user: u32,
        /// Shared per wave: `recommend_many` sends one allocation's
        /// worth of query (exclusion list included) to any number of
        /// users.
        query: Arc<RecQuery>,
        reply: Sender<Result<RecResponse, ServingError>>,
    },
    /// Barrier: the worker replies once everything queued before this
    /// message has been processed.
    Drain { reply: Sender<()> },
    /// Live counters + timings without stopping the worker.
    Stats { reply: Sender<ShardReport> },
    /// The shard's owned `(global user, history)` pairs — the snapshot
    /// path merges these into one whole-population artifact.
    Export { reply: Sender<Vec<(u32, Vec<u32>)>> },
    /// Live-resharding handoff, source side: export each user's
    /// migration blob ([`RealtimeEngine::export_user`]) and evict it.
    /// Queued FIFO, so every event ingested for these users before the
    /// handoff is applied before the export.
    ExportUsers {
        users: Vec<u32>,
        reply: Sender<Vec<Vec<u8>>>,
    },
    /// Live-resharding handoff, target side: adopt the carried users
    /// ([`RealtimeEngine::import_user`]). No reply — the bounded queue
    /// provides backpressure, and FIFO ordering guarantees the users
    /// exist before any later event or recommendation reaches them.
    ImportUsers { blobs: Vec<Vec<u8>> },
    /// Quiesce step: re-order the shard's compact slots into the
    /// canonical layout so post-migration state is bit-identical to an
    /// offline restore. Replies when done (migration barrier).
    Canonicalize { reply: Sender<()> },
    /// Global-tier refresh, collect side: export each listed owned
    /// user's state blob ([`RealtimeEngine::export_user`]) **without
    /// evicting** — the shard keeps serving the user; the router only
    /// reads a consistent copy. Rides the FIFO queue, so the export
    /// reflects every event queued before it.
    TierExport {
        users: Vec<u32>,
        /// Acknowledge each export against the engine's tier-dirty set
        /// (the refresh pipeline: the blob feeds the snapshot being
        /// built, so the user is clean relative to it). False for
        /// diagnostic/fleet-level exports that install nothing locally.
        clear_dirty: bool,
        reply: Sender<Vec<Vec<u8>>>,
    },
    /// The shard's current tier-dirty users (sorted; a peek — marks
    /// are cleared per user at export time). Rides the FIFO queue, so
    /// the set reflects every event routed before it: the delta
    /// refresh plan.
    TierDirty { reply: Sender<Vec<u32>> },
    /// Re-mark users tier-dirty: an aborted refresh epoch already
    /// acknowledged some exports whose snapshot will never install, so
    /// the marks must come back or the next delta silently ships stale
    /// rows.
    TierMark { users: Vec<u32> },
    /// Swap this worker onto a fresh bounded queue (a reshard changed
    /// `queue_capacity`). Always the **last** message on the old
    /// queue — the router drops the old sender right after — so FIFO
    /// order across the swap is total: everything sent on the old
    /// queue precedes everything sent on the new one.
    SwapQueue {
        rx: Receiver<ShardMsg>,
        capacity: usize,
    },
    /// Global-tier refresh, swap side: install the freshly built
    /// snapshot (`None` disables the two-tier path). One `Arc` store on
    /// the worker — no reply, no stall; FIFO ordering makes the swap
    /// visible to every request routed after it.
    TierInstall {
        tier: Option<Arc<GlobalNeighborSnapshot>>,
    },
    /// Current merged Eq. 11 neighborhood of an owned user
    /// (diagnostics: the cross-shard equivalence tests and the quality
    /// bench read neighborhoods through this).
    Neighbors {
        user: u32,
        reply: Sender<Result<Vec<Scored>, ServingError>>,
    },
    /// Arm durability on this worker: every later `Event` is appended
    /// to `wal` *before* it is applied. `dirty` re-marks users whose
    /// WAL records were replayed by recovery, so the next incremental
    /// checkpoint covers them.
    Durability { wal: WalWriter, dirty: Vec<u32> },
    /// WAL bookkeeping: optionally fsync, then report the writer's
    /// status (`None` when durability was never armed here). Rides the
    /// FIFO queue, so the status reflects every event routed before it.
    Wal {
        sync: bool,
        reply: Sender<Option<WalStatus>>,
    },
    /// Checkpoint export: the shard's dirty users' state blobs
    /// (`full` = every owned user instead — the epoch-0 export). The
    /// dirty set is drained either way. Rides the FIFO queue, so the
    /// export reflects every event routed before it.
    CheckpointExport {
        full: bool,
        reply: Sender<Vec<Vec<u8>>>,
    },
    /// WAL segment rotation after a checkpoint ([`WalWriter::rotate`]):
    /// seal the active segment when `seal_upto` (the new watermark)
    /// covers it, prune sealed segments `<= prune_upto` (the previous
    /// watermark). Replies `(sealed, pruned)`; `(0, 0)` when durability
    /// was never armed here.
    WalRotate {
        seal_upto: u64,
        prune_upto: u64,
        reply: Sender<(u64, u64)>,
    },
}

/// What a shard worker thread hands back when it exits.
type WorkerExit<M> = (RealtimeEngine<M>, ShardReport);

/// Router epoch: the state machine behind live resharding
/// (`stable → migrating(batched handoff) → stable`).
enum Epoch {
    /// One ring owns every user.
    Stable { ring: HashRing },
    /// Mid-migration: users still in `pending` route through the old
    /// ring; users already handed off route through the new one.
    Migrating {
        old: HashRing,
        new: HashRing,
        /// Every user whose shard changes, in ascending id order.
        plan: Vec<u32>,
        /// Next unmoved index into `plan`.
        cursor: usize,
        /// `plan[cursor..]` as a set, for O(1) routing decisions.
        pending: FxHashSet<u32>,
        /// Users handed off per [`ShardedEngine::reshard_step`].
        batch: usize,
        /// Shard count once the migration quiesces.
        target: usize,
    },
}

impl Epoch {
    fn route(&self, user: u32) -> usize {
        match self {
            Epoch::Stable { ring } => ring.route(user),
            Epoch::Migrating {
                old, new, pending, ..
            } => {
                if pending.contains(&user) {
                    old.route(user)
                } else {
                    new.route(user)
                }
            }
        }
    }
}

/// User-partitioned, multi-writer wrapper around N single-writer
/// [`RealtimeEngine`]s. See the [module docs](self) for the
/// architecture; drive it through the
/// [`ServingApi`] surface.
///
/// ```
/// use sccf_core::{FrozenTierMode, IntegratorConfig, Sccf, SccfConfig, UserBasedConfig};
/// use sccf_data::{Dataset, Interaction, LeaveOneOut};
/// use sccf_models::{Fism, FismConfig, TrainConfig};
/// use sccf_serving::api::{RecQuery, ServingApi};
/// use sccf_serving::sharded::{ShardedConfig, ShardedEngine};
///
/// // A tiny two-taste-group world.
/// let inter: Vec<Interaction> = (0..8u32)
///     .flat_map(|u| (0..4).map(move |t| Interaction {
///         user: u,
///         item: (u / 4) * 4 + (u + t) % 4,
///         ts: t as i64,
///     }))
///     .collect();
/// let data = Dataset::from_interactions("doc", 8, 8, &inter, None);
/// let split = LeaveOneOut::split(&data);
/// let fism = Fism::train(&split, &FismConfig {
///     train: TrainConfig { dim: 4, epochs: 2, ..Default::default() },
///     ..Default::default()
/// });
/// let sccf = Sccf::build(fism, &split, SccfConfig {
///     user_based: UserBasedConfig { beta: 3, recent_window: 4 },
///     candidate_n: 6,
///     integrator: IntegratorConfig { epochs: 2, ..Default::default() },
///     threads: 1,
///     profiles: None,
///     ui_ann: None,
///     frozen_tier: FrozenTierMode::Flat,
/// });
/// let histories: Vec<Vec<u32>> = (0..8u32).map(|u| split.train_plus_val(u)).collect();
///
/// let mut engine = ShardedEngine::try_new(sccf, histories, ShardedConfig {
///     n_shards: 2,
///     queue_capacity: 64,
///     ..ShardedConfig::default()
/// }).expect("valid config");
/// engine.try_ingest(0, 5).expect("ids in range"); // routed by the config's ring
/// let recs = engine.try_recommend(0, &RecQuery::top(3)).expect("user 0 exists");
/// assert!(!recs.items.is_empty());                // same queue ⇒ sees the event
/// let stats = engine.serving_stats().expect("stats");
/// assert_eq!(stats.events, 1);
/// let reports = engine.shutdown();                // drains queues, joins workers
/// assert_eq!(reports.len(), 2);
/// assert_eq!(reports.iter().map(|r| r.events).sum::<u64>(), 1);
/// ```
pub struct ShardedEngine<M: InductiveUiModel + 'static> {
    txs: Vec<Sender<ShardMsg>>,
    /// `None` once a dead worker has been joined to surface its panic.
    handles: Vec<Option<JoinHandle<WorkerExit<M>>>>,
    /// Stable shard count (pre-migration count while one is running).
    n_shards: usize,
    /// Routing epoch: stable ring, or a migration in flight.
    epoch: Epoch,
    /// Reports of workers retired by scale-in reshards; merged into
    /// stats and shutdown so event accounting stays complete.
    retired: Vec<ShardReport>,
    /// The item-side half, kept to seed empty shard views for workers
    /// spawned by scale-out reshards.
    shared: Arc<SccfShared<M>>,
    /// Router-side validation state: requests with out-of-range ids are
    /// rejected here, before they can reach (and kill) a worker.
    n_users: usize,
    n_items: usize,
    has_ann: bool,
    /// Lifetime migration counters (reported via `ServingStats`).
    migrated_users: u64,
    migration_batches: u64,
    /// The global neighbor snapshot currently installed in every
    /// worker (`None` ⇒ shard-local neighborhoods, the historical
    /// behavior). Kept here so workers spawned by a later scale-out
    /// receive the same tier.
    current_tier: Option<Arc<GlobalNeighborSnapshot>>,
    /// In-flight incremental refresh, if any.
    refresh: Option<RefreshEpoch>,
    /// Monotone refresh-epoch counter (survives `clear_global_tier`).
    tier_epoch: u64,
    /// Duration of the last completed refresh, milliseconds.
    last_refresh_ms: f64,
    /// Users the last completed refresh exported (population on full,
    /// dirty set on delta).
    last_refresh_users: u64,
    /// The installed tier was built by this fleet's own refresh
    /// pipeline, so the per-shard tier-dirty sets name exactly the rows
    /// differing from it — the precondition of a delta refresh. False
    /// after `install_global_tier` (the artifact's provenance is
    /// unknown) until the next full refresh completes.
    tier_delta_ok: bool,
    /// Mean ns of one frozen-tier search, probed at tier install
    /// (reported via `ServingStats`; 0 with no tier).
    tier_search_ns: f64,
    /// Export batches of the last completed refresh.
    last_refresh_batches: u64,
    /// Events accepted by the router over the fleet's life, and the
    /// value of that counter when the current tier was installed —
    /// their difference is the tier's staleness in events. With
    /// durability armed this doubles as the WAL sequence counter
    /// (event k gets `seq = k`, 1-based); recovery fast-forwards it
    /// past every surviving record so sequences never collide.
    events_routed: u64,
    events_at_refresh: u64,
    /// Current per-shard queue capacity: the most recent config's
    /// value, applied to every live worker (reshards swap surviving
    /// workers' queues when it changes).
    queue_capacity: usize,
    /// Router-side backpressure accounting (see
    /// [`crate::api::PressureStats`]): total sends, sends that found a
    /// full queue and blocked, and the wall time spent blocked.
    sends: u64,
    stalls: u64,
    stall_ms: f64,
    /// Deepest any shard queue stood at a send since the last stats
    /// sample (read-and-clear in [`ServingApi::serving_stats`]).
    peak_queue: usize,
    /// Durability layer, if armed (see
    /// [`ShardedEngine::enable_durability`]).
    durability: Option<DurabilityState>,
}

impl<M: InductiveUiModel + 'static> ShardedEngine<M> {
    /// Partition a built framework into `cfg.n_shards` workers.
    ///
    /// `histories` must be the users' current full histories — the same
    /// source-of-truth contract as [`RealtimeEngine::new`] and
    /// [`RealtimeEngine::restore`]; every shard's per-user state is
    /// derived from it via [`Sccf::into_shards`]. Rejects zero shards,
    /// zero queue capacity, zero-vnode consistent routers, history
    /// tables of the wrong size and out-of-catalog item ids with
    /// [`ServingError`] instead of panicking (or spawning workers that
    /// would).
    pub fn try_new(
        sccf: Sccf<M>,
        histories: Vec<Vec<u32>>,
        cfg: ShardedConfig,
    ) -> Result<Self, ServingError> {
        if cfg.queue_capacity == 0 {
            return Err(ServingError::InvalidConfig(
                "queue_capacity must be ≥ 1".to_string(),
            ));
        }
        let ring = cfg.ring()?;
        let n_users = sccf.user_count();
        if histories.len() != n_users {
            return Err(ServingError::InvalidConfig(format!(
                "history table has {} entries for a population of {n_users}",
                histories.len()
            )));
        }
        let n_items = sccf.model().n_items();
        for h in &histories {
            if let Some(&bad) = h.iter().find(|&&i| i as usize >= n_items) {
                return Err(ServingError::UnknownItem { item: bad, n_items });
            }
        }
        let has_ann = sccf.config().ui_ann.is_some();
        let shared = Arc::clone(sccf.shared());
        let n = cfg.n_shards;
        // A slice ring assigns only its window's users (`try_route` is
        // `None` elsewhere); whole rings assign everyone.
        let shards = sccf.into_shard_slice(&histories, n, |u| ring.try_route(u));
        // Move each user's history into the owning shard's full-length
        // table; the shard engine compacts it to owned slots on
        // construction, so the O(shards × users) layout is transient.
        let mut per_shard: Vec<Vec<Vec<u32>>> = (0..n).map(|_| vec![Vec::new(); n_users]).collect();
        for (u, h) in histories.into_iter().enumerate() {
            if let Some(s) = ring.try_route(u as u32) {
                per_shard[s][u] = h;
            }
        }
        let mut txs = Vec::with_capacity(n);
        let mut handles = Vec::with_capacity(n);
        for (s, (shard_sccf, shard_histories)) in shards.into_iter().zip(per_shard).enumerate() {
            let (tx, rx) = bounded::<ShardMsg>(cfg.queue_capacity);
            let engine = RealtimeEngine::new(shard_sccf, shard_histories);
            let cap = cfg.queue_capacity;
            let handle = std::thread::Builder::new()
                .name(format!("sccf-shard-{s}"))
                .spawn(move || shard_worker(s, engine, rx, cap))
                .expect("spawn shard worker");
            txs.push(tx);
            handles.push(Some(handle));
        }
        Ok(Self {
            txs,
            handles,
            n_shards: n,
            epoch: Epoch::Stable { ring },
            retired: Vec::new(),
            shared,
            n_users,
            n_items,
            has_ann,
            migrated_users: 0,
            migration_batches: 0,
            current_tier: None,
            refresh: None,
            tier_epoch: 0,
            last_refresh_ms: 0.0,
            last_refresh_users: 0,
            tier_delta_ok: false,
            tier_search_ns: 0.0,
            last_refresh_batches: 0,
            events_routed: 0,
            events_at_refresh: 0,
            queue_capacity: cfg.queue_capacity,
            sends: 0,
            stalls: 0,
            stall_ms: 0.0,
            peak_queue: 0,
            durability: None,
        })
    }

    /// Deprecated infallible form of [`ShardedEngine::try_new`].
    #[deprecated(note = "use `try_new`; this wrapper panics on invalid configs")]
    pub fn new(sccf: Sccf<M>, histories: Vec<Vec<u32>>, cfg: ShardedConfig) -> Self {
        Self::try_new(sccf, histories, cfg).unwrap_or_else(|e| panic!("ShardedEngine::new: {e}"))
    }

    /// Rehydrate a sharded fleet from a snapshot artifact
    /// ([`ShardedEngine::snapshot`] or [`RealtimeEngine::snapshot`] —
    /// the format is shared) under `cfg`, re-partitioning the users at
    /// load time. `cfg.n_shards` is free to differ from the snapshot's
    /// source fleet: this is offline resharding N→M (a full reload; see
    /// [`ShardedEngine::reshard`] for the no-downtime path).
    pub fn restore(sccf: Sccf<M>, bytes: &[u8], cfg: ShardedConfig) -> Result<Self, ServingError> {
        let histories = decode_histories(bytes)?;
        Self::try_new(sccf, histories, cfg)
    }

    /// The stable shard count. While a migration is in flight this is
    /// still the *pre-migration* count — it flips to the target count
    /// when the migration quiesces.
    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// Whether a live reshard is in flight (begun but not yet quiesced).
    pub fn is_migrating(&self) -> bool {
        matches!(self.epoch, Epoch::Migrating { .. })
    }

    /// True while an incremental tier refresh is in flight.
    pub fn is_refreshing(&self) -> bool {
        self.refresh.is_some()
    }

    /// How many messages a request for `user` would wait behind right
    /// now: the current depth of the owning shard's queue. This is the
    /// core-count-independent serving-latency proxy — a recommend is
    /// answered FIFO behind this backlog, so on a parallel host its
    /// queueing delay is proportional to this number, while wall-clock
    /// measurements additionally depend on how many worker threads the
    /// OS can actually run at once.
    pub fn queue_depth_for(&self, user: u32) -> usize {
        self.txs[self.epoch.route(user)].len()
    }

    /// A send failed, so shard `s`'s worker is gone: join it and
    /// re-raise its original panic payload (not a generic router
    /// message) so the root cause reaches the caller's logs.
    fn propagate_worker_death(&mut self, s: usize) -> ! {
        match self.handles[s].take() {
            Some(h) => match h.join() {
                Err(payload) => std::panic::resume_unwind(payload),
                Ok(_) => panic!("shard {s} worker exited early without panicking"),
            },
            None => panic!("shard {s} worker already joined after an earlier failure"),
        }
    }

    fn check_user(&self, user: u32) -> Result<usize, ServingError> {
        if (user as usize) >= self.n_users {
            return Err(ServingError::UnknownUser {
                user,
                n_users: self.n_users,
            });
        }
        let s = self.epoch.route(user);
        // A slice ring routes users outside its window past the local
        // shard count — this process does not host them.
        if s >= self.txs.len() {
            return Err(ServingError::NotOwned { user });
        }
        Ok(s)
    }

    fn check_item(&self, item: u32) -> Result<(), ServingError> {
        if (item as usize) < self.n_items {
            Ok(())
        } else {
            Err(ServingError::UnknownItem {
                item,
                n_items: self.n_items,
            })
        }
    }

    fn check_query(&self, query: &RecQuery) -> Result<(), ServingError> {
        if query.source == CandidateSource::Ann && !self.has_ann {
            return Err(ServingError::AnnUnavailable);
        }
        if let Exclusion::HistoryAnd(extra) = &query.exclude {
            for &i in extra {
                self.check_item(i)?;
            }
        }
        Ok(())
    }

    /// Push a message onto shard `s`'s queue, sensing backpressure on
    /// the way: a non-blocking attempt first, and only when the queue
    /// is full — the one observable symptom of an overloaded worker —
    /// fall back to the blocking send, counting the stall and the time
    /// blocked. `stalls / sends` is the autoscaling policy's pressure
    /// signal ([`crate::api::PressureStats`]); queue *backlog* is
    /// unobservable from here (any probe rides the same FIFO queue), so
    /// blocked sends are the honest router-side measure.
    fn send(&mut self, s: usize, msg: ShardMsg) {
        self.sends += 1;
        let depth = self.txs[s].len();
        if depth > self.peak_queue {
            self.peak_queue = depth;
        }
        match self.txs[s].try_send(msg) {
            Ok(()) => {}
            Err(TrySendError::Disconnected(_)) => self.propagate_worker_death(s),
            Err(TrySendError::Full(msg)) => {
                self.stalls += 1;
                let sw = Stopwatch::start();
                if self.txs[s].send(msg).is_err() {
                    self.propagate_worker_death(s);
                }
                self.stall_ms += sw.elapsed_ms();
            }
        }
    }

    /// Fan a request constructor out to every live worker (including
    /// mid-migration extras) and collect the replies in shard order.
    fn fan_out<T>(&mut self, make: impl Fn(Sender<T>) -> ShardMsg) -> Vec<T> {
        let mut replies: Vec<(usize, Receiver<T>)> = Vec::with_capacity(self.txs.len());
        for s in 0..self.txs.len() {
            let (reply, rx) = bounded(1);
            self.send(s, make(reply));
            replies.push((s, rx));
        }
        replies
            .into_iter()
            .map(|(s, rx)| match rx.recv() {
                Ok(v) => v,
                Err(_) => self.propagate_worker_death(s),
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // Live resharding

    /// Reshard the fleet N→M live, blocking until the migration
    /// completes (with [`DEFAULT_HANDOFF_BATCH`] users per batch).
    /// Workers keep draining their queues throughout — every event
    /// already accepted is processed during the migration, not after
    /// it. For interleaving your own ingestion between batches (the
    /// no-stall deployment shape), drive
    /// [`ShardedEngine::begin_reshard`] /
    /// [`ShardedEngine::reshard_step`] yourself — this method is just
    /// that loop.
    ///
    /// An N→N reshard under the same router is a no-op for routing
    /// (zero users moved, zero batches) but still applies
    /// `new_cfg.queue_capacity`: surviving workers are swapped onto
    /// fresh queues at the new capacity (FIFO order preserved across
    /// the swap), so a reshard is also the way to resize queues live.
    ///
    /// ```
    /// use sccf_core::{FrozenTierMode, IntegratorConfig, Sccf, SccfConfig, UserBasedConfig};
    /// use sccf_data::{Dataset, Interaction, LeaveOneOut};
    /// use sccf_models::{Fism, FismConfig, TrainConfig};
    /// use sccf_serving::api::{RecQuery, ServingApi};
    /// use sccf_serving::sharded::{RouterKind, ShardedConfig, ShardedEngine};
    ///
    /// let inter: Vec<Interaction> = (0..8u32)
    ///     .flat_map(|u| (0..4).map(move |t| Interaction {
    ///         user: u,
    ///         item: (u / 4) * 4 + (u + t) % 4,
    ///         ts: t as i64,
    ///     }))
    ///     .collect();
    /// let data = Dataset::from_interactions("doc", 8, 8, &inter, None);
    /// let split = LeaveOneOut::split(&data);
    /// let fism = Fism::train(&split, &FismConfig {
    ///     train: TrainConfig { dim: 4, epochs: 2, ..Default::default() },
    ///     ..Default::default()
    /// });
    /// let sccf = Sccf::build(fism, &split, SccfConfig {
    ///     user_based: UserBasedConfig { beta: 3, recent_window: 4 },
    ///     candidate_n: 6,
    ///     integrator: IntegratorConfig { epochs: 2, ..Default::default() },
    ///     threads: 1,
    ///     profiles: None,
    ///     ui_ann: None,
    ///     frozen_tier: FrozenTierMode::Flat,
    /// });
    /// let histories: Vec<Vec<u32>> = (0..8u32).map(|u| split.train_plus_val(u)).collect();
    /// let consistent = |n_shards| ShardedConfig {
    ///     n_shards,
    ///     queue_capacity: 64,
    ///     router: RouterKind::Consistent { vnodes: 16 },
    /// };
    ///
    /// // A 1-shard fleet absorbs traffic, then scales out to 3 live.
    /// let mut engine = ShardedEngine::try_new(sccf, histories, consistent(1)).unwrap();
    /// engine.try_ingest(0, 5).expect("ids in range");
    /// let report = engine.reshard(consistent(3)).expect("live reshard");
    /// assert_eq!((report.from_shards, report.to_shards), (1, 3));
    /// assert!(!engine.is_migrating());
    /// assert_eq!(engine.n_shards(), 3);
    ///
    /// // No event was lost or duplicated, and the fleet keeps serving.
    /// engine.try_ingest(0, 6).expect("post-reshard ingest");
    /// engine.flush().expect("barrier");
    /// let stats = engine.serving_stats().expect("stats");
    /// assert_eq!(stats.events, 2);
    /// assert_eq!(stats.migration.migrated_users, report.moved_users);
    /// assert!(!engine.try_recommend(0, &RecQuery::top(3)).unwrap().items.is_empty());
    /// engine.shutdown();
    /// ```
    pub fn reshard(&mut self, new_cfg: ShardedConfig) -> Result<ReshardReport, ServingError> {
        let (from, to) = (self.n_shards, new_cfg.n_shards);
        let (moved0, batches0) = (self.migrated_users, self.migration_batches);
        self.begin_reshard(new_cfg, DEFAULT_HANDOFF_BATCH)?;
        while self.is_migrating() {
            self.reshard_step()?;
        }
        Ok(ReshardReport {
            from_shards: from,
            to_shards: to,
            moved_users: self.migrated_users - moved0,
            batches: self.migration_batches - batches0,
        })
    }

    /// Enter a migration epoch toward `new_cfg` without moving anyone
    /// yet: compute the handoff plan (every user whose shard changes
    /// between the current and the new ring), spawn empty workers for
    /// any new shards, and switch the router to migration routing.
    /// Ingestion and recommendations keep flowing; call
    /// [`ShardedEngine::reshard_step`] to hand off `handoff_batch`
    /// users at a time until [`ShardedEngine::is_migrating`] turns
    /// false. If no user moves (e.g. N→N under the same router), the
    /// epoch quiesces immediately.
    ///
    /// Errors — and leaves the fleet untouched — on degenerate configs
    /// or if a migration is already in flight (finish it first;
    /// overlapping epochs would make routing ambiguous).
    pub fn begin_reshard(
        &mut self,
        new_cfg: ShardedConfig,
        handoff_batch: usize,
    ) -> Result<(), ServingError> {
        if self.is_migrating() {
            return Err(ServingError::InvalidConfig(
                "a reshard is already in progress; drive reshard_step to completion first"
                    .to_string(),
            ));
        }
        if self.refresh.is_some() {
            return Err(ServingError::InvalidConfig(
                "a global-tier refresh is collecting; drive refresh_step to completion \
                 before resharding (user ownership must not shift under the collection)"
                    .to_string(),
            ));
        }
        if handoff_batch == 0 {
            return Err(ServingError::InvalidConfig(
                "handoff_batch must be ≥ 1".to_string(),
            ));
        }
        if new_cfg.queue_capacity == 0 {
            return Err(ServingError::InvalidConfig(
                "queue_capacity must be ≥ 1".to_string(),
            ));
        }
        let new_ring = new_cfg.ring()?;
        let old_ring = match &self.epoch {
            Epoch::Stable { ring } => ring.clone(),
            Epoch::Migrating { .. } => unreachable!("checked above"),
        };
        if old_ring.is_slice() || new_ring.is_slice() {
            return Err(ServingError::InvalidConfig(
                "a slice engine hosts one window of a multi-process fleet; resharding \
                 moves users between processes and is orchestrated at the fleet layer, \
                 not per slice"
                    .to_string(),
            ));
        }
        let plan: Vec<u32> = (0..self.n_users as u32)
            .filter(|&u| old_ring.route(u) != new_ring.route(u))
            .collect();
        // Queue resize: swap every surviving worker onto a fresh queue
        // at the new capacity. The swap message is the last message on
        // the old queue (its sender is dropped right after), so FIFO
        // order is total across the swap — nothing queued before it can
        // be reordered behind anything sent on the new queue. Workers
        // spawned below start on new-capacity queues directly.
        if new_cfg.queue_capacity != self.queue_capacity {
            for s in 0..self.txs.len() {
                let (tx, rx) = bounded::<ShardMsg>(new_cfg.queue_capacity);
                self.send(
                    s,
                    ShardMsg::SwapQueue {
                        rx,
                        capacity: new_cfg.queue_capacity,
                    },
                );
                self.txs[s] = tx;
            }
            self.queue_capacity = new_cfg.queue_capacity;
        }
        // Scale-out: spawn empty views for the new shards before any
        // routing can reach them. Freshly spawned workers inherit the
        // fleet's current global tier (if any) so their neighborhoods
        // match the surviving workers' from the first adopted user on.
        let inherited_tier = self.current_tier.clone();
        // New workers inherit the durability arming too: their WAL must
        // be in place before the first handoff import or routed event
        // can reach them (FIFO order after the spawn guarantees it).
        let inherited_wal = self
            .durability
            .as_ref()
            .map(|st| (st.cfg.dir.clone(), st.cfg.fsync_every));
        for s in self.txs.len()..new_cfg.n_shards {
            let view = Sccf::empty_shard_view(&self.shared, self.n_users);
            let engine = RealtimeEngine::new(view, Vec::new());
            let (tx, rx) = bounded::<ShardMsg>(new_cfg.queue_capacity);
            let cap = new_cfg.queue_capacity;
            let handle = std::thread::Builder::new()
                .name(format!("sccf-shard-{s}"))
                .spawn(move || shard_worker(s, engine, rx, cap))
                .expect("spawn shard worker");
            self.txs.push(tx);
            self.handles.push(Some(handle));
            if let Some((dir, fsync_every)) = &inherited_wal {
                let path = wal::wal_path(dir, s);
                // A past fleet life may have left this shard id's file
                // behind (scale-in then scale-out): append to it — its
                // old records are still replayable, sequence numbers
                // keep the global order.
                let writer = if path.exists() {
                    WalWriter::reopen(&path, *fsync_every)?
                } else {
                    WalWriter::create(&path, *fsync_every)?
                };
                self.send(
                    s,
                    ShardMsg::Durability {
                        wal: writer,
                        dirty: Vec::new(),
                    },
                );
            }
            if let Some(tier) = &inherited_tier {
                self.send(
                    s,
                    ShardMsg::TierInstall {
                        tier: Some(Arc::clone(tier)),
                    },
                );
            }
        }
        if plan.is_empty() {
            self.quiesce_to(new_ring, new_cfg.n_shards);
            return Ok(());
        }
        let pending: FxHashSet<u32> = plan.iter().copied().collect();
        self.epoch = Epoch::Migrating {
            old: old_ring,
            new: new_ring,
            plan,
            cursor: 0,
            pending,
            batch: handoff_batch,
            target: new_cfg.n_shards,
        };
        Ok(())
    }

    /// Hand off the next batch of moving users, then return how many
    /// users still await handoff (0 = the migration quiesced on this
    /// call, or none was in flight).
    ///
    /// One step blocks the caller for one batch's export+import round
    /// trip — that is the *maximum* ingestion stall live resharding
    /// ever introduces, and it is bounded by the batch size chosen at
    /// [`ShardedEngine::begin_reshard`]. Workers not involved in the
    /// batch keep draining their queues concurrently. A full target
    /// queue applies ordinary backpressure (the import send blocks
    /// until the worker drains); no cycle exists between router and
    /// workers, so the handoff cannot deadlock (exercised by
    /// `tests/failure_injection.rs`).
    pub fn reshard_step(&mut self) -> Result<usize, ServingError> {
        // Carve the batch out of the plan under a short borrow; the
        // sends below need `&mut self`.
        let (exports, remaining, quiesce) = match &mut self.epoch {
            Epoch::Stable { .. } => return Ok(0),
            Epoch::Migrating {
                old,
                new,
                plan,
                cursor,
                pending,
                batch,
                ..
            } => {
                let end = (*cursor + *batch).min(plan.len());
                // (source shard, [(user, destination shard)]) groups.
                let mut exports: Vec<(usize, Vec<(u32, usize)>)> = Vec::new();
                for &u in &plan[*cursor..end] {
                    let (src, dst) = (old.route(u), new.route(u));
                    match exports.iter_mut().find(|(s, _)| *s == src) {
                        Some((_, v)) => v.push((u, dst)),
                        None => exports.push((src, vec![(u, dst)])),
                    }
                    pending.remove(&u);
                }
                *cursor = end;
                (exports, plan.len() - end, end == plan.len())
            }
        };
        // Fan the exports out so source shards drain in parallel, then
        // collect. Each exported user is already evicted from its
        // source when the reply arrives.
        let mut waves = Vec::with_capacity(exports.len());
        let mut moved = 0u64;
        for (src, users_dsts) in exports {
            let (reply, rx) = bounded(1);
            self.send(
                src,
                ShardMsg::ExportUsers {
                    users: users_dsts.iter().map(|&(u, _)| u).collect(),
                    reply,
                },
            );
            waves.push((src, users_dsts, rx));
        }
        // Group the collected blobs by destination and import. FIFO
        // queues order each import ahead of any event or request this
        // router routes to the moved users afterwards.
        let mut imports: Vec<(usize, Vec<Vec<u8>>)> = Vec::new();
        for (src, users_dsts, rx) in waves {
            let blobs = match rx.recv() {
                Ok(b) => b,
                Err(_) => self.propagate_worker_death(src),
            };
            debug_assert_eq!(blobs.len(), users_dsts.len());
            for ((_, dst), blob) in users_dsts.into_iter().zip(blobs) {
                match imports.iter_mut().find(|(d, _)| *d == dst) {
                    Some((_, v)) => v.push(blob),
                    None => imports.push((dst, vec![blob])),
                }
                moved += 1;
            }
        }
        for (dst, blobs) in imports {
            self.send(dst, ShardMsg::ImportUsers { blobs });
        }
        self.migrated_users += moved;
        if moved > 0 {
            self.migration_batches += 1;
        }
        if quiesce {
            let (ring, target) = match &self.epoch {
                Epoch::Migrating { new, target, .. } => (new.clone(), *target),
                Epoch::Stable { .. } => unreachable!("quiesce implies migrating"),
            };
            self.quiesce_to(ring, target);
        }
        Ok(remaining)
    }

    /// Seal a migration: canonicalize every worker's slot layout (so
    /// the live-resharded state matches an offline restore bit for
    /// bit), retire surplus workers (scale-in), and install the new
    /// ring as the stable epoch.
    fn quiesce_to(&mut self, ring: HashRing, target: usize) {
        self.fan_out(|reply| ShardMsg::Canonicalize { reply });
        while self.txs.len() > target {
            // Retired shards own no users by now; close the queue, let
            // the worker drain and keep its report for the accounting.
            let tx = self.txs.pop().expect("more txs than target");
            drop(tx);
            match self.handles.pop().expect("one handle per tx") {
                Some(h) => match h.join() {
                    Ok((_engine, mut report)) => {
                        report.retired = true;
                        self.retired.push(report);
                    }
                    Err(payload) => std::panic::resume_unwind(payload),
                },
                None => panic!("retiring shard whose worker already died"),
            }
        }
        self.n_shards = target;
        self.epoch = Epoch::Stable { ring };
    }

    // ------------------------------------------------------------------
    // Two-tier neighborhoods: the global-snapshot refresh epoch

    /// Rebuild the frozen global neighbor tier and swap it into every
    /// worker, blocking until done (with [`DEFAULT_REFRESH_BATCH`]
    /// users per export batch). This is what turns the fleet's Eq. 11
    /// neighborhoods from *in-shard approximations* into *two-tier
    /// full-population* neighborhoods: each worker keeps writing only
    /// its own users (the fresh local delta), and merges this snapshot
    /// for everyone else.
    ///
    /// The collection rides the same worker queues as events
    /// ([`RealtimeEngine::export_user`] blobs, no evictions), one
    /// bounded batch per [`ShardedEngine::refresh_step`] — workers keep
    /// draining their queues throughout, and the final swap is one
    /// `Arc` store per worker, so ingestion never observes a
    /// stop-the-world gap. For interleaving your own ingestion between
    /// batches (the no-stall deployment shape, mirroring
    /// [`ShardedEngine::begin_reshard`] /
    /// [`ShardedEngine::reshard_step`]), drive
    /// [`ShardedEngine::begin_refresh`] /
    /// [`ShardedEngine::refresh_step`] yourself — this method is just
    /// that loop.
    ///
    /// Calling it after **every** event makes an N-shard fleet's
    /// Eq. 11 neighbor sets identical to the N=1 plain engine's on the
    /// same stream (pinned by `tests/serving_api.rs`); real deployments
    /// pick a cadence and pay bounded staleness instead
    /// (`docs/OPERATIONS.md`).
    pub fn refresh_global_tier(&mut self) -> Result<RefreshReport, ServingError> {
        self.begin_refresh(DEFAULT_REFRESH_BATCH)?;
        while self.refresh.is_some() {
            self.refresh_step()?;
        }
        Ok(RefreshReport {
            epoch: self.tier_epoch,
            users: self.n_users as u64,
            batches: self.last_refresh_batches,
            duration_ms: self.last_refresh_ms,
            delta: false,
        })
    }

    /// Install an externally supplied global neighbor snapshot into
    /// every worker — the load side of
    /// [`sccf_core::GlobalNeighborSnapshot::encode`]: persist a tier
    /// next to an engine snapshot, and after a
    /// [`ShardedEngine::restore`] (which always comes up tier-less)
    /// re-arm two-tier serving immediately instead of paying a full
    /// re-export [`ShardedEngine::refresh_global_tier`]. The snapshot's
    /// staleness clock restarts at install (`events_since_refresh`
    /// counts from here); its epoch also fast-forwards this fleet's
    /// epoch counter so a later refresh strictly increases it.
    ///
    /// Rejects — without touching any worker — a snapshot whose
    /// population or vector dimension does not match this fleet, or an
    /// install while a refresh is collecting.
    pub fn install_global_tier(
        &mut self,
        snapshot: GlobalNeighborSnapshot,
    ) -> Result<(), ServingError> {
        if self.refresh.is_some() {
            return Err(ServingError::InvalidConfig(
                "cannot install a global tier while a refresh is collecting".to_string(),
            ));
        }
        if snapshot.n_users() != self.n_users {
            return Err(ServingError::InvalidConfig(format!(
                "global tier covers {} users but this fleet serves {}",
                snapshot.n_users(),
                self.n_users
            )));
        }
        let dim = self.shared.model().dim();
        let index_dim = self
            .shared
            .config()
            .profiles
            .as_ref()
            .map_or(dim, |p| p.augmented_dim(dim));
        if snapshot.index().dim() != index_dim {
            return Err(ServingError::InvalidConfig(format!(
                "global tier vectors are {}-dimensional but this fleet indexes {index_dim}",
                snapshot.index().dim()
            )));
        }
        // Frozen windows feed Eq. 12 accumulators indexed by item id —
        // a corrupt-but-decodable artifact must be rejected here, not
        // panic a worker at query time (same discipline as
        // `RealtimeEngine::import_user`'s history validation).
        if let Some(item) = snapshot.max_window_item() {
            if item as usize >= self.n_items {
                return Err(ServingError::UnknownItem {
                    item,
                    n_items: self.n_items,
                });
            }
        }
        let snapshot = Arc::new(snapshot);
        for s in 0..self.txs.len() {
            self.send(
                s,
                ShardMsg::TierInstall {
                    tier: Some(Arc::clone(&snapshot)),
                },
            );
        }
        self.tier_epoch = self.tier_epoch.max(NeighborSource::epoch(&*snapshot));
        self.tier_search_ns =
            measure_tier_search_ns(&snapshot, self.shared.config().user_based.beta);
        self.current_tier = Some(snapshot);
        // The artifact's provenance is unknown: the fleet's tier-dirty
        // sets say which users changed since *their* last export, not
        // since this snapshot was built. A delta on top of it could
        // ship stale rows, so require one full refresh first.
        self.tier_delta_ok = false;
        self.events_at_refresh = self.events_routed;
        Ok(())
    }

    /// The currently installed global snapshot, if any — encode it
    /// ([`sccf_core::GlobalNeighborSnapshot::encode`]) to persist the
    /// tier alongside [`ShardedEngine::snapshot`], and re-arm a
    /// restored fleet with [`ShardedEngine::install_global_tier`].
    pub fn global_tier(&self) -> Option<&Arc<GlobalNeighborSnapshot>> {
        self.current_tier.as_ref()
    }

    /// Start an incremental global-tier refresh without collecting
    /// anyone yet. Drive [`ShardedEngine::refresh_step`] until it
    /// reports 0 remaining; each step blocks the router for one
    /// `batch`-user export round trip at most, so — like the reshard
    /// handoff — the batch size bounds the worst-case ingestion pause.
    ///
    /// Errors — leaving the fleet untouched — on `batch == 0`, if a
    /// refresh is already collecting, or if a live reshard is in
    /// flight (the ownership plan would shift under the collection;
    /// finish the migration first — and symmetrically,
    /// [`ShardedEngine::begin_reshard`] rejects while a refresh is
    /// collecting, so the two epochs never interleave).
    pub fn begin_refresh(&mut self, batch: usize) -> Result<(), ServingError> {
        if batch == 0 {
            return Err(ServingError::InvalidConfig(
                "refresh batch must be ≥ 1".to_string(),
            ));
        }
        if self.refresh.is_some() {
            return Err(ServingError::InvalidConfig(
                "a tier refresh is already in progress; drive refresh_step to completion first"
                    .to_string(),
            ));
        }
        if self.is_migrating() {
            return Err(ServingError::InvalidConfig(
                "cannot refresh the global tier during a live reshard; \
                 finish the migration first"
                    .to_string(),
            ));
        }
        if matches!(&self.epoch, Epoch::Stable { ring } if ring.is_slice()) {
            return Err(ServingError::InvalidConfig(
                "a slice engine owns only its window of the population; the whole-population \
                 tier refresh is orchestrated at the fleet layer (collect exports from every \
                 process, then install_global_tier on each)"
                    .to_string(),
            ));
        }
        self.refresh = Some(RefreshEpoch {
            plan: None,
            cursor: 0,
            batch,
            entries: Vec::with_capacity(self.n_users),
            batches: 0,
            started: Stopwatch::start(),
        });
        Ok(())
    }

    /// Rebuild the global tier by *delta*: re-export only the users
    /// dirtied since their last tier export and splice their rows into
    /// the installed snapshot, leaving every clean user's row
    /// byte-identical. Blocks until done (the
    /// [`ShardedEngine::begin_delta_refresh`] /
    /// [`ShardedEngine::refresh_step`] loop, like
    /// [`ShardedEngine::refresh_global_tier`]). The result is
    /// **bit-identical** to a full refresh at the same watermark
    /// (pinned by `tests/serving_api.rs`) — clean users would re-export
    /// identical state — but the expensive per-user export + inference
    /// work is O(dirty), not O(population): refresh cost tracks the
    /// write rate, which is what makes a staleness-driven refresh
    /// policy affordable under diurnal load
    /// (`sccf_serving::control`, `docs/OPERATIONS.md`).
    pub fn refresh_global_tier_delta(&mut self) -> Result<RefreshReport, ServingError> {
        self.begin_delta_refresh(DEFAULT_REFRESH_BATCH)?;
        let users = self
            .refresh
            .as_ref()
            .map_or(0, |r| r.plan.as_ref().map_or(0, |p| p.len() as u64));
        while self.refresh.is_some() {
            self.refresh_step()?;
        }
        Ok(RefreshReport {
            epoch: self.tier_epoch,
            users,
            batches: self.last_refresh_batches,
            duration_ms: self.last_refresh_ms,
            delta: true,
        })
    }

    /// Start an incremental *delta* tier refresh: collect every
    /// shard's tier-dirty set (riding the FIFO queues, so it reflects
    /// every event routed before this call) as the export plan, then
    /// drive [`ShardedEngine::refresh_step`] exactly like a full
    /// refresh. An empty dirty set still completes an epoch (one
    /// no-op step) and installs a snapshot differing from the previous
    /// one only in its epoch stamp — keeping the bit-identity with a
    /// full refresh at the same watermark, which also bumps the epoch.
    ///
    /// On top of [`ShardedEngine::begin_refresh`]'s guards, errors if
    /// no tier is installed or the installed tier did not come from
    /// this fleet's own refresh pipeline
    /// ([`crate::api::NeighborhoodStats::delta_ready`] is false — e.g.
    /// right after [`ShardedEngine::install_global_tier`] of a
    /// persisted artifact, whose staleness relative to the live dirty
    /// sets is unknowable): run one full refresh first.
    pub fn begin_delta_refresh(&mut self, batch: usize) -> Result<(), ServingError> {
        if self.current_tier.is_none() || !self.tier_delta_ok {
            return Err(ServingError::InvalidConfig(
                "delta refresh needs a tier built by this fleet's own refresh pipeline; \
                 run refresh_global_tier (full) first"
                    .to_string(),
            ));
        }
        self.begin_refresh(batch)?;
        // The peek rides the queues behind every routed event; each
        // user's mark is cleared later, when its export is collected.
        let mut plan: Vec<u32> = self
            .fan_out(|reply| ShardMsg::TierDirty { reply })
            .into_iter()
            .flatten()
            .collect();
        plan.sort_unstable();
        let refresh = self.refresh.as_mut().expect("refresh just begun");
        refresh.entries = Vec::with_capacity(plan.len());
        refresh.plan = Some(plan);
        Ok(())
    }

    /// Collect the next batch of user exports; on the last batch,
    /// build the new [`GlobalNeighborSnapshot`] and broadcast it to
    /// every worker. Returns how many users still await export
    /// (0 = the refresh completed on this call, or none was running).
    pub fn refresh_step(&mut self) -> Result<usize, ServingError> {
        let Some(refresh) = &mut self.refresh else {
            return Ok(0);
        };
        let total = refresh.plan.as_ref().map_or(self.n_users, Vec::len);
        let end = refresh.cursor.saturating_add(refresh.batch).min(total);
        // Group this batch by owning shard (stable epoch — refresh and
        // migration are mutually exclusive).
        let mut groups: Vec<(usize, Vec<u32>)> = Vec::new();
        let mut batch_users: Vec<u32> = Vec::with_capacity(end - refresh.cursor);
        for i in refresh.cursor..end {
            let u = match &refresh.plan {
                Some(plan) => plan[i],
                None => i as u32,
            };
            batch_users.push(u);
            let s = self.epoch.route(u);
            match groups.iter_mut().find(|(g, _)| *g == s) {
                Some((_, v)) => v.push(u),
                None => groups.push((s, vec![u])),
            }
        }
        refresh.cursor = end;
        refresh.batches += 1;
        // Fan the exports out so shards infer in parallel, then collect.
        // Each export is acknowledged against the shard's tier-dirty
        // set as it happens: the blob feeds the snapshot being built,
        // so the user is clean relative to it — and any event arriving
        // after the export re-marks the user for the next delta.
        let mut waves = Vec::with_capacity(groups.len());
        for (s, users) in groups {
            let (reply, rx) = bounded(1);
            self.send(
                s,
                ShardMsg::TierExport {
                    users,
                    clear_dirty: true,
                    reply,
                },
            );
            waves.push((s, rx));
        }
        for (s, rx) in waves {
            let blobs = match rx.recv() {
                Ok(b) => b,
                Err(_) => self.propagate_worker_death(s),
            };
            let refresh = self.refresh.as_mut().expect("refresh in flight");
            for blob in &blobs {
                match decode_user_state(blob) {
                    Ok(entry) => refresh.entries.push(entry),
                    // A worker produced an undecodable export: abort
                    // the whole epoch before surfacing the error —
                    // nothing was installed, the previous tier (if
                    // any) keeps serving, and begin_refresh /
                    // begin_reshard are free again. Completing with a
                    // hole would silently ship a snapshot missing this
                    // batch's users. The exports this epoch already
                    // acknowledged fed a snapshot that will never
                    // install, so their tier-dirty marks must come
                    // back — or the next delta would ship stale rows.
                    Err(e) => {
                        let refresh = self.refresh.take().expect("refresh in flight");
                        let mut stale: Vec<u32> =
                            refresh.entries.iter().map(|(u, _, _)| *u).collect();
                        stale.extend(&batch_users);
                        self.remark_tier_dirty(stale);
                        return Err(e.into());
                    }
                }
            }
        }
        let remaining = total - end;
        if remaining == 0 {
            let refresh = self.refresh.take().expect("refresh in flight");
            let delta_users = refresh.plan.as_ref().map(|p| p.len() as u64);
            self.tier_epoch += 1;
            let snapshot = match delta_users {
                // Full rebuild from the complete re-export.
                None => Arc::new(self.shared.build_neighbor_snapshot(
                    self.tier_epoch,
                    self.n_users,
                    refresh.entries,
                )),
                // Delta: splice the dirty rows into the installed
                // snapshot — bit-identical to the full rebuild at this
                // watermark, because every unexported user's state is
                // unchanged since the previous export by construction.
                Some(_) => {
                    let prev = self
                        .current_tier
                        .as_ref()
                        .expect("begin_delta_refresh requires an installed tier");
                    Arc::new(self.shared.build_neighbor_snapshot_delta(
                        prev,
                        self.tier_epoch,
                        refresh.entries,
                    ))
                }
            };
            for s in 0..self.txs.len() {
                self.send(
                    s,
                    ShardMsg::TierInstall {
                        tier: Some(Arc::clone(&snapshot)),
                    },
                );
            }
            self.tier_search_ns =
                measure_tier_search_ns(&snapshot, self.shared.config().user_based.beta);
            self.current_tier = Some(snapshot);
            self.tier_delta_ok = true;
            self.events_at_refresh = self.events_routed;
            self.last_refresh_ms = refresh.started.elapsed_ms();
            self.last_refresh_batches = refresh.batches;
            self.last_refresh_users = delta_users.unwrap_or(self.n_users as u64);
        }
        Ok(remaining)
    }

    /// Route tier-dirty re-marks to their owning shards — the repair
    /// half of an aborted refresh epoch (see
    /// [`ShardedEngine::refresh_step`]'s abort path).
    fn remark_tier_dirty(&mut self, users: Vec<u32>) {
        let mut groups: Vec<(usize, Vec<u32>)> = Vec::new();
        for u in users {
            let s = self.epoch.route(u);
            match groups.iter_mut().find(|(g, _)| *g == s) {
                Some((_, v)) => v.push(u),
                None => groups.push((s, vec![u])),
            }
        }
        for (s, users) in groups {
            self.send(s, ShardMsg::TierMark { users });
        }
    }

    /// Disable the two-tier path: every worker drops its frozen tier
    /// and Eq. 11 returns to the shard-local scan — bit-identical to a
    /// fleet that never refreshed (pinned by `tests/sharded.rs`). The
    /// epoch counter is not reset; a later refresh continues it.
    pub fn clear_global_tier(&mut self) -> Result<(), ServingError> {
        if self.refresh.is_some() {
            return Err(ServingError::InvalidConfig(
                "cannot clear the global tier while a refresh is collecting".to_string(),
            ));
        }
        for s in 0..self.txs.len() {
            self.send(s, ShardMsg::TierInstall { tier: None });
        }
        self.current_tier = None;
        self.tier_delta_ok = false;
        self.tier_search_ns = 0.0;
        Ok(())
    }

    /// The user's current merged Eq. 11 neighborhood (global ids),
    /// computed on her owning shard behind her queued events —
    /// diagnostics for the cross-shard equivalence tests and the
    /// quality bench.
    pub fn neighbors_of(&mut self, user: u32) -> Result<Vec<Scored>, ServingError> {
        let s = self.check_user(user)?;
        let (reply, rx) = bounded(1);
        self.send(s, ShardMsg::Neighbors { user, reply });
        match rx.recv() {
            Ok(res) => res,
            Err(_) => self.propagate_worker_death(s),
        }
    }

    /// Export the listed users' state blobs
    /// ([`sccf_core::encode_user_state`] format) **without evicting**
    /// — each shard keeps serving its users; the caller reads a
    /// consistent copy behind every event queued before this call.
    /// Blobs come back in the order of `users`. This is the
    /// building block of the *fleet-level* tier refresh: the network
    /// router collects every process's window, builds one
    /// whole-population [`GlobalNeighborSnapshot`], and installs it
    /// back via [`ShardedEngine::install_global_tier`].
    ///
    /// Rejects out-of-population ids with
    /// [`ServingError::UnknownUser`] and — on a slice engine — users
    /// outside this process's window with [`ServingError::NotOwned`],
    /// before exporting anything.
    pub fn export_user_states(&mut self, users: &[u32]) -> Result<Vec<Vec<u8>>, ServingError> {
        // Validate everything first: an error means nothing was exported.
        let mut groups: Vec<(usize, Vec<u32>, Vec<usize>)> = Vec::new();
        for (pos, &u) in users.iter().enumerate() {
            let s = self.check_user(u)?;
            match groups.iter_mut().find(|(g, _, _)| *g == s) {
                Some((_, v, p)) => {
                    v.push(u);
                    p.push(pos);
                }
                None => groups.push((s, vec![u], vec![pos])),
            }
        }
        // Fan the exports out so shards work in parallel, then
        // reassemble in input order.
        let mut waves = Vec::with_capacity(groups.len());
        for (s, batch, positions) in groups {
            let (reply, rx) = bounded(1);
            self.send(
                s,
                ShardMsg::TierExport {
                    users: batch,
                    // A diagnostic/fleet-level export: nothing is
                    // installed locally, so the local delta working
                    // set must keep its marks.
                    clear_dirty: false,
                    reply,
                },
            );
            waves.push((s, positions, rx));
        }
        let mut out: Vec<Vec<u8>> = vec![Vec::new(); users.len()];
        for (s, positions, rx) in waves {
            let blobs = match rx.recv() {
                Ok(b) => b,
                Err(_) => self.propagate_worker_death(s),
            };
            debug_assert_eq!(blobs.len(), positions.len());
            for (pos, blob) in positions.into_iter().zip(blobs) {
                out[pos] = blob;
            }
        }
        Ok(out)
    }

    /// Deprecated infallible form of
    /// [`ServingApi::try_ingest`].
    #[deprecated(note = "use `ServingApi::try_ingest`; this wrapper panics on invalid ids")]
    pub fn ingest(&mut self, user: u32, item: u32) {
        if let Err(e) = self.try_ingest(user, item) {
            panic!("ingest: {e}");
        }
    }

    /// Deprecated infallible stream feed; use
    /// [`crate::stream::replay_into`] (which drives any
    /// [`ServingApi`] engine) instead.
    #[deprecated(note = "use `stream::replay_into` / `ServingApi::ingest_batch`")]
    pub fn ingest_stream(&mut self, events: &[StreamEvent]) {
        for e in events {
            if let Err(err) = self.try_ingest(e.user, e.item) {
                panic!("ingest_stream: {err}");
            }
        }
    }

    /// Deprecated infallible form of
    /// [`ServingApi::try_recommend`]
    /// with the default query.
    #[deprecated(note = "use `ServingApi::try_recommend`; this wrapper panics on invalid ids")]
    pub fn recommend(&mut self, user: u32, n: usize) -> Vec<Scored> {
        match self.try_recommend(user, &RecQuery::top(n)) {
            Ok(res) => res.items,
            Err(e) => panic!("recommend: {e}"),
        }
    }

    /// Deprecated alias of
    /// [`ServingApi::flush`].
    #[deprecated(note = "use `ServingApi::flush`")]
    pub fn drain(&mut self) {
        self.flush().expect("flush cannot fail");
    }

    /// Drain every shard and serialize the merged per-user histories
    /// into one whole-population artifact — the same format as
    /// [`RealtimeEngine::snapshot`], so any engine shape restores it:
    /// [`RealtimeEngine::restore`] (N→1 to a plain engine) or
    /// [`ShardedEngine::restore`] with a different shard count (offline
    /// resharding N→M). The export rides each shard's FIFO queue, so it
    /// acts as its own barrier: every event ingested before this call
    /// is in the artifact.
    ///
    /// Rejects with [`ServingError::EpochInFlight`] while a live
    /// reshard or a tier refresh is running: mid-epoch the fleet's
    /// layout is transitional (users mid-handoff, a half-collected
    /// tier), and an artifact cut there is a state no uninterrupted
    /// engine ever held — the same reason `begin_reshard` and
    /// `begin_refresh` reject each other. Finish or step the epoch to
    /// completion first.
    pub fn try_snapshot(&mut self) -> Result<Vec<u8>, ServingError> {
        self.check_no_epoch("snapshot")?;
        let exports = self.fan_out(|reply| ShardMsg::Export { reply });
        let mut full: Vec<Vec<u32>> = vec![Vec::new(); self.n_users];
        for (user, history) in exports.into_iter().flatten() {
            full[user as usize] = history;
        }
        Ok(encode_histories(&full))
    }

    /// Deprecated infallible form of [`ShardedEngine::try_snapshot`]
    /// (panics where the typed path reports an in-flight epoch).
    #[deprecated(note = "use `try_snapshot`; this wrapper panics during a reshard or refresh")]
    pub fn snapshot(&mut self) -> Vec<u8> {
        self.try_snapshot()
            .unwrap_or_else(|e| panic!("snapshot: {e}"))
    }

    /// Typed rejection shared by the whole-engine operations that must
    /// not race an incremental epoch.
    fn check_no_epoch(&self, requested: &'static str) -> Result<(), ServingError> {
        if self.is_migrating() {
            return Err(ServingError::EpochInFlight {
                requested,
                in_flight: "reshard",
            });
        }
        if self.refresh.is_some() {
            return Err(ServingError::EpochInFlight {
                requested,
                in_flight: "refresh",
            });
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Durability: per-shard WAL + incremental checkpoints

    /// Arm the durability layer: every shard worker gets a
    /// [`WalWriter`] appending each ingested event (before applying
    /// it) to `dir/wal-{shard}.log`, and an epoch-0 *full* checkpoint
    /// of the current state is written atomically. From here on a
    /// crash loses at most the unsynced WAL tail (bounded by
    /// `cfg.fsync_every` records per shard); everything acknowledged
    /// and synced is reconstructed bit-identically by
    /// [`ShardedEngine::recover`].
    ///
    /// Rejects a directory that already holds WAL or checkpoint files
    /// — that state belongs to a previous life of some fleet; recover
    /// from it (or point at a fresh directory) instead of silently
    /// interleaving two histories.
    pub fn enable_durability(&mut self, cfg: DurabilityConfig) -> Result<(), ServingError> {
        if self.durability.is_some() {
            return Err(ServingError::Durability(
                "durability is already enabled".to_string(),
            ));
        }
        self.check_no_epoch("enable_durability")?;
        if cfg.fsync_every == 0 {
            return Err(ServingError::InvalidConfig(
                "fsync_every must be ≥ 1".to_string(),
            ));
        }
        std::fs::create_dir_all(&cfg.dir).map_err(wal::WalError::from)?;
        if !wal::list_wal_files(&cfg.dir)?.is_empty()
            || !wal::list_checkpoints(&cfg.dir)?.is_empty()
        {
            return Err(ServingError::Durability(format!(
                "{} already holds durability state; use ShardedEngine::recover \
                 (or point at an empty directory)",
                cfg.dir.display()
            )));
        }
        for s in 0..self.txs.len() {
            let writer = WalWriter::create(&wal::wal_path(&cfg.dir, s), cfg.fsync_every)?;
            self.send(
                s,
                ShardMsg::Durability {
                    wal: writer,
                    dirty: Vec::new(),
                },
            );
        }
        // Epoch 0: the full baseline every later incremental diff
        // stacks on. The export rides the FIFO queues, so it reflects
        // exactly the events routed so far — `watermark`.
        let watermark = self.events_routed;
        let blobs: Vec<Vec<u8>> = self
            .fan_out(|reply| ShardMsg::CheckpointExport { full: true, reply })
            .into_iter()
            .flatten()
            .collect();
        let bytes = wal::write_checkpoint_atomic(&cfg.dir, 0, watermark, &blobs)?;
        self.durability = Some(DurabilityState {
            cfg,
            checkpoints: 1,
            watermark,
            last_checkpoint_bytes: bytes,
            events_at_checkpoint: watermark,
        });
        Ok(())
    }

    /// Whether durability is armed, and where.
    pub fn durability_dir(&self) -> Option<&Path> {
        self.durability.as_ref().map(|st| st.cfg.dir.as_path())
    }

    /// Write the next *incremental* checkpoint: every shard exports
    /// only the users dirtied since the previous checkpoint (events
    /// ingested or migrations received), and the file is written
    /// atomically (temp + fsync + rename + dir fsync). Returns the new
    /// checkpoint epoch.
    ///
    /// The watermark is captured on the router before the export fans
    /// out; because the router is the single writer of every queue and
    /// queues are FIFO, the export reflects exactly the events with
    /// `seq <= watermark` — a consistent cut with no stop-the-world
    /// pause. Rejects mid-reshard / mid-refresh with
    /// [`ServingError::EpochInFlight`] (ownership must not shift under
    /// the export), and when durability was never enabled.
    ///
    /// After the checkpoint lands, every shard **rotates its WAL**
    /// ([`WalWriter::rotate`]): the active segment is sealed (every
    /// record in it has `seq <=` the new watermark — the router routed
    /// nothing between the export and the rotation), and sealed
    /// segments covered by the *previous* watermark are pruned. WAL
    /// disk therefore stays bounded by roughly one checkpoint interval
    /// per shard; the extra interval of slack is what recovery's
    /// trailing-corrupt-checkpoint fallback replays from.
    pub fn checkpoint(&mut self) -> Result<u64, ServingError> {
        if self.durability.is_none() {
            return Err(ServingError::Durability(
                "durability is not enabled".to_string(),
            ));
        }
        self.check_no_epoch("checkpoint")?;
        let prev_watermark = self.durability.as_ref().expect("checked above").watermark;
        let watermark = self.events_routed;
        let blobs: Vec<Vec<u8>> = self
            .fan_out(|reply| ShardMsg::CheckpointExport { full: false, reply })
            .into_iter()
            .flatten()
            .collect();
        let st = self.durability.as_mut().expect("checked above");
        let epoch = st.checkpoints;
        let bytes = wal::write_checkpoint_atomic(&st.cfg.dir, epoch, watermark, &blobs)?;
        st.checkpoints += 1;
        st.watermark = watermark;
        st.last_checkpoint_bytes = bytes;
        st.events_at_checkpoint = watermark;
        self.fan_out(|reply| ShardMsg::WalRotate {
            seal_upto: watermark,
            prune_upto: prev_watermark,
            reply,
        });
        Ok(epoch)
    }

    /// Force every shard's WAL onto stable storage now, regardless of
    /// the `fsync_every` cadence, and return the per-shard statuses
    /// (shard order). After this returns, every acknowledged event is
    /// crash-durable.
    pub fn wal_sync(&mut self) -> Result<Vec<WalStatus>, ServingError> {
        if self.durability.is_none() {
            return Err(ServingError::Durability(
                "durability is not enabled".to_string(),
            ));
        }
        Ok(self
            .fan_out(|reply| ShardMsg::Wal { sync: true, reply })
            .into_iter()
            .flatten()
            .collect())
    }

    /// Per-shard WAL statuses (shard order) without forcing a sync —
    /// `len - synced_len` is each shard's current crash loss window in
    /// bytes. Rides the queues, so it reflects every event routed
    /// before the call.
    pub fn wal_status(&mut self) -> Result<Vec<WalStatus>, ServingError> {
        if self.durability.is_none() {
            return Err(ServingError::Durability(
                "durability is not enabled".to_string(),
            ));
        }
        Ok(self
            .fan_out(|reply| ShardMsg::Wal { sync: false, reply })
            .into_iter()
            .flatten()
            .collect())
    }

    /// Auto-checkpoint trigger, called after each routed ingest. Defers
    /// (does not fail) while an epoch is in flight; the next ingest
    /// after the epoch clears fires it.
    fn maybe_auto_checkpoint(&mut self) -> Result<(), ServingError> {
        let due = match &self.durability {
            Some(st) => {
                st.cfg.checkpoint_every_events > 0
                    && self.events_routed - st.events_at_checkpoint
                        >= st.cfg.checkpoint_every_events
            }
            None => false,
        };
        if due && !self.is_migrating() && self.refresh.is_none() {
            self.checkpoint()?;
        }
        Ok(())
    }

    /// Rebuild a fleet from a durability directory: load the
    /// checkpoint chain (newest valid contiguous prefix, overlaying
    /// each user's newest blob), scan every WAL file (truncating torn
    /// or corrupt tails at the last whole valid frame — a bad frame is
    /// never partially applied), replay the surviving records with
    /// `seq > watermark` in global sequence order, and come up with
    /// durability re-armed on the same directory.
    ///
    /// The result is **bit-identical** — snapshot bytes and
    /// recommendation score bits — to a fleet that never crashed and
    /// was fed the same acknowledged stream (checkpoint watermark +
    /// replayed records); `tests/chaos.rs` pins this under seeded
    /// crash/corruption schedules. `cfg.n_shards` is free to differ
    /// from the crashed fleet's: the artifact formats are
    /// whole-population, so recovery doubles as offline resharding.
    ///
    /// A corrupt checkpoint *inside* the chain is a hard error (users
    /// whose only export lives there would silently lose state); a
    /// corrupt *trailing* checkpoint — the shape a crash during a
    /// checkpoint write leaves — is skipped, falling back to the
    /// previous epoch plus deeper WAL replay.
    pub fn recover(
        sccf: Sccf<M>,
        cfg: ShardedConfig,
        durability: DurabilityConfig,
    ) -> Result<(Self, RecoveryReport), ServingError> {
        Self::recover_impl(sccf, cfg, durability, None)
    }

    /// Point-in-time restore: like [`ShardedEngine::recover`], but stop
    /// at global sequence number `target` — load only checkpoints whose
    /// watermark is `<= target` and replay only WAL records with
    /// `seq <= target`. The report's `stopped_at` records the highest
    /// sequence actually applied (it can be below `target` when the
    /// stream never reached it).
    ///
    /// The restored fleet comes up with durability **disarmed**: its
    /// state deliberately predates records still on disk, so arming it
    /// would assign new sequence numbers that collide with the
    /// surviving suffix. This is the inspection / debugging shape
    /// ("what did the fleet serve as of seq N?") — point it at a fresh
    /// directory via [`ShardedEngine::enable_durability`] to make the
    /// rewound state durable in its own right. Errors if even the
    /// epoch-0 checkpoint lies past `target` (nothing on disk is old
    /// enough to rewind to).
    pub fn recover_at(
        sccf: Sccf<M>,
        cfg: ShardedConfig,
        durability: DurabilityConfig,
        target: u64,
    ) -> Result<(Self, RecoveryReport), ServingError> {
        Self::recover_impl(sccf, cfg, durability, Some(target))
    }

    fn recover_impl(
        sccf: Sccf<M>,
        cfg: ShardedConfig,
        durability: DurabilityConfig,
        target: Option<u64>,
    ) -> Result<(Self, RecoveryReport), ServingError> {
        if durability.fsync_every == 0 {
            return Err(ServingError::InvalidConfig(
                "fsync_every must be ≥ 1".to_string(),
            ));
        }
        let dir = durability.dir.clone();
        let listed = wal::list_checkpoints(&dir)?;
        if listed.is_empty() {
            return Err(ServingError::Durability(format!(
                "{} holds no checkpoint; enable_durability writes epoch 0 before any crash \
                 can need recovery",
                dir.display()
            )));
        }
        // The usable chain is the contiguous valid prefix 0..=k. A gap
        // or a corrupt file mid-chain loses users silently — hard
        // error. A corrupt *last* file is the crash-during-write shape
        // — skip it and replay deeper instead.
        let mut chain: Vec<wal::Checkpoint> = Vec::new();
        let mut trailing_checkpoint_skipped = false;
        for (i, (epoch, path)) in listed.iter().enumerate() {
            if *epoch != i as u64 {
                return Err(ServingError::Durability(format!(
                    "checkpoint chain has a hole: expected epoch {i}, found {epoch}"
                )));
            }
            let decoded = std::fs::read(path)
                .map_err(wal::WalError::from)
                .and_then(|b| wal::decode_checkpoint(&b));
            match decoded {
                Ok(ck) if ck.epoch == *epoch => chain.push(ck),
                Ok(ck) => {
                    return Err(ServingError::Durability(format!(
                        "checkpoint file {} declares epoch {} (name/content mismatch)",
                        path.display(),
                        ck.epoch
                    )));
                }
                Err(e) if i + 1 == listed.len() && i > 0 => {
                    trailing_checkpoint_skipped = true;
                    let _ = e;
                    break;
                }
                Err(e) => {
                    return Err(ServingError::Durability(format!(
                        "checkpoint epoch {epoch} is corrupt mid-chain: {e}"
                    )));
                }
            }
        }
        // Point-in-time: use only the chain prefix consistent with the
        // target (a checkpoint past it already contains state the
        // rewind must not see).
        if let Some(t) = target {
            let keep = chain.partition_point(|ck| ck.watermark <= t);
            if keep == 0 {
                return Err(ServingError::Durability(format!(
                    "cannot restore to seq {t}: the epoch-0 checkpoint's watermark is already {}",
                    chain[0].watermark
                )));
            }
            if keep < chain.len() {
                chain.truncate(keep);
                trailing_checkpoint_skipped = false;
            }
        }
        let newest = chain.last().expect("non-empty chain");
        let watermark = newest.watermark;
        let last_checkpoint_bytes = wal::checkpoint_path(&dir, newest.epoch)
            .metadata()
            .map(|m| m.len())
            .unwrap_or(0);
        let checkpoints_loaded = chain.len();

        // Overlay newest-blob-per-user across the chain (ascending
        // epochs: later writes win).
        let n_users = sccf.user_count();
        let mut histories: Vec<Vec<u32>> = vec![Vec::new(); n_users];
        let mut seen = vec![false; n_users];
        for ck in &chain {
            for blob in &ck.blobs {
                let (user, _rep, history) = decode_user_state(blob)?;
                if user as usize >= n_users {
                    return Err(ServingError::Durability(format!(
                        "checkpoint blob for user {user} exceeds the population of {n_users}"
                    )));
                }
                seen[user as usize] = true;
                histories[user as usize] = history;
            }
        }
        let users_restored = seen.iter().filter(|&&s| s).count();

        // Scan every WAL file, repairing tails in place; then replay
        // everything past the watermark in global sequence order.
        let files = wal::list_wal_files(&dir)?;
        let mut all_records: Vec<WalRecord> = Vec::new();
        let mut torn_files = 0usize;
        let mut truncated_bytes = 0u64;
        for f in &files {
            let (records, tail, cut) = wal::read_and_repair_wal(f)?;
            if tail != WalTail::Clean {
                torn_files += 1;
                truncated_bytes += cut;
            }
            all_records.extend(records);
        }
        let wal_records = all_records.len();
        let max_seq = all_records
            .iter()
            .map(|r| r.seq)
            .max()
            .unwrap_or(0)
            .max(watermark);
        let mut replayed: Vec<WalRecord> = all_records
            .into_iter()
            .filter(|r| r.seq > watermark && target.is_none_or(|t| r.seq <= t))
            .collect();
        replayed.sort_by_key(|r| r.seq);
        let stopped_at = target.map(|_| replayed.last().map_or(watermark, |r| r.seq));
        for r in &replayed {
            if r.user as usize >= n_users {
                return Err(ServingError::Durability(format!(
                    "wal record seq {} names user {} outside the population of {n_users}",
                    r.seq, r.user
                )));
            }
            histories[r.user as usize].push(r.item);
        }

        // Histories fully reconstructed: build the fleet (item-range
        // validation happens in try_new), then re-arm durability —
        // except for a point-in-time restore, whose state deliberately
        // predates records still on disk (see `recover_at`).
        let mut engine = Self::try_new(sccf, histories, cfg)?;
        if let Some(stopped) = stopped_at {
            engine.events_routed = stopped;
        } else {
            engine.events_routed = max_seq;
            for s in 0..engine.txs.len() {
                let path = wal::wal_path(&dir, s);
                let writer = if path.exists() {
                    WalWriter::reopen(&path, durability.fsync_every)?
                } else {
                    WalWriter::create(&path, durability.fsync_every)?
                };
                // Replayed users must land in the next incremental
                // checkpoint — their newest durable blob predates the
                // replay.
                let dirty: Vec<u32> = replayed
                    .iter()
                    .filter(|r| engine.epoch.route(r.user) == s)
                    .map(|r| r.user)
                    .collect();
                engine.send(s, ShardMsg::Durability { wal: writer, dirty });
            }
            let replay_debt = replayed.len() as u64;
            engine.durability = Some(DurabilityState {
                cfg: durability,
                checkpoints: checkpoints_loaded as u64,
                watermark,
                last_checkpoint_bytes,
                events_at_checkpoint: max_seq - replay_debt,
            });
        }
        let report = RecoveryReport {
            checkpoints_loaded,
            trailing_checkpoint_skipped,
            watermark,
            users_restored,
            wal_files: files.len(),
            wal_records,
            replayed,
            torn_files,
            truncated_bytes,
            max_seq,
            stopped_at,
        };
        Ok((engine, report))
    }

    /// Graceful shutdown: close every queue, let the workers drain what
    /// remains, join them, and return the per-shard reports (sorted by
    /// shard id; includes workers retired by earlier scale-in
    /// reshards, so event accounting is complete across the fleet's
    /// whole life).
    pub fn shutdown(self) -> Vec<ShardReport> {
        self.shutdown_into_engines().1
    }

    /// [`ShardedEngine::shutdown`], additionally handing back the shard
    /// engines (e.g. to snapshot their state or unwrap the model).
    /// Retired workers contribute reports but no engine — theirs were
    /// empty and dropped at retirement.
    pub fn shutdown_into_engines(self) -> (Vec<RealtimeEngine<M>>, Vec<ShardReport>) {
        drop(self.txs); // workers see the disconnect after draining
        let mut engines = Vec::with_capacity(self.handles.len());
        let mut reports = self.retired;
        for h in self.handles.into_iter().flatten() {
            let (engine, report) = match h.join() {
                Ok(out) => out,
                Err(payload) => std::panic::resume_unwind(payload),
            };
            engines.push(engine);
            reports.push(report);
        }
        reports.sort_by_key(|r| r.shard);
        (engines, reports)
    }
}

impl<M: InductiveUiModel + 'static> ServingApi for ShardedEngine<M> {
    /// Route to the owning shard and return (`Ok(None)` — processing is
    /// asynchronous). Blocks only when that shard's queue is full
    /// (backpressure). The infer + identify refresh happens on the
    /// worker thread.
    fn try_ingest(
        &mut self,
        user: u32,
        item: u32,
    ) -> Result<Option<sccf_core::EventTiming>, ServingError> {
        let s = self.check_user(user)?;
        self.check_item(item)?;
        self.events_routed += 1;
        let seq = self.events_routed;
        self.send(s, ShardMsg::Event { seq, user, item });
        self.maybe_auto_checkpoint()?;
        Ok(None)
    }

    fn ingest_batch(&mut self, events: &[(u32, u32)]) -> Result<u64, ServingError> {
        // Validate the whole batch before routing anything: an error
        // means no event was applied.
        for &(user, item) in events {
            self.check_user(user)?;
            self.check_item(item)?;
        }
        for &(user, item) in events {
            let s = self.epoch.route(user);
            self.events_routed += 1;
            let seq = self.events_routed;
            self.send(s, ShardMsg::Event { seq, user, item });
        }
        self.maybe_auto_checkpoint()?;
        Ok(events.len() as u64)
    }

    /// Computed on the owning shard with its reusable scratch. Queued
    /// behind the user's earlier events, so it observes everything this
    /// caller already ingested.
    fn try_recommend(&mut self, user: u32, query: &RecQuery) -> Result<RecResponse, ServingError> {
        let s = self.check_user(user)?;
        self.check_query(query)?;
        let (reply, rx) = bounded(1);
        self.send(
            s,
            ShardMsg::Recommend {
                user,
                query: Arc::new(query.clone()),
                reply,
            },
        );
        match rx.recv() {
            Ok(res) => res,
            // The worker died between accepting the request and replying.
            Err(_) => self.propagate_worker_death(s),
        }
    }

    /// All requests fan out before any reply is collected, so shards
    /// compute in parallel and the queue crossing cost is paid once per
    /// wave, not once per user.
    fn recommend_many(
        &mut self,
        users: &[u32],
        query: &RecQuery,
    ) -> Result<Vec<RecResponse>, ServingError> {
        for &user in users {
            self.check_user(user)?;
        }
        self.check_query(query)?;
        let query = Arc::new(query.clone());
        let mut pending = Vec::with_capacity(users.len());
        for &user in users {
            let s = self.epoch.route(user);
            let (reply, rx) = bounded(1);
            self.send(
                s,
                ShardMsg::Recommend {
                    user,
                    query: Arc::clone(&query),
                    reply,
                },
            );
            pending.push((s, rx));
        }
        pending
            .into_iter()
            .map(|(s, rx)| match rx.recv() {
                Ok(res) => res,
                Err(_) => self.propagate_worker_death(s),
            })
            .collect()
    }

    /// Barrier: block until every shard has processed everything queued
    /// so far. The barrier message fans out first, so shards drain in
    /// parallel.
    fn flush(&mut self) -> Result<(), ServingError> {
        self.fan_out(|reply| ShardMsg::Drain { reply });
        Ok(())
    }

    /// Live per-shard counters and timings, merged into the unified
    /// shape. Rides the queues, so it reflects every event ingested
    /// before the call. Includes retired workers' reports and the
    /// [`MigrationStats`] progress counters.
    fn serving_stats(&mut self) -> Result<ServingStats, ServingError> {
        let mut shards = self.fan_out(|reply| ShardMsg::Stats { reply });
        shards.extend(self.retired.iter().cloned());
        shards.sort_by_key(|r| r.shard);
        let mut stats = ServingStats::from_shards(shards);
        stats.migration = MigrationStats {
            in_progress: self.is_migrating(),
            migrated_users: self.migrated_users,
            pending_users: match &self.epoch {
                Epoch::Migrating { plan, cursor, .. } => (plan.len() - cursor) as u64,
                Epoch::Stable { .. } => 0,
            },
            batches: self.migration_batches,
        };
        stats.neighborhood = NeighborhoodStats {
            two_tier: self.current_tier.is_some(),
            epoch: self
                .current_tier
                .as_ref()
                .map_or(0, |t| NeighborSource::epoch(&**t)),
            users_covered: self
                .current_tier
                .as_ref()
                .map_or(0, |t| t.covered_users() as u64),
            events_since_refresh: if self.current_tier.is_some() {
                self.events_routed - self.events_at_refresh
            } else {
                0
            },
            last_refresh_ms: self.last_refresh_ms,
            refresh_in_progress: self.refresh.is_some(),
            tier_mode: self
                .current_tier
                .as_ref()
                .map_or(FrozenTierMode::Flat, |t| t.tier_mode()),
            tier_bytes: self
                .current_tier
                .as_ref()
                .map_or(0, |t| t.tier_bytes() as u64),
            tier_search_ns: self.tier_search_ns,
            last_refresh_users: self.last_refresh_users,
            delta_ready: self.tier_delta_ok,
        };
        stats.pressure = PressureStats {
            sends: self.sends,
            stalls: self.stalls,
            stall_ms: self.stall_ms,
            queue_capacity: self.queue_capacity as u64,
            peak_queue: self.peak_queue as u64,
        };
        // The high-water mark is per sampling window: each stats
        // sample starts a fresh window so occupancy reflects current
        // load, not the worst moment in history.
        self.peak_queue = 0;
        stats.durability = if self.durability.is_some() {
            let statuses: Vec<WalStatus> = self
                .fan_out(|reply| ShardMsg::Wal { sync: false, reply })
                .into_iter()
                .flatten()
                .collect();
            let st = self.durability.as_ref().expect("checked above");
            DurabilityStats {
                enabled: true,
                wal_records: statuses.iter().map(|s| s.appended).sum(),
                wal_bytes: statuses.iter().map(|s| s.len).sum(),
                wal_unsynced_bytes: statuses.iter().map(|s| s.len - s.synced_len).sum(),
                wal_syncs: statuses.iter().map(|s| s.syncs).sum(),
                checkpoints: st.checkpoints,
                checkpoint_watermark: st.watermark,
                last_checkpoint_bytes: st.last_checkpoint_bytes,
                events_since_checkpoint: self.events_routed - st.events_at_checkpoint,
            }
        } else {
            DurabilityStats::default()
        };
        Ok(stats)
    }

    fn snapshot_state(&mut self) -> Result<Vec<u8>, ServingError> {
        self.try_snapshot()
    }
}

fn shard_worker<M: InductiveUiModel>(
    shard: usize,
    mut engine: RealtimeEngine<M>,
    mut rx: Receiver<ShardMsg>,
    mut queue_capacity: usize,
) -> WorkerExit<M> {
    let mut events = 0u64;
    let mut recommends = 0u64;
    // Armed by a `Durability` message; `None` = the historical
    // in-memory-only behavior.
    let mut walw: Option<WalWriter> = None;
    // Ends when every sender is dropped and the queue is drained — the
    // graceful-shutdown path.
    while let Ok(msg) = rx.recv() {
        match msg {
            ShardMsg::Event { seq, user, item } => {
                // Write-ahead: the record must be in the log before the
                // state changes, or a crash between the two could
                // acknowledge an event that recovery cannot replay. An
                // I/O failure here is unrecoverable for the durability
                // contract — surface it loudly rather than serve
                // un-logged state.
                if let Some(w) = walw.as_mut() {
                    if let Err(e) = w.append(WalRecord { seq, user, item }) {
                        panic!("shard {shard}: wal append: {e}");
                    }
                }
                // The router pre-validates ids, so an error here means a
                // routing bug — surface it loudly.
                if let Err(e) = engine.try_process_event(user, item) {
                    panic!("shard {shard}: {e}");
                }
                events += 1;
            }
            ShardMsg::Recommend { user, query, reply } => {
                let res = engine
                    .recommend_query(user, query.k, query.source, &query.exclude)
                    .map(|(items, timing)| RecResponse { items, timing })
                    .map_err(ServingError::from);
                // A dropped reply handle just means the requester gave up.
                let _ = reply.send(res);
                recommends += 1;
            }
            ShardMsg::Drain { reply } => {
                let _ = reply.send(());
            }
            ShardMsg::Stats { reply } => {
                let _ = reply.send(ShardReport {
                    shard,
                    events,
                    recommends,
                    timings: engine.timings().clone(),
                    retired: false,
                    queue_capacity,
                    tier_dirty: engine.tier_dirty_count() as u64,
                });
            }
            ShardMsg::Export { reply } => {
                let _ = reply.send(engine.export_histories());
            }
            ShardMsg::ExportUsers { users, reply } => {
                // Router-planned handoff: every user is owned here (her
                // events are all queued ahead of this message), so a
                // failure is a migration bug — surface it loudly.
                let blobs: Vec<Vec<u8>> = users
                    .iter()
                    .map(|&u| {
                        let blob = engine
                            .export_user(u)
                            .unwrap_or_else(|e| panic!("shard {shard}: export {e}"));
                        engine
                            .evict_user(u)
                            .unwrap_or_else(|e| panic!("shard {shard}: evict {e}"));
                        blob
                    })
                    .collect();
                let _ = reply.send(blobs);
            }
            ShardMsg::ImportUsers { blobs } => {
                for blob in &blobs {
                    if let Err(e) = engine.import_user(blob) {
                        panic!("shard {shard}: import {e}");
                    }
                }
            }
            ShardMsg::Canonicalize { reply } => {
                engine.canonicalize_owned();
                let _ = reply.send(());
            }
            ShardMsg::TierExport {
                users,
                clear_dirty,
                reply,
            } => {
                // Router-planned collection over the stable ring: every
                // listed user is owned here, so a failure is a refresh
                // bug — surface it loudly. No eviction: the shard keeps
                // serving the user, the router only reads a copy.
                let blobs: Vec<Vec<u8>> = users
                    .iter()
                    .map(|&u| {
                        let blob = engine
                            .export_user(u)
                            .unwrap_or_else(|e| panic!("shard {shard}: tier export {e}"));
                        if clear_dirty {
                            engine.ack_tier_export(u);
                        }
                        blob
                    })
                    .collect();
                let _ = reply.send(blobs);
            }
            ShardMsg::TierDirty { reply } => {
                let _ = reply.send(engine.tier_dirty_users());
            }
            ShardMsg::TierMark { users } => {
                for u in users {
                    engine.mark_tier_dirty(u);
                }
            }
            ShardMsg::SwapQueue {
                rx: new_rx,
                capacity,
            } => {
                // The router dropped the old sender right after this
                // message, so the old queue is fully drained: replace
                // it. FIFO order is preserved — everything sent on the
                // new queue was routed after everything processed above.
                rx = new_rx;
                queue_capacity = capacity;
            }
            ShardMsg::TierInstall { tier } => match tier {
                Some(t) => engine.install_global_tier(t),
                None => engine.clear_global_tier(),
            },
            ShardMsg::Neighbors { user, reply } => {
                let _ = reply.send(engine.neighbors_of(user).map_err(ServingError::from));
            }
            ShardMsg::Durability { wal, dirty } => {
                for u in dirty {
                    engine.mark_dirty(u);
                }
                walw = Some(wal);
            }
            ShardMsg::Wal { sync, reply } => {
                if sync {
                    if let Some(w) = walw.as_mut() {
                        if let Err(e) = w.sync() {
                            panic!("shard {shard}: wal sync: {e}");
                        }
                    }
                }
                let _ = reply.send(walw.as_ref().map(|w| w.status()));
            }
            ShardMsg::CheckpointExport { full, reply } => {
                // Drain the dirty set either way: a full export
                // subsumes every pending incremental entry.
                let drained = engine.drain_dirty_users();
                let users: Vec<u32> = if full { engine.owned_users() } else { drained };
                // Every listed user is owned here (drained from this
                // engine or enumerated from it), so a failure is a
                // checkpoint bug — surface it loudly.
                let blobs: Vec<Vec<u8>> = users
                    .iter()
                    .map(|&u| {
                        engine
                            .export_user(u)
                            .unwrap_or_else(|e| panic!("shard {shard}: checkpoint export {e}"))
                    })
                    .collect();
                let _ = reply.send(blobs);
            }
            ShardMsg::WalRotate {
                seal_upto,
                prune_upto,
                reply,
            } => {
                let out = match walw.as_mut() {
                    // Rotation failing means the durability contract's
                    // disk bound is broken — surface it loudly, like
                    // every other WAL I/O failure on this thread.
                    Some(w) => w
                        .rotate(seal_upto, prune_upto)
                        .unwrap_or_else(|e| panic!("shard {shard}: wal rotate: {e}")),
                    None => (0, 0),
                };
                let _ = reply.send(out);
            }
        }
    }
    // Graceful exit: push the WAL tail to stable storage so a clean
    // shutdown never leaves an unsynced (losable) region behind.
    if let Some(w) = walw.as_mut() {
        if let Err(e) = w.sync() {
            panic!("shard {shard}: wal sync on exit: {e}");
        }
    }
    let report = ShardReport {
        shard,
        events,
        recommends,
        timings: engine.timings().clone(),
        retired: false,
        queue_capacity,
        tier_dirty: engine.tier_dirty_count() as u64,
    };
    (engine, report)
}

/// Mean wall-clock nanoseconds of one frozen-tier search, probed with
/// up to 8 of the snapshot's own covered vectors as queries (after a
/// warm-up pass, so scratch-buffer growth isn't billed to the
/// measurement). Runs on the router thread at tier install — a few
/// microseconds of work, once per refresh — and is what
/// `ServingStats.neighborhood.tier_search_ns` reports: the measured
/// cost of the mode the operator picked, on the population actually
/// being served.
fn measure_tier_search_ns(snapshot: &GlobalNeighborSnapshot, beta: usize) -> f64 {
    let index = snapshot.index();
    let norms = index.norms();
    let probes: Vec<&[f32]> = (0..index.len())
        .filter(|&u| norms[u] > f32::EPSILON)
        .take(8)
        .map(|u| index.vector(u as u32))
        .collect();
    if probes.is_empty() || beta == 0 {
        return 0.0;
    }
    let mut scratch = TierScratch::new();
    let mut out = Vec::new();
    let skip = |_: u32| false;
    for q in &probes {
        out.clear();
        snapshot.search_append_with(q, beta, &skip, &mut scratch, &mut out);
    }
    let start = std::time::Instant::now();
    for q in &probes {
        out.clear();
        snapshot.search_append_with(q, beta, &skip, &mut scratch, &mut out);
    }
    start.elapsed().as_nanos() as f64 / probes.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modulo_and_consistent_rings_route_deterministically() {
        for cfg in [
            ShardedConfig {
                n_shards: 4,
                queue_capacity: 1,
                router: RouterKind::Modulo,
            },
            ShardedConfig {
                n_shards: 4,
                queue_capacity: 1,
                router: RouterKind::Consistent { vnodes: 32 },
            },
        ] {
            let ring = cfg.ring().expect("valid router");
            for u in 0..500u32 {
                let s = ring.route(u);
                assert!(s < 4);
                assert_eq!(s, ring.route(u), "same user, same shard");
            }
        }
    }

    #[test]
    fn single_shard_rings_route_everything_to_zero() {
        let modulo = HashRing::modulo(1);
        let consistent = HashRing::consistent(1, 8);
        assert!((0..1000u32).all(|u| modulo.route(u) == 0 && consistent.route(u) == 0));
    }

    #[test]
    fn degenerate_router_configs_are_rejected() {
        let zero_vnodes = ShardedConfig {
            n_shards: 2,
            queue_capacity: 8,
            router: RouterKind::Consistent { vnodes: 0 },
        };
        assert!(matches!(
            zero_vnodes.ring(),
            Err(ServingError::InvalidConfig(_))
        ));
        let zero_shards = ShardedConfig {
            n_shards: 0,
            queue_capacity: 8,
            router: RouterKind::Modulo,
        };
        assert!(matches!(
            zero_shards.ring(),
            Err(ServingError::InvalidConfig(_))
        ));
    }

    #[test]
    fn hashing_spreads_users() {
        let n = 8usize;
        let ring = HashRing::modulo(n);
        let mut counts = vec![0usize; n];
        for u in 0..8000u32 {
            counts[ring.route(u)] += 1;
        }
        // FxHash of sequential ids is not perfectly uniform, but every
        // shard must carry a meaningful fraction of the users.
        for (s, &c) in counts.iter().enumerate() {
            assert!(c > 8000 / n / 4, "shard {s} starved: {c} users");
        }
    }
}
