//! Sharded multi-writer realtime engine.
//!
//! [`crate::stream`] replays events in one thread and PR 1 made each
//! event allocation-free — but a single-writer [`RealtimeEngine`] still
//! tops out at one core. This module scales ingestion the way
//! industrial neighborhood systems do: **partition users across shards**
//! (`hash(user_id) % N`, [`shard_of`]), give every shard its own
//! single-writer engine on a dedicated worker thread, and feed each
//! worker through a bounded SPSC event queue with backpressure.
//!
//! ```text
//! ingest(user, item) ──► shard router (hash(user) % N)
//!                           │ bounded SPSC queue per shard
//!        ┌──────────────────┼──────────────────┐
//!        ▼                  ▼                  ▼
//!   shard 0 worker     shard 1 worker     shard N−1 worker
//!   RealtimeEngine     RealtimeEngine     RealtimeEngine
//!   + QueryScratch     + QueryScratch     + QueryScratch
//!        │                  │                  │
//!        └── Arc<SccfShared>: item embeddings, HNSW item index,
//!            integrator — one copy, read-only, shared by all shards
//! ```
//!
//! State split (the contract that keeps the hot path lock-free):
//!
//! * **Shared, read-only** (`Arc<SccfShared>`): item embeddings, the
//!   optional HNSW item index, the trained integrator, configuration.
//! * **Shard-local, single-writer**: the per-user histories, the cosine
//!   user index over *owned* users, the recent-item rings, and the
//!   engine's [`sccf_core::QueryScratch`] — so PR 1's zero-allocation
//!   invariant holds per shard, and no lock is ever contended on the
//!   event hot path (each shard's user index has exactly one writer).
//!
//! Because a user's events and recommendation requests all route to the
//! same queue, per-user ordering is preserved: a `recommend` observes
//! every event the same caller ingested before it. Neighborhoods
//! (Eq. 11) are searched over the shard's own users — exact at `N = 1`
//! (bit-identical to the plain engine, pinned by `tests/sharded.rs`),
//! in-shard approximations for `N > 1`; see `docs/ARCHITECTURE.md`.

use std::thread::JoinHandle;

use crossbeam::channel::{bounded, Receiver, Sender};
use sccf_core::{EngineTimings, RealtimeEngine, Sccf};
use sccf_models::InductiveUiModel;
use sccf_util::topk::Scored;

use crate::stream::StreamEvent;

/// Deterministic user→shard routing: FxHash of the user id, mod `n_shards`.
///
/// The same user always lands on the same shard (pinned by
/// `tests/sharded.rs`), which is what makes per-user event ordering and
/// shard-local user state sound.
pub fn shard_of(user: u32, n_shards: usize) -> usize {
    use std::hash::Hasher;
    let mut h = sccf_util::hash::FxHasher::default();
    h.write_u32(user);
    (h.finish() % n_shards as u64) as usize
}

/// Sharded-engine knobs.
#[derive(Debug, Clone)]
pub struct ShardedConfig {
    /// Number of worker shards. 1 reproduces the single-writer engine
    /// bit-for-bit.
    pub n_shards: usize,
    /// Bounded capacity of each shard's event queue. A full queue blocks
    /// the router — backpressure, never unbounded memory.
    pub queue_capacity: usize,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        Self {
            n_shards: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .clamp(1, 16),
            queue_capacity: 1024,
        }
    }
}

/// What one shard worker reports at shutdown.
#[derive(Debug, Clone)]
pub struct ShardReport {
    pub shard: usize,
    /// Events ingested (each one ran the infer + identify refresh).
    pub events: u64,
    /// Recommendation requests served.
    pub recommends: u64,
    /// The shard engine's Table III timing split.
    pub timings: EngineTimings,
}

enum ShardMsg {
    Event {
        user: u32,
        item: u32,
    },
    Recommend {
        user: u32,
        n: usize,
        reply: Sender<Vec<Scored>>,
    },
    /// Barrier: the worker replies once everything queued before this
    /// message has been processed.
    Drain {
        reply: Sender<()>,
    },
}

/// What a shard worker thread hands back when it exits.
type WorkerExit<M> = (RealtimeEngine<M>, ShardReport);

/// User-partitioned, multi-writer wrapper around N single-writer
/// [`RealtimeEngine`]s. See the [module docs](self) for the
/// architecture.
///
/// ```
/// use sccf_core::{IntegratorConfig, Sccf, SccfConfig, UserBasedConfig};
/// use sccf_data::{Dataset, Interaction, LeaveOneOut};
/// use sccf_models::{Fism, FismConfig, TrainConfig};
/// use sccf_serving::sharded::{ShardedConfig, ShardedEngine};
///
/// // A tiny two-taste-group world.
/// let inter: Vec<Interaction> = (0..8u32)
///     .flat_map(|u| (0..4).map(move |t| Interaction {
///         user: u,
///         item: (u / 4) * 4 + (u + t) % 4,
///         ts: t as i64,
///     }))
///     .collect();
/// let data = Dataset::from_interactions("doc", 8, 8, &inter, None);
/// let split = LeaveOneOut::split(&data);
/// let fism = Fism::train(&split, &FismConfig {
///     train: TrainConfig { dim: 4, epochs: 2, ..Default::default() },
///     ..Default::default()
/// });
/// let sccf = Sccf::build(fism, &split, SccfConfig {
///     user_based: UserBasedConfig { beta: 3, recent_window: 4 },
///     candidate_n: 6,
///     integrator: IntegratorConfig { epochs: 2, ..Default::default() },
///     threads: 1,
///     profiles: None,
///     ui_ann: None,
/// });
/// let histories: Vec<Vec<u32>> = (0..8u32).map(|u| split.train_plus_val(u)).collect();
///
/// let mut engine = ShardedEngine::new(sccf, histories, ShardedConfig {
///     n_shards: 2,
///     queue_capacity: 64,
/// });
/// engine.ingest(0, 5);           // fire-and-forget, routed by hash(user) % 2
/// let recs = engine.recommend(0, 3); // same queue ⇒ sees the event above
/// assert!(!recs.is_empty());
/// let reports = engine.shutdown();   // drains queues, joins workers
/// assert_eq!(reports.len(), 2);
/// assert_eq!(reports.iter().map(|r| r.events).sum::<u64>(), 1);
/// ```
pub struct ShardedEngine<M: InductiveUiModel + 'static> {
    txs: Vec<Sender<ShardMsg>>,
    /// `None` once a dead worker has been joined to surface its panic.
    handles: Vec<Option<JoinHandle<WorkerExit<M>>>>,
    n_shards: usize,
}

impl<M: InductiveUiModel + 'static> ShardedEngine<M> {
    /// Partition a built framework into `cfg.n_shards` workers.
    ///
    /// `histories` must be the users' current full histories — the same
    /// source-of-truth contract as [`RealtimeEngine::new`] and
    /// [`RealtimeEngine::restore`]; every shard's per-user state is
    /// derived from it via [`Sccf::into_shards`].
    pub fn new(sccf: Sccf<M>, histories: Vec<Vec<u32>>, cfg: ShardedConfig) -> Self {
        let n = cfg.n_shards;
        let n_users = histories.len();
        let shards = sccf.into_shards(&histories, n, |u| shard_of(u, n));
        // Move each user's history into the owning shard; other shards
        // get an empty vec for that slot (they never touch it).
        let mut per_shard: Vec<Vec<Vec<u32>>> = (0..n).map(|_| vec![Vec::new(); n_users]).collect();
        for (u, h) in histories.into_iter().enumerate() {
            per_shard[shard_of(u as u32, n)][u] = h;
        }
        let mut txs = Vec::with_capacity(n);
        let mut handles = Vec::with_capacity(n);
        for (s, (shard_sccf, shard_histories)) in shards.into_iter().zip(per_shard).enumerate() {
            let (tx, rx) = bounded::<ShardMsg>(cfg.queue_capacity);
            let engine = RealtimeEngine::new(shard_sccf, shard_histories);
            let handle = std::thread::Builder::new()
                .name(format!("sccf-shard-{s}"))
                .spawn(move || shard_worker(s, engine, rx))
                .expect("spawn shard worker");
            txs.push(tx);
            handles.push(Some(handle));
        }
        Self {
            txs,
            handles,
            n_shards: n,
        }
    }

    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// A send failed, so shard `s`'s worker is gone: join it and
    /// re-raise its original panic payload (not a generic router
    /// message) so the root cause reaches the caller's logs.
    fn propagate_worker_death(&mut self, s: usize) -> ! {
        match self.handles[s].take() {
            Some(h) => match h.join() {
                Err(payload) => std::panic::resume_unwind(payload),
                Ok(_) => panic!("shard {s} worker exited early without panicking"),
            },
            None => panic!("shard {s} worker already joined after an earlier failure"),
        }
    }

    /// Ingest one interaction: route to the owning shard and return.
    /// Blocks only when that shard's queue is full (backpressure). The
    /// infer + identify refresh happens on the worker thread.
    pub fn ingest(&mut self, user: u32, item: u32) {
        let s = shard_of(user, self.n_shards);
        if self.txs[s].send(ShardMsg::Event { user, item }).is_err() {
            self.propagate_worker_death(s);
        }
    }

    /// Feed a replayed event stream (see [`crate::stream::replay_events`])
    /// through the router in timestamp order.
    pub fn ingest_stream(&mut self, events: &[StreamEvent]) {
        for e in events {
            self.ingest(e.user, e.item);
        }
    }

    /// Fused top-`n` recommendation for `user`, computed on the owning
    /// shard with its reusable scratch. Queued behind the user's earlier
    /// events, so it observes everything this caller already ingested.
    pub fn recommend(&mut self, user: u32, n: usize) -> Vec<Scored> {
        let (reply, rx) = bounded(1);
        let s = shard_of(user, self.n_shards);
        if self.txs[s]
            .send(ShardMsg::Recommend { user, n, reply })
            .is_err()
        {
            self.propagate_worker_death(s);
        }
        match rx.recv() {
            Ok(recs) => recs,
            // The worker died between accepting the request and replying.
            Err(_) => self.propagate_worker_death(s),
        }
    }

    /// Barrier: block until every shard has processed everything queued
    /// so far. The barrier message fans out first, so shards drain in
    /// parallel.
    pub fn drain(&mut self) {
        let mut replies: Vec<(usize, Receiver<()>)> = Vec::with_capacity(self.n_shards);
        for s in 0..self.n_shards {
            let (reply, rx) = bounded(1);
            if self.txs[s].send(ShardMsg::Drain { reply }).is_err() {
                self.propagate_worker_death(s);
            }
            replies.push((s, rx));
        }
        for (s, rx) in replies {
            if rx.recv().is_err() {
                self.propagate_worker_death(s);
            }
        }
    }

    /// Graceful shutdown: close every queue, let the workers drain what
    /// remains, join them, and return the per-shard reports (sorted by
    /// shard id).
    pub fn shutdown(self) -> Vec<ShardReport> {
        self.shutdown_into_engines().1
    }

    /// [`ShardedEngine::shutdown`], additionally handing back the shard
    /// engines (e.g. to snapshot their state or unwrap the model).
    pub fn shutdown_into_engines(self) -> (Vec<RealtimeEngine<M>>, Vec<ShardReport>) {
        drop(self.txs); // workers see the disconnect after draining
        let mut engines = Vec::with_capacity(self.handles.len());
        let mut reports = Vec::with_capacity(self.handles.len());
        for h in self.handles.into_iter().flatten() {
            let (engine, report) = match h.join() {
                Ok(out) => out,
                Err(payload) => std::panic::resume_unwind(payload),
            };
            engines.push(engine);
            reports.push(report);
        }
        reports.sort_by_key(|r| r.shard);
        (engines, reports)
    }
}

fn shard_worker<M: InductiveUiModel>(
    shard: usize,
    mut engine: RealtimeEngine<M>,
    rx: Receiver<ShardMsg>,
) -> WorkerExit<M> {
    let mut events = 0u64;
    let mut recommends = 0u64;
    // Ends when every sender is dropped and the queue is drained — the
    // graceful-shutdown path.
    while let Ok(msg) = rx.recv() {
        match msg {
            ShardMsg::Event { user, item } => {
                engine.process_event(user, item);
                events += 1;
            }
            ShardMsg::Recommend { user, n, reply } => {
                // A dropped reply handle just means the requester gave up.
                let _ = reply.send(engine.recommend(user, n));
                recommends += 1;
            }
            ShardMsg::Drain { reply } => {
                let _ = reply.send(());
            }
        }
    }
    let report = ShardReport {
        shard,
        events,
        recommends,
        timings: engine.timings().clone(),
    };
    (engine, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_deterministic_and_in_range() {
        for n in [1usize, 2, 3, 8, 16] {
            for u in 0..500u32 {
                let s = shard_of(u, n);
                assert!(s < n);
                assert_eq!(s, shard_of(u, n), "same user, same shard");
            }
        }
    }

    #[test]
    fn single_shard_routes_everything_to_zero() {
        assert!((0..1000u32).all(|u| shard_of(u, 1) == 0));
    }

    #[test]
    fn hashing_spreads_users() {
        let n = 8usize;
        let mut counts = vec![0usize; n];
        for u in 0..8000u32 {
            counts[shard_of(u, n)] += 1;
        }
        // FxHash of sequential ids is not perfectly uniform, but every
        // shard must carry a meaningful fraction of the users.
        for (s, &c) in counts.iter().enumerate() {
            assert!(c > 8000 / n / 4, "shard {s} starved: {c} users");
        }
    }
}
