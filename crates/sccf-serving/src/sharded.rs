//! Sharded multi-writer realtime engine.
//!
//! [`crate::stream`] replays events in one thread and PR 1 made each
//! event allocation-free — but a single-writer [`RealtimeEngine`] still
//! tops out at one core. This module scales ingestion the way
//! industrial neighborhood systems do: **partition users across shards**
//! (`hash(user_id) % N`, [`shard_of`]), give every shard its own
//! single-writer engine on a dedicated worker thread, and feed each
//! worker through a bounded SPSC event queue with backpressure.
//!
//! ```text
//! try_ingest(user, item) ──► shard router (hash(user) % N)
//!                               │ bounded SPSC queue per shard
//!        ┌──────────────────────┼──────────────────┐
//!        ▼                      ▼                  ▼
//!   shard 0 worker         shard 1 worker     shard N−1 worker
//!   RealtimeEngine         RealtimeEngine     RealtimeEngine
//!   + QueryScratch         + QueryScratch     + QueryScratch
//!        │                      │                  │
//!        └── Arc<SccfShared>: item embeddings, HNSW item index,
//!            integrator — one copy, read-only, shared by all shards
//! ```
//!
//! The engine is driven through the unified
//! [`ServingApi`] surface (typed queries,
//! `Result` everywhere, batch entry points, [`ServingStats`]); the old
//! infallible methods remain as deprecated wrappers. Invalid ids are
//! rejected at the router — they return
//! [`ServingError`] and never reach (or kill)
//! a worker.
//!
//! State split (the contract that keeps the hot path lock-free):
//!
//! * **Shared, read-only** (`Arc<SccfShared>`): item embeddings, the
//!   optional HNSW item index, the trained integrator, configuration.
//! * **Shard-local, single-writer**: the per-user histories, the cosine
//!   user index over *owned* users, the recent-item rings, and the
//!   engine's [`sccf_core::QueryScratch`] — so PR 1's zero-allocation
//!   invariant holds per shard, and no lock is ever contended on the
//!   event hot path. All four are *compact* (owned users only,
//!   slot↔global map at the boundary), so total serving-state memory
//!   across shards stays one population's worth.
//!
//! Because a user's events and recommendation requests all route to the
//! same queue, per-user ordering is preserved: a recommendation observes
//! every event the same caller ingested before it. Neighborhoods
//! (Eq. 11) are searched over the shard's own users — exact at `N = 1`
//! (bit-identical to the plain engine, pinned by `tests/sharded.rs`),
//! in-shard approximations for `N > 1`; see `docs/ARCHITECTURE.md`.
//!
//! ## Snapshot and offline resharding
//!
//! [`ShardedEngine::snapshot`] merges every shard's histories into the
//! same whole-population artifact [`RealtimeEngine::snapshot`] writes
//! ([`sccf_core::encode_histories`]), and
//! [`ShardedEngine::restore`] re-partitions that artifact under a *new*
//! [`ShardedConfig`] at load time. Resharding N→M is therefore
//! `snapshot()` on the old fleet + `restore(.., new_cfg)` on the new —
//! the first concrete step of the ROADMAP's shard-rebalancing item.

use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{bounded, Receiver, Sender};
use sccf_core::{
    decode_histories, encode_histories, CandidateSource, EngineTimings, Exclusion, RealtimeEngine,
    Sccf,
};
use sccf_models::InductiveUiModel;
use sccf_util::topk::Scored;

use crate::api::{RecQuery, RecResponse, ServingApi, ServingError, ServingStats};
use crate::stream::StreamEvent;

/// Deterministic user→shard routing: FxHash of the user id, mod `n_shards`.
///
/// The same user always lands on the same shard (pinned by
/// `tests/sharded.rs`), which is what makes per-user event ordering and
/// shard-local user state sound. `n_shards` must be ≥ 1 — engine
/// construction rejects zero-shard configs with
/// [`ServingError::InvalidConfig`] before any routing happens.
pub fn shard_of(user: u32, n_shards: usize) -> usize {
    use std::hash::Hasher;
    let mut h = sccf_util::hash::FxHasher::default();
    h.write_u32(user);
    (h.finish() % n_shards as u64) as usize
}

/// Sharded-engine knobs.
#[derive(Debug, Clone)]
pub struct ShardedConfig {
    /// Number of worker shards. 1 reproduces the single-writer engine
    /// bit-for-bit. Must be ≥ 1.
    pub n_shards: usize,
    /// Bounded capacity of each shard's event queue. A full queue blocks
    /// the router — backpressure, never unbounded memory. Must be ≥ 1.
    pub queue_capacity: usize,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        Self {
            n_shards: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
                .clamp(1, 16),
            queue_capacity: 1024,
        }
    }
}

/// What one shard worker reports: the per-shard slice of
/// [`ServingStats`], also returned by [`ShardedEngine::shutdown`].
#[derive(Debug, Clone)]
pub struct ShardReport {
    pub shard: usize,
    /// Events ingested (each one ran the infer + identify refresh).
    pub events: u64,
    /// Recommendation requests served.
    pub recommends: u64,
    /// The shard engine's Table III timing split.
    pub timings: EngineTimings,
}

enum ShardMsg {
    Event {
        user: u32,
        item: u32,
    },
    Recommend {
        user: u32,
        /// Shared per wave: `recommend_many` sends one allocation's
        /// worth of query (exclusion list included) to any number of
        /// users.
        query: Arc<RecQuery>,
        reply: Sender<Result<RecResponse, ServingError>>,
    },
    /// Barrier: the worker replies once everything queued before this
    /// message has been processed.
    Drain {
        reply: Sender<()>,
    },
    /// Live counters + timings without stopping the worker.
    Stats {
        reply: Sender<ShardReport>,
    },
    /// The shard's owned `(global user, history)` pairs — the snapshot
    /// path merges these into one whole-population artifact.
    Export {
        reply: Sender<Vec<(u32, Vec<u32>)>>,
    },
}

/// What a shard worker thread hands back when it exits.
type WorkerExit<M> = (RealtimeEngine<M>, ShardReport);

/// User-partitioned, multi-writer wrapper around N single-writer
/// [`RealtimeEngine`]s. See the [module docs](self) for the
/// architecture; drive it through the
/// [`ServingApi`] surface.
///
/// ```
/// use sccf_core::{IntegratorConfig, Sccf, SccfConfig, UserBasedConfig};
/// use sccf_data::{Dataset, Interaction, LeaveOneOut};
/// use sccf_models::{Fism, FismConfig, TrainConfig};
/// use sccf_serving::api::{RecQuery, ServingApi};
/// use sccf_serving::sharded::{ShardedConfig, ShardedEngine};
///
/// // A tiny two-taste-group world.
/// let inter: Vec<Interaction> = (0..8u32)
///     .flat_map(|u| (0..4).map(move |t| Interaction {
///         user: u,
///         item: (u / 4) * 4 + (u + t) % 4,
///         ts: t as i64,
///     }))
///     .collect();
/// let data = Dataset::from_interactions("doc", 8, 8, &inter, None);
/// let split = LeaveOneOut::split(&data);
/// let fism = Fism::train(&split, &FismConfig {
///     train: TrainConfig { dim: 4, epochs: 2, ..Default::default() },
///     ..Default::default()
/// });
/// let sccf = Sccf::build(fism, &split, SccfConfig {
///     user_based: UserBasedConfig { beta: 3, recent_window: 4 },
///     candidate_n: 6,
///     integrator: IntegratorConfig { epochs: 2, ..Default::default() },
///     threads: 1,
///     profiles: None,
///     ui_ann: None,
/// });
/// let histories: Vec<Vec<u32>> = (0..8u32).map(|u| split.train_plus_val(u)).collect();
///
/// let mut engine = ShardedEngine::try_new(sccf, histories, ShardedConfig {
///     n_shards: 2,
///     queue_capacity: 64,
/// }).expect("valid config");
/// engine.try_ingest(0, 5).expect("ids in range"); // routed by hash(user) % 2
/// let recs = engine.try_recommend(0, &RecQuery::top(3)).expect("user 0 exists");
/// assert!(!recs.items.is_empty());                // same queue ⇒ sees the event
/// let stats = engine.serving_stats().expect("stats");
/// assert_eq!(stats.events, 1);
/// let reports = engine.shutdown();                // drains queues, joins workers
/// assert_eq!(reports.len(), 2);
/// assert_eq!(reports.iter().map(|r| r.events).sum::<u64>(), 1);
/// ```
pub struct ShardedEngine<M: InductiveUiModel + 'static> {
    txs: Vec<Sender<ShardMsg>>,
    /// `None` once a dead worker has been joined to surface its panic.
    handles: Vec<Option<JoinHandle<WorkerExit<M>>>>,
    n_shards: usize,
    /// Router-side validation state: requests with out-of-range ids are
    /// rejected here, before they can reach (and kill) a worker.
    n_users: usize,
    n_items: usize,
    has_ann: bool,
}

impl<M: InductiveUiModel + 'static> ShardedEngine<M> {
    /// Partition a built framework into `cfg.n_shards` workers.
    ///
    /// `histories` must be the users' current full histories — the same
    /// source-of-truth contract as [`RealtimeEngine::new`] and
    /// [`RealtimeEngine::restore`]; every shard's per-user state is
    /// derived from it via [`Sccf::into_shards`]. Rejects zero shards,
    /// zero queue capacity, history tables of the wrong size and
    /// out-of-catalog item ids with [`ServingError`] instead of
    /// panicking (or spawning workers that would).
    pub fn try_new(
        sccf: Sccf<M>,
        histories: Vec<Vec<u32>>,
        cfg: ShardedConfig,
    ) -> Result<Self, ServingError> {
        if cfg.n_shards == 0 {
            return Err(ServingError::InvalidConfig(
                "n_shards must be ≥ 1".to_string(),
            ));
        }
        if cfg.queue_capacity == 0 {
            return Err(ServingError::InvalidConfig(
                "queue_capacity must be ≥ 1".to_string(),
            ));
        }
        let n_users = sccf.user_count();
        if histories.len() != n_users {
            return Err(ServingError::InvalidConfig(format!(
                "history table has {} entries for a population of {n_users}",
                histories.len()
            )));
        }
        let n_items = sccf.model().n_items();
        for h in &histories {
            if let Some(&bad) = h.iter().find(|&&i| i as usize >= n_items) {
                return Err(ServingError::UnknownItem { item: bad, n_items });
            }
        }
        let has_ann = sccf.config().ui_ann.is_some();
        let n = cfg.n_shards;
        let shards = sccf.into_shards(&histories, n, |u| shard_of(u, n));
        // Move each user's history into the owning shard's full-length
        // table; the shard engine compacts it to owned slots on
        // construction, so the O(shards × users) layout is transient.
        let mut per_shard: Vec<Vec<Vec<u32>>> = (0..n).map(|_| vec![Vec::new(); n_users]).collect();
        for (u, h) in histories.into_iter().enumerate() {
            per_shard[shard_of(u as u32, n)][u] = h;
        }
        let mut txs = Vec::with_capacity(n);
        let mut handles = Vec::with_capacity(n);
        for (s, (shard_sccf, shard_histories)) in shards.into_iter().zip(per_shard).enumerate() {
            let (tx, rx) = bounded::<ShardMsg>(cfg.queue_capacity);
            let engine = RealtimeEngine::new(shard_sccf, shard_histories);
            let handle = std::thread::Builder::new()
                .name(format!("sccf-shard-{s}"))
                .spawn(move || shard_worker(s, engine, rx))
                .expect("spawn shard worker");
            txs.push(tx);
            handles.push(Some(handle));
        }
        Ok(Self {
            txs,
            handles,
            n_shards: n,
            n_users,
            n_items,
            has_ann,
        })
    }

    /// Deprecated infallible form of [`ShardedEngine::try_new`].
    #[deprecated(note = "use `try_new`; this wrapper panics on invalid configs")]
    pub fn new(sccf: Sccf<M>, histories: Vec<Vec<u32>>, cfg: ShardedConfig) -> Self {
        Self::try_new(sccf, histories, cfg).unwrap_or_else(|e| panic!("ShardedEngine::new: {e}"))
    }

    /// Rehydrate a sharded fleet from a snapshot artifact
    /// ([`ShardedEngine::snapshot`] or [`RealtimeEngine::snapshot`] —
    /// the format is shared) under `cfg`, re-partitioning the users at
    /// load time. `cfg.n_shards` is free to differ from the snapshot's
    /// source fleet: this is offline resharding N→M.
    pub fn restore(sccf: Sccf<M>, bytes: &[u8], cfg: ShardedConfig) -> Result<Self, ServingError> {
        let histories = decode_histories(bytes)?;
        Self::try_new(sccf, histories, cfg)
    }

    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// A send failed, so shard `s`'s worker is gone: join it and
    /// re-raise its original panic payload (not a generic router
    /// message) so the root cause reaches the caller's logs.
    fn propagate_worker_death(&mut self, s: usize) -> ! {
        match self.handles[s].take() {
            Some(h) => match h.join() {
                Err(payload) => std::panic::resume_unwind(payload),
                Ok(_) => panic!("shard {s} worker exited early without panicking"),
            },
            None => panic!("shard {s} worker already joined after an earlier failure"),
        }
    }

    fn check_user(&self, user: u32) -> Result<usize, ServingError> {
        if (user as usize) < self.n_users {
            Ok(shard_of(user, self.n_shards))
        } else {
            Err(ServingError::UnknownUser {
                user,
                n_users: self.n_users,
            })
        }
    }

    fn check_item(&self, item: u32) -> Result<(), ServingError> {
        if (item as usize) < self.n_items {
            Ok(())
        } else {
            Err(ServingError::UnknownItem {
                item,
                n_items: self.n_items,
            })
        }
    }

    fn check_query(&self, query: &RecQuery) -> Result<(), ServingError> {
        if query.source == CandidateSource::Ann && !self.has_ann {
            return Err(ServingError::AnnUnavailable);
        }
        if let Exclusion::HistoryAnd(extra) = &query.exclude {
            for &i in extra {
                self.check_item(i)?;
            }
        }
        Ok(())
    }

    fn send(&mut self, s: usize, msg: ShardMsg) {
        if self.txs[s].send(msg).is_err() {
            self.propagate_worker_death(s);
        }
    }

    /// Fan a request constructor out to every shard and collect the
    /// replies in shard order.
    fn fan_out<T>(&mut self, make: impl Fn(Sender<T>) -> ShardMsg) -> Vec<T> {
        let mut replies: Vec<(usize, Receiver<T>)> = Vec::with_capacity(self.n_shards);
        for s in 0..self.n_shards {
            let (reply, rx) = bounded(1);
            self.send(s, make(reply));
            replies.push((s, rx));
        }
        replies
            .into_iter()
            .map(|(s, rx)| match rx.recv() {
                Ok(v) => v,
                Err(_) => self.propagate_worker_death(s),
            })
            .collect()
    }

    /// Deprecated infallible form of
    /// [`ServingApi::try_ingest`].
    #[deprecated(note = "use `ServingApi::try_ingest`; this wrapper panics on invalid ids")]
    pub fn ingest(&mut self, user: u32, item: u32) {
        if let Err(e) = self.try_ingest(user, item) {
            panic!("ingest: {e}");
        }
    }

    /// Deprecated infallible stream feed; use
    /// [`crate::stream::replay_into`] (which drives any
    /// [`ServingApi`] engine) instead.
    #[deprecated(note = "use `stream::replay_into` / `ServingApi::ingest_batch`")]
    pub fn ingest_stream(&mut self, events: &[StreamEvent]) {
        for e in events {
            if let Err(err) = self.try_ingest(e.user, e.item) {
                panic!("ingest_stream: {err}");
            }
        }
    }

    /// Deprecated infallible form of
    /// [`ServingApi::try_recommend`]
    /// with the default query.
    #[deprecated(note = "use `ServingApi::try_recommend`; this wrapper panics on invalid ids")]
    pub fn recommend(&mut self, user: u32, n: usize) -> Vec<Scored> {
        match self.try_recommend(user, &RecQuery::top(n)) {
            Ok(res) => res.items,
            Err(e) => panic!("recommend: {e}"),
        }
    }

    /// Deprecated alias of
    /// [`ServingApi::flush`].
    #[deprecated(note = "use `ServingApi::flush`")]
    pub fn drain(&mut self) {
        self.flush().expect("flush cannot fail");
    }

    /// Drain every shard and serialize the merged per-user histories
    /// into one whole-population artifact — the same format as
    /// [`RealtimeEngine::snapshot`], so any engine shape restores it:
    /// [`RealtimeEngine::restore`] (N→1 to a plain engine) or
    /// [`ShardedEngine::restore`] with a different shard count (offline
    /// resharding N→M). The export rides each shard's FIFO queue, so it
    /// acts as its own barrier: every event ingested before this call
    /// is in the artifact.
    pub fn snapshot(&mut self) -> Vec<u8> {
        let exports = self.fan_out(|reply| ShardMsg::Export { reply });
        let mut full: Vec<Vec<u32>> = vec![Vec::new(); self.n_users];
        for (user, history) in exports.into_iter().flatten() {
            full[user as usize] = history;
        }
        encode_histories(&full)
    }

    /// Graceful shutdown: close every queue, let the workers drain what
    /// remains, join them, and return the per-shard reports (sorted by
    /// shard id).
    pub fn shutdown(self) -> Vec<ShardReport> {
        self.shutdown_into_engines().1
    }

    /// [`ShardedEngine::shutdown`], additionally handing back the shard
    /// engines (e.g. to snapshot their state or unwrap the model).
    pub fn shutdown_into_engines(self) -> (Vec<RealtimeEngine<M>>, Vec<ShardReport>) {
        drop(self.txs); // workers see the disconnect after draining
        let mut engines = Vec::with_capacity(self.handles.len());
        let mut reports = Vec::with_capacity(self.handles.len());
        for h in self.handles.into_iter().flatten() {
            let (engine, report) = match h.join() {
                Ok(out) => out,
                Err(payload) => std::panic::resume_unwind(payload),
            };
            engines.push(engine);
            reports.push(report);
        }
        reports.sort_by_key(|r| r.shard);
        (engines, reports)
    }
}

impl<M: InductiveUiModel + 'static> ServingApi for ShardedEngine<M> {
    /// Route to the owning shard and return (`Ok(None)` — processing is
    /// asynchronous). Blocks only when that shard's queue is full
    /// (backpressure). The infer + identify refresh happens on the
    /// worker thread.
    fn try_ingest(
        &mut self,
        user: u32,
        item: u32,
    ) -> Result<Option<sccf_core::EventTiming>, ServingError> {
        let s = self.check_user(user)?;
        self.check_item(item)?;
        self.send(s, ShardMsg::Event { user, item });
        Ok(None)
    }

    fn ingest_batch(&mut self, events: &[(u32, u32)]) -> Result<u64, ServingError> {
        // Validate the whole batch before routing anything: an error
        // means no event was applied.
        for &(user, item) in events {
            self.check_user(user)?;
            self.check_item(item)?;
        }
        for &(user, item) in events {
            let s = shard_of(user, self.n_shards);
            self.send(s, ShardMsg::Event { user, item });
        }
        Ok(events.len() as u64)
    }

    /// Computed on the owning shard with its reusable scratch. Queued
    /// behind the user's earlier events, so it observes everything this
    /// caller already ingested.
    fn try_recommend(&mut self, user: u32, query: &RecQuery) -> Result<RecResponse, ServingError> {
        let s = self.check_user(user)?;
        self.check_query(query)?;
        let (reply, rx) = bounded(1);
        self.send(
            s,
            ShardMsg::Recommend {
                user,
                query: Arc::new(query.clone()),
                reply,
            },
        );
        match rx.recv() {
            Ok(res) => res,
            // The worker died between accepting the request and replying.
            Err(_) => self.propagate_worker_death(s),
        }
    }

    /// All requests fan out before any reply is collected, so shards
    /// compute in parallel and the queue crossing cost is paid once per
    /// wave, not once per user.
    fn recommend_many(
        &mut self,
        users: &[u32],
        query: &RecQuery,
    ) -> Result<Vec<RecResponse>, ServingError> {
        for &user in users {
            self.check_user(user)?;
        }
        self.check_query(query)?;
        let query = Arc::new(query.clone());
        let mut pending = Vec::with_capacity(users.len());
        for &user in users {
            let s = shard_of(user, self.n_shards);
            let (reply, rx) = bounded(1);
            self.send(
                s,
                ShardMsg::Recommend {
                    user,
                    query: Arc::clone(&query),
                    reply,
                },
            );
            pending.push((s, rx));
        }
        pending
            .into_iter()
            .map(|(s, rx)| match rx.recv() {
                Ok(res) => res,
                Err(_) => self.propagate_worker_death(s),
            })
            .collect()
    }

    /// Barrier: block until every shard has processed everything queued
    /// so far. The barrier message fans out first, so shards drain in
    /// parallel.
    fn flush(&mut self) -> Result<(), ServingError> {
        self.fan_out(|reply| ShardMsg::Drain { reply });
        Ok(())
    }

    /// Live per-shard counters and timings, merged into the unified
    /// shape. Rides the queues, so it reflects every event ingested
    /// before the call.
    fn serving_stats(&mut self) -> Result<ServingStats, ServingError> {
        let mut shards = self.fan_out(|reply| ShardMsg::Stats { reply });
        shards.sort_by_key(|r| r.shard);
        Ok(ServingStats::from_shards(shards))
    }

    fn snapshot_state(&mut self) -> Result<Vec<u8>, ServingError> {
        Ok(self.snapshot())
    }
}

fn shard_worker<M: InductiveUiModel>(
    shard: usize,
    mut engine: RealtimeEngine<M>,
    rx: Receiver<ShardMsg>,
) -> WorkerExit<M> {
    let mut events = 0u64;
    let mut recommends = 0u64;
    // Ends when every sender is dropped and the queue is drained — the
    // graceful-shutdown path.
    while let Ok(msg) = rx.recv() {
        match msg {
            ShardMsg::Event { user, item } => {
                // The router pre-validates ids, so an error here means a
                // routing bug — surface it loudly.
                if let Err(e) = engine.try_process_event(user, item) {
                    panic!("shard {shard}: {e}");
                }
                events += 1;
            }
            ShardMsg::Recommend { user, query, reply } => {
                let res = engine
                    .recommend_query(user, query.k, query.source, &query.exclude)
                    .map(|(items, timing)| RecResponse { items, timing })
                    .map_err(ServingError::from);
                // A dropped reply handle just means the requester gave up.
                let _ = reply.send(res);
                recommends += 1;
            }
            ShardMsg::Drain { reply } => {
                let _ = reply.send(());
            }
            ShardMsg::Stats { reply } => {
                let _ = reply.send(ShardReport {
                    shard,
                    events,
                    recommends,
                    timings: engine.timings().clone(),
                });
            }
            ShardMsg::Export { reply } => {
                let _ = reply.send(engine.export_histories());
            }
        }
    }
    let report = ShardReport {
        shard,
        events,
        recommends,
        timings: engine.timings().clone(),
    };
    (engine, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_deterministic_and_in_range() {
        for n in [1usize, 2, 3, 8, 16] {
            for u in 0..500u32 {
                let s = shard_of(u, n);
                assert!(s < n);
                assert_eq!(s, shard_of(u, n), "same user, same shard");
            }
        }
    }

    #[test]
    fn single_shard_routes_everything_to_zero() {
        assert!((0..1000u32).all(|u| shard_of(u, 1) == 0));
    }

    #[test]
    fn hashing_spreads_users() {
        let n = 8usize;
        let mut counts = vec![0usize; n];
        for u in 0..8000u32 {
            counts[shard_of(u, n)] += 1;
        }
        // FxHash of sequential ids is not perfectly uniform, but every
        // shard must carry a meaningful fraction of the users.
        for (s, &c) in counts.iter().enumerate() {
            assert!(c > 8000 / n / 4, "shard {s} starved: {c} users");
        }
    }
}
