//! Shared utilities for the SCCF workspace.
//!
//! This crate deliberately has no dependency on the rest of the workspace so
//! every other crate can use it. It provides:
//!
//! * [`hash`] — an FxHash implementation and `FxHashMap`/`FxHashSet` aliases
//!   (integer-keyed maps are on every hot path of a recommender).
//! * [`checksum`] — table-driven CRC-32 (IEEE) protecting the WAL and
//!   checkpoint frames of the durability layer.
//! * [`topk`] — heap-based top-k selection over scored ids, the primitive
//!   behind every "retrieve the N best items/users" step.
//! * [`stats`] — online mean/variance (Welford), z-normalization as used by
//!   the integrating component (Eq. 16 of the paper), histogramming for the
//!   figure reproductions.
//! * [`rng`] — deterministic seed derivation so every experiment is
//!   reproducible from a single root seed.
//! * [`sparse`] — epoch-stamped sparse accumulator / set slabs that make
//!   the per-event serving path allocation-free and O(touched), never
//!   O(catalog).
//! * [`table`] — minimal markdown/TSV table rendering for the `repro`
//!   harness output.
//! * [`timer`] — wall-clock timing helpers for the latency experiments
//!   (Table III).

pub mod checksum;
pub mod hash;
pub mod rng;
pub mod sparse;
pub mod stats;
pub mod table;
pub mod timer;
pub mod topk;

pub use checksum::{crc32, Crc32};
pub use hash::{FxHashMap, FxHashSet};
pub use sparse::{SparseScores, StampSet};
pub use stats::{zscore_normalize, Histogram, OnlineStats};
pub use table::Table;
pub use timer::{LatencyHistogram, Stopwatch, TimingStats};
pub use topk::TopK;
