//! CRC-32 (IEEE 802.3 polynomial, reflected) for the durability layer.
//!
//! The WAL and checkpoint formats frame every payload with a CRC so a
//! torn write or flipped bit is detected before a single byte of it is
//! applied to engine state. Table-driven, one 1 KiB table built at
//! first use — fast enough that checksumming never shows up next to
//! the fsync it guards.

/// Reflected IEEE polynomial (the `crc32` of zlib, gzip, ethernet).
const POLY: u32 = 0xEDB8_8320;

fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        let mut i = 0usize;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
                k += 1;
            }
            t[i] = c;
            i += 1;
        }
        t
    })
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

/// Streaming CRC-32 accumulator for multi-slice payloads.
#[derive(Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Self { state: !0 }
    }

    pub fn update(&mut self, bytes: &[u8]) {
        let t = table();
        let mut c = self.state;
        for &b in bytes {
            c = t[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        self.state = c;
    }

    pub fn finish(&self) -> u32 {
        !self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for the IEEE CRC-32.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data = b"hello durability world";
        let mut c = Crc32::new();
        c.update(&data[..5]);
        c.update(&data[5..]);
        assert_eq!(c.finish(), crc32(data));
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let mut data = vec![0u8; 64];
        data[17] = 0x5A;
        let base = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut d = data.clone();
                d[byte] ^= 1 << bit;
                assert_ne!(crc32(&d), base, "flip at {byte}:{bit} undetected");
            }
        }
    }
}
