//! Minimal text table rendering (markdown and TSV).
//!
//! The `repro` harness emits every paper table through this type, so all
//! experiment output is greppable, diffable and pasteable into
//! EXPERIMENTS.md without a serialization dependency.

use std::fmt::Write as _;

/// A simple rectangular table: a header row plus data rows of strings.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Self {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn title(&self) -> &str {
        &self.title
    }

    /// Append a row; short rows are padded with empty cells, long rows are
    /// a programming error.
    pub fn add_row(&mut self, cells: Vec<String>) {
        assert!(
            cells.len() <= self.header.len(),
            "row has {} cells but table has {} columns",
            cells.len(),
            self.header.len()
        );
        let mut cells = cells;
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
    }

    /// Convenience: append a row of displayable values.
    pub fn push<S: ToString>(&mut self, cells: &[S]) {
        self.add_row(cells.iter().map(|c| c.to_string()).collect());
    }

    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Render as GitHub-flavored markdown.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "### {}", self.title);
            out.push('\n');
        }
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::from("|");
            for (c, w) in cells.iter().zip(widths) {
                let _ = write!(line, " {:<width$} |", c, width = w);
            }
            line
        };
        let _ = writeln!(out, "{}", fmt_row(&self.header, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            let _ = write!(sep, "{:-<width$}|", "", width = w + 2);
        }
        let _ = writeln!(out, "{sep}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Render as tab-separated values (header first).
    pub fn to_tsv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.header.join("\t"));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join("\t"));
        }
        out
    }
}

/// Format a float with 4 decimal places — the precision the paper's tables use.
pub fn f4(x: f64) -> String {
    format!("{x:.4}")
}

/// Format a float with 2 decimal places (latencies, percentages).
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Format a ratio as a signed percentage string, e.g. `+12.75%`.
pub fn pct(x: f64) -> String {
    format!("{:+.2}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_shape() {
        let mut t = Table::new("Demo", &["a", "bb"]);
        t.push(&["1", "2"]);
        t.push(&["333", "4"]);
        let md = t.to_markdown();
        assert!(md.contains("### Demo"));
        assert!(md.contains("| a   | bb |"));
        assert!(md.contains("| 333 | 4  |"));
        let lines: Vec<&str> = md.lines().collect();
        // title, blank, header, separator, two rows
        assert_eq!(lines.len(), 6);
    }

    #[test]
    fn tsv_shape() {
        let mut t = Table::new("", &["x", "y"]);
        t.push(&["1", "2"]);
        assert_eq!(t.to_tsv(), "x\ty\n1\t2\n");
    }

    #[test]
    fn short_rows_padded() {
        let mut t = Table::new("", &["a", "b", "c"]);
        t.add_row(vec!["only".into()]);
        assert!(t.to_tsv().contains("only\t\t"));
    }

    #[test]
    #[should_panic(expected = "row has 3 cells")]
    fn long_rows_panic() {
        let mut t = Table::new("", &["a"]);
        t.push(&["1", "2", "3"]);
    }

    #[test]
    fn formatters() {
        assert_eq!(f4(0.123456), "0.1235");
        assert_eq!(f2(1.5), "1.50");
        assert_eq!(pct(0.025), "+2.50%");
        assert_eq!(pct(-0.01), "-1.00%");
    }
}
