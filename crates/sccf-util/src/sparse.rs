//! Sparse scratch structures for catalog-free hot paths.
//!
//! The serving loop touches only `β neighbors × recent_window items` per
//! event, yet a naive Eq. 12 implementation allocates and zeroes a full
//! `n_items` vector every call — the exact O(catalog) cost the paper's
//! UserKNN baseline pays. [`SparseScores`] and [`StampSet`] replace that
//! with reusable slabs whose *reset is O(1)*: validity is tracked by an
//! epoch stamp per slot, so neither clearing nor re-zeroing ever walks
//! the catalog. A touched-id list keeps iteration proportional to the
//! number of distinct ids actually written this epoch.
//!
//! Both structures allocate once (at catalog size) and are then reused
//! across events; the steady state performs no heap allocation at all.

/// A sparse accumulator over a dense id space `0..n`.
///
/// `add` accumulates weights per id; `get`/`iter` observe only ids
/// written since the last [`SparseScores::begin`]. Stale values from
/// earlier epochs are invisible (stamp-guarded), so `begin` is O(1).
#[derive(Debug, Clone)]
pub struct SparseScores {
    vals: Vec<f32>,
    stamp: Vec<u32>,
    epoch: u32,
    touched: Vec<u32>,
}

impl SparseScores {
    /// Accumulator over ids `0..n`. Allocates the slabs once.
    ///
    /// The epoch starts at 1 so the zero-initialized stamps are already
    /// "stale": a fresh accumulator is usable without a leading
    /// [`SparseScores::begin`].
    pub fn new(n: usize) -> Self {
        Self {
            vals: vec![0.0; n],
            stamp: vec![0; n],
            epoch: 1,
            touched: Vec::new(),
        }
    }

    /// Number of id slots.
    pub fn slots(&self) -> usize {
        self.vals.len()
    }

    /// Start a new accumulation epoch. O(1): previous values are
    /// invalidated by the stamp bump, not by re-zeroing.
    pub fn begin(&mut self) {
        self.touched.clear();
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            // u32 wrapped (once per ~4 billion epochs): old stamps could
            // alias the new epoch, so pay one full reset walk.
            self.stamp.fill(0);
            self.epoch = 1;
        }
    }

    /// Accumulate `w` onto `id`.
    #[inline]
    pub fn add(&mut self, id: u32, w: f32) {
        let i = id as usize;
        if self.stamp[i] == self.epoch {
            self.vals[i] += w;
        } else {
            self.stamp[i] = self.epoch;
            self.vals[i] = w;
            self.touched.push(id);
        }
    }

    /// Current value for `id` (0 when untouched this epoch).
    #[inline]
    pub fn get(&self, id: u32) -> f32 {
        let i = id as usize;
        if self.stamp[i] == self.epoch {
            self.vals[i]
        } else {
            0.0
        }
    }

    /// Ids touched this epoch, in first-touch order.
    pub fn touched(&self) -> &[u32] {
        &self.touched
    }

    /// `(id, value)` pairs touched this epoch, in first-touch order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, f32)> + '_ {
        self.touched.iter().map(|&id| (id, self.vals[id as usize]))
    }

    /// Scatter into a dense vector (allocates; compatibility path only).
    pub fn to_dense(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.vals.len()];
        for &id in &self.touched {
            out[id as usize] = self.vals[id as usize];
        }
        out
    }
}

/// A set over a dense id space `0..n` with O(1) clear via epoch stamps.
///
/// The reusable replacement for per-event `FxHashSet` allocations on the
/// serving path (history membership, candidate-union dedup).
#[derive(Debug, Clone)]
pub struct StampSet {
    stamp: Vec<u32>,
    epoch: u32,
}

impl StampSet {
    /// Empty set over ids `0..n`. The epoch starts at 1 so the
    /// zero-initialized stamps read as "absent" — usable immediately,
    /// no leading [`StampSet::clear`] required.
    pub fn new(n: usize) -> Self {
        Self {
            stamp: vec![0; n],
            epoch: 1,
        }
    }

    pub fn slots(&self) -> usize {
        self.stamp.len()
    }

    /// Empty the set. O(1) except once per u32 wrap.
    pub fn clear(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamp.fill(0);
            self.epoch = 1;
        }
    }

    /// Insert; returns true when `id` was not yet present.
    #[inline]
    pub fn insert(&mut self, id: u32) -> bool {
        let i = id as usize;
        if self.stamp[i] == self.epoch {
            false
        } else {
            self.stamp[i] = self.epoch;
            true
        }
    }

    #[inline]
    pub fn contains(&self, id: u32) -> bool {
        self.stamp[id as usize] == self.epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_and_resets_lazily() {
        let mut s = SparseScores::new(10);
        s.begin();
        s.add(3, 1.0);
        s.add(7, 0.5);
        s.add(3, 2.0);
        assert_eq!(s.get(3), 3.0);
        assert_eq!(s.get(7), 0.5);
        assert_eq!(s.get(0), 0.0);
        assert_eq!(s.touched(), &[3, 7]);
        s.begin();
        assert_eq!(s.get(3), 0.0, "stale value must be invisible");
        assert!(s.touched().is_empty());
        s.add(3, 9.0);
        assert_eq!(s.get(3), 9.0, "fresh write replaces, not accumulates stale");
    }

    #[test]
    fn iter_yields_first_touch_order() {
        let mut s = SparseScores::new(5);
        s.begin();
        s.add(4, 1.0);
        s.add(1, 1.0);
        s.add(4, 1.0);
        let pairs: Vec<_> = s.iter().collect();
        assert_eq!(pairs, vec![(4, 2.0), (1, 1.0)]);
        assert_eq!(s.to_dense(), vec![0.0, 1.0, 0.0, 0.0, 2.0]);
    }

    #[test]
    fn epoch_wrap_pays_one_walk_and_stays_correct() {
        let mut s = SparseScores::new(4);
        s.epoch = u32::MAX - 1;
        s.begin(); // epoch == MAX
        s.add(2, 1.5);
        assert_eq!(s.get(2), 1.5);
        s.begin(); // wraps to 1 after reset walk
        assert_eq!(s.epoch, 1);
        assert_eq!(s.get(2), 0.0);
        s.add(1, 0.5);
        assert_eq!(s.get(1), 0.5);

        let mut set = StampSet::new(4);
        set.epoch = u32::MAX;
        set.insert(3);
        set.clear();
        assert_eq!(set.epoch, 1);
        assert!(!set.contains(3));
    }

    #[test]
    fn fresh_structures_are_empty_without_reset() {
        // Regression: epoch must not alias the zero-initialized stamps.
        let s = StampSet::new(4);
        assert!(!s.contains(0) && !s.contains(3));
        let mut s = StampSet::new(4);
        assert!(s.insert(2), "first insert into a fresh set must succeed");

        let mut acc = SparseScores::new(4);
        assert_eq!(acc.get(1), 0.0);
        acc.add(1, 2.5); // no begin(): must still track touched ids
        assert_eq!(acc.get(1), 2.5);
        assert_eq!(acc.touched(), &[1]);
        assert_eq!(acc.to_dense(), vec![0.0, 2.5, 0.0, 0.0]);
    }

    #[test]
    fn stamp_set_insert_contains_clear() {
        let mut s = StampSet::new(8);
        s.clear();
        assert!(s.insert(5));
        assert!(!s.insert(5));
        assert!(s.contains(5));
        assert!(!s.contains(4));
        s.clear();
        assert!(!s.contains(5));
        assert!(s.insert(5));
    }
}
