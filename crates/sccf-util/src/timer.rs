//! Wall-clock timing for the real-time experiments.
//!
//! Table III of the paper splits per-event latency into *inferring* time
//! (computing the fresh user representation) and *identifying* time
//! (finding the β nearest users). [`Stopwatch`] measures one leg;
//! [`TimingStats`] aggregates across events and reports the mean in
//! milliseconds, which is what the paper's table shows.

use std::time::{Duration, Instant};

use crate::stats::OnlineStats;

/// Measures one interval with `Instant`.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    pub fn start() -> Self {
        Self {
            start: Instant::now(),
        }
    }

    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed milliseconds as `f64`.
    pub fn elapsed_ms(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1e3
    }

    /// Restart the stopwatch and return the elapsed milliseconds of the lap.
    pub fn lap_ms(&mut self) -> f64 {
        let ms = self.elapsed_ms();
        self.start = Instant::now();
        ms
    }
}

/// Aggregate of many measured intervals (in milliseconds).
#[derive(Debug, Clone, Default)]
pub struct TimingStats {
    stats: OnlineStats,
}

impl TimingStats {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn record_ms(&mut self, ms: f64) {
        self.stats.push(ms);
    }

    pub fn record(&mut self, d: Duration) {
        self.stats.push(d.as_secs_f64() * 1e3);
    }

    /// Run `f` and record its wall time, returning its output.
    pub fn time<T>(&mut self, f: impl FnOnce() -> T) -> T {
        let sw = Stopwatch::start();
        let out = f();
        self.record_ms(sw.elapsed_ms());
        out
    }

    pub fn count(&self) -> u64 {
        self.stats.count()
    }

    pub fn mean_ms(&self) -> f64 {
        self.stats.mean()
    }

    pub fn std_ms(&self) -> f64 {
        self.stats.std()
    }

    pub fn max_ms(&self) -> f64 {
        if self.stats.count() == 0 {
            0.0
        } else {
            self.stats.max()
        }
    }

    pub fn merge(&mut self, other: &TimingStats) {
        self.stats.merge(&other.stats);
    }

    /// The underlying accumulator's raw state — see
    /// [`OnlineStats::parts`]. With [`TimingStats::from_parts`] this
    /// round-trips the aggregate exactly across a process boundary.
    pub fn parts(&self) -> (u64, f64, f64, f64, f64) {
        self.stats.parts()
    }

    /// Rebuild from [`TimingStats::parts`] — see
    /// [`OnlineStats::from_parts`].
    pub fn from_parts(n: u64, mean: f64, m2: f64, min: f64, max: f64) -> Self {
        Self {
            stats: OnlineStats::from_parts(n, mean, m2, min, max),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_measures_nonnegative() {
        let sw = Stopwatch::start();
        let ms = sw.elapsed_ms();
        assert!(ms >= 0.0);
    }

    #[test]
    fn lap_resets() {
        let mut sw = Stopwatch::start();
        std::thread::sleep(Duration::from_millis(2));
        let first = sw.lap_ms();
        assert!(first >= 1.0);
        let second = sw.elapsed_ms();
        assert!(second < first + 1.0);
    }

    #[test]
    fn timing_stats_aggregate() {
        let mut ts = TimingStats::new();
        ts.record_ms(1.0);
        ts.record_ms(3.0);
        assert_eq!(ts.count(), 2);
        assert!((ts.mean_ms() - 2.0).abs() < 1e-12);
        assert_eq!(ts.max_ms(), 3.0);
    }

    #[test]
    fn time_returns_value() {
        let mut ts = TimingStats::new();
        let v = ts.time(|| 40 + 2);
        assert_eq!(v, 42);
        assert_eq!(ts.count(), 1);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = TimingStats::new();
        a.record_ms(1.0);
        let mut b = TimingStats::new();
        b.record_ms(5.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!((a.mean_ms() - 3.0).abs() < 1e-12);
    }
}

/// Log-bucketed latency histogram with percentile queries.
///
/// Buckets grow geometrically (~10 % per step) from 1 µs to ~1 hour, so
/// the structure is fixed-size (no per-sample storage) while percentile
/// error stays below one bucket width — the standard production latency
/// recorder (HdrHistogram-style), used for the serving-side p50/p95/p99
/// the mean of [`TimingStats`] cannot express.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    /// `counts[b]` = samples whose µs value falls in bucket `b`.
    counts: Vec<u64>,
    total: u64,
    /// Exact running extremes (reported unbucketed).
    min_us: f64,
    max_us: f64,
}

/// Geometric growth factor per bucket.
const LAT_BASE: f64 = 1.1;
/// Number of buckets: 1.1^170 ≈ 1.1e7 µs ≈ 11 s top bucket, plus one
/// overflow bucket.
const LAT_BUCKETS: usize = 172;

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    pub fn new() -> Self {
        Self {
            counts: vec![0; LAT_BUCKETS],
            total: 0,
            min_us: f64::INFINITY,
            max_us: 0.0,
        }
    }

    fn bucket_of(us: f64) -> usize {
        if us <= 1.0 {
            return 0;
        }
        let b = us.ln() / LAT_BASE.ln();
        (b.ceil() as usize).min(LAT_BUCKETS - 1)
    }

    /// Upper edge of bucket `b` in µs.
    fn bucket_edge(b: usize) -> f64 {
        LAT_BASE.powi(b as i32)
    }

    /// Record one latency in milliseconds.
    pub fn record_ms(&mut self, ms: f64) {
        let us = (ms * 1000.0).max(0.0);
        self.counts[Self::bucket_of(us)] += 1;
        self.total += 1;
        self.min_us = self.min_us.min(us);
        self.max_us = self.max_us.max(us);
    }

    pub fn count(&self) -> u64 {
        self.total
    }

    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Value (ms) at quantile `q ∈ [0, 1]`: the upper edge of the first
    /// bucket whose cumulative count reaches `q·total`. Returns 0 when
    /// empty. Accuracy is one bucket (≤ 10 % relative error), except the
    /// extremes which are exact.
    pub fn quantile_ms(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        if q <= 0.0 {
            return self.min_us / 1000.0;
        }
        if q >= 1.0 {
            return self.max_us / 1000.0;
        }
        let target = (q * self.total as f64).ceil() as u64;
        let mut cum = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                return Self::bucket_edge(b).min(self.max_us) / 1000.0;
            }
        }
        self.max_us / 1000.0
    }

    /// Shorthands for the standard serving percentiles.
    pub fn p50_ms(&self) -> f64 {
        self.quantile_ms(0.50)
    }

    pub fn p95_ms(&self) -> f64 {
        self.quantile_ms(0.95)
    }

    pub fn p99_ms(&self) -> f64 {
        self.quantile_ms(0.99)
    }

    /// Merge another histogram into this one (per-shard recorders).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, &b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.min_us = self.min_us.min(other.min_us);
        self.max_us = self.max_us.max(other.max_us);
    }
}

#[cfg(test)]
mod latency_tests {
    use super::*;

    #[test]
    fn quantiles_of_uniform_samples() {
        let mut h = LatencyHistogram::new();
        for i in 1..=1000 {
            h.record_ms(i as f64 / 100.0); // 0.01 .. 10 ms
        }
        assert_eq!(h.count(), 1000);
        // p50 ≈ 5 ms within one bucket (10 %)
        let p50 = h.p50_ms();
        assert!((4.0..=6.0).contains(&p50), "p50 {p50}");
        let p99 = h.p99_ms();
        assert!((8.5..=11.0).contains(&p99), "p99 {p99}");
        // extremes are exact
        assert!((h.quantile_ms(0.0) - 0.01).abs() < 1e-9);
        assert!((h.quantile_ms(1.0) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.p50_ms(), 0.0);
        assert_eq!(h.p99_ms(), 0.0);
    }

    #[test]
    fn single_sample_all_quantiles_agree() {
        let mut h = LatencyHistogram::new();
        h.record_ms(2.5);
        for q in [0.0, 0.5, 0.95, 1.0] {
            let v = h.quantile_ms(q);
            assert!((2.2..=2.8).contains(&v), "q{q} -> {v}");
        }
    }

    #[test]
    fn merge_combines_counts_and_extremes() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record_ms(1.0);
        b.record_ms(100.0);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert!((a.quantile_ms(0.0) - 1.0).abs() < 1e-9);
        assert!((a.quantile_ms(1.0) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn monotone_in_quantile() {
        let mut h = LatencyHistogram::new();
        for i in 0..500 {
            h.record_ms(0.1 + (i % 37) as f64);
        }
        let mut prev = 0.0;
        for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
            let v = h.quantile_ms(q);
            assert!(v >= prev, "quantiles must be monotone");
            prev = v;
        }
    }

    #[test]
    fn oversized_latency_lands_in_overflow_bucket() {
        let mut h = LatencyHistogram::new();
        h.record_ms(10_000_000.0); // far beyond the top edge
        assert_eq!(h.count(), 1);
        assert!(h.p99_ms() > 0.0);
    }
}
