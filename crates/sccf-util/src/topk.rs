//! Top-k selection over `(score, id)` pairs.
//!
//! Every retrieval step in the paper — top-N items by `m_u·q_i` (Eq. 10),
//! top-β neighbors by cosine (Eq. 11), top-N items by the user-based score
//! (Eq. 12) — reduces to "keep the k largest scores seen in a stream".
//! A bounded binary min-heap does this in `O(n log k)` without materializing
//! or sorting the full score vector.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scored id. Ordering is by score (ties broken by id for determinism);
/// NaN scores are treated as negative infinity so they never enter a top-k.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scored {
    pub score: f32,
    pub id: u32,
}

impl Scored {
    #[inline]
    fn key(&self) -> (f32, u32) {
        let s = if self.score.is_nan() {
            f32::NEG_INFINITY
        } else {
            self.score
        };
        (s, self.id)
    }
}

impl Eq for Scored {}

impl PartialOrd for Scored {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Scored {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        let (sa, ia) = self.key();
        let (sb, ib) = other.key();
        // total_cmp is total over the non-NaN range we map into;
        // ids descending so that *smaller* ids win ties in a max-ordering.
        sa.total_cmp(&sb).then(ib.cmp(&ia))
    }
}

/// Bounded top-k accumulator (keeps the k items with the largest scores).
///
/// ```
/// use sccf_util::topk::TopK;
/// let mut tk = TopK::new(2);
/// for (id, s) in [(0u32, 0.1f32), (1, 0.9), (2, 0.5), (3, 0.7)] {
///     tk.push(id, s);
/// }
/// let out = tk.into_sorted_vec();
/// assert_eq!(out[0].id, 1);
/// assert_eq!(out[1].id, 3);
/// ```
#[derive(Debug, Clone)]
pub struct TopK {
    k: usize,
    // Min-heap via Reverse ordering: the root is the current k-th best.
    heap: BinaryHeap<std::cmp::Reverse<Scored>>,
}

impl TopK {
    /// A new accumulator keeping the `k` best entries. `k == 0` keeps nothing.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// Number of entries currently held (≤ k).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no entries are held.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The current k-th best score, i.e. the admission threshold once full.
    pub fn threshold(&self) -> Option<f32> {
        if self.heap.len() < self.k {
            None
        } else {
            self.heap.peek().map(|r| r.0.score)
        }
    }

    /// Offer one candidate.
    #[inline]
    pub fn push(&mut self, id: u32, score: f32) {
        if self.k == 0 || score.is_nan() {
            return;
        }
        let cand = Scored { score, id };
        if self.heap.len() < self.k {
            self.heap.push(std::cmp::Reverse(cand));
        } else if let Some(worst) = self.heap.peek() {
            if cand > worst.0 {
                self.heap.pop();
                self.heap.push(std::cmp::Reverse(cand));
            }
        }
    }

    /// Offer a whole scored slice, where position is the id.
    pub fn extend_from_scores(&mut self, scores: &[f32]) {
        for (id, &s) in scores.iter().enumerate() {
            self.push(id as u32, s);
        }
    }

    /// Consume, returning entries sorted by descending score
    /// (ties: ascending id).
    pub fn into_sorted_vec(self) -> Vec<Scored> {
        let mut v: Vec<Scored> = self.heap.into_iter().map(|r| r.0).collect();
        v.sort_unstable_by(|a, b| b.cmp(a));
        v
    }

    /// Reset for reuse under a (possibly different) bound `k`, keeping
    /// the heap's allocation — the scratch-buffer form the serving hot
    /// path needs so repeated beam searches allocate nothing.
    pub fn reset(&mut self, k: usize) {
        self.k = k;
        self.heap.clear();
        let want = k + 1;
        if self.heap.capacity() < want {
            self.heap.reserve(want - self.heap.capacity());
        }
    }

    /// Drain entries into `out` (cleared first), sorted by descending
    /// score with the same tie-break as [`into_sorted_vec`](Self::into_sorted_vec),
    /// keeping both the heap's and `out`'s allocations.
    pub fn drain_sorted_into(&mut self, out: &mut Vec<Scored>) {
        out.clear();
        self.drain_sorted_append(out);
    }

    /// Like [`drain_sorted_into`](Self::drain_sorted_into) but appends:
    /// entries before the call are left untouched, the drained tail is
    /// sorted descending. This is the merge-friendly form — append the
    /// frozen-tier results after the delta-tier hits, then re-sort the
    /// whole buffer once.
    pub fn drain_sorted_append(&mut self, out: &mut Vec<Scored>) {
        let start = out.len();
        out.extend(self.heap.drain().map(|r| r.0));
        out[start..].sort_unstable_by(|a, b| b.cmp(a));
    }
}

/// One-shot helper: top-k of a dense score vector, descending.
pub fn topk_of_scores(scores: &[f32], k: usize) -> Vec<Scored> {
    let mut tk = TopK::new(k);
    tk.extend_from_scores(scores);
    tk.into_sorted_vec()
}

/// One-shot helper: top-k over an iterator of `(id, score)` pairs.
pub fn topk_of_pairs(pairs: impl Iterator<Item = (u32, f32)>, k: usize) -> Vec<Scored> {
    let mut tk = TopK::new(k);
    for (id, s) in pairs {
        tk.push(id, s);
    }
    tk.into_sorted_vec()
}

/// Rank (1-based) of `target` in the descending ordering of `scores`,
/// with the same deterministic tie-break as [`TopK`] (lower id ranks first).
/// This is what HR@k / NDCG@k need: the position of the ground-truth item.
pub fn rank_of(scores: &[f32], target: u32) -> usize {
    let t = Scored {
        score: scores[target as usize],
        id: target,
    };
    let mut rank = 1usize;
    for (id, &s) in scores.iter().enumerate() {
        let c = Scored {
            score: s,
            id: id as u32,
        };
        if c > t {
            rank += 1;
        }
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_best_k() {
        let scores = [0.3f32, 0.9, 0.1, 0.7, 0.5];
        let out = topk_of_scores(&scores, 3);
        let ids: Vec<u32> = out.iter().map(|s| s.id).collect();
        assert_eq!(ids, vec![1, 3, 4]);
    }

    #[test]
    fn k_zero_and_empty() {
        assert!(topk_of_scores(&[1.0, 2.0], 0).is_empty());
        assert!(topk_of_scores(&[], 5).is_empty());
    }

    #[test]
    fn k_larger_than_n() {
        let out = topk_of_scores(&[0.2, 0.8], 10);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].id, 1);
    }

    #[test]
    fn nan_never_selected() {
        let out = topk_of_scores(&[f32::NAN, 0.5, f32::NAN], 2);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].id, 1);
    }

    #[test]
    fn ties_break_by_lower_id() {
        let out = topk_of_scores(&[0.5, 0.5, 0.5], 2);
        let ids: Vec<u32> = out.iter().map(|s| s.id).collect();
        assert_eq!(ids, vec![0, 1]);
    }

    #[test]
    fn threshold_tracks_kth_best() {
        let mut tk = TopK::new(2);
        assert_eq!(tk.threshold(), None);
        tk.push(0, 1.0);
        assert_eq!(tk.threshold(), None);
        tk.push(1, 3.0);
        assert_eq!(tk.threshold(), Some(1.0));
        tk.push(2, 2.0);
        assert_eq!(tk.threshold(), Some(2.0));
    }

    #[test]
    fn rank_of_matches_sorted_position() {
        let scores = [0.3f32, 0.9, 0.1, 0.7, 0.5];
        assert_eq!(rank_of(&scores, 1), 1);
        assert_eq!(rank_of(&scores, 3), 2);
        assert_eq!(rank_of(&scores, 4), 3);
        assert_eq!(rank_of(&scores, 0), 4);
        assert_eq!(rank_of(&scores, 2), 5);
    }

    #[test]
    fn reset_and_drain_match_one_shot() {
        let scores = [0.3f32, 0.9, 0.1, 0.7, 0.5, 0.9];
        let mut tk = TopK::new(3);
        let mut out = Vec::new();
        for round in 0..3 {
            tk.reset(3);
            tk.extend_from_scores(&scores);
            tk.drain_sorted_into(&mut out);
            assert_eq!(out, topk_of_scores(&scores, 3), "round {round}");
        }
        // rebound to a different k mid-stream
        tk.reset(5);
        tk.extend_from_scores(&scores);
        tk.drain_sorted_into(&mut out);
        assert_eq!(out, topk_of_scores(&scores, 5));
    }

    #[test]
    fn rank_of_tie_break_is_consistent_with_topk() {
        // Two ties: item 1 and 2 both at 0.5. Lower id ranks first.
        let scores = [0.9f32, 0.5, 0.5];
        assert_eq!(rank_of(&scores, 1), 2);
        assert_eq!(rank_of(&scores, 2), 3);
    }
}
