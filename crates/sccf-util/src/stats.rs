//! Streaming statistics, z-normalization and histograms.
//!
//! The integrating component of the paper normalizes the UI and UU
//! preference scores *per user* before feeding them to the fusion MLP
//! (Eq. 16): `r̃ = (r̂ − mean(r̂)) / std(r̂)`. [`zscore_normalize`] is that
//! operation; [`OnlineStats`] is the single-pass mean/std behind it and
//! behind the latency aggregation of Table III. [`Histogram`] backs the
//! figure reproductions (Figures 1 and 4).

/// Single-pass mean / variance accumulator (Welford's algorithm).
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merge another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    pub fn count(&self) -> u64 {
        self.n
    }

    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (divides by n). Zero for n < 2.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std(&self) -> f64 {
        self.variance().sqrt()
    }

    pub fn min(&self) -> f64 {
        self.min
    }

    pub fn max(&self) -> f64 {
        self.max
    }

    /// The accumulator's raw state `(n, mean, m2, min, max)` — the
    /// serialization surface. Together with [`OnlineStats::from_parts`]
    /// this round-trips an accumulator *exactly* (bit-identical f64s),
    /// which is what lets aggregated timings cross a process boundary
    /// without losing the merge algebra.
    pub fn parts(&self) -> (u64, f64, f64, f64, f64) {
        (self.n, self.mean, self.m2, self.min, self.max)
    }

    /// Rebuild an accumulator from [`OnlineStats::parts`]. The fields
    /// are trusted as-is; feeding values that never came from a real
    /// accumulator yields whatever statistics those values imply.
    pub fn from_parts(n: u64, mean: f64, m2: f64, min: f64, max: f64) -> Self {
        Self {
            n,
            mean,
            m2,
            min,
            max,
        }
    }
}

/// Z-normalize `values` in place: subtract the mean, divide by the standard
/// deviation. This is Eq. 16 of the paper, applied per user over the
/// candidate-set scores. A zero (or near-zero) std leaves the centered
/// values unscaled, which keeps constant score vectors at exactly zero
/// rather than NaN.
pub fn zscore_normalize(values: &mut [f32]) {
    if values.is_empty() {
        return;
    }
    let mut st = OnlineStats::new();
    for &v in values.iter() {
        st.push(v as f64);
    }
    let mean = st.mean() as f32;
    let std = st.std() as f32;
    if std > 1e-8 {
        for v in values.iter_mut() {
            *v = (*v - mean) / std;
        }
    } else {
        for v in values.iter_mut() {
            *v -= mean;
        }
    }
}

/// Mean of a slice; 0 for empty input.
pub fn mean(values: &[f32]) -> f32 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().map(|&v| v as f64).sum::<f64>() as f32 / values.len() as f32
}

/// Fixed-width histogram over `[lo, hi)` with `bins` buckets.
/// Out-of-range observations are clamped into the first/last bucket, so the
/// total count always equals the number of pushes.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
}

impl Histogram {
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        Self {
            lo,
            hi,
            counts: vec![0; bins],
        }
    }

    #[inline]
    pub fn push(&mut self, x: f64) {
        let bins = self.counts.len();
        let t = (x - self.lo) / (self.hi - self.lo);
        let idx = ((t * bins as f64).floor() as i64).clamp(0, bins as i64 - 1) as usize;
        self.counts[idx] += 1;
    }

    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Center of bucket `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + w * (i as f64 + 0.5)
    }

    /// `(bin_center, count)` pairs — the series plotted in the figures.
    pub fn series(&self) -> Vec<(f64, u64)> {
        (0..self.counts.len())
            .map(|i| (self.bin_center(i), self.counts[i]))
            .collect()
    }

    /// `(bin_center, fraction_of_total)` pairs.
    pub fn normalized_series(&self) -> Vec<(f64, f64)> {
        let total = self.total().max(1) as f64;
        self.series()
            .into_iter()
            .map(|(c, n)| (c, n as f64 / total))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_two_pass() {
        let xs = [1.0, 2.0, 3.0, 4.0, 10.0];
        let mut st = OnlineStats::new();
        for &x in &xs {
            st.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!((st.mean() - mean).abs() < 1e-12);
        assert!((st.variance() - var).abs() < 1e-12);
        assert_eq!(st.min(), 1.0);
        assert_eq!(st.max(), 10.0);
        assert_eq!(st.count(), 5);
    }

    #[test]
    fn merge_equals_single_stream() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 3.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert!((a.mean() - whole.mean()).abs() < 1e-10);
        assert!((a.variance() - whole.variance()).abs() < 1e-10);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(3.0);
        let before = (a.mean(), a.variance());
        a.merge(&OnlineStats::new());
        assert_eq!((a.mean(), a.variance()), before);

        let mut e = OnlineStats::new();
        e.merge(&a);
        assert_eq!(e.count(), 2);
    }

    #[test]
    fn zscore_gives_zero_mean_unit_std() {
        let mut v = vec![1.0f32, 2.0, 3.0, 4.0, 5.0];
        zscore_normalize(&mut v);
        let m = mean(&v);
        let var: f32 = v.iter().map(|x| (x - m) * (x - m)).sum::<f32>() / v.len() as f32;
        assert!(m.abs() < 1e-6);
        assert!((var - 1.0).abs() < 1e-4);
    }

    #[test]
    fn zscore_constant_input_centers_without_nan() {
        let mut v = vec![7.0f32; 4];
        zscore_normalize(&mut v);
        assert!(v.iter().all(|x| x.abs() < 1e-6));
    }

    #[test]
    fn zscore_empty_is_noop() {
        let mut v: Vec<f32> = vec![];
        zscore_normalize(&mut v);
        assert!(v.is_empty());
    }

    #[test]
    fn histogram_buckets_and_clamps() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.push(0.5); // bin 0
        h.push(9.9); // bin 4
        h.push(-3.0); // clamped to bin 0
        h.push(42.0); // clamped to bin 4
        h.push(5.0); // bin 2
        assert_eq!(h.counts(), &[2, 0, 1, 0, 2]);
        assert_eq!(h.total(), 5);
        assert!((h.bin_center(0) - 1.0).abs() < 1e-12);
        let norm = h.normalized_series();
        let sum: f64 = norm.iter().map(|(_, f)| f).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }
}
