//! Deterministic seed derivation.
//!
//! Every experiment in the harness is reproducible from one root seed.
//! Sub-systems (data generation, model init, negative sampling, click
//! simulation, ...) each derive an independent stream with
//! [`derive_seed`], so adding a new consumer never perturbs the randomness
//! of existing ones — the classic "seed splitting" discipline.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// SplitMix64 step: the standard 64-bit mixer used to expand and decorrelate
/// seeds. Passes through every bit of the input.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive a child seed from `(root, stream)`; distinct streams give
/// decorrelated seeds.
pub fn derive_seed(root: u64, stream: u64) -> u64 {
    let mut s = root ^ 0xA076_1D64_78BD_642F_u64.wrapping_mul(stream.wrapping_add(1));
    let a = splitmix64(&mut s);
    let b = splitmix64(&mut s);
    a ^ b.rotate_left(17)
}

/// A seeded [`StdRng`] for the given `(root, stream)` pair.
pub fn rng_for(root: u64, stream: u64) -> StdRng {
    StdRng::seed_from_u64(derive_seed(root, stream))
}

/// Named streams used across the workspace, so call sites read as intent
/// rather than magic numbers.
pub mod streams {
    pub const DATA_GEN: u64 = 1;
    pub const MODEL_INIT: u64 = 2;
    pub const NEG_SAMPLING: u64 = 3;
    pub const TRAIN_SHUFFLE: u64 = 4;
    pub const DROPOUT: u64 = 5;
    pub const CLICK_MODEL: u64 = 6;
    pub const BUCKET_SPLIT: u64 = 7;
    pub const EVAL: u64 = 8;
    pub const INDEX: u64 = 9;
    pub const INTEGRATOR: u64 = 10;
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn derive_is_deterministic() {
        assert_eq!(derive_seed(7, 1), derive_seed(7, 1));
    }

    #[test]
    fn streams_are_decorrelated() {
        let a = derive_seed(7, 1);
        let b = derive_seed(7, 2);
        let c = derive_seed(8, 1);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn rng_reproducible() {
        let mut r1 = rng_for(42, streams::DATA_GEN);
        let mut r2 = rng_for(42, streams::DATA_GEN);
        let x1: u64 = r1.gen();
        let x2: u64 = r2.gen();
        assert_eq!(x1, x2);
    }

    #[test]
    fn splitmix_mixes() {
        let mut s = 0u64;
        let a = splitmix64(&mut s);
        let b = splitmix64(&mut s);
        assert_ne!(a, b);
        assert_ne!(a, 0);
    }
}
