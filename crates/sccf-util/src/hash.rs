//! FxHash: the fast, non-cryptographic hash used by rustc.
//!
//! Recommenders hash `u32` user/item ids billions of times; SipHash (the
//! std default) is a measurable cost there. This is a self-contained
//! re-implementation of the well-known Fx algorithm (multiply-xor-rotate)
//! so we stay within the approved dependency set.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED64: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The Fx hashing state: `hash = (hash.rotate_left(5) ^ word) * SEED`.
///
/// Not HashDoS-resistant; all keys in this workspace are internal ids, never
/// attacker-controlled.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED64);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// Convenience constructor for an empty [`FxHashMap`].
pub fn fx_map<K, V>() -> FxHashMap<K, V> {
    FxHashMap::default()
}

/// Convenience constructor for an [`FxHashMap`] with a capacity hint.
pub fn fx_map_with_capacity<K, V>(cap: usize) -> FxHashMap<K, V> {
    FxHashMap::with_capacity_and_hasher(cap, BuildHasherDefault::default())
}

/// Convenience constructor for an empty [`FxHashSet`].
pub fn fx_set<T>() -> FxHashSet<T> {
    FxHashSet::default()
}

/// Convenience constructor for an [`FxHashSet`] with a capacity hint.
pub fn fx_set_with_capacity<T>(cap: usize) -> FxHashSet<T> {
    FxHashSet::with_capacity_and_hasher(cap, BuildHasherDefault::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u32, &str> = fx_map();
        m.insert(1, "a");
        m.insert(2, "b");
        assert_eq!(m.get(&1), Some(&"a"));
        assert_eq!(m.get(&2), Some(&"b"));
        assert_eq!(m.get(&3), None);
    }

    #[test]
    fn hash_is_deterministic() {
        let h = |x: u64| {
            let mut hasher = FxHasher::default();
            hasher.write_u64(x);
            hasher.finish()
        };
        assert_eq!(h(42), h(42));
        assert_ne!(h(42), h(43));
    }

    #[test]
    fn byte_writes_cover_remainder_paths() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 0, 0, 0, 0, 0]);
        // A 3-byte write is zero-padded into one 8-byte word, so these agree.
        assert_eq!(a.finish(), b.finish());

        let mut c = FxHasher::default();
        c.write(&[9; 17]); // 2 full words + 1 remainder byte
        assert_ne!(c.finish(), 0);
    }

    #[test]
    fn set_dedups() {
        let mut s: FxHashSet<u32> = fx_set();
        assert!(s.insert(7));
        assert!(!s.insert(7));
        assert_eq!(s.len(), 1);
    }
}
