//! # sccf-data
//!
//! Data substrate for the SCCF reproduction: implicit-feedback datasets
//! with chronological per-user sequences, the paper's preprocessing and
//! leave-one-out evaluation split, negative sampling, a latent-factor
//! synthetic generator (the stand-in for MovieLens / Amazon / Taobao — see
//! DESIGN.md for the substitution argument), the four Table-I-like
//! benchmark configurations, a TSV loader for real logs, and the Figure 1
//! category-revisit analysis.
//!
//! ```
//! use sccf_data::catalog::{ml1m_sim, Scale};
//! use sccf_data::synthetic::generate;
//! use sccf_data::split::LeaveOneOut;
//!
//! let mut cfg = ml1m_sim(Scale::Quick);
//! cfg.n_users = 50; // keep the doctest fast
//! let data = generate(&cfg, 42).dataset;
//! let split = LeaveOneOut::split(&data);
//! assert_eq!(split.n_users(), data.n_users());
//! // every evaluated user has a held-out test item
//! assert!(!split.test_users().is_empty());
//! ```

pub mod analysis;
pub mod catalog;
pub mod dataset;
pub mod loader;
pub mod negative;
pub mod split;
pub mod synthetic;
pub mod writer;

pub use catalog::Scale;
pub use dataset::{Dataset, DatasetStats, Interaction};
pub use negative::NegativeSampler;
pub use split::LeaveOneOut;
pub use synthetic::{generate, GroundTruth, SyntheticConfig, SyntheticData};
pub use writer::{write_tsv, write_tsv_writer};
