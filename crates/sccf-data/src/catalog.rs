//! The four benchmark dataset configurations, mirroring Table I.
//!
//! The paper evaluates on ML-1M / ML-20M (dense, long histories) and
//! Amazon Games / Beauty (sparse, ~9 actions per user). The synthetic
//! configs keep those *contrasts* — relative density, sequence length,
//! catalog size ordering — at two CPU-friendly scales. `Quick` keeps the
//! full Table II reproduction in minutes; `Full` is roughly 4× larger.

use crate::synthetic::SyntheticConfig;

/// Experiment scale knob shared by the whole harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Minutes-scale: CI and default `repro` runs.
    Quick,
    /// Larger datasets; tens of minutes for the full suite.
    Full,
}

impl Scale {
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "quick" => Some(Scale::Quick),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }

    fn mul(&self, quick: usize, full: usize) -> usize {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}

/// `ml1m-sim`: dense, long sequences, small catalog — the ML-1M analogue
/// (ML-1M: 6040 users × 3416 items, avg 163.5, density 4.79 %).
pub fn ml1m_sim(scale: Scale) -> SyntheticConfig {
    SyntheticConfig {
        name: "ml1m-sim".into(),
        n_users: scale.mul(400, 1200),
        n_items: scale.mul(350, 900),
        n_categories: 18,
        n_groups: 10,
        latent_dim: 16,
        mean_len: 48.0,
        min_len: 8,
        zipf_s: 1.0,
        user_scatter: 0.22,
        item_scatter: 0.32,
        drift: 0.06,
        jump_prob: 0.05,
        category_temp: 5.0,
        item_temp: 3.0,
        markov_prob: 0.35,
        seq_temp: 4.0,
        niche_pairs: 1,
        niche_prob: 0.35,
        n_days: 30,
    }
}

/// `ml20m-sim`: the largest dataset — more users and items, long
/// sequences (ML-20M: 138 k users × 26.7 k items, avg 144.4, 0.54 %).
pub fn ml20m_sim(scale: Scale) -> SyntheticConfig {
    SyntheticConfig {
        name: "ml20m-sim".into(),
        n_users: scale.mul(900, 3000),
        n_items: scale.mul(700, 2400),
        n_categories: 28,
        n_groups: 16,
        latent_dim: 16,
        mean_len: 40.0,
        min_len: 8,
        zipf_s: 1.05,
        user_scatter: 0.22,
        item_scatter: 0.32,
        drift: 0.06,
        jump_prob: 0.05,
        category_temp: 5.0,
        item_temp: 3.0,
        markov_prob: 0.35,
        seq_temp: 4.0,
        niche_pairs: 1,
        niche_prob: 0.35,
        n_days: 30,
    }
}

/// `games-sim`: sparse, short sequences (Amazon Games: 29.3 k users ×
/// 23.5 k items, avg 9.1, density 0.04 %).
pub fn games_sim(scale: Scale) -> SyntheticConfig {
    SyntheticConfig {
        name: "games-sim".into(),
        n_users: scale.mul(700, 2400),
        n_items: scale.mul(800, 2800),
        n_categories: 24,
        n_groups: 12,
        latent_dim: 16,
        mean_len: 10.0,
        min_len: 6,
        zipf_s: 1.1,
        user_scatter: 0.25,
        item_scatter: 0.4,
        drift: 0.1,
        jump_prob: 0.08,
        category_temp: 5.0,
        item_temp: 3.0,
        markov_prob: 0.3,
        seq_temp: 4.0,
        niche_pairs: 1,
        niche_prob: 0.3,
        n_days: 30,
    }
}

/// `beauty-sim`: the sparsest dataset (Amazon Beauty: 40.2 k users ×
/// 54.5 k items, avg 8.8, density 0.02 %).
pub fn beauty_sim(scale: Scale) -> SyntheticConfig {
    SyntheticConfig {
        name: "beauty-sim".into(),
        n_users: scale.mul(900, 3200),
        n_items: scale.mul(1200, 4200),
        n_categories: 30,
        n_groups: 14,
        latent_dim: 16,
        mean_len: 9.0,
        min_len: 6,
        zipf_s: 1.15,
        user_scatter: 0.25,
        item_scatter: 0.4,
        drift: 0.1,
        jump_prob: 0.08,
        category_temp: 5.0,
        item_temp: 3.0,
        markov_prob: 0.3,
        seq_temp: 4.0,
        niche_pairs: 1,
        niche_prob: 0.3,
        n_days: 30,
    }
}

/// All four benchmark configs in the paper's presentation order.
pub fn all_benchmarks(scale: Scale) -> Vec<SyntheticConfig> {
    vec![
        ml1m_sim(scale),
        ml20m_sim(scale),
        games_sim(scale),
        beauty_sim(scale),
    ]
}

/// A Taobao-like stream config for Figure 1 and the A/B simulator:
/// pronounced drift and frequent category adoption.
pub fn taobao_sim(scale: Scale) -> SyntheticConfig {
    SyntheticConfig {
        name: "taobao-sim".into(),
        n_users: scale.mul(800, 3000),
        n_items: scale.mul(900, 3000),
        n_categories: 40,
        n_groups: 16,
        latent_dim: 16,
        mean_len: 60.0,
        min_len: 15,
        zipf_s: 1.0,
        user_scatter: 0.22,
        item_scatter: 0.35,
        drift: 0.12,
        jump_prob: 0.12,
        category_temp: 4.0,
        item_temp: 3.0,
        markov_prob: 0.3,
        seq_temp: 4.0,
        niche_pairs: 2,
        niche_prob: 0.4,
        n_days: 30,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::generate;

    #[test]
    fn scale_parse() {
        assert_eq!(Scale::parse("quick"), Some(Scale::Quick));
        assert_eq!(Scale::parse("full"), Some(Scale::Full));
        assert_eq!(Scale::parse("bogus"), None);
    }

    #[test]
    fn density_ordering_matches_paper() {
        // ML-like configs must be denser than Amazon-like ones, as in
        // Table I (4.79 % / 0.54 % vs 0.04 % / 0.02 %).
        let ds: Vec<_> = all_benchmarks(Scale::Quick)
            .iter()
            .map(|cfg| generate(cfg, 1).dataset.stats())
            .collect();
        assert!(ds[0].density > ds[2].density, "ml1m vs games");
        assert!(ds[0].density > ds[3].density, "ml1m vs beauty");
        assert!(ds[1].density > ds[3].density, "ml20m vs beauty");
    }

    #[test]
    fn sequence_length_ordering_matches_paper() {
        let ds: Vec<_> = all_benchmarks(Scale::Quick)
            .iter()
            .map(|cfg| generate(cfg, 1).dataset.stats())
            .collect();
        assert!(ds[0].avg_length > 3.0 * ds[2].avg_length);
        assert!(ds[1].avg_length > 3.0 * ds[3].avg_length);
    }

    #[test]
    fn full_scale_is_larger() {
        let q = ml1m_sim(Scale::Quick);
        let f = ml1m_sim(Scale::Full);
        assert!(f.n_users > 2 * q.n_users);
        assert!(f.n_items > 2 * q.n_items);
    }
}
