//! TSV writer — the inverse of [`loader`](crate::loader).
//!
//! Exports a [`Dataset`] as `user<TAB>item<TAB>timestamp[<TAB>category]`
//! lines, the same schema the loader accepts, so synthetic benchmark data
//! can be shared with other tools (or other SCCF processes) and reloaded
//! bit-identically. Interactions are emitted per user in timestamp order
//! (the dataset's canonical order), with a `#` header recording the
//! dataset name and shape.

use std::io::{self, Write};
use std::path::Path;

use crate::dataset::Dataset;

/// Write `data` as TSV to any sink. Categories are included when the
/// dataset carries them (the loader reads either form).
pub fn write_tsv_writer(data: &Dataset, mut w: impl Write) -> io::Result<()> {
    writeln!(
        w,
        "# sccf dataset `{}`: {} users, {} items, {} actions",
        data.name,
        data.n_users(),
        data.n_items(),
        data.n_actions()
    )?;
    let with_categories = data.n_categories() > 1;
    for u in 0..data.n_users() as u32 {
        for (&item, &ts) in data.sequence(u).iter().zip(data.times(u)) {
            if with_categories {
                writeln!(w, "{u}\t{item}\t{ts}\t{}", data.category_of(item))?;
            } else {
                writeln!(w, "{u}\t{item}\t{ts}")?;
            }
        }
    }
    Ok(())
}

/// Write `data` to a file path.
pub fn write_tsv(data: &Dataset, path: impl AsRef<Path>) -> io::Result<()> {
    let file = std::fs::File::create(path)?;
    write_tsv_writer(data, io::BufWriter::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Interaction;
    use crate::loader::load_tsv_reader;

    fn sample() -> Dataset {
        let inter = vec![
            Interaction {
                user: 0,
                item: 2,
                ts: 1,
            },
            Interaction {
                user: 0,
                item: 0,
                ts: 5,
            },
            Interaction {
                user: 1,
                item: 1,
                ts: 2,
            },
        ];
        Dataset::from_interactions("sample", 2, 3, &inter, Some(vec![0, 1, 0]))
    }

    #[test]
    fn roundtrip_through_loader_preserves_structure() {
        let data = sample();
        let mut buf = Vec::new();
        write_tsv_writer(&data, &mut buf).unwrap();
        let reloaded = load_tsv_reader("sample", buf.as_slice()).unwrap();
        assert_eq!(reloaded.n_users(), data.n_users());
        assert_eq!(reloaded.n_items(), data.n_items());
        assert_eq!(reloaded.n_actions(), data.n_actions());
        // per-user sequences survive (ids may be renumbered by first-seen
        // order, but the per-user *timestamps* are invariant)
        for u in 0..data.n_users() as u32 {
            assert_eq!(reloaded.times(u), data.times(u));
            assert_eq!(reloaded.sequence(u).len(), data.sequence(u).len());
        }
    }

    #[test]
    fn roundtrip_preserves_category_structure() {
        let data = sample();
        let mut buf = Vec::new();
        write_tsv_writer(&data, &mut buf).unwrap();
        let reloaded = load_tsv_reader("sample", buf.as_slice()).unwrap();
        assert_eq!(reloaded.n_categories(), data.n_categories());
        // items sharing a category before still share one after
        // (item 2 and item 0 are both category 0 in the sample)
        let seq0 = reloaded.sequence(0);
        assert_eq!(
            reloaded.category_of(seq0[0]),
            reloaded.category_of(seq0[1]),
            "co-category items must stay co-category"
        );
    }

    #[test]
    fn synthetic_dataset_roundtrips_stats() {
        use crate::catalog::{games_sim, Scale};
        let mut cfg = games_sim(Scale::Quick);
        cfg.n_users = 60;
        cfg.n_items = 50;
        let data = crate::synthetic::generate(&cfg, 3).dataset;
        let mut buf = Vec::new();
        write_tsv_writer(&data, &mut buf).unwrap();
        let reloaded = load_tsv_reader(&cfg.name, buf.as_slice()).unwrap();
        let a = data.stats();
        let b = reloaded.stats();
        assert_eq!(a.n_users, b.n_users);
        assert_eq!(a.n_items, b.n_items);
        assert_eq!(a.n_actions, b.n_actions);
        assert!((a.density - b.density).abs() < 1e-9);
        assert!((a.avg_length - b.avg_length).abs() < 1e-9);
    }

    #[test]
    fn header_line_is_ignored_by_loader() {
        let data = sample();
        let mut buf = Vec::new();
        write_tsv_writer(&data, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("# sccf dataset"));
        assert!(load_tsv_reader("x", text.as_bytes()).is_ok());
    }
}
