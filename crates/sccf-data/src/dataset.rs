//! Implicit-feedback dataset with chronological per-user sequences.
//!
//! The paper's preprocessing (§IV-A.1): all numeric ratings / review
//! presence become a "1", items with fewer than 5 actions are dropped,
//! then users with fewer than 5 actions are dropped (applied once more to
//! guarantee every kept user has enough interactions). [`Dataset::core_filter`]
//! implements that pipeline with id re-compaction; [`Dataset::stats`]
//! reproduces the columns of Table I.

use sccf_util::hash::{fx_map, FxHashSet};

/// One implicit-feedback event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interaction {
    pub user: u32,
    pub item: u32,
    /// Coarse event time; the synthetic generator uses day indices.
    pub ts: i64,
}

/// The Table I columns.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStats {
    pub n_users: usize,
    pub n_items: usize,
    pub n_actions: usize,
    pub avg_length: f64,
    /// n_actions / (n_users · n_items).
    pub density: f64,
}

/// A preprocessed dataset: dense user/item ids, chronological sequences.
#[derive(Debug, Clone)]
pub struct Dataset {
    pub name: String,
    n_items: usize,
    /// Per-user item sequence in interaction order.
    sequences: Vec<Vec<u32>>,
    /// Per-user event timestamps, aligned with `sequences`.
    timestamps: Vec<Vec<i64>>,
    /// Item id → category id (0 when no category information exists).
    item_category: Vec<u32>,
    n_categories: usize,
}

impl Dataset {
    /// Build from raw interactions. Events are sorted by `(ts, input
    /// order)` per user, so ties preserve arrival order. User/item ids
    /// must already be dense (`0..n`); the loader and generator guarantee
    /// this, and `core_filter` re-compacts after dropping.
    pub fn from_interactions(
        name: impl Into<String>,
        n_users: usize,
        n_items: usize,
        interactions: &[Interaction],
        item_category: Option<Vec<u32>>,
    ) -> Self {
        let mut seqs: Vec<Vec<(i64, usize, u32)>> = vec![Vec::new(); n_users];
        for (order, it) in interactions.iter().enumerate() {
            assert!((it.user as usize) < n_users, "user id out of range");
            assert!((it.item as usize) < n_items, "item id out of range");
            seqs[it.user as usize].push((it.ts, order, it.item));
        }
        let mut sequences = Vec::with_capacity(n_users);
        let mut timestamps = Vec::with_capacity(n_users);
        for mut s in seqs {
            s.sort_unstable_by_key(|&(ts, order, _)| (ts, order));
            timestamps.push(s.iter().map(|&(ts, _, _)| ts).collect());
            sequences.push(s.into_iter().map(|(_, _, item)| item).collect());
        }
        let item_category = item_category.unwrap_or_else(|| vec![0; n_items]);
        assert_eq!(item_category.len(), n_items, "category table length");
        let n_categories = item_category
            .iter()
            .copied()
            .max()
            .map_or(1, |m| m as usize + 1);
        Self {
            name: name.into(),
            n_items,
            sequences,
            timestamps,
            item_category,
            n_categories,
        }
    }

    pub fn n_users(&self) -> usize {
        self.sequences.len()
    }

    pub fn n_items(&self) -> usize {
        self.n_items
    }

    pub fn n_categories(&self) -> usize {
        self.n_categories
    }

    pub fn n_actions(&self) -> usize {
        self.sequences.iter().map(Vec::len).sum()
    }

    /// Chronological item sequence `S_u`.
    pub fn sequence(&self, user: u32) -> &[u32] {
        &self.sequences[user as usize]
    }

    /// Event timestamps aligned with [`Dataset::sequence`].
    pub fn times(&self, user: u32) -> &[i64] {
        &self.timestamps[user as usize]
    }

    pub fn category_of(&self, item: u32) -> u32 {
        self.item_category[item as usize]
    }

    pub fn item_categories(&self) -> &[u32] {
        &self.item_category
    }

    /// The interacted-item set `R⁺_u` as a hash set.
    pub fn positive_set(&self, user: u32) -> FxHashSet<u32> {
        self.sequences[user as usize].iter().copied().collect()
    }

    /// Per-item interaction counts (popularity).
    pub fn item_counts(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.n_items];
        for s in &self.sequences {
            for &i in s {
                counts[i as usize] += 1;
            }
        }
        counts
    }

    /// Table I statistics.
    pub fn stats(&self) -> DatasetStats {
        let n_users = self.n_users();
        let n_items = self.n_items;
        let n_actions = self.n_actions();
        DatasetStats {
            n_users,
            n_items,
            n_actions,
            avg_length: if n_users == 0 {
                0.0
            } else {
                n_actions as f64 / n_users as f64
            },
            density: if n_users == 0 || n_items == 0 {
                0.0
            } else {
                n_actions as f64 / (n_users as f64 * n_items as f64)
            },
        }
    }

    /// The paper's 5-core preprocessing: drop items with fewer than
    /// `min_count` actions, then drop users with fewer than `min_count`
    /// actions, repeated until stable (the paper applies the user filter
    /// twice; running to fixpoint subsumes that), then re-compact ids.
    pub fn core_filter(&self, min_count: usize) -> Dataset {
        let mut keep_item = vec![true; self.n_items];
        let mut keep_user = vec![true; self.n_users()];
        loop {
            let mut changed = false;
            // item pass
            let mut item_counts = vec![0usize; self.n_items];
            for (u, s) in self.sequences.iter().enumerate() {
                if !keep_user[u] {
                    continue;
                }
                for &i in s {
                    if keep_item[i as usize] {
                        item_counts[i as usize] += 1;
                    }
                }
            }
            for (i, &c) in item_counts.iter().enumerate() {
                if keep_item[i] && c < min_count {
                    keep_item[i] = false;
                    changed = true;
                }
            }
            // user pass
            for (u, s) in self.sequences.iter().enumerate() {
                if !keep_user[u] {
                    continue;
                }
                let len = s.iter().filter(|&&i| keep_item[i as usize]).count();
                if len < min_count {
                    keep_user[u] = false;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        // id compaction
        let mut item_map = fx_map();
        let mut new_categories = Vec::new();
        for (i, &k) in keep_item.iter().enumerate() {
            if k {
                item_map.insert(i as u32, item_map.len() as u32);
                new_categories.push(self.item_category[i]);
            }
        }
        let mut interactions = Vec::new();
        let mut new_user = 0u32;
        for (u, s) in self.sequences.iter().enumerate() {
            if !keep_user[u] {
                continue;
            }
            for (pos, &i) in s.iter().enumerate() {
                if let Some(&ni) = item_map.get(&i) {
                    interactions.push(Interaction {
                        user: new_user,
                        item: ni,
                        ts: self.timestamps[u][pos],
                    });
                }
            }
            new_user += 1;
        }
        Dataset::from_interactions(
            self.name.clone(),
            new_user as usize,
            item_map.len(),
            &interactions,
            Some(new_categories),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        // user 0: items 0,1,2 ; user 1: items 1,2 ; user 2: item 3
        let inter = vec![
            Interaction {
                user: 0,
                item: 2,
                ts: 3,
            },
            Interaction {
                user: 0,
                item: 0,
                ts: 1,
            },
            Interaction {
                user: 0,
                item: 1,
                ts: 2,
            },
            Interaction {
                user: 1,
                item: 1,
                ts: 1,
            },
            Interaction {
                user: 1,
                item: 2,
                ts: 2,
            },
            Interaction {
                user: 2,
                item: 3,
                ts: 1,
            },
        ];
        Dataset::from_interactions("toy", 3, 4, &inter, Some(vec![0, 0, 1, 1]))
    }

    #[test]
    fn sequences_sorted_by_time() {
        let d = toy();
        assert_eq!(d.sequence(0), &[0, 1, 2]);
        assert_eq!(d.times(0), &[1, 2, 3]);
        assert_eq!(d.sequence(1), &[1, 2]);
    }

    #[test]
    fn ties_keep_input_order() {
        let inter = vec![
            Interaction {
                user: 0,
                item: 5,
                ts: 7,
            },
            Interaction {
                user: 0,
                item: 3,
                ts: 7,
            },
        ];
        let d = Dataset::from_interactions("t", 1, 6, &inter, None);
        assert_eq!(d.sequence(0), &[5, 3]);
    }

    #[test]
    fn stats_match_hand_count() {
        let d = toy();
        let s = d.stats();
        assert_eq!(s.n_users, 3);
        assert_eq!(s.n_items, 4);
        assert_eq!(s.n_actions, 6);
        assert!((s.avg_length - 2.0).abs() < 1e-12);
        assert!((s.density - 6.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn positive_set_and_popularity() {
        let d = toy();
        let ps = d.positive_set(0);
        assert!(ps.contains(&0) && ps.contains(&1) && ps.contains(&2));
        assert!(!ps.contains(&3));
        assert_eq!(d.item_counts(), vec![1, 2, 2, 1]);
    }

    #[test]
    fn core_filter_drops_and_compacts() {
        let d = toy();
        // min_count 2: items 0,3 die (1 action each); user 2 dies (empty);
        // user 0 keeps [1,2], user 1 keeps [1,2].
        let f = d.core_filter(2);
        assert_eq!(f.n_users(), 2);
        assert_eq!(f.n_items(), 2);
        assert_eq!(f.sequence(0), &[0, 1]); // old items 1,2 compacted
        assert_eq!(f.n_actions(), 4);
        // category of old item 1 was 0, old item 2 was 1
        assert_eq!(f.category_of(0), 0);
        assert_eq!(f.category_of(1), 1);
    }

    #[test]
    fn core_filter_cascades_to_fixpoint() {
        // chain: user 1 only touches item that survives through user 0
        let inter = vec![
            Interaction {
                user: 0,
                item: 0,
                ts: 1,
            },
            Interaction {
                user: 0,
                item: 1,
                ts: 2,
            },
            Interaction {
                user: 1,
                item: 1,
                ts: 1,
            },
        ];
        let d = Dataset::from_interactions("c", 2, 2, &inter, None);
        // min_count 2: item 0 has 1 action -> dies; user 0 falls to 1 -> dies;
        // item 1 falls to 1 -> dies; user 1 dies. Everything gone.
        let f = d.core_filter(2);
        assert_eq!(f.n_users(), 0);
        assert_eq!(f.n_items(), 0);
        assert_eq!(f.n_actions(), 0);
    }

    #[test]
    fn categories_default_to_single() {
        let d = Dataset::from_interactions(
            "nc",
            1,
            2,
            &[Interaction {
                user: 0,
                item: 0,
                ts: 0,
            }],
            None,
        );
        assert_eq!(d.n_categories(), 1);
        assert_eq!(d.category_of(1), 0);
    }
}
