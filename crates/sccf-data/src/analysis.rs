//! Dataset-level analyses used by the figure reproductions.
//!
//! [`category_revisit_histogram`] reproduces **Figure 1**: for every
//! category a user clicks "today" (her last active day), how many days ago
//! was that category first clicked within a two-week lookback? `x = 0`
//! means the category is brand new in the window — the paper measures
//! ~50 % of mass there on Taobao, which motivates real-time user
//! representations.

use sccf_util::hash::fx_map;

use crate::dataset::Dataset;

/// Distribution over `x ∈ 0..=lookback_days`: the fraction of
/// (user, category-clicked-today) pairs whose category was first clicked
/// `x` days before today (0 = not seen in the lookback window at all).
#[derive(Debug, Clone)]
pub struct RevisitHistogram {
    /// `proportions[x]` for `x` in `0..=lookback_days`.
    pub proportions: Vec<f64>,
    /// Total (user, category) observations.
    pub total: u64,
}

impl RevisitHistogram {
    /// Fraction of categories that are new today (the paper's headline
    /// ~50 % number).
    pub fn new_category_fraction(&self) -> f64 {
        self.proportions.first().copied().unwrap_or(0.0)
    }
}

/// Compute the Figure 1 histogram. `lookback_days` is 14 in the paper.
pub fn category_revisit_histogram(data: &Dataset, lookback_days: i64) -> RevisitHistogram {
    let mut counts = vec![0u64; lookback_days as usize + 1];
    let mut total = 0u64;
    for u in 0..data.n_users() as u32 {
        let seq = data.sequence(u);
        let ts = data.times(u);
        if seq.is_empty() {
            continue;
        }
        let today = *ts.last().expect("non-empty");
        // first click day per category within the lookback window
        let mut first_day = fx_map();
        let mut today_cats = fx_map();
        for (&item, &day) in seq.iter().zip(ts) {
            let cat = data.category_of(item);
            if day == today {
                today_cats.entry(cat).or_insert(true);
            } else if day >= today - lookback_days && day < today {
                first_day.entry(cat).or_insert(day);
            }
        }
        for (&cat, _) in today_cats.iter() {
            total += 1;
            match first_day.get(&cat) {
                None => counts[0] += 1,
                Some(&day) => {
                    let x = (today - day).clamp(1, lookback_days) as usize;
                    counts[x] += 1;
                }
            }
        }
    }
    let denom = total.max(1) as f64;
    RevisitHistogram {
        proportions: counts.iter().map(|&c| c as f64 / denom).collect(),
        total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Interaction;

    #[test]
    fn hand_built_revisit_distribution() {
        // One user, categories: item0->cat0, item1->cat1, item2->cat0.
        // Clicks: day 0: item0 (cat0); day 10: item1 (cat1);
        //         day 14 (today): item2 (cat0, first clicked 14 days ago —
        //         at the window edge) and item1 (cat1, 4 days ago).
        let inter = vec![
            Interaction {
                user: 0,
                item: 0,
                ts: 0,
            },
            Interaction {
                user: 0,
                item: 1,
                ts: 10,
            },
            Interaction {
                user: 0,
                item: 2,
                ts: 14,
            },
            Interaction {
                user: 0,
                item: 1,
                ts: 14,
            },
        ];
        let d = Dataset::from_interactions("t", 1, 3, &inter, Some(vec![0, 1, 0]));
        let h = category_revisit_histogram(&d, 14);
        assert_eq!(h.total, 2);
        assert_eq!(h.proportions[0], 0.0);
        assert!(
            (h.proportions[4] - 0.5).abs() < 1e-12,
            "cat1 revisited at 4"
        );
        assert!(
            (h.proportions[14] - 0.5).abs() < 1e-12,
            "cat0 revisited at 14"
        );
    }

    #[test]
    fn brand_new_category_lands_in_zero() {
        let inter = vec![
            Interaction {
                user: 0,
                item: 0,
                ts: 5,
            },
            Interaction {
                user: 0,
                item: 1,
                ts: 20,
            }, // today, never before
        ];
        let d = Dataset::from_interactions("t", 1, 2, &inter, Some(vec![0, 1]));
        let h = category_revisit_histogram(&d, 14);
        assert_eq!(h.total, 1);
        assert!((h.new_category_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clicks_outside_window_count_as_new() {
        let inter = vec![
            Interaction {
                user: 0,
                item: 0,
                ts: 0,
            }, // cat0 long ago
            Interaction {
                user: 0,
                item: 1,
                ts: 30,
            }, // today cat0
        ];
        let d = Dataset::from_interactions("t", 1, 2, &inter, Some(vec![0, 0]));
        let h = category_revisit_histogram(&d, 14);
        assert!((h.new_category_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn taobao_sim_has_heavy_new_category_mass() {
        // The motivation statistic: a large share of today's categories
        // are new — the generator is tuned so this lands near the paper's
        // ~50 %.
        let cfg = crate::catalog::taobao_sim(crate::catalog::Scale::Quick);
        let data = crate::synthetic::generate(&cfg, 42).dataset;
        let h = category_revisit_histogram(&data, 14);
        assert!(h.total > 100);
        assert!(
            h.new_category_fraction() > 0.25,
            "new-category fraction too small: {}",
            h.new_category_fraction()
        );
    }
}
