//! TSV loader for real interaction logs (MovieLens/Amazon exports).
//!
//! The synthetic generator drives all shipped experiments, but anyone who
//! has the actual datasets can replay the paper end-to-end: convert to
//! `user<TAB>item<TAB>timestamp[<TAB>category]` lines and point
//! [`load_tsv`] at the file. Raw ids are arbitrary strings; they are
//! mapped to dense `u32`s in first-seen order.

use std::io::BufRead;
use std::path::Path;

use sccf_util::hash::{fx_map, FxHashMap};

use crate::dataset::{Dataset, Interaction};

/// Loader errors with line context.
#[derive(Debug)]
pub enum LoadError {
    Io(std::io::Error),
    Parse { line: usize, msg: String },
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "io error: {e}"),
            LoadError::Parse { line, msg } => write!(f, "line {line}: {msg}"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<std::io::Error> for LoadError {
    fn from(e: std::io::Error) -> Self {
        LoadError::Io(e)
    }
}

fn intern(map: &mut FxHashMap<String, u32>, key: &str) -> u32 {
    if let Some(&id) = map.get(key) {
        return id;
    }
    let id = map.len() as u32;
    map.insert(key.to_string(), id);
    id
}

/// Parse TSV lines from any reader. Lines starting with `#` and blank
/// lines are skipped.
pub fn load_tsv_reader(name: &str, reader: impl BufRead) -> Result<Dataset, LoadError> {
    let mut users: FxHashMap<String, u32> = fx_map();
    let mut items: FxHashMap<String, u32> = fx_map();
    let mut cats: FxHashMap<String, u32> = fx_map();
    let mut item_cat: Vec<u32> = Vec::new();
    let mut interactions = Vec::new();

    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split('\t');
        let (Some(u), Some(i), Some(ts)) = (parts.next(), parts.next(), parts.next()) else {
            return Err(LoadError::Parse {
                line: lineno + 1,
                msg: "expected at least user<TAB>item<TAB>timestamp".into(),
            });
        };
        let ts: i64 = ts.trim().parse().map_err(|e| LoadError::Parse {
            line: lineno + 1,
            msg: format!("bad timestamp {ts:?}: {e}"),
        })?;
        let user = intern(&mut users, u.trim());
        let item = intern(&mut items, i.trim());
        if item as usize == item_cat.len() {
            // first sighting of this item: record its category (if any)
            let cat = parts
                .next()
                .map(|c| intern(&mut cats, c.trim()))
                .unwrap_or(0);
            item_cat.push(cat);
        }
        interactions.push(Interaction { user, item, ts });
    }
    Ok(Dataset::from_interactions(
        name,
        users.len(),
        items.len(),
        &interactions,
        Some(item_cat),
    ))
}

/// Load a TSV file from disk.
pub fn load_tsv(name: &str, path: impl AsRef<Path>) -> Result<Dataset, LoadError> {
    let file = std::fs::File::open(path)?;
    load_tsv_reader(name, std::io::BufReader::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_tsv() {
        let tsv = "u1\ti1\t100\tcatA\nu1\ti2\t200\tcatB\nu2\ti1\t150\tcatA\n";
        let d = load_tsv_reader("t", tsv.as_bytes()).unwrap();
        assert_eq!(d.n_users(), 2);
        assert_eq!(d.n_items(), 2);
        assert_eq!(d.n_actions(), 3);
        assert_eq!(d.sequence(0), &[0, 1]);
        assert_eq!(d.category_of(0), 0);
        assert_eq!(d.category_of(1), 1);
    }

    #[test]
    fn skips_comments_and_blank_lines() {
        let tsv = "# header\n\nu1\ti1\t1\n";
        let d = load_tsv_reader("t", tsv.as_bytes()).unwrap();
        assert_eq!(d.n_actions(), 1);
    }

    #[test]
    fn missing_category_defaults_to_zero() {
        let tsv = "u1\ti1\t1\nu1\ti2\t2\n";
        let d = load_tsv_reader("t", tsv.as_bytes()).unwrap();
        assert_eq!(d.category_of(0), 0);
        assert_eq!(d.category_of(1), 0);
    }

    #[test]
    fn reports_bad_timestamp_with_line() {
        let tsv = "u1\ti1\tnot_a_number\n";
        let err = load_tsv_reader("t", tsv.as_bytes()).unwrap_err();
        match err {
            LoadError::Parse { line, .. } => assert_eq!(line, 1),
            _ => panic!("expected parse error"),
        }
    }

    #[test]
    fn reports_short_line() {
        let tsv = "u1\ti1\n";
        assert!(load_tsv_reader("t", tsv.as_bytes()).is_err());
    }

    #[test]
    fn out_of_order_timestamps_get_sorted() {
        let tsv = "u1\tlate\t300\nu1\tearly\t100\n";
        let d = load_tsv_reader("t", tsv.as_bytes()).unwrap();
        // "late" interned first (id 0) but "early" (id 1) precedes it in time
        assert_eq!(d.sequence(0), &[1, 0]);
    }
}
