//! Leave-one-out evaluation split (§IV-A.2).
//!
//! For each user: the **latest** interaction is the test item, the one
//! just before it is the validation item (also the training label of the
//! integrating component), and everything earlier is training data. When
//! measuring test performance the paper adds validation items back into
//! the training set; [`LeaveOneOut::train_plus_val`] provides that view.

use crate::dataset::Dataset;

/// The three-way split of one dataset.
#[derive(Debug, Clone)]
pub struct LeaveOneOut {
    /// Per-user training prefix (all interactions except the last two).
    train: Vec<Vec<u32>>,
    /// Per-user validation item (second-to-last), if the user has ≥ 3 events.
    val: Vec<Option<u32>>,
    /// Per-user test item (last), if the user has ≥ 2 events.
    test: Vec<Option<u32>>,
    n_items: usize,
}

impl LeaveOneOut {
    /// Split every user's chronological sequence.
    pub fn split(data: &Dataset) -> Self {
        let n = data.n_users();
        let mut train = Vec::with_capacity(n);
        let mut val = Vec::with_capacity(n);
        let mut test = Vec::with_capacity(n);
        for u in 0..n as u32 {
            let seq = data.sequence(u);
            match seq.len() {
                0 => {
                    train.push(Vec::new());
                    val.push(None);
                    test.push(None);
                }
                1 => {
                    train.push(seq.to_vec());
                    val.push(None);
                    test.push(None);
                }
                2 => {
                    train.push(seq[..1].to_vec());
                    val.push(None);
                    test.push(Some(seq[1]));
                }
                len => {
                    train.push(seq[..len - 2].to_vec());
                    val.push(Some(seq[len - 2]));
                    test.push(Some(seq[len - 1]));
                }
            }
        }
        Self {
            train,
            val,
            test,
            n_items: data.n_items(),
        }
    }

    pub fn n_users(&self) -> usize {
        self.train.len()
    }

    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// Training prefix for `user` (no val/test leakage).
    pub fn train_seq(&self, user: u32) -> &[u32] {
        &self.train[user as usize]
    }

    pub fn val_item(&self, user: u32) -> Option<u32> {
        self.val[user as usize]
    }

    pub fn test_item(&self, user: u32) -> Option<u32> {
        self.test[user as usize]
    }

    /// Training prefix plus the validation item — the history used when
    /// scoring the *test* item (the paper adds validation data back for
    /// the final measurement).
    pub fn train_plus_val(&self, user: u32) -> Vec<u32> {
        let mut s = self.train[user as usize].clone();
        if let Some(v) = self.val[user as usize] {
            s.push(v);
        }
        s
    }

    /// Users that have a test item (the evaluation population).
    pub fn test_users(&self) -> Vec<u32> {
        (0..self.n_users() as u32)
            .filter(|&u| self.test[u as usize].is_some())
            .collect()
    }

    /// Users that have a validation item (the integrator training
    /// population).
    pub fn val_users(&self) -> Vec<u32> {
        (0..self.n_users() as u32)
            .filter(|&u| self.val[u as usize].is_some())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Interaction;

    fn data(lens: &[usize]) -> Dataset {
        let mut inter = Vec::new();
        let mut item = 0u32;
        let n_items = lens.iter().sum::<usize>().max(1);
        for (u, &len) in lens.iter().enumerate() {
            for t in 0..len {
                inter.push(Interaction {
                    user: u as u32,
                    item,
                    ts: t as i64,
                });
                item += 1;
            }
        }
        Dataset::from_interactions("t", lens.len(), n_items, &inter, None)
    }

    #[test]
    fn split_partitions_sequence() {
        let d = data(&[5]);
        let s = LeaveOneOut::split(&d);
        assert_eq!(s.train_seq(0), &[0, 1, 2]);
        assert_eq!(s.val_item(0), Some(3));
        assert_eq!(s.test_item(0), Some(4));
        assert_eq!(s.train_plus_val(0), vec![0, 1, 2, 3]);
    }

    #[test]
    fn short_sequences_degrade_gracefully() {
        let d = data(&[0, 1, 2, 3]);
        let s = LeaveOneOut::split(&d);
        assert_eq!(s.test_item(0), None);
        assert_eq!(s.test_item(1), None);
        assert_eq!(s.val_item(1), None);
        assert!(!s.train_seq(1).is_empty());
        assert!(s.test_item(2).is_some());
        assert_eq!(s.val_item(2), None);
        assert!(s.val_item(3).is_some());
        assert_eq!(s.test_users(), vec![2, 3]);
        assert_eq!(s.val_users(), vec![3]);
    }

    #[test]
    fn no_leakage_between_splits() {
        let d = data(&[6]);
        let s = LeaveOneOut::split(&d);
        let train = s.train_seq(0);
        let val = s.val_item(0).unwrap();
        let test = s.test_item(0).unwrap();
        assert!(!train.contains(&val));
        assert!(!train.contains(&test));
        assert_ne!(val, test);
        assert_eq!(train.len() + 2, d.sequence(0).len());
    }
}
