//! Negative sampling for the implicit-feedback objective (Eq. 9).
//!
//! Observed interactions are positives; negatives are sampled uniformly
//! from items the user never interacted with (`Neg ⊂ R⁻`), following
//! He et al. / Kang & McAuley, which the paper adopts.

use rand::Rng;
use sccf_util::hash::FxHashSet;

/// Uniform negative sampler over a user's non-interacted items.
#[derive(Debug, Clone)]
pub struct NegativeSampler {
    n_items: u32,
}

impl NegativeSampler {
    pub fn new(n_items: usize) -> Self {
        assert!(n_items > 0, "cannot sample from an empty item set");
        Self {
            n_items: n_items as u32,
        }
    }

    /// One item uniformly from `I − exclude`. Panics only if `exclude`
    /// covers the entire catalog (which the core filter makes impossible).
    pub fn sample(&self, rng: &mut impl Rng, exclude: &FxHashSet<u32>) -> u32 {
        assert!(
            (exclude.len() as u32) < self.n_items,
            "user has interacted with every item"
        );
        loop {
            let cand = rng.gen_range(0..self.n_items);
            if !exclude.contains(&cand) {
                return cand;
            }
        }
    }

    /// `k` negatives (independent draws, duplicates allowed, as in the
    /// standard sampled-BCE setup).
    pub fn sample_k(&self, rng: &mut impl Rng, exclude: &FxHashSet<u32>, k: usize) -> Vec<u32> {
        (0..k).map(|_| self.sample(rng, exclude)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use sccf_util::hash::fx_set;

    #[test]
    fn never_returns_excluded() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut ex = fx_set();
        ex.insert(0);
        ex.insert(2);
        let s = NegativeSampler::new(4);
        for _ in 0..200 {
            let x = s.sample(&mut rng, &ex);
            assert!(x == 1 || x == 3);
        }
    }

    #[test]
    fn sample_k_length() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let s = NegativeSampler::new(100);
        let ex = fx_set();
        assert_eq!(s.sample_k(&mut rng, &ex, 7).len(), 7);
    }

    #[test]
    fn roughly_uniform() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let s = NegativeSampler::new(4);
        let ex = fx_set();
        let mut counts = [0u32; 4];
        for _ in 0..4000 {
            counts[s.sample(&mut rng, &ex) as usize] += 1;
        }
        for &c in &counts {
            assert!(c > 800 && c < 1200, "{counts:?}");
        }
    }

    #[test]
    #[should_panic(expected = "every item")]
    fn full_exclusion_panics() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let s = NegativeSampler::new(2);
        let mut ex = fx_set();
        ex.insert(0);
        ex.insert(1);
        let _ = s.sample(&mut rng, &ex);
    }
}
