//! Latent-factor synthetic data generator — the stand-in for MovieLens /
//! Amazon / Taobao logs, none of which can be downloaded in this
//! environment.
//!
//! The generator is built so that every mechanism the paper exploits
//! demonstrably exists in the data:
//!
//! 1. **Global structure** — items carry latent vectors organized around
//!    category centroids, with Zipf popularity. UI models can learn this.
//! 2. **Local neighborhoods** — users are drawn from a mixture of
//!    interest *groups*; members of one group share a category taste
//!    profile. This is exactly the "similar users" signal the user-based
//!    component mines (and what GLSLIM's fixed clusters approximate).
//! 3. **Temporal drift** — a user's interest vector random-walks and
//!    occasionally *jumps* to a new category, reproducing Figure 1's
//!    observation that ~50 % of the categories a user clicks today are
//!    new within a two-week window.
//! 4. **Niche co-occurrence ("beer & diapers")** — selected cross-category
//!    item pairs co-occur only inside one user group, giving the local
//!    component something the global model provably averages away.
//!
//! The generator also exports its [`GroundTruth`] (final user/item
//! latents) so the serving simulator can model clicks against true
//! preferences rather than against any learned model.

use rand::rngs::StdRng;
use rand::Rng;
use sccf_util::rng::{rng_for, streams};

use crate::dataset::{Dataset, Interaction};

/// Shape parameters of one synthetic dataset.
#[derive(Debug, Clone)]
pub struct SyntheticConfig {
    pub name: String,
    pub n_users: usize,
    pub n_items: usize,
    pub n_categories: usize,
    /// Number of user interest groups (the neighborhood structure).
    pub n_groups: usize,
    /// Latent dimensionality of the ground-truth factors.
    pub latent_dim: usize,
    /// Mean interactions per user (per-user counts are geometric-ish).
    pub mean_len: f64,
    /// Minimum interactions per user (keeps 5-core filtering mild).
    pub min_len: usize,
    /// Zipf exponent for item popularity inside a category.
    pub zipf_s: f64,
    /// Within-group user scatter: 0 = everyone at the centroid
    /// (maximal neighborhood signal), large = no group structure.
    pub user_scatter: f32,
    /// Within-category item scatter.
    pub item_scatter: f32,
    /// Per-event magnitude of the interest random walk.
    pub drift: f32,
    /// Per-event probability of jumping to a fresh category.
    pub jump_prob: f64,
    /// Softmax temperature over category affinities (higher = more
    /// deterministic category choice).
    pub category_temp: f32,
    /// Item-level personalization: within a category, item weights are
    /// `pop_i · exp(item_temp · z·w_i)`. Zero reduces to pure popularity
    /// (which would make Pop nearly unbeatable).
    pub item_temp: f32,
    /// Probability the next event continues from the *previous item*
    /// (same category, latent-similar item) — the sequential structure
    /// SASRec exploits and order-free models cannot.
    pub markov_prob: f64,
    /// Strength of the previous-item similarity bias under a Markov step.
    pub seq_temp: f32,
    /// Number of cross-category niche pairs per group.
    pub niche_pairs: usize,
    /// Probability that a group member's stream has its niche pair
    /// injected.
    pub niche_prob: f64,
    /// Days spanned by the event stream (drives Figure 1).
    pub n_days: i64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        Self {
            name: "synthetic".into(),
            n_users: 500,
            n_items: 400,
            n_categories: 24,
            n_groups: 12,
            latent_dim: 16,
            mean_len: 30.0,
            min_len: 6,
            zipf_s: 1.0,
            user_scatter: 0.25,
            item_scatter: 0.35,
            drift: 0.08,
            jump_prob: 0.06,
            category_temp: 5.0,
            item_temp: 3.0,
            markov_prob: 0.3,
            seq_temp: 4.0,
            niche_pairs: 1,
            niche_prob: 0.3,
            n_days: 30,
        }
    }
}

/// The generator's hidden state, exported for simulation-based evaluation
/// (the A/B test of Table V scores clicks against these latents).
#[derive(Debug, Clone)]
pub struct GroundTruth {
    /// Final (post-drift) user latent vectors, one per user.
    pub user_latent: Vec<Vec<f32>>,
    /// Item latent vectors.
    pub item_latent: Vec<Vec<f32>>,
    /// Item popularity weights (unnormalized).
    pub item_pop: Vec<f64>,
    /// Group id of every user.
    pub user_group: Vec<u32>,
    /// The injected niche pairs, one list per group.
    pub niche: Vec<Vec<(u32, u32)>>,
}

impl GroundTruth {
    /// True affinity of user `u` for item `i` (inner product of latents).
    pub fn affinity(&self, u: u32, i: u32) -> f32 {
        sccf_tensor_free_dot(&self.user_latent[u as usize], &self.item_latent[i as usize])
    }
}

// Tiny local dot to avoid a dependency edge from data → tensor.
fn sccf_tensor_free_dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn normalize(v: &mut [f32]) {
    let n = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if n > f32::EPSILON {
        for x in v {
            *x /= n;
        }
    }
}

fn gauss(rng: &mut StdRng) -> f32 {
    // Box–Muller
    let u1: f32 = 1.0 - rng.gen::<f32>();
    let u2: f32 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

fn random_unit(rng: &mut StdRng, d: usize) -> Vec<f32> {
    let mut v: Vec<f32> = (0..d).map(|_| gauss(rng)).collect();
    normalize(&mut v);
    v
}

/// Alias-free weighted sampling from cumulative weights.
fn sample_cumulative(rng: &mut StdRng, cum: &[f64]) -> usize {
    let total = *cum.last().expect("non-empty weights");
    let x = rng.gen::<f64>() * total;
    cum.partition_point(|&c| c < x).min(cum.len() - 1)
}

/// Output of [`generate`]: the observable dataset plus the hidden truth.
#[derive(Debug, Clone)]
pub struct SyntheticData {
    pub dataset: Dataset,
    pub truth: GroundTruth,
    /// Observable per-user side information ("user profile", the paper's
    /// §V future work): a noisy soft indicator of the user's interest
    /// segment, unit-normalized. Real platforms would derive this from
    /// demographics/registration data; it correlates with — but does not
    /// reveal — the latent group.
    pub profiles: Vec<Vec<f32>>,
}

/// Generate a dataset from `cfg`, deterministically from `seed`.
pub fn generate(cfg: &SyntheticConfig, seed: u64) -> SyntheticData {
    let mut rng = rng_for(seed, streams::DATA_GEN);
    let d = cfg.latent_dim;

    // --- item side: category centroids, item latents, Zipf popularity ---
    let cat_centroids: Vec<Vec<f32>> = (0..cfg.n_categories)
        .map(|_| random_unit(&mut rng, d))
        .collect();
    let mut item_latent = Vec::with_capacity(cfg.n_items);
    let mut item_cat = Vec::with_capacity(cfg.n_items);
    let mut item_pop = Vec::with_capacity(cfg.n_items);
    let mut items_by_cat: Vec<Vec<u32>> = vec![Vec::new(); cfg.n_categories];
    for i in 0..cfg.n_items {
        let c = i % cfg.n_categories;
        let mut v = cat_centroids[c].clone();
        for x in v.iter_mut() {
            *x += cfg.item_scatter * gauss(&mut rng);
        }
        normalize(&mut v);
        item_latent.push(v);
        item_cat.push(c as u32);
        // Zipf by within-category rank.
        let rank = (i / cfg.n_categories) + 1;
        item_pop.push(1.0 / (rank as f64).powf(cfg.zipf_s));
        items_by_cat[c].push(i as u32);
    }

    // --- user side: groups, latents, niche pairs ---
    let group_centroids: Vec<Vec<f32>> = (0..cfg.n_groups)
        .map(|_| random_unit(&mut rng, d))
        .collect();
    // Each group's taste: which categories it likes (derived from latent
    // affinity to category centroids at generation time).
    let mut niche: Vec<Vec<(u32, u32)>> = Vec::with_capacity(cfg.n_groups);
    for _g in 0..cfg.n_groups {
        let mut pairs = Vec::new();
        for _ in 0..cfg.niche_pairs {
            // Pick two distinct categories and one popular item from each:
            // a cross-category pair only this group co-consumes.
            let c1 = rng.gen_range(0..cfg.n_categories);
            let mut c2 = rng.gen_range(0..cfg.n_categories);
            while c2 == c1 {
                c2 = rng.gen_range(0..cfg.n_categories);
            }
            if items_by_cat[c1].is_empty() || items_by_cat[c2].is_empty() {
                continue;
            }
            let i1 = items_by_cat[c1][rng.gen_range(0..items_by_cat[c1].len().min(3))];
            let i2 = items_by_cat[c2][rng.gen_range(0..items_by_cat[c2].len().min(3))];
            pairs.push((i1, i2));
        }
        niche.push(pairs);
    }

    let mut user_latent = Vec::with_capacity(cfg.n_users);
    let mut user_group = Vec::with_capacity(cfg.n_users);
    let mut interactions = Vec::new();

    for u in 0..cfg.n_users {
        let g = u % cfg.n_groups;
        user_group.push(g as u32);
        let mut z = group_centroids[g].clone();
        for x in z.iter_mut() {
            *x += cfg.user_scatter * gauss(&mut rng);
        }
        normalize(&mut z);

        // Sequence length: shifted geometric around mean_len.
        let extra_mean = (cfg.mean_len - cfg.min_len as f64).max(1.0);
        let p = 1.0 / extra_mean;
        let mut len = cfg.min_len;
        while rng.gen::<f64>() > p && len < cfg.min_len + (extra_mean * 8.0) as usize {
            len += 1;
        }

        let mut seen = sccf_util::hash::fx_set_with_capacity(len);
        let mut events: Vec<u32> = Vec::with_capacity(len);
        let mut t = 0usize;
        while events.len() < len {
            t += 1;
            if t > len * 20 {
                break; // saturated a tiny catalog; give up gracefully
            }
            // interest evolution
            if rng.gen::<f64>() < cfg.jump_prob {
                let nc = rng.gen_range(0..cfg.n_categories);
                for (zx, &cx) in z.iter_mut().zip(&cat_centroids[nc]) {
                    *zx = 0.5 * *zx + 0.5 * cx;
                }
                normalize(&mut z);
            } else if cfg.drift > 0.0 {
                for zx in z.iter_mut() {
                    *zx += cfg.drift * gauss(&mut rng);
                }
                normalize(&mut z);
            }
            // Markov continuation: stay in the previous item's category
            // and prefer latent-similar items (sequential structure), or
            // an interest-driven fresh pick.
            let anchor: Option<u32> = if !events.is_empty() && rng.gen::<f64>() < cfg.markov_prob {
                events.last().copied()
            } else {
                None
            };
            let cat = match anchor {
                Some(prev) => item_cat[prev as usize] as usize,
                None => {
                    // category by softmax over latent affinity
                    let logits: Vec<f64> = cat_centroids
                        .iter()
                        .map(|c| (cfg.category_temp * sccf_tensor_free_dot(&z, c)) as f64)
                        .collect();
                    let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                    let mut cum = Vec::with_capacity(logits.len());
                    let mut acc = 0.0;
                    for &l in &logits {
                        acc += (l - max).exp();
                        cum.push(acc);
                    }
                    sample_cumulative(&mut rng, &cum)
                }
            };
            if items_by_cat[cat].is_empty() {
                continue;
            }
            // item within category: popularity × personal affinity
            // (× previous-item similarity under a Markov step)
            let candidates = &items_by_cat[cat];
            let mut cum = Vec::with_capacity(candidates.len());
            let mut acc = 0.0f64;
            for &i in candidates {
                let mut w = item_pop[i as usize];
                let aff = sccf_tensor_free_dot(&z, &item_latent[i as usize]);
                w *= ((cfg.item_temp * aff) as f64).exp();
                if let Some(prev) = anchor {
                    let seq =
                        sccf_tensor_free_dot(&item_latent[prev as usize], &item_latent[i as usize]);
                    w *= ((cfg.seq_temp * seq) as f64).exp();
                }
                acc += w;
                cum.push(acc);
            }
            let item = candidates[sample_cumulative(&mut rng, &cum)];
            if seen.insert(item) {
                events.push(item);
            }
        }

        // niche pair injection for this user's group
        if rng.gen::<f64>() < cfg.niche_prob {
            for &(i1, i2) in &niche[g] {
                for i in [i1, i2] {
                    if seen.insert(i) {
                        // insert at a random position to avoid an artificial
                        // "always at the end" sequence signal
                        let pos = rng.gen_range(0..=events.len());
                        events.insert(pos, i);
                    }
                }
            }
        }

        // timestamps: spread events evenly across the day horizon
        let n = events.len().max(1);
        for (idx, &item) in events.iter().enumerate() {
            let day = ((idx as i64) * cfg.n_days) / n as i64;
            interactions.push(Interaction {
                user: u as u32,
                item,
                ts: day.min(cfg.n_days - 1),
            });
        }
        user_latent.push(z);
    }

    // observable profiles: noisy one-hot of the interest group
    let profiles: Vec<Vec<f32>> = user_group
        .iter()
        .map(|&g| {
            let mut p = vec![0.0f32; cfg.n_groups];
            p[g as usize] = 1.0;
            for x in p.iter_mut() {
                *x += 0.35 * gauss(&mut rng);
            }
            normalize(&mut p);
            p
        })
        .collect();

    let dataset = Dataset::from_interactions(
        cfg.name.clone(),
        cfg.n_users,
        cfg.n_items,
        &interactions,
        Some(item_cat),
    );
    SyntheticData {
        dataset,
        truth: GroundTruth {
            user_latent,
            item_latent,
            item_pop,
            user_group,
            niche,
        },
        profiles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> SyntheticConfig {
        SyntheticConfig {
            name: "test".into(),
            n_users: 60,
            n_items: 80,
            n_categories: 8,
            n_groups: 4,
            mean_len: 15.0,
            ..Default::default()
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let cfg = small_cfg();
        let a = generate(&cfg, 7);
        let b = generate(&cfg, 7);
        assert_eq!(a.dataset.n_actions(), b.dataset.n_actions());
        for u in 0..a.dataset.n_users() as u32 {
            assert_eq!(a.dataset.sequence(u), b.dataset.sequence(u));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = small_cfg();
        let a = generate(&cfg, 7);
        let b = generate(&cfg, 8);
        let same =
            (0..a.dataset.n_users() as u32).all(|u| a.dataset.sequence(u) == b.dataset.sequence(u));
        assert!(!same);
    }

    #[test]
    fn respects_min_len_and_no_repeats() {
        let cfg = small_cfg();
        let out = generate(&cfg, 3);
        for u in 0..out.dataset.n_users() as u32 {
            let seq = out.dataset.sequence(u);
            assert!(seq.len() >= cfg.min_len, "user {u}: {}", seq.len());
            let set: sccf_util::FxHashSet<u32> = seq.iter().copied().collect();
            assert_eq!(set.len(), seq.len(), "user {u} has repeats");
        }
    }

    #[test]
    fn group_members_are_more_similar_than_strangers() {
        // The whole point of the generator: users in the same group share
        // interacted categories far more than users across groups.
        let cfg = SyntheticConfig {
            user_scatter: 0.15,
            jump_prob: 0.02,
            drift: 0.03,
            ..small_cfg()
        };
        let out = generate(&cfg, 5);
        let d = &out.dataset;
        let cat_profile = |u: u32| -> Vec<f64> {
            let mut p = vec![0.0f64; d.n_categories()];
            for &i in d.sequence(u) {
                p[d.category_of(i) as usize] += 1.0;
            }
            let n: f64 = p.iter().sum();
            for x in &mut p {
                *x /= n.max(1.0);
            }
            p
        };
        let cos = |a: &[f64], b: &[f64]| {
            let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
            let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
            let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
            dot / (na * nb).max(1e-12)
        };
        let mut within = Vec::new();
        let mut across = Vec::new();
        for u in 0..d.n_users() as u32 {
            for v in (u + 1)..d.n_users() as u32 {
                let s = cos(&cat_profile(u), &cat_profile(v));
                if out.truth.user_group[u as usize] == out.truth.user_group[v as usize] {
                    within.push(s);
                } else {
                    across.push(s);
                }
            }
        }
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(
            avg(&within) > avg(&across) + 0.05,
            "within {} vs across {}",
            avg(&within),
            avg(&across)
        );
    }

    #[test]
    fn popularity_is_skewed() {
        let out = generate(&small_cfg(), 11);
        let mut counts = out.dataset.item_counts();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let top_decile: u32 = counts[..counts.len() / 10].iter().sum();
        let total: u32 = counts.iter().sum();
        // Zipf: top 10% of items should hold well over 10% of actions.
        assert!(top_decile as f64 > 0.2 * total as f64);
    }

    #[test]
    fn timestamps_cover_horizon_monotonically() {
        let cfg = small_cfg();
        let out = generate(&cfg, 13);
        for u in 0..out.dataset.n_users() as u32 {
            let ts = out.dataset.times(u);
            assert!(ts.windows(2).all(|w| w[0] <= w[1]));
            assert!(*ts.last().unwrap() < cfg.n_days);
            assert!(ts[0] >= 0);
        }
    }

    #[test]
    fn ground_truth_dimensions() {
        let cfg = small_cfg();
        let out = generate(&cfg, 17);
        assert_eq!(out.truth.user_latent.len(), cfg.n_users);
        assert_eq!(out.truth.item_latent.len(), cfg.n_items);
        assert_eq!(out.truth.item_pop.len(), cfg.n_items);
        assert_eq!(out.truth.niche.len(), cfg.n_groups);
        let aff = out.truth.affinity(0, 0);
        assert!(aff.is_finite());
    }
}
