//! Optimizers: Adam (the paper's choice, §IV-A.4) and plain SGD.
//!
//! Adam follows Kingma & Ba with β₁ = 0.9, β₂ = 0.999 and an optional
//! linear learning-rate decay, matching the paper's training setup. For
//! sparse-gradient parameters (embedding tables) the update is **lazy**:
//! only rows touched by the current batch have their moments advanced.
//! This is the standard large-embedding trick (same semantics as
//! TensorFlow's `LazyAdam`); the bias-correction exponent uses the global
//! step, which is the common approximation and is documented here
//! explicitly.
//!
//! ℓ2 regularization (the `λ‖Θ‖²` term of Eq. 9) is applied as loss-coupled
//! weight decay: `g ← g + 2λθ` on dense parameters and on the touched rows
//! of sparse parameters.

use crate::mat::Mat;
use crate::store::{GradSlot, Grads, ParamStore};

/// Adam hyper-parameters.
#[derive(Debug, Clone)]
pub struct AdamConfig {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    /// ℓ2 coefficient λ from Eq. 9 (0 disables).
    pub l2: f32,
    /// If set, the lr decays linearly from `lr` to `lr * final_lr_frac`
    /// over `decay_steps`.
    pub decay_steps: Option<u64>,
    pub final_lr_frac: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        Self {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            l2: 0.0,
            decay_steps: None,
            final_lr_frac: 0.1,
        }
    }
}

/// Adam optimizer state (moments live inside the [`ParamStore`]).
#[derive(Debug, Clone)]
pub struct Adam {
    cfg: AdamConfig,
    step: u64,
}

impl Adam {
    pub fn new(cfg: AdamConfig) -> Self {
        Self { cfg, step: 0 }
    }

    pub fn step_count(&self) -> u64 {
        self.step
    }

    /// Current (possibly decayed) learning rate.
    pub fn current_lr(&self) -> f32 {
        match self.cfg.decay_steps {
            None => self.cfg.lr,
            Some(total) => {
                let t = (self.step.min(total)) as f32 / total.max(1) as f32;
                let frac = 1.0 - t * (1.0 - self.cfg.final_lr_frac);
                self.cfg.lr * frac
            }
        }
    }

    /// Apply one batch of gradients.
    pub fn step(&mut self, store: &mut ParamStore, grads: &Grads) {
        self.step += 1;
        let lr = self.current_lr();
        let (b1, b2, eps, l2) = (self.cfg.beta1, self.cfg.beta2, self.cfg.eps, self.cfg.l2);
        let bc1 = 1.0 - b1.powi(self.step as i32);
        let bc2 = 1.0 - b2.powi(self.step as i32);

        for (i, slot) in grads.slots.iter().enumerate() {
            let Some(slot) = slot else { continue };
            let param = store.param_mut(crate::store::ParamId(i));
            match slot {
                GradSlot::Dense(g) => {
                    adam_update_dense(
                        &mut param.value,
                        &mut param.m,
                        &mut param.v,
                        g,
                        lr,
                        b1,
                        b2,
                        eps,
                        l2,
                        bc1,
                        bc2,
                    );
                }
                GradSlot::SparseRows(rows) => {
                    for (&r, grow) in rows {
                        adam_update_row(
                            param.value.row_mut(r as usize),
                            param.m.row_mut(r as usize),
                            param.v.row_mut(r as usize),
                            grow,
                            lr,
                            b1,
                            b2,
                            eps,
                            l2,
                            bc1,
                            bc2,
                        );
                    }
                }
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn adam_update_dense(
    value: &mut Mat,
    m: &mut Mat,
    v: &mut Mat,
    g: &Mat,
    lr: f32,
    b1: f32,
    b2: f32,
    eps: f32,
    l2: f32,
    bc1: f32,
    bc2: f32,
) {
    let value = value.data_mut();
    let m = m.data_mut();
    let v = v.data_mut();
    let g = g.data();
    for i in 0..value.len() {
        let grad = g[i] + 2.0 * l2 * value[i];
        m[i] = b1 * m[i] + (1.0 - b1) * grad;
        v[i] = b2 * v[i] + (1.0 - b2) * grad * grad;
        let mhat = m[i] / bc1;
        let vhat = v[i] / bc2;
        value[i] -= lr * mhat / (vhat.sqrt() + eps);
    }
}

#[allow(clippy::too_many_arguments)]
fn adam_update_row(
    value: &mut [f32],
    m: &mut [f32],
    v: &mut [f32],
    g: &[f32],
    lr: f32,
    b1: f32,
    b2: f32,
    eps: f32,
    l2: f32,
    bc1: f32,
    bc2: f32,
) {
    for i in 0..value.len() {
        let grad = g[i] + 2.0 * l2 * value[i];
        m[i] = b1 * m[i] + (1.0 - b1) * grad;
        v[i] = b2 * v[i] + (1.0 - b2) * grad * grad;
        let mhat = m[i] / bc1;
        let vhat = v[i] / bc2;
        value[i] -= lr * mhat / (vhat.sqrt() + eps);
    }
}

/// Plain SGD with optional ℓ2 — kept for tests and ablations.
#[derive(Debug, Clone)]
pub struct Sgd {
    pub lr: f32,
    pub l2: f32,
}

impl Sgd {
    pub fn new(lr: f32) -> Self {
        Self { lr, l2: 0.0 }
    }

    pub fn step(&self, store: &mut ParamStore, grads: &Grads) {
        for (i, slot) in grads.slots.iter().enumerate() {
            let Some(slot) = slot else { continue };
            let param = store.param_mut(crate::store::ParamId(i));
            match slot {
                GradSlot::Dense(g) => {
                    let value = param.value.data_mut();
                    for (x, &gv) in value.iter_mut().zip(g.data()) {
                        *x -= self.lr * (gv + 2.0 * self.l2 * *x);
                    }
                }
                GradSlot::SparseRows(rows) => {
                    for (&r, grow) in rows {
                        let row = param.value.row_mut(r as usize);
                        for (x, &gv) in row.iter_mut().zip(grow) {
                            *x -= self.lr * (gv + 2.0 * self.l2 * *x);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
impl Adam {
    /// Test helper: advance the step counter without touching parameters.
    fn step_forward(&mut self, n: u64) {
        self.step += n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::ParamStore;
    use crate::tape::Tape;

    /// Minimize mean((x@w - 3)^2)-ish via BCE-free quadratic surrogate:
    /// just check Adam reduces a simple convex loss.
    fn quadratic_loss(store: &ParamStore, w: crate::store::ParamId) -> (f32, Grads) {
        let mut tape = Tape::new(store);
        let wv = tape.param(w);
        // loss = mean((w - 3)^2) = mean(w*w - 6w + 9)
        let sq = tape.mul(wv, wv);
        let lin = tape.scale(wv, -6.0);
        let s = tape.add(sq, lin);
        let loss = tape.mean_all(s);
        let l = tape.scalar(loss) + 9.0;
        let g = tape.backward(loss);
        (l, g)
    }

    #[test]
    fn adam_minimizes_quadratic() {
        let mut store = ParamStore::new();
        let w = store.add("w", Mat::zeros(1, 4));
        let mut adam = Adam::new(AdamConfig {
            lr: 0.1,
            ..Default::default()
        });
        let (initial, _) = quadratic_loss(&store, w);
        for _ in 0..300 {
            let (_, g) = quadratic_loss(&store, w);
            adam.step(&mut store, &g);
        }
        let (fin, _) = quadratic_loss(&store, w);
        assert!(fin < initial * 0.01, "loss {initial} -> {fin}");
        for &x in store.value(w).data() {
            assert!((x - 3.0).abs() < 0.1, "w = {x}");
        }
    }

    #[test]
    fn sgd_minimizes_quadratic() {
        let mut store = ParamStore::new();
        let w = store.add("w", Mat::zeros(1, 2));
        let opt = Sgd::new(0.1);
        for _ in 0..200 {
            let (_, g) = quadratic_loss(&store, w);
            opt.step(&mut store, &g);
        }
        for &x in store.value(w).data() {
            assert!((x - 3.0).abs() < 0.05, "w = {x}");
        }
    }

    #[test]
    fn lr_decay_schedule() {
        let mut adam = Adam::new(AdamConfig {
            lr: 1.0,
            decay_steps: Some(100),
            final_lr_frac: 0.1,
            ..Default::default()
        });
        assert!((adam.current_lr() - 1.0).abs() < 1e-6);
        adam.step_forward(50);
        assert!((adam.current_lr() - 0.55).abs() < 1e-6);
        adam.step_forward(1000);
        assert!((adam.current_lr() - 0.1).abs() < 1e-6);
    }

    #[test]
    fn l2_pulls_weights_toward_zero() {
        let mut store = ParamStore::new();
        let w = store.add("w", Mat::filled(1, 2, 5.0));
        let mut adam = Adam::new(AdamConfig {
            lr: 0.05,
            l2: 0.5,
            ..Default::default()
        });
        // zero task gradient: only the regularizer acts
        for _ in 0..200 {
            let mut g = store.grads();
            g.accumulate_dense(w, &Mat::zeros(1, 2));
            adam.step(&mut store, &g);
        }
        for &x in store.value(w).data() {
            assert!(x.abs() < 1.0, "w = {x}");
        }
    }

    #[test]
    fn sparse_update_touches_only_gathered_rows() {
        let mut store = ParamStore::new();
        let e = store.add_sparse("emb", Mat::filled(3, 2, 1.0));
        let mut adam = Adam::new(AdamConfig::default());
        let mut g = store.grads();
        g.accumulate_row(e, 1, &[1.0, 1.0]);
        adam.step(&mut store, &g);
        let val = store.value(e);
        assert_eq!(val.row(0), &[1.0, 1.0]);
        assert_eq!(val.row(2), &[1.0, 1.0]);
        assert!(val.get(1, 0) < 1.0);
    }
}
