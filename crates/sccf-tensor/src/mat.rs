//! Dense row-major `f32` matrix with the handful of BLAS-free kernels the
//! models need: GEMM in the three transpose layouts, axpy, elementwise maps.
//!
//! Everything in the workspace (embeddings, attention, the integrator MLP)
//! is expressed over 2-D matrices; a sequence is `(len × dim)`, a batch of
//! feature vectors is `(batch × dim)`. The matmul kernel uses the
//! cache-friendly i-k-j loop order so the inner loop streams over
//! contiguous rows of both output and right operand.

/// Dense row-major matrix of `f32`.
#[derive(Debug, Clone, PartialEq)]
pub struct Mat {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Mat {
    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Build from a row-major data vector. Panics if the length mismatches.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} != {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Build a single-row matrix from a slice.
    pub fn row_vector(data: &[f32]) -> Self {
        Self::from_vec(1, data.len(), data.to_vec())
    }

    /// Stack rows (each of equal length) into a matrix.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "from_rows needs at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// `self @ other` — `(n×k)(k×m) → n×m`.
    pub fn matmul(&self, other: &Mat) -> Mat {
        assert_eq!(
            self.cols,
            other.rows,
            "matmul shape mismatch: {:?} x {:?}",
            self.shape(),
            other.shape()
        );
        let (n, k, m) = (self.rows, self.cols, other.cols);
        let mut out = Mat::zeros(n, m);
        for i in 0..n {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (p, &a_ip) in a_row.iter().enumerate().take(k) {
                if a_ip == 0.0 {
                    continue;
                }
                let b_row = other.row(p);
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a_ip * b;
                }
            }
        }
        out
    }

    /// `self @ other^T` — `(n×k)(m×k)^T → n×m`. The inner loop is a dot
    /// product of two contiguous rows, which is the fastest layout for
    /// score matrices (`H @ E^T`) and attention (`Q @ K^T`).
    pub fn matmul_nt(&self, other: &Mat) -> Mat {
        assert_eq!(
            self.cols,
            other.cols,
            "matmul_nt shape mismatch: {:?} x {:?}^T",
            self.shape(),
            other.shape()
        );
        let (n, m) = (self.rows, other.rows);
        let mut out = Mat::zeros(n, m);
        for i in 0..n {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (j, o) in out_row.iter_mut().enumerate() {
                *o = dot(a_row, other.row(j));
            }
        }
        out
    }

    /// `self^T @ other` — `(k×n)^T(k×m) → n×m`.
    pub fn matmul_tn(&self, other: &Mat) -> Mat {
        assert_eq!(
            self.rows,
            other.rows,
            "matmul_tn shape mismatch: {:?}^T x {:?}",
            self.shape(),
            other.shape()
        );
        let (n, m) = (self.cols, other.cols);
        let mut out = Mat::zeros(n, m);
        for p in 0..self.rows {
            let a_row = self.row(p);
            let b_row = other.row(p);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Mat {
        let mut out = Mat::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// `self += other`.
    pub fn add_assign(&mut self, other: &Mat) {
        assert_eq!(self.shape(), other.shape());
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// `self += alpha * other` (axpy).
    pub fn scaled_add_assign(&mut self, alpha: f32, other: &Mat) {
        assert_eq!(self.shape(), other.shape());
        axpy(alpha, &other.data, &mut self.data);
    }

    /// Elementwise map into a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Mat {
        Mat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// `self * scalar` into a new matrix.
    pub fn scale(&self, alpha: f32) -> Mat {
        self.map(|x| x * alpha)
    }

    /// Elementwise product into a new matrix.
    pub fn hadamard(&self, other: &Mat) -> Mat {
        assert_eq!(self.shape(), other.shape());
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| a * b)
            .collect();
        Mat {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().map(|&x| x as f64).sum::<f64>() as f32
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        (self
            .data
            .iter()
            .map(|&x| (x as f64) * (x as f64))
            .sum::<f64>())
        .sqrt() as f32
    }

    /// Set all entries to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.fill(0.0);
    }

    /// True if any entry is NaN or infinite — used by training sanity checks.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }
}

/// Dot product of two equal-length slices.
///
/// Runtime-dispatched: an explicit AVX2 path when the CPU has it, else
/// the eight-lane `chunks_exact(8)` scalar kernel. Both paths share the
/// exact per-lane arithmetic and reduction tree, so the result is
/// bit-identical either way — see [`crate::simd`].
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    crate::simd::dot(a, b)
}

/// `y += alpha * x` over equal-length slices — the slice-level axpy the
/// matrix ops and integrator feature assembly share. Runtime-dispatched
/// AVX2 with a bit-identical scalar fallback ([`crate::simd`]).
#[inline]
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    crate::simd::axpy(alpha, x, y)
}

/// `out[r] = m.row(r) · v` for every row — the Eq. 10 "score the whole
/// catalog for one user" kernel. Rows are processed in blocks of four so
/// the query vector is loaded once per block instead of once per row;
/// each block keeps four independent accumulator sets.
pub fn matvec_into(m: &Mat, v: &[f32], out: &mut [f32]) {
    assert_eq!(m.cols(), v.len(), "matvec dim mismatch");
    assert_eq!(m.rows(), out.len(), "matvec rows mismatch");
    let cols = m.cols();
    let data = m.data();
    let mut r = 0usize;
    // Four rows per block: the query chunk is loaded once and feeds four
    // independent 8-lane accumulator sets. Lane layout and the final
    // reduction tree mirror [`dot`] exactly, so each output is
    // bit-identical to `dot(m.row(r), v)` — the sparse/dense equivalence
    // tests rely on that.
    while r + 4 <= m.rows() {
        let base = r * cols;
        let rows: [&[f32]; 4] = [
            &data[base..base + cols],
            &data[base + cols..base + 2 * cols],
            &data[base + 2 * cols..base + 3 * cols],
            &data[base + 3 * cols..base + 4 * cols],
        ];
        let mut acc = [[0.0f32; 8]; 4];
        let chunks = cols / 8;
        for c in 0..chunks {
            let j = c * 8;
            let q = &v[j..j + 8];
            for (a, row) in acc.iter_mut().zip(rows) {
                let x = &row[j..j + 8];
                for l in 0..8 {
                    a[l] += x[l] * q[l];
                }
            }
        }
        for (k, a) in acc.iter().enumerate() {
            let mut s = ((a[0] + a[1]) + (a[2] + a[3])) + ((a[4] + a[5]) + (a[6] + a[7]));
            for j in chunks * 8..cols {
                s += rows[k][j] * v[j];
            }
            out[r + k] = s;
        }
        r += 4;
    }
    while r < m.rows() {
        out[r] = dot(m.row(r), v);
        r += 1;
    }
}

/// Euclidean norm of a slice.
#[inline]
pub fn norm(a: &[f32]) -> f32 {
    dot(a, a).sqrt()
}

/// Cosine similarity of two vectors; 0 when either has zero norm.
#[inline]
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let na = norm(a);
    let nb = norm(b);
    if na <= f32::EPSILON || nb <= f32::EPSILON {
        0.0
    } else {
        dot(a, b) / (na * nb)
    }
}

/// Normalize a vector to unit length in place; leaves zero vectors untouched.
pub fn normalize(a: &mut [f32]) {
    let n = norm(a);
    if n > f32::EPSILON {
        for x in a.iter_mut() {
            *x /= n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, v: &[f32]) -> Mat {
        Mat::from_vec(rows, cols, v.to_vec())
    }

    #[test]
    fn matmul_hand_checked() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = m(3, 2, &[7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_nt_equals_matmul_with_transpose() {
        let a = m(2, 3, &[1., -2., 3., 0.5, 5., -6.]);
        let b = m(4, 3, &[1., 0., 2., -1., 3., 1., 0., 0., 1., 2., 2., 2.]);
        let c1 = a.matmul_nt(&b);
        let c2 = a.matmul(&b.transpose());
        assert_eq!(c1.shape(), (2, 4));
        for (x, y) in c1.data().iter().zip(c2.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn matmul_tn_equals_transpose_then_matmul() {
        let a = m(3, 2, &[1., 2., 3., 4., 5., 6.]);
        let b = m(3, 4, &(0..12).map(|x| x as f32).collect::<Vec<_>>());
        let c1 = a.matmul_tn(&b);
        let c2 = a.transpose().matmul(&b);
        assert_eq!(c1.shape(), (2, 4));
        for (x, y) in c1.data().iter().zip(c2.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Mat::zeros(2, 3);
        let b = Mat::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_involution() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn axpy_and_hadamard() {
        let mut a = m(1, 3, &[1., 2., 3.]);
        let b = m(1, 3, &[10., 20., 30.]);
        a.scaled_add_assign(0.1, &b);
        assert_eq!(a.data(), &[2., 4., 6.]);
        let h = a.hadamard(&b);
        assert_eq!(h.data(), &[20., 80., 180.]);
    }

    #[test]
    fn matvec_matches_dot_bitwise() {
        // 9 rows (exercises the 4-row blocks + tail), 19 cols (exercises
        // the 8-lane chunks + remainder).
        let (rows, cols) = (9usize, 19usize);
        let m = Mat::from_vec(
            rows,
            cols,
            (0..rows * cols)
                .map(|x| ((x * 37 % 97) as f32 - 48.0) * 0.173)
                .collect(),
        );
        let v: Vec<f32> = (0..cols)
            .map(|x| ((x * 13 % 29) as f32 - 14.0) * 0.311)
            .collect();
        let mut out = vec![0.0f32; rows];
        matvec_into(&m, &v, &mut out);
        for (r, &o) in out.iter().enumerate() {
            assert_eq!(
                o.to_bits(),
                dot(m.row(r), &v).to_bits(),
                "row {r} diverges from the dot kernel"
            );
        }
    }

    #[test]
    fn axpy_matches_reference() {
        let x = [1.0f32, -2.0, 3.0, 0.5];
        let mut y = [10.0f32, 20.0, 30.0, 40.0];
        axpy(0.5, &x, &mut y);
        assert_eq!(y, [10.5, 19.0, 31.5, 40.25]);
    }

    #[test]
    fn dot_handles_remainders() {
        let a: Vec<f32> = (0..7).map(|x| x as f32).collect();
        let b: Vec<f32> = (0..7).map(|x| (x * 2) as f32).collect();
        let expect: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert!((dot(&a, &b) - expect).abs() < 1e-5);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn cosine_properties() {
        let a = [1.0f32, 0.0];
        let b = [0.0f32, 2.0];
        let c = [3.0f32, 0.0];
        assert!((cosine(&a, &b)).abs() < 1e-6);
        assert!((cosine(&a, &c) - 1.0).abs() < 1e-6);
        assert_eq!(cosine(&a, &[0.0, 0.0]), 0.0);
    }

    #[test]
    fn normalize_unit_norm() {
        let mut v = [3.0f32, 4.0];
        normalize(&mut v);
        assert!((norm(&v) - 1.0).abs() < 1e-6);
        let mut z = [0.0f32, 0.0];
        normalize(&mut z);
        assert_eq!(z, [0.0, 0.0]);
    }

    #[test]
    fn row_views() {
        let mut a = m(2, 2, &[1., 2., 3., 4.]);
        assert_eq!(a.row(1), &[3., 4.]);
        a.row_mut(0)[1] = 9.0;
        assert_eq!(a.get(0, 1), 9.0);
    }

    #[test]
    fn sum_and_norms() {
        let a = m(2, 2, &[1., -1., 2., -2.]);
        assert_eq!(a.sum(), 0.0);
        assert!((a.frobenius_norm() - (10.0f32).sqrt()).abs() < 1e-6);
        assert!(!a.has_non_finite());
        let b = m(1, 1, &[f32::NAN]);
        assert!(b.has_non_finite());
    }

    #[test]
    #[should_panic(expected = "ragged rows")]
    fn from_rows_ragged_panics() {
        let _ = Mat::from_rows(&[&[1.0, 2.0], &[3.0]]);
    }
}
