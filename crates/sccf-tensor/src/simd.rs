//! Runtime-dispatched x86-64 SIMD kernels with bit-identical scalar
//! fallbacks.
//!
//! The serving-path kernels ([`crate::mat::dot`], [`crate::mat::axpy`],
//! and the fused PQ table-lookup scan below) check for AVX2 once per
//! process (`is_x86_feature_detected!`) and take a hand-written
//! intrinsics path when available. Two rules keep the workspace's
//! pinned-equivalence discipline intact across machines:
//!
//! 1. **Same arithmetic, same order.** The AVX2 paths perform exactly
//!    the per-lane multiply-then-add sequence of the scalar kernels
//!    (one 256-bit register *is* the scalar kernel's eight accumulator
//!    lanes) and reduce with the same `((a0+a1)+(a2+a3))+((a4+a5)+(a6+a7))`
//!    tree — so the SIMD result is **bit-identical** to the scalar
//!    fallback, and every `BENCH_*.json` or snapshot produced on an
//!    AVX2 box replays exactly on one without it.
//! 2. **No FMA.** A fused multiply-add rounds once where `mul` + `add`
//!    round twice; using it would silently fork the float stream
//!    between the two paths. The kernels stick to `_mm256_mul_ps` +
//!    `_mm256_add_ps`.
//!
//! The unit tests pin rule 1 (`*_matches_scalar_bitwise`) on every
//! machine that has AVX2; on others they degrade to scalar-vs-scalar
//! and pass trivially.

/// Whether the AVX2 paths are live in this process. Detection runs once
/// and is cached; the result is stable for the process lifetime.
#[inline]
pub fn avx2_enabled() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        use std::sync::atomic::{AtomicU8, Ordering};
        // 0 = unknown, 1 = enabled, 2 = disabled.
        static STATE: AtomicU8 = AtomicU8::new(0);
        match STATE.load(Ordering::Relaxed) {
            1 => true,
            2 => false,
            _ => {
                let enabled = std::arch::is_x86_feature_detected!("avx2");
                STATE.store(if enabled { 1 } else { 2 }, Ordering::Relaxed);
                enabled
            }
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

// ------------------------------------------------------------------ dot

/// Scalar reference dot product: eight independent accumulator lanes
/// over `chunks_exact(8)` and the fixed reduction tree. This is the
/// arithmetic contract the AVX2 path reproduces bit-for-bit.
#[inline]
pub fn dot_scalar(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; 8];
    let mut ca = a.chunks_exact(8);
    let mut cb = b.chunks_exact(8);
    for (x, y) in (&mut ca).zip(&mut cb) {
        for l in 0..8 {
            acc[l] += x[l] * y[l];
        }
    }
    let mut s = ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7]));
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        s += x * y;
    }
    s
}

/// Dot product with runtime AVX2 dispatch. Bit-identical to
/// [`dot_scalar`] on every input, AVX2 or not.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if avx2_enabled() {
        // SAFETY: `avx2_enabled` verified AVX2 support on this CPU.
        return unsafe { dot_avx2(a, b) };
    }
    dot_scalar(a, b)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dot_avx2(a: &[f32], b: &[f32]) -> f32 {
    use std::arch::x86_64::*;
    debug_assert_eq!(a.len(), b.len());
    let chunks = a.len() / 8;
    // One 256-bit accumulator = the scalar kernel's 8 lanes; mul + add
    // (not FMA) keeps the per-lane rounding identical to the scalar path.
    let mut acc = _mm256_setzero_ps();
    for c in 0..chunks {
        let x = _mm256_loadu_ps(a.as_ptr().add(c * 8));
        let y = _mm256_loadu_ps(b.as_ptr().add(c * 8));
        acc = _mm256_add_ps(acc, _mm256_mul_ps(x, y));
    }
    let mut lanes = [0.0f32; 8];
    _mm256_storeu_ps(lanes.as_mut_ptr(), acc);
    // The exact reduction tree of the scalar kernel.
    let mut s = ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]))
        + ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]));
    for i in chunks * 8..a.len() {
        s += a[i] * b[i];
    }
    s
}

// ----------------------------------------------------------------- axpy

/// Scalar reference `y += alpha * x`.
#[inline]
pub fn axpy_scalar(alpha: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `y += alpha * x` with runtime AVX2 dispatch. Each element sees one
/// `mul` and one `add` in both paths, so results are bit-identical.
#[inline]
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if avx2_enabled() {
        // SAFETY: `avx2_enabled` verified AVX2 support on this CPU.
        unsafe { axpy_avx2(alpha, x, y) };
        return;
    }
    axpy_scalar(alpha, x, y);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn axpy_avx2(alpha: f32, x: &[f32], y: &mut [f32]) {
    use std::arch::x86_64::*;
    debug_assert_eq!(x.len(), y.len());
    let chunks = x.len() / 8;
    let av = _mm256_set1_ps(alpha);
    for c in 0..chunks {
        let xv = _mm256_loadu_ps(x.as_ptr().add(c * 8));
        let yv = _mm256_loadu_ps(y.as_ptr().add(c * 8));
        let r = _mm256_add_ps(yv, _mm256_mul_ps(av, xv));
        _mm256_storeu_ps(y.as_mut_ptr().add(c * 8), r);
    }
    for i in chunks * 8..x.len() {
        y[i] += alpha * x[i];
    }
}

// ------------------------------------------------- fused PQ table lookup

/// Scalar reference ADC accumulation for one code row:
/// `Σ_s lut[s·kk + codes[s]]`, subspaces in ascending order.
#[inline]
pub fn pq_adc_row_scalar(lut: &[f32], kk: usize, codes: &[u8]) -> f32 {
    let mut acc = 0.0f32;
    for (s, &c) in codes.iter().enumerate() {
        acc += lut[s * kk + c as usize];
    }
    acc
}

/// Fused PQ asymmetric-distance scan over a *gather list* of rows:
/// `out[j] = Σ_s lut[s·kk + codes[rows[j]·m + s]]`.
///
/// This is the inner loop of every product-quantized search (the tier's
/// IVF-PQ cell scan, `PqIndex::search`): per row, `m` table reads and
/// adds. The AVX2 path scores eight rows at once, using
/// `_mm256_i32gather_ps` for the eight table reads of each subspace —
/// one gather replaces eight dependent scalar loads while the per-row
/// add order (ascending `s`) stays exactly the scalar order, so the
/// accumulated floats are bit-identical.
///
/// `out` is overwritten and resized to `rows.len()`; its capacity is
/// retained across calls (hot-path scratch discipline).
pub fn pq_adc_gather(
    lut: &[f32],
    kk: usize,
    codes: &[u8],
    m: usize,
    rows: &[u32],
    out: &mut Vec<f32>,
) {
    assert!(m > 0, "pq scan needs at least one subspace");
    assert!(lut.len() >= m * kk, "lut too small for m×kk");
    out.clear();
    out.resize(rows.len(), 0.0);
    #[cfg(target_arch = "x86_64")]
    if avx2_enabled() {
        // SAFETY: `avx2_enabled` verified AVX2 support; bounds on
        // `rows`/`codes`/`lut` are asserted above and by the slice
        // indexing in the tail loop sharing the same access pattern.
        unsafe { pq_adc_gather_avx2(lut, kk, codes, m, rows, out) };
        return;
    }
    for (o, &r) in out.iter_mut().zip(rows) {
        let row = &codes[r as usize * m..(r as usize + 1) * m];
        *o = pq_adc_row_scalar(lut, kk, row);
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn pq_adc_gather_avx2(
    lut: &[f32],
    kk: usize,
    codes: &[u8],
    m: usize,
    rows: &[u32],
    out: &mut [f32],
) {
    use std::arch::x86_64::*;
    let blocks = rows.len() / 8;
    let mut idx = [0i32; 8];
    for blk in 0..blocks {
        let base = blk * 8;
        let mut acc = _mm256_setzero_ps();
        for s in 0..m {
            for (slot, &r) in idx.iter_mut().zip(&rows[base..base + 8]) {
                *slot = (s * kk) as i32 + codes[r as usize * m + s] as i32;
            }
            let iv = _mm256_loadu_si256(idx.as_ptr() as *const __m256i);
            // scale = 4: indices are in f32 elements.
            let g = _mm256_i32gather_ps::<4>(lut.as_ptr(), iv);
            acc = _mm256_add_ps(acc, g);
        }
        _mm256_storeu_ps(out.as_mut_ptr().add(base), acc);
    }
    for j in blocks * 8..rows.len() {
        let r = rows[j] as usize;
        out[j] = pq_adc_row_scalar(lut, kk, &codes[r * m..(r + 1) * m]);
    }
}

/// Fused ADC scan over *contiguous* rows `0..n`: the full-population
/// form `PqIndex::search` uses. Equivalent to [`pq_adc_gather`] with
/// `rows = [0, 1, .., n-1]` but without materializing the id list.
pub fn pq_adc_all(lut: &[f32], kk: usize, codes: &[u8], m: usize, out: &mut Vec<f32>) {
    assert!(m > 0, "pq scan needs at least one subspace");
    assert!(codes.len().is_multiple_of(m), "ragged code rows");
    assert!(lut.len() >= m * kk, "lut too small for m×kk");
    let n = codes.len() / m;
    out.clear();
    out.resize(n, 0.0);
    #[cfg(target_arch = "x86_64")]
    if avx2_enabled() {
        // SAFETY: `avx2_enabled` verified AVX2 support; shape asserts
        // above guarantee every access the kernel performs is in bounds.
        unsafe { pq_adc_all_avx2(lut, kk, codes, m, out) };
        return;
    }
    for (r, o) in out.iter_mut().enumerate() {
        *o = pq_adc_row_scalar(lut, kk, &codes[r * m..(r + 1) * m]);
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn pq_adc_all_avx2(lut: &[f32], kk: usize, codes: &[u8], m: usize, out: &mut [f32]) {
    use std::arch::x86_64::*;
    let n = out.len();
    let blocks = n / 8;
    let mut idx = [0i32; 8];
    for blk in 0..blocks {
        let base = blk * 8;
        let mut acc = _mm256_setzero_ps();
        for s in 0..m {
            for (slot, r) in idx.iter_mut().zip(base..base + 8) {
                *slot = (s * kk) as i32 + codes[r * m + s] as i32;
            }
            let iv = _mm256_loadu_si256(idx.as_ptr() as *const __m256i);
            let g = _mm256_i32gather_ps::<4>(lut.as_ptr(), iv);
            acc = _mm256_add_ps(acc, g);
        }
        _mm256_storeu_ps(out.as_mut_ptr().add(base), acc);
    }
    for r in blocks * 8..n {
        out[r] = pq_adc_row_scalar(lut, kk, &codes[r * m..(r + 1) * m]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slab(n: usize, seed: u64) -> Vec<f32> {
        (0..n)
            .map(|i| {
                (((i as u64).wrapping_mul(2654435761).wrapping_add(seed) % 1000) as f32 - 500.0)
                    * 0.0173
            })
            .collect()
    }

    #[test]
    fn dot_matches_scalar_bitwise() {
        // Lengths around the 8-lane boundary + a long one.
        for len in [0usize, 1, 7, 8, 9, 16, 17, 63, 64, 257] {
            let a = slab(len, 1);
            let b = slab(len, 2);
            assert_eq!(
                dot(&a, &b).to_bits(),
                dot_scalar(&a, &b).to_bits(),
                "len {len}"
            );
        }
    }

    #[test]
    fn axpy_matches_scalar_bitwise() {
        for len in [0usize, 1, 7, 8, 9, 31, 32, 100] {
            let x = slab(len, 3);
            let mut y1 = slab(len, 4);
            let mut y2 = y1.clone();
            axpy(0.37, &x, &mut y1);
            axpy_scalar(0.37, &x, &mut y2);
            for (a, b) in y1.iter().zip(&y2) {
                assert_eq!(a.to_bits(), b.to_bits(), "len {len}");
            }
        }
    }

    #[test]
    fn pq_adc_matches_scalar_bitwise() {
        let (m, kk, n) = (6usize, 16usize, 29usize);
        let lut = slab(m * kk, 5);
        let codes: Vec<u8> = (0..n * m).map(|i| ((i * 31 + 7) % kk) as u8).collect();
        // gather-list form, ids deliberately shuffled and repeated
        let rows: Vec<u32> = (0..n as u32).rev().chain([3, 3, 11]).collect();
        let mut fast = Vec::new();
        pq_adc_gather(&lut, kk, &codes, m, &rows, &mut fast);
        assert_eq!(fast.len(), rows.len());
        for (j, &r) in rows.iter().enumerate() {
            let want = pq_adc_row_scalar(&lut, kk, &codes[r as usize * m..(r as usize + 1) * m]);
            assert_eq!(fast[j].to_bits(), want.to_bits(), "row {r}");
        }
        // contiguous form
        let mut all = Vec::new();
        pq_adc_all(&lut, kk, &codes, m, &mut all);
        assert_eq!(all.len(), n);
        for (r, &got) in all.iter().enumerate() {
            let want = pq_adc_row_scalar(&lut, kk, &codes[r * m..(r + 1) * m]);
            assert_eq!(got.to_bits(), want.to_bits(), "row {r}");
        }
    }

    #[test]
    fn adc_gather_reuses_capacity() {
        let lut = slab(8, 6);
        let codes: Vec<u8> = vec![0, 1, 2, 3];
        let rows = [0u32, 1, 2, 3];
        let mut out = Vec::with_capacity(64);
        let cap = out.capacity();
        pq_adc_gather(&lut, 2, &codes, 1, &rows, &mut out);
        assert_eq!(out.len(), 4);
        assert_eq!(out.capacity(), cap, "scan must not reallocate scratch");
    }

    #[test]
    fn detection_is_stable() {
        assert_eq!(avx2_enabled(), avx2_enabled());
    }
}
