//! Parameter storage and gradient buffers.
//!
//! Parameters live outside the autodiff tape so one set of weights can be
//! shared across many forward passes (and across threads for read-only
//! inference). A [`Tape`](crate::tape::Tape) borrows the store immutably
//! during forward/backward and produces a [`Grads`] buffer; the optimizer
//! then applies the buffer to the store.
//!
//! Embedding tables are huge relative to how many rows a single step
//! touches, so their gradients are accumulated **sparsely** (per touched
//! row) — the same trick every large-scale recommender trainer uses.

use sccf_util::hash::{fx_map, FxHashMap};

use crate::mat::Mat;

/// Handle to a parameter inside a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) usize);

/// One learnable tensor plus its Adam moments.
#[derive(Debug, Clone)]
pub struct Param {
    pub name: String,
    pub value: Mat,
    /// First/second Adam moment estimates, lazily sized with the value.
    pub m: Mat,
    pub v: Mat,
    /// Hint that gradients arrive as sparse rows (embedding tables).
    pub sparse: bool,
}

/// Gradient of one parameter for one (mini-)batch.
#[derive(Debug, Clone)]
pub enum GradSlot {
    Dense(Mat),
    /// row id → accumulated gradient row. Only rows touched by a `gather`.
    SparseRows(FxHashMap<u32, Vec<f32>>),
}

/// Gradients for a subset of parameters, indexed like the store.
#[derive(Debug, Default)]
pub struct Grads {
    pub(crate) slots: Vec<Option<GradSlot>>,
}

impl Grads {
    pub fn new(n_params: usize) -> Self {
        Self {
            slots: (0..n_params).map(|_| None).collect(),
        }
    }

    pub fn get(&self, pid: ParamId) -> Option<&GradSlot> {
        self.slots.get(pid.0).and_then(|s| s.as_ref())
    }

    /// Accumulate a dense gradient for `pid`.
    pub fn accumulate_dense(&mut self, pid: ParamId, grad: &Mat) {
        match &mut self.slots[pid.0] {
            Some(GradSlot::Dense(g)) => g.add_assign(grad),
            Some(GradSlot::SparseRows(rows)) => {
                // Mixing dense and sparse contributions for one param:
                // densify the sparse rows into the new dense grad.
                let mut g = grad.clone();
                for (&r, row) in rows.iter() {
                    for (dst, &src) in g.row_mut(r as usize).iter_mut().zip(row) {
                        *dst += src;
                    }
                }
                self.slots[pid.0] = Some(GradSlot::Dense(g));
            }
            slot @ None => *slot = Some(GradSlot::Dense(grad.clone())),
        }
    }

    /// Accumulate one sparse row gradient for `pid`.
    pub fn accumulate_row(&mut self, pid: ParamId, row_id: u32, grad_row: &[f32]) {
        match &mut self.slots[pid.0] {
            Some(GradSlot::Dense(g)) => {
                for (dst, &src) in g.row_mut(row_id as usize).iter_mut().zip(grad_row) {
                    *dst += src;
                }
            }
            Some(GradSlot::SparseRows(rows)) => {
                let entry = rows
                    .entry(row_id)
                    .or_insert_with(|| vec![0.0; grad_row.len()]);
                for (dst, &src) in entry.iter_mut().zip(grad_row) {
                    *dst += src;
                }
            }
            slot @ None => {
                let mut rows = fx_map();
                rows.insert(row_id, grad_row.to_vec());
                *slot = Some(GradSlot::SparseRows(rows));
            }
        }
    }

    /// Merge another gradient buffer (e.g. from a parallel shard).
    pub fn merge(&mut self, other: Grads) {
        for (i, slot) in other.slots.into_iter().enumerate() {
            let pid = ParamId(i);
            match slot {
                None => {}
                Some(GradSlot::Dense(g)) => self.accumulate_dense(pid, &g),
                Some(GradSlot::SparseRows(rows)) => {
                    for (r, row) in rows {
                        self.accumulate_row(pid, r, &row);
                    }
                }
            }
        }
    }

    /// Scale every stored gradient by `alpha` (e.g. 1/batch for averaging).
    pub fn scale(&mut self, alpha: f32) {
        for slot in self.slots.iter_mut().flatten() {
            match slot {
                GradSlot::Dense(g) => {
                    for x in g.data_mut() {
                        *x *= alpha;
                    }
                }
                GradSlot::SparseRows(rows) => {
                    for row in rows.values_mut() {
                        for x in row {
                            *x *= alpha;
                        }
                    }
                }
            }
        }
    }

    /// Global L2 norm across all gradients — training diagnostics.
    pub fn global_norm(&self) -> f32 {
        let mut acc = 0.0f64;
        for slot in self.slots.iter().flatten() {
            match slot {
                GradSlot::Dense(g) => {
                    for &x in g.data() {
                        acc += (x as f64) * (x as f64);
                    }
                }
                GradSlot::SparseRows(rows) => {
                    for row in rows.values() {
                        for &x in row {
                            acc += (x as f64) * (x as f64);
                        }
                    }
                }
            }
        }
        acc.sqrt() as f32
    }
}

/// Owns every learnable parameter of a model.
#[derive(Debug, Clone, Default)]
pub struct ParamStore {
    params: Vec<Param>,
}

impl ParamStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a dense parameter.
    pub fn add(&mut self, name: impl Into<String>, value: Mat) -> ParamId {
        self.add_inner(name.into(), value, false)
    }

    /// Register a parameter whose gradients arrive as sparse rows
    /// (embedding tables).
    pub fn add_sparse(&mut self, name: impl Into<String>, value: Mat) -> ParamId {
        self.add_inner(name.into(), value, true)
    }

    fn add_inner(&mut self, name: String, value: Mat, sparse: bool) -> ParamId {
        let (r, c) = value.shape();
        self.params.push(Param {
            name,
            m: Mat::zeros(r, c),
            v: Mat::zeros(r, c),
            value,
            sparse,
        });
        ParamId(self.params.len() - 1)
    }

    pub fn len(&self) -> usize {
        self.params.len()
    }

    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    pub fn value(&self, pid: ParamId) -> &Mat {
        &self.params[pid.0].value
    }

    pub fn value_mut(&mut self, pid: ParamId) -> &mut Mat {
        &mut self.params[pid.0].value
    }

    pub fn param(&self, pid: ParamId) -> &Param {
        &self.params[pid.0]
    }

    pub fn param_mut(&mut self, pid: ParamId) -> &mut Param {
        &mut self.params[pid.0]
    }

    pub fn iter(&self) -> impl Iterator<Item = (ParamId, &Param)> {
        self.params.iter().enumerate().map(|(i, p)| (ParamId(i), p))
    }

    /// Fresh, correctly sized gradient buffer.
    pub fn grads(&self) -> Grads {
        Grads::new(self.params.len())
    }

    /// Total number of scalar parameters — model-size reporting.
    pub fn n_scalars(&self) -> usize {
        self.params.iter().map(|p| p.value.len()).sum()
    }

    /// Sum of squared parameter values — the ℓ2 term of Eq. 9.
    pub fn l2_norm_sq(&self) -> f32 {
        self.params
            .iter()
            .map(|p| {
                p.value
                    .data()
                    .iter()
                    .map(|&x| (x as f64) * (x as f64))
                    .sum::<f64>()
            })
            .sum::<f64>() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut store = ParamStore::new();
        let w = store.add("w", Mat::filled(2, 2, 1.0));
        let e = store.add_sparse("emb", Mat::zeros(10, 4));
        assert_eq!(store.len(), 2);
        assert_eq!(store.value(w).get(0, 0), 1.0);
        assert!(store.param(e).sparse);
        assert!(!store.param(w).sparse);
        assert_eq!(store.n_scalars(), 4 + 40);
    }

    #[test]
    fn dense_grad_accumulates() {
        let mut store = ParamStore::new();
        let w = store.add("w", Mat::zeros(2, 2));
        let mut g = store.grads();
        g.accumulate_dense(w, &Mat::filled(2, 2, 1.0));
        g.accumulate_dense(w, &Mat::filled(2, 2, 2.0));
        match g.get(w).unwrap() {
            GradSlot::Dense(m) => assert_eq!(m.data(), &[3.0; 4]),
            _ => panic!("expected dense"),
        }
    }

    #[test]
    fn sparse_rows_accumulate_and_merge_into_dense() {
        let mut store = ParamStore::new();
        let e = store.add_sparse("emb", Mat::zeros(4, 2));
        let mut g = store.grads();
        g.accumulate_row(e, 1, &[1.0, 1.0]);
        g.accumulate_row(e, 1, &[0.5, 0.0]);
        g.accumulate_row(e, 3, &[2.0, 2.0]);
        match g.get(e).unwrap() {
            GradSlot::SparseRows(rows) => {
                assert_eq!(rows[&1], vec![1.5, 1.0]);
                assert_eq!(rows[&3], vec![2.0, 2.0]);
            }
            _ => panic!("expected sparse"),
        }
        // Now a dense contribution arrives for the same param.
        g.accumulate_dense(e, &Mat::filled(4, 2, 1.0));
        match g.get(e).unwrap() {
            GradSlot::Dense(m) => {
                assert_eq!(m.row(0), &[1.0, 1.0]);
                assert_eq!(m.row(1), &[2.5, 2.0]);
                assert_eq!(m.row(3), &[3.0, 3.0]);
            }
            _ => panic!("expected densified"),
        }
    }

    #[test]
    fn merge_and_scale() {
        let mut store = ParamStore::new();
        let w = store.add("w", Mat::zeros(1, 2));
        let e = store.add_sparse("e", Mat::zeros(3, 2));
        let mut g1 = store.grads();
        g1.accumulate_dense(w, &Mat::row_vector(&[1.0, 2.0]));
        g1.accumulate_row(e, 0, &[1.0, 0.0]);
        let mut g2 = store.grads();
        g2.accumulate_dense(w, &Mat::row_vector(&[3.0, 4.0]));
        g2.accumulate_row(e, 0, &[0.0, 1.0]);
        g2.accumulate_row(e, 2, &[5.0, 5.0]);
        g1.merge(g2);
        g1.scale(0.5);
        match g1.get(w).unwrap() {
            GradSlot::Dense(m) => assert_eq!(m.data(), &[2.0, 3.0]),
            _ => panic!(),
        }
        match g1.get(e).unwrap() {
            GradSlot::SparseRows(rows) => {
                assert_eq!(rows[&0], vec![0.5, 0.5]);
                assert_eq!(rows[&2], vec![2.5, 2.5]);
            }
            _ => panic!(),
        }
        assert!(g1.global_norm() > 0.0);
    }

    #[test]
    fn l2_norm_sq_matches_hand_value() {
        let mut store = ParamStore::new();
        store.add("w", Mat::row_vector(&[3.0, 4.0]));
        assert!((store.l2_norm_sq() - 25.0).abs() < 1e-6);
    }
}
