//! Binary snapshots of a [`ParamStore`] — save a trained model, load it
//! back later (deployment hand-off, warm restarts, A/B twins).
//!
//! Format (little-endian, versioned):
//!
//! ```text
//! magic "SCCF" | u32 version | u32 n_params
//! per param: u32 name_len | name bytes | u8 sparse | u32 rows | u32 cols
//!            | rows·cols f32 value | rows·cols f32 adam_m | rows·cols f32 adam_v
//! ```
//!
//! Adam moments are included so training can resume exactly where it
//! stopped. Loading is strict: corrupt or truncated input returns an
//! error rather than a half-initialized store, and
//! [`load_into`] additionally verifies that parameter names and shapes
//! match the receiving architecture (the safe way to rehydrate a model
//! built from its config).

use bytes::{Buf, BufMut};

use crate::mat::Mat;
use crate::store::ParamStore;

const MAGIC: &[u8; 4] = b"SCCF";
const VERSION: u32 = 1;

/// Serialization errors.
#[derive(Debug, PartialEq, Eq)]
pub enum SnapshotError {
    BadMagic,
    UnsupportedVersion(u32),
    Truncated,
    /// Parameter mismatch while loading into an existing architecture.
    Mismatch(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not an SCCF snapshot"),
            SnapshotError::UnsupportedVersion(v) => write!(f, "unsupported version {v}"),
            SnapshotError::Truncated => write!(f, "truncated snapshot"),
            SnapshotError::Mismatch(m) => write!(f, "parameter mismatch: {m}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Serialize every parameter (values + Adam moments) into a byte buffer.
pub fn save_store(store: &ParamStore) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + store.n_scalars() * 12);
    out.put_slice(MAGIC);
    out.put_u32_le(VERSION);
    out.put_u32_le(store.len() as u32);
    for (_, p) in store.iter() {
        out.put_u32_le(p.name.len() as u32);
        out.put_slice(p.name.as_bytes());
        out.put_u8(p.sparse as u8);
        out.put_u32_le(p.value.rows() as u32);
        out.put_u32_le(p.value.cols() as u32);
        for &x in p.value.data() {
            out.put_f32_le(x);
        }
        for &x in p.m.data() {
            out.put_f32_le(x);
        }
        for &x in p.v.data() {
            out.put_f32_le(x);
        }
    }
    out
}

struct Reader<'a>(&'a [u8]);

impl Reader<'_> {
    fn need(&self, n: usize) -> Result<(), SnapshotError> {
        if self.0.remaining() < n {
            Err(SnapshotError::Truncated)
        } else {
            Ok(())
        }
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        self.need(4)?;
        Ok(self.0.get_u32_le())
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        self.need(1)?;
        Ok(self.0.get_u8())
    }

    fn string(&mut self, len: usize) -> Result<String, SnapshotError> {
        self.need(len)?;
        let mut buf = vec![0u8; len];
        self.0.copy_to_slice(&mut buf);
        String::from_utf8(buf).map_err(|_| SnapshotError::Truncated)
    }

    fn f32s(&mut self, n: usize) -> Result<Vec<f32>, SnapshotError> {
        self.need(n * 4)?;
        Ok((0..n).map(|_| self.0.get_f32_le()).collect())
    }
}

struct RawParam {
    name: String,
    sparse: bool,
    value: Mat,
    m: Mat,
    v: Mat,
}

fn parse(bytes: &[u8]) -> Result<Vec<RawParam>, SnapshotError> {
    let mut r = Reader(bytes);
    r.need(4)?;
    let mut magic = [0u8; 4];
    r.0.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = r.u32()?;
    if version != VERSION {
        return Err(SnapshotError::UnsupportedVersion(version));
    }
    let n = r.u32()? as usize;
    let mut params = Vec::with_capacity(n);
    for _ in 0..n {
        let name_len = r.u32()? as usize;
        let name = r.string(name_len)?;
        let sparse = r.u8()? != 0;
        let rows = r.u32()? as usize;
        let cols = r.u32()? as usize;
        let value = Mat::from_vec(rows, cols, r.f32s(rows * cols)?);
        let m = Mat::from_vec(rows, cols, r.f32s(rows * cols)?);
        let v = Mat::from_vec(rows, cols, r.f32s(rows * cols)?);
        params.push(RawParam {
            name,
            sparse,
            value,
            m,
            v,
        });
    }
    Ok(params)
}

/// Reconstruct a standalone store from a snapshot.
pub fn load_store(bytes: &[u8]) -> Result<ParamStore, SnapshotError> {
    let mut store = ParamStore::new();
    for raw in parse(bytes)? {
        let pid = if raw.sparse {
            store.add_sparse(raw.name, raw.value)
        } else {
            store.add(raw.name, raw.value)
        };
        let p = store.param_mut(pid);
        p.m = raw.m;
        p.v = raw.v;
    }
    Ok(store)
}

/// Load a snapshot into an architecture-matched store: every parameter's
/// name, shape and sparsity must match, in order. This is the safe path
/// for model `load` methods — build the architecture from its config,
/// then rehydrate the weights.
pub fn load_into(store: &mut ParamStore, bytes: &[u8]) -> Result<(), SnapshotError> {
    let params = parse(bytes)?;
    if params.len() != store.len() {
        return Err(SnapshotError::Mismatch(format!(
            "snapshot has {} params, architecture has {}",
            params.len(),
            store.len()
        )));
    }
    // validate everything before mutating anything
    for (raw, (_, p)) in params.iter().zip(store.iter()) {
        if raw.name != p.name {
            return Err(SnapshotError::Mismatch(format!(
                "expected param {:?}, snapshot has {:?}",
                p.name, raw.name
            )));
        }
        if raw.value.shape() != p.value.shape() {
            return Err(SnapshotError::Mismatch(format!(
                "{}: shape {:?} vs snapshot {:?}",
                p.name,
                p.value.shape(),
                raw.value.shape()
            )));
        }
        if raw.sparse != p.sparse {
            return Err(SnapshotError::Mismatch(format!(
                "{}: sparsity flag differs",
                p.name
            )));
        }
    }
    let pids: Vec<_> = store.iter().map(|(pid, _)| pid).collect();
    for (raw, pid) in params.into_iter().zip(pids) {
        let p = store.param_mut(pid);
        p.value = raw.value;
        p.m = raw.m;
        p.v = raw.v;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_store() -> ParamStore {
        let mut s = ParamStore::new();
        let w = s.add("w", Mat::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]));
        s.add_sparse("emb", Mat::from_vec(3, 2, vec![0.1; 6]));
        // dirty the moments so the roundtrip is non-trivial
        s.param_mut(w).m = Mat::filled(2, 3, 0.5);
        s.param_mut(w).v = Mat::filled(2, 3, 0.25);
        s
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let store = sample_store();
        let bytes = save_store(&store);
        let loaded = load_store(&bytes).unwrap();
        assert_eq!(loaded.len(), store.len());
        for ((_, a), (_, b)) in loaded.iter().zip(store.iter()) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.sparse, b.sparse);
            assert_eq!(a.value, b.value);
            assert_eq!(a.m, b.m);
            assert_eq!(a.v, b.v);
        }
    }

    #[test]
    fn load_into_rehydrates_matching_architecture() {
        let trained = sample_store();
        let bytes = save_store(&trained);
        // a freshly-initialized twin (zeros)
        let mut fresh = ParamStore::new();
        fresh.add("w", Mat::zeros(2, 3));
        fresh.add_sparse("emb", Mat::zeros(3, 2));
        load_into(&mut fresh, &bytes).unwrap();
        assert_eq!(fresh.value(crate::store::ParamId(0)).row(0), &[1., 2., 3.]);
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(
            load_store(b"NOPE....").unwrap_err(),
            SnapshotError::BadMagic
        );
    }

    #[test]
    fn truncation_detected() {
        let bytes = save_store(&sample_store());
        for cut in [3, 10, bytes.len() - 1] {
            match load_store(&bytes[..cut]) {
                Err(SnapshotError::Truncated) | Err(SnapshotError::BadMagic) => {}
                other => panic!("cut at {cut}: {other:?}"),
            }
        }
    }

    #[test]
    fn shape_mismatch_rejected_without_mutation() {
        let bytes = save_store(&sample_store());
        let mut wrong = ParamStore::new();
        wrong.add("w", Mat::zeros(3, 3)); // wrong shape
        wrong.add_sparse("emb", Mat::zeros(3, 2));
        let err = load_into(&mut wrong, &bytes).unwrap_err();
        assert!(matches!(err, SnapshotError::Mismatch(_)));
        // untouched
        assert!(wrong
            .value(crate::store::ParamId(0))
            .data()
            .iter()
            .all(|&x| x == 0.0));
    }

    #[test]
    fn name_mismatch_rejected() {
        let bytes = save_store(&sample_store());
        let mut wrong = ParamStore::new();
        wrong.add("not_w", Mat::zeros(2, 3));
        wrong.add_sparse("emb", Mat::zeros(3, 2));
        assert!(matches!(
            load_into(&mut wrong, &bytes),
            Err(SnapshotError::Mismatch(_))
        ));
    }

    #[test]
    fn count_mismatch_rejected() {
        let bytes = save_store(&sample_store());
        let mut wrong = ParamStore::new();
        wrong.add("w", Mat::zeros(2, 3));
        assert!(matches!(
            load_into(&mut wrong, &bytes),
            Err(SnapshotError::Mismatch(_))
        ));
    }

    #[test]
    fn version_gate() {
        let mut bytes = save_store(&sample_store());
        bytes[4] = 99; // bump version field
        assert_eq!(
            load_store(&bytes).unwrap_err(),
            SnapshotError::UnsupportedVersion(99)
        );
    }
}
