//! Tape-based reverse-mode automatic differentiation.
//!
//! The tape records an eager computation over [`Mat`] values; calling
//! [`Tape::backward`] walks the record in reverse and accumulates
//! gradients. Parameters are *not* stored on the tape — ops that read them
//! ([`Tape::param`], [`Tape::gather`]) reference a borrowed
//! [`ParamStore`], and their gradients land in a [`Grads`] buffer
//! (dense for weight matrices, sparse rows for embedding tables).
//!
//! The op set is exactly what the paper's models need: FISM's pooled
//! history (Eq. 1), SASRec's Transformer encoder (Eq. 2–8), the BCE
//! training objective (Eq. 9), BPR for the MF baseline, and the fusion MLP
//! of the integrating component (Eq. 15–17). Every op's backward pass is
//! verified against finite differences in the test suite.
#![allow(clippy::needless_range_loop)] // backward passes index several aligned buffers at once

use crate::mat::Mat;
use crate::store::{Grads, ParamId, ParamStore};

/// Handle to a node on the tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(usize);

/// Recorded operation; fields are parent node indices plus whatever the
/// backward pass needs (saved activations, masks, ids).
#[derive(Debug)]
enum Op {
    /// Constant input — no gradient flows past it.
    Input,
    /// Whole parameter copied onto the tape (for small matrices).
    ParamDense(ParamId),
    /// Row lookup into a (usually sparse-gradient) parameter table.
    Gather {
        pid: ParamId,
        ids: Vec<u32>,
    },
    Add(usize, usize),
    Sub(usize, usize),
    Mul(usize, usize),
    Scale(usize, f32),
    /// Broadcast-add a `1×c` bias row onto every row of `x`.
    AddBias {
        x: usize,
        b: usize,
    },
    /// `(n×k)(k×m)`.
    MatMul(usize, usize),
    /// `(n×k)(m×k)ᵀ`.
    MatMulNt(usize, usize),
    Relu(usize),
    Sigmoid(usize),
    Tanh(usize),
    /// Numerically-stable `log σ(x)`.
    LogSigmoid(usize),
    /// Elementwise `a·x + c` with scalar constants (`c` has no gradient).
    Affine {
        x: usize,
        a: f32,
    },
    /// Row-wise dot product `(n×d, n×d) → n×1`; `a` may be `1×d`
    /// (broadcast over the rows of `b`).
    RowsDot(usize, usize),
    /// FISM pooling (Eq. 1): column means scaled by `n^(1-α)/n = n^{-α}`.
    MeanRowsAlpha {
        x: usize,
        alpha: f32,
    },
    SliceCols {
        x: usize,
        start: usize,
        len: usize,
    },
    ConcatCols(Vec<usize>),
    /// Vertical concatenation (sequence stacking / front padding).
    ConcatRows(Vec<usize>),
    /// Sliding windows of `h` consecutive rows, each flattened row-major:
    /// `(L×d) → (L−h+1)×(h·d)` — Caser's horizontal-convolution im2col.
    UnfoldRows {
        x: usize,
        h: usize,
    },
    /// Column-wise max over rows `(n×c) → 1×c`; per-column argmax rows are
    /// cached for the backward routing (Caser's max-pool over time).
    MaxRows {
        x: usize,
        argmax: Vec<usize>,
    },
    /// Row-wise LayerNorm with learnable scale/shift (`1×d` each).
    LayerNorm {
        x: usize,
        gamma: usize,
        beta: usize,
        /// Per-row `(mean, rstd)` saved by the forward pass.
        cache: Vec<(f32, f32)>,
    },
    /// Inverted dropout; `mask[i] ∈ {0, 1/keep}`.
    Dropout {
        x: usize,
        mask: Vec<f32>,
    },
    /// Row-wise softmax where row `i` may only attend to columns
    /// `0..=i + offset` (causal attention). `offset = cols` disables
    /// masking (plain softmax).
    CausalSoftmax {
        x: usize,
        offset: usize,
    },
    /// Mean of all elements — the final loss reduction.
    MeanAll(usize),
    /// Mean binary cross-entropy with logits against fixed targets.
    BceWithLogits {
        logits: usize,
        targets: Vec<f32>,
    },
}

struct Node {
    value: Mat,
    op: Op,
}

/// The autodiff tape. Create one per forward/backward step.
pub struct Tape<'s> {
    store: &'s ParamStore,
    nodes: Vec<Node>,
}

impl<'s> Tape<'s> {
    pub fn new(store: &'s ParamStore) -> Self {
        Self {
            store,
            nodes: Vec::with_capacity(64),
        }
    }

    fn push(&mut self, value: Mat, op: Op) -> Var {
        self.nodes.push(Node { value, op });
        Var(self.nodes.len() - 1)
    }

    /// The current value of a node.
    pub fn value(&self, v: Var) -> &Mat {
        &self.nodes[v.0].value
    }

    /// Shape of a node.
    pub fn shape(&self, v: Var) -> (usize, usize) {
        self.nodes[v.0].value.shape()
    }

    /// Scalar value of a `1×1` node (e.g. a loss).
    pub fn scalar(&self, v: Var) -> f32 {
        let m = self.value(v);
        assert_eq!(m.shape(), (1, 1), "scalar() on non-scalar node");
        m.get(0, 0)
    }

    // ---------------------------------------------------------------- inputs

    /// Gradient-less constant input.
    pub fn input(&mut self, value: Mat) -> Var {
        self.push(value, Op::Input)
    }

    /// Copy a (small) parameter onto the tape; its gradient is dense.
    pub fn param(&mut self, pid: ParamId) -> Var {
        let value = self.store.value(pid).clone();
        self.push(value, Op::ParamDense(pid))
    }

    /// Look up rows `ids` of parameter table `pid` → `(ids.len() × d)`.
    pub fn gather(&mut self, pid: ParamId, ids: &[u32]) -> Var {
        let table = self.store.value(pid);
        let d = table.cols();
        let mut out = Mat::zeros(ids.len(), d);
        for (r, &id) in ids.iter().enumerate() {
            out.row_mut(r).copy_from_slice(table.row(id as usize));
        }
        self.push(
            out,
            Op::Gather {
                pid,
                ids: ids.to_vec(),
            },
        )
    }

    // ------------------------------------------------------------ arithmetic

    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let mut out = self.nodes[a.0].value.clone();
        out.add_assign(&self.nodes[b.0].value);
        self.push(out, Op::Add(a.0, b.0))
    }

    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let mut out = self.nodes[a.0].value.clone();
        out.scaled_add_assign(-1.0, &self.nodes[b.0].value);
        self.push(out, Op::Sub(a.0, b.0))
    }

    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let out = self.nodes[a.0].value.hadamard(&self.nodes[b.0].value);
        self.push(out, Op::Mul(a.0, b.0))
    }

    pub fn scale(&mut self, a: Var, alpha: f32) -> Var {
        let out = self.nodes[a.0].value.scale(alpha);
        self.push(out, Op::Scale(a.0, alpha))
    }

    /// Broadcast-add bias row `b` (`1×c`) to every row of `x` (`n×c`).
    pub fn add_bias(&mut self, x: Var, b: Var) -> Var {
        let xb = &self.nodes[x.0].value;
        let bias = &self.nodes[b.0].value;
        assert_eq!(bias.rows(), 1, "bias must be a row vector");
        assert_eq!(bias.cols(), xb.cols(), "bias width mismatch");
        let mut out = xb.clone();
        for r in 0..out.rows() {
            for (o, &bv) in out.row_mut(r).iter_mut().zip(bias.row(0)) {
                *o += bv;
            }
        }
        self.push(out, Op::AddBias { x: x.0, b: b.0 })
    }

    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let out = self.nodes[a.0].value.matmul(&self.nodes[b.0].value);
        self.push(out, Op::MatMul(a.0, b.0))
    }

    /// `a @ bᵀ`.
    pub fn matmul_nt(&mut self, a: Var, b: Var) -> Var {
        let out = self.nodes[a.0].value.matmul_nt(&self.nodes[b.0].value);
        self.push(out, Op::MatMulNt(a.0, b.0))
    }

    // ----------------------------------------------------------- activations

    pub fn relu(&mut self, x: Var) -> Var {
        let out = self.nodes[x.0].value.map(|v| v.max(0.0));
        self.push(out, Op::Relu(x.0))
    }

    pub fn sigmoid(&mut self, x: Var) -> Var {
        let out = self.nodes[x.0].value.map(stable_sigmoid);
        self.push(out, Op::Sigmoid(x.0))
    }

    pub fn tanh(&mut self, x: Var) -> Var {
        let out = self.nodes[x.0].value.map(f32::tanh);
        self.push(out, Op::Tanh(x.0))
    }

    /// Elementwise `a·x + c` with scalar constants. `affine(x, -1, 1)` is
    /// the `1 − z` gate complement GRUs need.
    pub fn affine(&mut self, x: Var, a: f32, c: f32) -> Var {
        let out = self.nodes[x.0].value.map(|v| a * v + c);
        self.push(out, Op::Affine { x: x.0, a })
    }

    /// `log σ(x)`, stable for large negative inputs.
    pub fn log_sigmoid(&mut self, x: Var) -> Var {
        let out = self.nodes[x.0].value.map(|v| {
            // log σ(v) = -softplus(-v) = min(v,0) - ln(1+e^{-|v|})
            v.min(0.0) - (-v.abs()).exp().ln_1p()
        });
        self.push(out, Op::LogSigmoid(x.0))
    }

    /// Row-wise dot products; `a` is `n×d` or `1×d` (broadcast).
    pub fn rows_dot(&mut self, a: Var, b: Var) -> Var {
        let am = &self.nodes[a.0].value;
        let bm = &self.nodes[b.0].value;
        assert_eq!(am.cols(), bm.cols(), "rows_dot width mismatch");
        assert!(
            am.rows() == bm.rows() || am.rows() == 1,
            "rows_dot needs equal rows or broadcastable a"
        );
        let n = bm.rows();
        let mut out = Mat::zeros(n, 1);
        for i in 0..n {
            let ar = if am.rows() == 1 { am.row(0) } else { am.row(i) };
            out.set(i, 0, crate::mat::dot(ar, bm.row(i)));
        }
        self.push(out, Op::RowsDot(a.0, b.0))
    }

    /// FISM pooling (Eq. 1): `(n×d) → 1×d`, `out = n^{-α} · Σ rows`.
    pub fn mean_rows_alpha(&mut self, x: Var, alpha: f32) -> Var {
        let xm = &self.nodes[x.0].value;
        let n = xm.rows().max(1);
        let scale = (n as f32).powf(-alpha);
        let mut out = Mat::zeros(1, xm.cols());
        for r in 0..xm.rows() {
            for (o, &v) in out.row_mut(0).iter_mut().zip(xm.row(r)) {
                *o += v;
            }
        }
        for o in out.data_mut() {
            *o *= scale;
        }
        self.push(out, Op::MeanRowsAlpha { x: x.0, alpha })
    }

    /// Columns `[start, start+len)` of `x` — the per-head view in MHA.
    pub fn slice_cols(&mut self, x: Var, start: usize, len: usize) -> Var {
        let xm = &self.nodes[x.0].value;
        assert!(start + len <= xm.cols(), "slice_cols out of range");
        let mut out = Mat::zeros(xm.rows(), len);
        for r in 0..xm.rows() {
            out.row_mut(r)
                .copy_from_slice(&xm.row(r)[start..start + len]);
        }
        self.push(out, Op::SliceCols { x: x.0, start, len })
    }

    /// Horizontal concatenation — re-joining attention heads.
    pub fn concat_cols(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty());
        let rows = self.nodes[parts[0].0].value.rows();
        let total: usize = parts.iter().map(|p| self.nodes[p.0].value.cols()).sum();
        let mut out = Mat::zeros(rows, total);
        let mut off = 0;
        for p in parts {
            let pm = &self.nodes[p.0].value;
            assert_eq!(pm.rows(), rows, "concat_cols ragged rows");
            for r in 0..rows {
                out.row_mut(r)[off..off + pm.cols()].copy_from_slice(pm.row(r));
            }
            off += pm.cols();
        }
        self.push(out, Op::ConcatCols(parts.iter().map(|p| p.0).collect()))
    }

    /// Vertical concatenation — stacking per-step GRU states, or padding a
    /// short sequence with a zero block.
    pub fn concat_rows(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty());
        let cols = self.nodes[parts[0].0].value.cols();
        let total: usize = parts.iter().map(|p| self.nodes[p.0].value.rows()).sum();
        let mut out = Mat::zeros(total, cols);
        let mut off = 0;
        for p in parts {
            let pm = &self.nodes[p.0].value;
            assert_eq!(pm.cols(), cols, "concat_rows ragged cols");
            for r in 0..pm.rows() {
                out.row_mut(off + r).copy_from_slice(pm.row(r));
            }
            off += pm.rows();
        }
        self.push(out, Op::ConcatRows(parts.iter().map(|p| p.0).collect()))
    }

    /// Sliding windows of `h` consecutive rows, flattened row-major:
    /// `(L×d) → (L−h+1)×(h·d)`. A horizontal convolution with `F ∈ R^{h×d}`
    /// filters becomes `unfold_rows(x, h) @ F_flat` — Caser's im2col.
    pub fn unfold_rows(&mut self, x: Var, h: usize) -> Var {
        let xm = &self.nodes[x.0].value;
        let (rows, d) = xm.shape();
        assert!(
            h >= 1 && h <= rows,
            "unfold_rows: window {h} over {rows} rows"
        );
        let n = rows - h + 1;
        let mut out = Mat::zeros(n, h * d);
        for w in 0..n {
            for k in 0..h {
                out.row_mut(w)[k * d..(k + 1) * d].copy_from_slice(xm.row(w + k));
            }
        }
        self.push(out, Op::UnfoldRows { x: x.0, h })
    }

    /// Column-wise max over rows `(n×c) → 1×c` — Caser's max-pool over
    /// time. Ties route the gradient to the earliest maximizing row.
    pub fn max_rows(&mut self, x: Var) -> Var {
        let xm = &self.nodes[x.0].value;
        let (rows, cols) = xm.shape();
        assert!(rows >= 1, "max_rows on empty matrix");
        let mut out = Mat::zeros(1, cols);
        let mut argmax = vec![0usize; cols];
        for c in 0..cols {
            let mut best = xm.get(0, c);
            for r in 1..rows {
                let v = xm.get(r, c);
                if v > best {
                    best = v;
                    argmax[c] = r;
                }
            }
            out.set(0, c, best);
        }
        self.push(out, Op::MaxRows { x: x.0, argmax })
    }

    /// Row-wise LayerNorm with learnable `gamma`/`beta` (`1×d` params).
    pub fn layer_norm(&mut self, x: Var, gamma: Var, beta: Var, eps: f32) -> Var {
        let xm = &self.nodes[x.0].value;
        let g = &self.nodes[gamma.0].value;
        let b = &self.nodes[beta.0].value;
        assert_eq!(g.shape(), (1, xm.cols()));
        assert_eq!(b.shape(), (1, xm.cols()));
        let d = xm.cols() as f32;
        let mut out = Mat::zeros(xm.rows(), xm.cols());
        let mut cache = Vec::with_capacity(xm.rows());
        for r in 0..xm.rows() {
            let row = xm.row(r);
            let mean = row.iter().sum::<f32>() / d;
            let var = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / d;
            let rstd = 1.0 / (var + eps).sqrt();
            cache.push((mean, rstd));
            for (c, o) in out.row_mut(r).iter_mut().enumerate() {
                let xhat = (row[c] - mean) * rstd;
                *o = g.get(0, c) * xhat + b.get(0, c);
            }
        }
        self.push(
            out,
            Op::LayerNorm {
                x: x.0,
                gamma: gamma.0,
                beta: beta.0,
                cache,
            },
        )
    }

    /// Inverted dropout with keep probability `1 - p`. The caller supplies
    /// randomness so training runs stay reproducible. `p == 0` is a no-op
    /// pass-through (still recorded, mask of ones).
    pub fn dropout(&mut self, x: Var, p: f32, rng: &mut impl rand::Rng) -> Var {
        assert!((0.0..1.0).contains(&p), "dropout p must be in [0,1)");
        let xm = &self.nodes[x.0].value;
        let keep = 1.0 - p;
        let mask: Vec<f32> = (0..xm.len())
            .map(|_| {
                if p == 0.0 || rng.gen::<f32>() < keep {
                    1.0 / keep
                } else {
                    0.0
                }
            })
            .collect();
        let mut out = xm.clone();
        for (o, &m) in out.data_mut().iter_mut().zip(&mask) {
            *o *= m;
        }
        self.push(out, Op::Dropout { x: x.0, mask })
    }

    /// Causal row softmax: row `i` attends to columns `0..=i+offset`
    /// (`offset ≥ 0`). With `offset ≥ cols - 1` this is a plain softmax.
    pub fn causal_softmax(&mut self, x: Var, offset: usize) -> Var {
        let xm = &self.nodes[x.0].value;
        let mut out = Mat::zeros(xm.rows(), xm.cols());
        for r in 0..xm.rows() {
            let limit = (r + offset + 1).min(xm.cols());
            let row = &xm.row(r)[..limit];
            let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let mut denom = 0.0f32;
            for &v in row {
                denom += (v - max).exp();
            }
            for c in 0..limit {
                out.set(r, c, (xm.get(r, c) - max).exp() / denom);
            }
        }
        self.push(out, Op::CausalSoftmax { x: x.0, offset })
    }

    /// Plain row softmax.
    pub fn softmax(&mut self, x: Var) -> Var {
        let cols = self.nodes[x.0].value.cols();
        self.causal_softmax(x, cols)
    }

    // ---------------------------------------------------------------- losses

    /// Mean over all elements → `1×1`.
    pub fn mean_all(&mut self, x: Var) -> Var {
        let xm = &self.nodes[x.0].value;
        let n = xm.len().max(1) as f32;
        let out = Mat::from_vec(1, 1, vec![xm.sum() / n]);
        self.push(out, Op::MeanAll(x.0))
    }

    /// Mean binary cross-entropy with logits (Eq. 9 without the ℓ2 term).
    /// `targets` must have one entry per element of `logits`.
    pub fn bce_with_logits(&mut self, logits: Var, targets: &[f32]) -> Var {
        let lm = &self.nodes[logits.0].value;
        assert_eq!(lm.len(), targets.len(), "targets length mismatch");
        let mut acc = 0.0f64;
        for (&x, &t) in lm.data().iter().zip(targets) {
            // Stable: max(x,0) - x·t + ln(1 + e^{-|x|})
            let loss = x.max(0.0) - x * t + (-x.abs()).exp().ln_1p();
            acc += loss as f64;
        }
        let out = Mat::from_vec(1, 1, vec![(acc / targets.len().max(1) as f64) as f32]);
        self.push(
            out,
            Op::BceWithLogits {
                logits: logits.0,
                targets: targets.to_vec(),
            },
        )
    }

    /// BPR pairwise loss: `-mean(log σ(pos - neg))` over aligned `n×1`
    /// score columns. Built from primitive ops so it needs no backward of
    /// its own.
    pub fn bpr_loss(&mut self, pos: Var, neg: Var) -> Var {
        let diff = self.sub(pos, neg);
        let ls = self.log_sigmoid(diff);
        let mean = self.mean_all(ls);
        self.scale(mean, -1.0)
    }

    // -------------------------------------------------------------- backward

    /// Run reverse-mode accumulation from scalar node `loss`; returns
    /// parameter gradients.
    pub fn backward(&mut self, loss: Var) -> Grads {
        assert_eq!(
            self.nodes[loss.0].value.shape(),
            (1, 1),
            "backward needs a scalar loss"
        );
        let n = self.nodes.len();
        let mut grads: Vec<Option<Mat>> = (0..n).map(|_| None).collect();
        grads[loss.0] = Some(Mat::from_vec(1, 1, vec![1.0]));
        let mut pgrads = Grads::new(self.store.len());

        for i in (0..=loss.0).rev() {
            let Some(g) = grads[i].take() else { continue };
            // Helper: accumulate `delta` into node `j`'s gradient.
            macro_rules! acc {
                ($j:expr, $delta:expr) => {{
                    let j = $j;
                    let delta: Mat = $delta;
                    match &mut grads[j] {
                        Some(existing) => existing.add_assign(&delta),
                        slot @ None => *slot = Some(delta),
                    }
                }};
            }
            match &self.nodes[i].op {
                Op::Input => {}
                Op::ParamDense(pid) => pgrads.accumulate_dense(*pid, &g),
                Op::Gather { pid, ids } => {
                    for (r, &id) in ids.iter().enumerate() {
                        pgrads.accumulate_row(*pid, id, g.row(r));
                    }
                }
                Op::Add(a, b) => {
                    let (a, b) = (*a, *b);
                    acc!(a, g.clone());
                    acc!(b, g);
                }
                Op::Sub(a, b) => {
                    let (a, b) = (*a, *b);
                    acc!(a, g.clone());
                    acc!(b, g.scale(-1.0));
                }
                Op::Mul(a, b) => {
                    let (a, b) = (*a, *b);
                    let da = g.hadamard(&self.nodes[b].value);
                    let db = g.hadamard(&self.nodes[a].value);
                    acc!(a, da);
                    acc!(b, db);
                }
                Op::Scale(a, alpha) => {
                    let (a, alpha) = (*a, *alpha);
                    acc!(a, g.scale(alpha));
                }
                Op::AddBias { x, b } => {
                    let (x, b) = (*x, *b);
                    let mut db = Mat::zeros(1, g.cols());
                    for r in 0..g.rows() {
                        for (o, &v) in db.row_mut(0).iter_mut().zip(g.row(r)) {
                            *o += v;
                        }
                    }
                    acc!(x, g);
                    acc!(b, db);
                }
                Op::MatMul(a, b) => {
                    let (a, b) = (*a, *b);
                    let da = g.matmul_nt(&self.nodes[b].value);
                    let db = self.nodes[a].value.matmul_tn(&g);
                    acc!(a, da);
                    acc!(b, db);
                }
                Op::MatMulNt(a, b) => {
                    let (a, b) = (*a, *b);
                    let da = g.matmul(&self.nodes[b].value);
                    let db = g.matmul_tn(&self.nodes[a].value);
                    acc!(a, da);
                    acc!(b, db);
                }
                Op::Relu(x) => {
                    let x = *x;
                    let mut dx = g;
                    for (d, &v) in dx.data_mut().iter_mut().zip(self.nodes[x].value.data()) {
                        if v <= 0.0 {
                            *d = 0.0;
                        }
                    }
                    acc!(x, dx);
                }
                Op::Sigmoid(x) => {
                    let x = *x;
                    // dσ = σ(1-σ); node i's value *is* σ.
                    let mut dx = g;
                    for (d, &s) in dx.data_mut().iter_mut().zip(self.nodes[i].value.data()) {
                        *d *= s * (1.0 - s);
                    }
                    acc!(x, dx);
                }
                Op::Tanh(x) => {
                    let x = *x;
                    // d tanh = 1 - y²; node i's value *is* tanh.
                    let mut dx = g;
                    for (d, &y) in dx.data_mut().iter_mut().zip(self.nodes[i].value.data()) {
                        *d *= 1.0 - y * y;
                    }
                    acc!(x, dx);
                }
                Op::Affine { x, a } => {
                    let (x, a) = (*x, *a);
                    acc!(x, g.scale(a));
                }
                Op::LogSigmoid(x) => {
                    let x = *x;
                    // d log σ(v) = 1 - σ(v) = σ(-v)
                    let mut dx = g;
                    for (d, &v) in dx.data_mut().iter_mut().zip(self.nodes[x].value.data()) {
                        *d *= stable_sigmoid(-v);
                    }
                    acc!(x, dx);
                }
                Op::RowsDot(a, b) => {
                    let (a, b) = (*a, *b);
                    let am = &self.nodes[a].value;
                    let bm = &self.nodes[b].value;
                    let broadcast = am.rows() == 1 && bm.rows() > 1;
                    let mut da = Mat::zeros(am.rows(), am.cols());
                    let mut db = Mat::zeros(bm.rows(), bm.cols());
                    for r in 0..bm.rows() {
                        let gi = g.get(r, 0);
                        let ar = if broadcast { am.row(0) } else { am.row(r) };
                        let dar = if broadcast {
                            da.row_mut(0)
                        } else {
                            da.row_mut(r)
                        };
                        for ((dav, dbv), (&av, &bv)) in dar
                            .iter_mut()
                            .zip(db.row_mut(r).iter_mut())
                            .zip(ar.iter().zip(bm.row(r)))
                        {
                            *dav += gi * bv;
                            *dbv += gi * av;
                        }
                    }
                    acc!(a, da);
                    acc!(b, db);
                }
                Op::MeanRowsAlpha { x, alpha } => {
                    let (x, alpha) = (*x, *alpha);
                    let xm = &self.nodes[x].value;
                    let n = xm.rows().max(1);
                    let s = (n as f32).powf(-alpha);
                    let mut dx = Mat::zeros(xm.rows(), xm.cols());
                    for r in 0..xm.rows() {
                        for (d, &gv) in dx.row_mut(r).iter_mut().zip(g.row(0)) {
                            *d = gv * s;
                        }
                    }
                    acc!(x, dx);
                }
                Op::SliceCols { x, start, len } => {
                    let (x, start, len) = (*x, *start, *len);
                    let xm = &self.nodes[x].value;
                    let mut dx = Mat::zeros(xm.rows(), xm.cols());
                    for r in 0..xm.rows() {
                        dx.row_mut(r)[start..start + len].copy_from_slice(g.row(r));
                    }
                    acc!(x, dx);
                }
                Op::ConcatCols(parts) => {
                    let parts = parts.clone();
                    let mut off = 0;
                    for p in parts {
                        let cols = self.nodes[p].value.cols();
                        let rows = self.nodes[p].value.rows();
                        let mut dp = Mat::zeros(rows, cols);
                        for r in 0..rows {
                            dp.row_mut(r).copy_from_slice(&g.row(r)[off..off + cols]);
                        }
                        off += cols;
                        acc!(p, dp);
                    }
                }
                Op::ConcatRows(parts) => {
                    let parts = parts.clone();
                    let mut off = 0;
                    for p in parts {
                        let rows = self.nodes[p].value.rows();
                        let cols = self.nodes[p].value.cols();
                        let mut dp = Mat::zeros(rows, cols);
                        for r in 0..rows {
                            dp.row_mut(r).copy_from_slice(g.row(off + r));
                        }
                        off += rows;
                        acc!(p, dp);
                    }
                }
                Op::UnfoldRows { x, h } => {
                    let (x, h) = (*x, *h);
                    let xm = &self.nodes[x].value;
                    let (rows, d) = xm.shape();
                    let mut dx = Mat::zeros(rows, d);
                    // Each source row appears in up to `h` windows; scatter-add.
                    for w in 0..g.rows() {
                        for k in 0..h {
                            let src = &g.row(w)[k * d..(k + 1) * d];
                            for (o, &v) in dx.row_mut(w + k).iter_mut().zip(src) {
                                *o += v;
                            }
                        }
                    }
                    acc!(x, dx);
                }
                Op::MaxRows { x, argmax } => {
                    let x = *x;
                    let argmax = argmax.clone();
                    let xm = &self.nodes[x].value;
                    let mut dx = Mat::zeros(xm.rows(), xm.cols());
                    for (c, &r) in argmax.iter().enumerate() {
                        dx.set(r, c, g.get(0, c));
                    }
                    acc!(x, dx);
                }
                Op::LayerNorm {
                    x,
                    gamma,
                    beta,
                    cache,
                } => {
                    let (x, gamma, beta) = (*x, *gamma, *beta);
                    let cache = cache.clone();
                    let xm = &self.nodes[x].value;
                    let gm = &self.nodes[gamma].value;
                    let d = xm.cols();
                    let df = d as f32;
                    let mut dx = Mat::zeros(xm.rows(), d);
                    let mut dgamma = Mat::zeros(1, d);
                    let mut dbeta = Mat::zeros(1, d);
                    for r in 0..xm.rows() {
                        let (mean, rstd) = cache[r];
                        let row = xm.row(r);
                        let grow = g.row(r);
                        // xhat and gγ = g * gamma for this row
                        let mut sum_gg = 0.0f32;
                        let mut sum_gg_xhat = 0.0f32;
                        for c in 0..d {
                            let xhat = (row[c] - mean) * rstd;
                            let gg = grow[c] * gm.get(0, c);
                            sum_gg += gg;
                            sum_gg_xhat += gg * xhat;
                            dgamma.row_mut(0)[c] += grow[c] * xhat;
                            dbeta.row_mut(0)[c] += grow[c];
                        }
                        for c in 0..d {
                            let xhat = (row[c] - mean) * rstd;
                            let gg = grow[c] * gm.get(0, c);
                            dx.set(r, c, rstd / df * (df * gg - sum_gg - xhat * sum_gg_xhat));
                        }
                    }
                    acc!(x, dx);
                    acc!(gamma, dgamma);
                    acc!(beta, dbeta);
                }
                Op::Dropout { x, mask } => {
                    let x = *x;
                    let mut dx = g;
                    for (d, &m) in dx.data_mut().iter_mut().zip(mask) {
                        *d *= m;
                    }
                    acc!(x, dx);
                }
                Op::CausalSoftmax { x, offset } => {
                    let (x, offset) = (*x, *offset);
                    let y = &self.nodes[i].value;
                    let mut dx = Mat::zeros(y.rows(), y.cols());
                    for r in 0..y.rows() {
                        let limit = (r + offset + 1).min(y.cols());
                        let yr = y.row(r);
                        let gr = g.row(r);
                        let mut s = 0.0f32;
                        for c in 0..limit {
                            s += gr[c] * yr[c];
                        }
                        for c in 0..limit {
                            dx.set(r, c, yr[c] * (gr[c] - s));
                        }
                    }
                    acc!(x, dx);
                }
                Op::MeanAll(x) => {
                    let x = *x;
                    let xm = &self.nodes[x].value;
                    let gv = g.get(0, 0) / xm.len().max(1) as f32;
                    acc!(x, Mat::filled(xm.rows(), xm.cols(), gv));
                }
                Op::BceWithLogits { logits, targets } => {
                    let logits = *logits;
                    let targets = targets.clone();
                    let lm = &self.nodes[logits].value;
                    let gv = g.get(0, 0) / targets.len().max(1) as f32;
                    let mut dl = Mat::zeros(lm.rows(), lm.cols());
                    for ((d, &x), &t) in dl.data_mut().iter_mut().zip(lm.data()).zip(&targets) {
                        *d = gv * (stable_sigmoid(x) - t);
                    }
                    acc!(logits, dl);
                }
            }
        }
        pgrads
    }
}

/// Numerically stable logistic function.
#[inline]
pub fn stable_sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::GradSlot;

    #[test]
    fn forward_values_simple_graph() {
        let mut store = ParamStore::new();
        let w = store.add("w", Mat::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]));
        let mut tape = Tape::new(&store);
        let x = tape.input(Mat::row_vector(&[1.0, 1.0]));
        let wv = tape.param(w);
        let y = tape.matmul(x, wv); // [1+3, 2+4] = [4, 6]
        assert_eq!(tape.value(y).data(), &[4.0, 6.0]);
        let s = tape.mean_all(y);
        assert!((tape.scalar(s) - 5.0).abs() < 1e-6);
    }

    #[test]
    fn backward_matmul_param_grad() {
        // loss = mean(x @ W) with x = [1, 2]; dW = outer(x, 1/2 ones)
        let mut store = ParamStore::new();
        let w = store.add("w", Mat::zeros(2, 2));
        let mut tape = Tape::new(&store);
        let x = tape.input(Mat::row_vector(&[1.0, 2.0]));
        let wv = tape.param(w);
        let y = tape.matmul(x, wv);
        let loss = tape.mean_all(y);
        let grads = tape.backward(loss);
        match grads.get(w).unwrap() {
            GradSlot::Dense(g) => {
                assert_eq!(g.shape(), (2, 2));
                let expect = [0.5, 0.5, 1.0, 1.0];
                for (a, e) in g.data().iter().zip(&expect) {
                    assert!((a - e).abs() < 1e-6, "{:?}", g.data());
                }
            }
            _ => panic!("dense expected"),
        }
    }

    #[test]
    fn gather_backward_is_sparse() {
        let mut store = ParamStore::new();
        let e = store.add_sparse("emb", Mat::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]));
        let mut tape = Tape::new(&store);
        let rows = tape.gather(e, &[2, 0, 2]);
        assert_eq!(tape.value(rows).row(0), &[5.0, 6.0]);
        let loss = tape.mean_all(rows);
        let grads = tape.backward(loss);
        match grads.get(e).unwrap() {
            GradSlot::SparseRows(map) => {
                // each of 6 elements weighted 1/6; row 2 gathered twice
                assert!((map[&2][0] - 2.0 / 6.0).abs() < 1e-6);
                assert!((map[&0][0] - 1.0 / 6.0).abs() < 1e-6);
                assert!(!map.contains_key(&1));
            }
            _ => panic!("sparse expected"),
        }
    }

    #[test]
    fn sigmoid_matches_closed_form() {
        let store = ParamStore::new();
        let mut tape = Tape::new(&store);
        let x = tape.input(Mat::row_vector(&[0.0, 100.0, -100.0]));
        let s = tape.sigmoid(x);
        let v = tape.value(s).data().to_vec();
        assert!((v[0] - 0.5).abs() < 1e-6);
        assert!((v[1] - 1.0).abs() < 1e-6);
        assert!(v[2].abs() < 1e-6);
        assert!(v.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn causal_softmax_masks_future() {
        let store = ParamStore::new();
        let mut tape = Tape::new(&store);
        let x = tape.input(Mat::from_vec(3, 3, vec![1.0; 9]));
        let y = tape.causal_softmax(x, 0);
        let ym = tape.value(y);
        assert!((ym.get(0, 0) - 1.0).abs() < 1e-6);
        assert_eq!(ym.get(0, 1), 0.0);
        assert_eq!(ym.get(0, 2), 0.0);
        assert!((ym.get(1, 0) - 0.5).abs() < 1e-6);
        assert!((ym.get(2, 0) - 1.0 / 3.0).abs() < 1e-6);
        // rows sum to one over the unmasked region
        for r in 0..3 {
            let s: f32 = ym.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn bce_with_logits_hand_value() {
        let store = ParamStore::new();
        let mut tape = Tape::new(&store);
        let x = tape.input(Mat::row_vector(&[0.0, 0.0]));
        let loss = tape.bce_with_logits(x, &[1.0, 0.0]);
        // -ln σ(0) = ln 2 for both entries
        assert!((tape.scalar(loss) - (2.0f32).ln()).abs() < 1e-6);
    }

    #[test]
    fn bpr_loss_decreases_with_margin() {
        let store = ParamStore::new();
        let mut t1 = Tape::new(&store);
        let p = t1.input(Mat::from_vec(2, 1, vec![1.0, 1.0]));
        let n = t1.input(Mat::from_vec(2, 1, vec![0.0, 0.0]));
        let l1 = t1.bpr_loss(p, n);
        let mut t2 = Tape::new(&store);
        let p2 = t2.input(Mat::from_vec(2, 1, vec![5.0, 5.0]));
        let n2 = t2.input(Mat::from_vec(2, 1, vec![0.0, 0.0]));
        let l2 = t2.bpr_loss(p2, n2);
        assert!(t2.scalar(l2) < t1.scalar(l1));
    }

    #[test]
    fn dropout_zero_p_is_identity() {
        use rand::SeedableRng;
        let store = ParamStore::new();
        let mut tape = Tape::new(&store);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let x = tape.input(Mat::row_vector(&[1.0, -2.0, 3.0]));
        let y = tape.dropout(x, 0.0, &mut rng);
        assert_eq!(tape.value(y).data(), &[1.0, -2.0, 3.0]);
    }

    #[test]
    fn dropout_scales_survivors() {
        use rand::SeedableRng;
        let store = ParamStore::new();
        let mut tape = Tape::new(&store);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let x = tape.input(Mat::filled(1, 1000, 1.0));
        let y = tape.dropout(x, 0.5, &mut rng);
        let kept: Vec<f32> = tape
            .value(y)
            .data()
            .iter()
            .cloned()
            .filter(|&v| v != 0.0)
            .collect();
        assert!(kept.iter().all(|&v| (v - 2.0).abs() < 1e-6));
        // roughly half survive
        assert!(kept.len() > 400 && kept.len() < 600);
    }

    #[test]
    fn rows_dot_broadcast() {
        let store = ParamStore::new();
        let mut tape = Tape::new(&store);
        let a = tape.input(Mat::row_vector(&[1.0, 2.0]));
        let b = tape.input(Mat::from_vec(3, 2, vec![1., 0., 0., 1., 1., 1.]));
        let d = tape.rows_dot(a, b);
        assert_eq!(tape.value(d).data(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn mean_rows_alpha_limits() {
        let store = ParamStore::new();
        let mut tape = Tape::new(&store);
        let x = tape.input(Mat::from_vec(4, 1, vec![1.0, 2.0, 3.0, 6.0]));
        // α = 1 → average
        let avg = tape.mean_rows_alpha(x, 1.0);
        assert!((tape.value(avg).get(0, 0) - 3.0).abs() < 1e-6);
        // α = 0 → sum
        let sum = tape.mean_rows_alpha(x, 0.0);
        assert!((tape.value(sum).get(0, 0) - 12.0).abs() < 1e-6);
    }

    #[test]
    fn tanh_matches_closed_form() {
        let store = ParamStore::new();
        let mut tape = Tape::new(&store);
        let x = tape.input(Mat::row_vector(&[0.0, 1.0, -30.0, 30.0]));
        let y = tape.tanh(x);
        let v = tape.value(y).data();
        assert!(v[0].abs() < 1e-7);
        assert!((v[1] - 1.0f32.tanh()).abs() < 1e-6);
        assert!((v[2] + 1.0).abs() < 1e-6);
        assert!((v[3] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn affine_computes_ax_plus_c() {
        let store = ParamStore::new();
        let mut tape = Tape::new(&store);
        let x = tape.input(Mat::row_vector(&[0.0, 0.5, 1.0]));
        let y = tape.affine(x, -1.0, 1.0); // the GRU gate complement
        assert_eq!(tape.value(y).data(), &[1.0, 0.5, 0.0]);
    }

    #[test]
    fn concat_rows_stacks_in_order() {
        let store = ParamStore::new();
        let mut tape = Tape::new(&store);
        let a = tape.input(Mat::from_vec(1, 2, vec![1.0, 2.0]));
        let b = tape.input(Mat::from_vec(2, 2, vec![3.0, 4.0, 5.0, 6.0]));
        let y = tape.concat_rows(&[a, b]);
        assert_eq!(tape.shape(y), (3, 2));
        assert_eq!(tape.value(y).data(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn unfold_rows_windows() {
        let store = ParamStore::new();
        let mut tape = Tape::new(&store);
        // 4 rows of width 2: [0,1],[2,3],[4,5],[6,7]
        let x = tape.input(Mat::from_vec(4, 2, (0..8).map(|v| v as f32).collect()));
        let y = tape.unfold_rows(x, 2);
        assert_eq!(tape.shape(y), (3, 4));
        assert_eq!(tape.value(y).row(0), &[0.0, 1.0, 2.0, 3.0]);
        assert_eq!(tape.value(y).row(2), &[4.0, 5.0, 6.0, 7.0]);
        // h == rows collapses to a single window (full flatten)
        let full = tape.unfold_rows(x, 4);
        assert_eq!(tape.shape(full), (1, 8));
    }

    #[test]
    fn max_rows_takes_columnwise_max() {
        let store = ParamStore::new();
        let mut tape = Tape::new(&store);
        let x = tape.input(Mat::from_vec(3, 2, vec![1.0, 9.0, 5.0, -2.0, 3.0, 0.0]));
        let y = tape.max_rows(x);
        assert_eq!(tape.shape(y), (1, 2));
        assert_eq!(tape.value(y).data(), &[5.0, 9.0]);
    }

    #[test]
    fn max_rows_gradient_routes_to_argmax() {
        let mut store = ParamStore::new();
        let p = store.add(
            "p",
            Mat::from_vec(3, 2, vec![1.0, 9.0, 5.0, -2.0, 3.0, 0.0]),
        );
        let mut tape = Tape::new(&store);
        let x = tape.param(p);
        let y = tape.max_rows(x);
        let loss = tape.mean_all(y);
        let grads = tape.backward(loss);
        match grads.get(p).unwrap() {
            GradSlot::Dense(g) => {
                // max of col 0 is row 1 (5.0), col 1 is row 0 (9.0); each
                // contributes 1/2 through the mean.
                assert_eq!(g.get(1, 0), 0.5);
                assert_eq!(g.get(0, 1), 0.5);
                assert_eq!(g.get(2, 0), 0.0);
                assert_eq!(g.get(2, 1), 0.0);
            }
            _ => panic!("dense expected"),
        }
    }

    #[test]
    fn slice_concat_roundtrip() {
        let store = ParamStore::new();
        let mut tape = Tape::new(&store);
        let x = tape.input(Mat::from_vec(2, 4, (0..8).map(|v| v as f32).collect()));
        let a = tape.slice_cols(x, 0, 2);
        let b = tape.slice_cols(x, 2, 2);
        let y = tape.concat_cols(&[a, b]);
        assert_eq!(tape.value(y).data(), tape.value(x).data());
    }
}
