//! Weight initialization.
//!
//! The paper (§IV-A.4) initializes all parameters from a truncated normal
//! distribution in the range `[-0.01, 0.01]`. [`trunc_normal`] implements
//! truncated-normal sampling by rejection; [`Initializer`] bundles the
//! common schemes so model constructors stay declarative.

use rand::Rng;
use rand_distr_normal::sample_standard_normal;

use crate::mat::Mat;

/// Standard normal sampling via Box–Muller (rand's `StandardNormal` lives
/// in `rand_distr`, which is outside the approved dependency set).
mod rand_distr_normal {
    use rand::Rng;

    pub fn sample_standard_normal(rng: &mut impl Rng) -> f32 {
        // Box–Muller transform; u1 in (0,1] to avoid ln(0).
        let u1: f32 = 1.0 - rng.gen::<f32>();
        let u2: f32 = rng.gen();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }
}

/// One sample from `N(mean, std²)` truncated to `[lo, hi]` (rejection
/// sampling; falls back to clamping after 100 rejections, which for the
/// ±2σ windows used here essentially never happens).
pub fn trunc_normal(rng: &mut impl Rng, mean: f32, std: f32, lo: f32, hi: f32) -> f32 {
    assert!(lo < hi, "empty truncation window");
    for _ in 0..100 {
        let x = mean + std * sample_standard_normal(rng);
        if x >= lo && x <= hi {
            return x;
        }
    }
    mean.clamp(lo, hi)
}

/// Initialization schemes used across the models.
#[derive(Debug, Clone, Copy)]
pub enum Initializer {
    /// All zeros (biases, LayerNorm shift).
    Zeros,
    /// All ones (LayerNorm scale).
    Ones,
    /// Truncated normal, the paper's default: `N(0, std²)` clipped to ±2σ.
    TruncNormal { std: f32 },
    /// Glorot/Xavier uniform for `(fan_in × fan_out)` weight matrices.
    XavierUniform,
}

impl Initializer {
    /// The paper's §IV-A.4 default: truncated normal over `[-0.01, 0.01]`
    /// (σ = 0.005, clipped at ±2σ).
    pub fn paper_default() -> Self {
        Initializer::TruncNormal { std: 0.005 }
    }

    /// Materialize a `(rows × cols)` matrix.
    pub fn init(&self, rng: &mut impl Rng, rows: usize, cols: usize) -> Mat {
        match *self {
            Initializer::Zeros => Mat::zeros(rows, cols),
            Initializer::Ones => Mat::filled(rows, cols, 1.0),
            Initializer::TruncNormal { std } => {
                let lo = -2.0 * std;
                let hi = 2.0 * std;
                let data = (0..rows * cols)
                    .map(|_| trunc_normal(rng, 0.0, std, lo, hi))
                    .collect();
                Mat::from_vec(rows, cols, data)
            }
            Initializer::XavierUniform => {
                let limit = (6.0 / (rows + cols) as f32).sqrt();
                let data = (0..rows * cols)
                    .map(|_| rng.gen_range(-limit..limit))
                    .collect();
                Mat::from_vec(rows, cols, data)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn trunc_normal_respects_bounds() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = trunc_normal(&mut rng, 0.0, 1.0, -0.5, 0.5);
            assert!((-0.5..=0.5).contains(&x));
        }
    }

    #[test]
    fn paper_default_within_range() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let m = Initializer::paper_default().init(&mut rng, 10, 10);
        for &v in m.data() {
            assert!(v.abs() <= 0.01 + 1e-6, "{v}");
        }
        // not all identical
        assert!(m.data().iter().any(|&v| (v - m.get(0, 0)).abs() > 1e-9));
    }

    #[test]
    fn xavier_scale_shrinks_with_fan() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let small = Initializer::XavierUniform.init(&mut rng, 4, 4);
        let big = Initializer::XavierUniform.init(&mut rng, 400, 400);
        let max_small = small
            .data()
            .iter()
            .cloned()
            .fold(0.0f32, |a, b| a.max(b.abs()));
        let max_big = big
            .data()
            .iter()
            .cloned()
            .fold(0.0f32, |a, b| a.max(b.abs()));
        assert!(max_big < max_small);
    }

    #[test]
    fn zeros_and_ones() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        assert!(Initializer::Zeros
            .init(&mut rng, 2, 2)
            .data()
            .iter()
            .all(|&v| v == 0.0));
        assert!(Initializer::Ones
            .init(&mut rng, 2, 2)
            .data()
            .iter()
            .all(|&v| v == 1.0));
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let n = 20_000;
        let xs: Vec<f32> = (0..n)
            .map(|_| super::rand_distr_normal::sample_standard_normal(&mut rng))
            .collect();
        let mean = xs.iter().sum::<f32>() / n as f32;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
