//! Neural-network layers assembled from tape ops.
//!
//! A layer owns [`ParamId`]s (registered into a [`ParamStore`] at build
//! time) plus hyper-parameters, and exposes `forward(&self, &mut Tape, ..)`.
//! The composition mirrors Figure 3 of the paper: Transformer encoder
//! blocks = multi-head self-attention + position-wise FFN, each wrapped in
//! `LayerNorm(x + Dropout(sublayer(x)))` (Eq. 7).

use rand::rngs::StdRng;

use crate::init::Initializer;
use crate::mat::Mat;
use crate::store::{ParamId, ParamStore};
use crate::tape::{Tape, Var};

/// Shared forward-pass context: training mode toggles dropout, and the RNG
/// keeps dropout reproducible.
pub struct FwdCtx<'r> {
    pub train: bool,
    pub rng: &'r mut StdRng,
}

impl<'r> FwdCtx<'r> {
    pub fn new(train: bool, rng: &'r mut StdRng) -> Self {
        Self { train, rng }
    }
}

/// Fully connected layer `y = x W + b`.
#[derive(Debug, Clone)]
pub struct Linear {
    pub w: ParamId,
    pub b: Option<ParamId>,
    pub d_in: usize,
    pub d_out: usize,
}

impl Linear {
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        d_in: usize,
        d_out: usize,
        bias: bool,
        init: Initializer,
        rng: &mut StdRng,
    ) -> Self {
        let w = store.add(format!("{name}.w"), init.init(rng, d_in, d_out));
        let b = bias.then(|| store.add(format!("{name}.b"), Mat::zeros(1, d_out)));
        Self { w, b, d_in, d_out }
    }

    pub fn forward(&self, tape: &mut Tape, x: Var) -> Var {
        let w = tape.param(self.w);
        let y = tape.matmul(x, w);
        match self.b {
            Some(b) => {
                let bv = tape.param(b);
                tape.add_bias(y, bv)
            }
            None => y,
        }
    }
}

/// Embedding table: id → dense row.
#[derive(Debug, Clone)]
pub struct Embedding {
    pub table: ParamId,
    pub n: usize,
    pub d: usize,
}

impl Embedding {
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        n: usize,
        d: usize,
        init: Initializer,
        rng: &mut StdRng,
    ) -> Self {
        let table = store.add_sparse(name, init.init(rng, n, d));
        Self { table, n, d }
    }

    /// Gather rows for `ids` → `(ids.len() × d)`.
    pub fn lookup(&self, tape: &mut Tape, ids: &[u32]) -> Var {
        tape.gather(self.table, ids)
    }

    /// Inference-only row read, bypassing the tape.
    pub fn row<'s>(&self, store: &'s ParamStore, id: u32) -> &'s [f32] {
        store.value(self.table).row(id as usize)
    }
}

/// Row-wise LayerNorm with learnable scale and shift.
#[derive(Debug, Clone)]
pub struct LayerNorm {
    pub gamma: ParamId,
    pub beta: ParamId,
    pub eps: f32,
}

impl LayerNorm {
    pub fn new(store: &mut ParamStore, name: &str, d: usize) -> Self {
        Self {
            gamma: store.add(format!("{name}.gamma"), Mat::filled(1, d, 1.0)),
            beta: store.add(format!("{name}.beta"), Mat::zeros(1, d)),
            eps: 1e-8,
        }
    }

    pub fn forward(&self, tape: &mut Tape, x: Var) -> Var {
        let g = tape.param(self.gamma);
        let b = tape.param(self.beta);
        tape.layer_norm(x, g, b, self.eps)
    }
}

/// Multi-head causal self-attention over one sequence `(L × d)` (Eq. 4–5).
///
/// The paper's SASRec configuration uses a single head; the implementation
/// is generic over `heads` (d must be divisible by it).
#[derive(Debug, Clone)]
pub struct MultiHeadSelfAttention {
    pub wq: Linear,
    pub wk: Linear,
    pub wv: Linear,
    pub wo: Linear,
    pub heads: usize,
    pub d: usize,
}

impl MultiHeadSelfAttention {
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        d: usize,
        heads: usize,
        init: Initializer,
        rng: &mut StdRng,
    ) -> Self {
        assert!(
            heads > 0 && d.is_multiple_of(heads),
            "d must divide by heads"
        );
        Self {
            wq: Linear::new(store, &format!("{name}.wq"), d, d, false, init, rng),
            wk: Linear::new(store, &format!("{name}.wk"), d, d, false, init, rng),
            wv: Linear::new(store, &format!("{name}.wv"), d, d, false, init, rng),
            wo: Linear::new(store, &format!("{name}.wo"), d, d, false, init, rng),
            heads,
            d,
        }
    }

    /// Causal forward: position `i` attends to positions `0..=i`.
    pub fn forward(&self, tape: &mut Tape, x: Var) -> Var {
        let q = self.wq.forward(tape, x);
        let k = self.wk.forward(tape, x);
        let v = self.wv.forward(tape, x);
        let dh = self.d / self.heads;
        let scale = 1.0 / (dh as f32).sqrt();
        let mut outs = Vec::with_capacity(self.heads);
        for h in 0..self.heads {
            let qh = tape.slice_cols(q, h * dh, dh);
            let kh = tape.slice_cols(k, h * dh, dh);
            let vh = tape.slice_cols(v, h * dh, dh);
            let scores = tape.matmul_nt(qh, kh);
            let scaled = tape.scale(scores, scale);
            let attn = tape.causal_softmax(scaled, 0);
            outs.push(tape.matmul(attn, vh));
        }
        let concat = if outs.len() == 1 {
            outs[0]
        } else {
            tape.concat_cols(&outs)
        };
        self.wo.forward(tape, concat)
    }
}

/// Position-wise feed-forward network (Eq. 6):
/// `FFN(h) = ReLU(h W₁ + b₁) W₂ + b₂`.
#[derive(Debug, Clone)]
pub struct PointwiseFfn {
    pub l1: Linear,
    pub l2: Linear,
}

impl PointwiseFfn {
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        d: usize,
        d_hidden: usize,
        init: Initializer,
        rng: &mut StdRng,
    ) -> Self {
        Self {
            l1: Linear::new(store, &format!("{name}.l1"), d, d_hidden, true, init, rng),
            l2: Linear::new(store, &format!("{name}.l2"), d_hidden, d, true, init, rng),
        }
    }

    pub fn forward(&self, tape: &mut Tape, x: Var) -> Var {
        let h = self.l1.forward(tape, x);
        let a = tape.relu(h);
        self.l2.forward(tape, a)
    }
}

/// One Transformer encoder block (Figure 3a, Eq. 7):
/// `y = LN(x + Dropout(MHA(x)))`, `z = LN(y + Dropout(FFN(y)))`.
#[derive(Debug, Clone)]
pub struct TransformerBlock {
    pub mha: MultiHeadSelfAttention,
    pub ffn: PointwiseFfn,
    pub ln1: LayerNorm,
    pub ln2: LayerNorm,
    pub dropout: f32,
}

impl TransformerBlock {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        d: usize,
        heads: usize,
        d_ffn: usize,
        dropout: f32,
        init: Initializer,
        rng: &mut StdRng,
    ) -> Self {
        Self {
            mha: MultiHeadSelfAttention::new(store, &format!("{name}.mha"), d, heads, init, rng),
            ffn: PointwiseFfn::new(store, &format!("{name}.ffn"), d, d_ffn, init, rng),
            ln1: LayerNorm::new(store, &format!("{name}.ln1"), d),
            ln2: LayerNorm::new(store, &format!("{name}.ln2"), d),
            dropout,
        }
    }

    pub fn forward(&self, tape: &mut Tape, x: Var, ctx: &mut FwdCtx) -> Var {
        let a = self.mha.forward(tape, x);
        let a = self.maybe_dropout(tape, a, ctx);
        let res1 = tape.add(x, a);
        let y = self.ln1.forward(tape, res1);

        let f = self.ffn.forward(tape, y);
        let f = self.maybe_dropout(tape, f, ctx);
        let res2 = tape.add(y, f);
        self.ln2.forward(tape, res2)
    }

    fn maybe_dropout(&self, tape: &mut Tape, x: Var, ctx: &mut FwdCtx) -> Var {
        if ctx.train && self.dropout > 0.0 {
            tape.dropout(x, self.dropout, ctx.rng)
        } else {
            x
        }
    }
}

/// Gated recurrent unit processed step by step over one sequence.
///
/// For each step with input `x` (`1×d_in`) and state `h` (`1×d_h`):
///
/// ```text
/// z = σ(x·Wz + h·Uz + bz)          update gate
/// r = σ(x·Wr + h·Ur + br)          reset gate
/// ĥ = tanh(x·Wh + (r⊙h)·Uh + bh)   candidate state
/// h' = (1−z)⊙h + z⊙ĥ
/// ```
///
/// This is the recurrence of GRU4Rec (Hidasi et al., the paper's reference
/// \[43\]) — the session-based baseline the related-work section positions
/// SASRec against. Step inputs are passed as separate `1×d_in` vars so the
/// caller can gather each item embedding individually (no row slicing
/// needed on the tape).
#[derive(Debug, Clone)]
pub struct Gru {
    pub wz: Linear,
    pub uz: Linear,
    pub wr: Linear,
    pub ur: Linear,
    pub wh: Linear,
    pub uh: Linear,
    pub d_in: usize,
    pub d_h: usize,
}

impl Gru {
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        d_in: usize,
        d_h: usize,
        init: Initializer,
        rng: &mut StdRng,
    ) -> Self {
        // Biases live on the input-side projections; the state-side
        // projections are bias-free (adding both is redundant).
        Self {
            wz: Linear::new(store, &format!("{name}.wz"), d_in, d_h, true, init, rng),
            uz: Linear::new(store, &format!("{name}.uz"), d_h, d_h, false, init, rng),
            wr: Linear::new(store, &format!("{name}.wr"), d_in, d_h, true, init, rng),
            ur: Linear::new(store, &format!("{name}.ur"), d_h, d_h, false, init, rng),
            wh: Linear::new(store, &format!("{name}.wh"), d_in, d_h, true, init, rng),
            uh: Linear::new(store, &format!("{name}.uh"), d_h, d_h, false, init, rng),
            d_in,
            d_h,
        }
    }

    /// One recurrence step: `(x: 1×d_in, h: 1×d_h) → 1×d_h`.
    pub fn step(&self, tape: &mut Tape, x: Var, h: Var) -> Var {
        let z = {
            let a = self.wz.forward(tape, x);
            let b = self.uz.forward(tape, h);
            let s = tape.add(a, b);
            tape.sigmoid(s)
        };
        let r = {
            let a = self.wr.forward(tape, x);
            let b = self.ur.forward(tape, h);
            let s = tape.add(a, b);
            tape.sigmoid(s)
        };
        let cand = {
            let a = self.wh.forward(tape, x);
            let rh = tape.mul(r, h);
            let b = self.uh.forward(tape, rh);
            let s = tape.add(a, b);
            tape.tanh(s)
        };
        let keep = tape.affine(z, -1.0, 1.0); // 1 − z
        let old = tape.mul(keep, h);
        let new = tape.mul(z, cand);
        tape.add(old, new)
    }

    /// Run the recurrence from a zero state over `xs` (each `1×d_in`);
    /// returns every hidden state in step order (each `1×d_h`).
    pub fn run(&self, tape: &mut Tape, xs: &[Var]) -> Vec<Var> {
        let mut h = tape.input(Mat::zeros(1, self.d_h));
        let mut states = Vec::with_capacity(xs.len());
        for &x in xs {
            h = self.step(tape, x, h);
            states.push(h);
        }
        states
    }

    /// Tape-free recurrence step for the inference hot path. The tape
    /// version copies six weight matrices onto the tape *per step*; this
    /// one reads them in place, which is what keeps `infer_user` in
    /// real-time territory (Table III's "inferring time"). Verified equal
    /// to [`Gru::step`] in the test suite.
    pub fn infer_step(&self, store: &ParamStore, x: &[f32], h: &mut [f32]) {
        debug_assert_eq!(x.len(), self.d_in);
        debug_assert_eq!(h.len(), self.d_h);
        let dh = self.d_h;
        // gate(x·W + h·U + b)
        let gate = |w: &Linear, u: &Linear, out: &mut [f32], h: &[f32]| {
            let wm = store.value(w.w);
            let um = store.value(u.w);
            for (j, o) in out.iter_mut().enumerate() {
                let mut acc = match w.b {
                    Some(b) => store.value(b).get(0, j),
                    None => 0.0,
                };
                for (i, &xv) in x.iter().enumerate() {
                    acc += xv * wm.get(i, j);
                }
                for (i, &hv) in h.iter().enumerate() {
                    acc += hv * um.get(i, j);
                }
                *o = acc;
            }
        };
        let mut z = vec![0.0f32; dh];
        let mut r = vec![0.0f32; dh];
        gate(&self.wz, &self.uz, &mut z, h);
        gate(&self.wr, &self.ur, &mut r, h);
        for v in z.iter_mut().chain(r.iter_mut()) {
            *v = crate::tape::stable_sigmoid(*v);
        }
        // candidate uses r ⊙ h on the state side
        let rh: Vec<f32> = r.iter().zip(h.iter()).map(|(&rv, &hv)| rv * hv).collect();
        let mut cand = vec![0.0f32; dh];
        gate(&self.wh, &self.uh, &mut cand, &rh);
        for ((hv, &zv), &cv) in h.iter_mut().zip(&z).zip(&cand) {
            *hv = (1.0 - zv) * *hv + zv * cv.tanh();
        }
    }
}

/// Caser's convolutional sequence encoder (Tang & Wang, the paper's
/// reference \[45\]): the last `l` item embeddings form an `l×d` "image";
/// horizontal filters of several heights slide over time and are
/// max-pooled, a vertical filter takes weighted sums over time, and a
/// fully connected layer maps the concatenation to the `d`-dimensional
/// user representation.
///
/// The original Caser concatenates a learned per-user id embedding before
/// the final projection; we omit it so the encoder stays *inductive* (the
/// SCCF requirement, §III-B) — the representation must be computable for
/// any new history without retraining.
#[derive(Debug, Clone)]
pub struct CaserEncoder {
    /// `(window height h, conv = Linear(h·d → n_h))` per height.
    pub horizontal: Vec<(usize, Linear)>,
    /// Vertical filter bank `n_v × l` (a dense param used as the left
    /// operand of a matmul over the sequence image).
    pub vertical: ParamId,
    /// Final projection to the user representation.
    pub fc: Linear,
    /// Fixed sequence length (shorter histories are front-padded with
    /// zero rows, longer ones truncated to the most recent `l`).
    pub l: usize,
    pub d: usize,
    pub n_v: usize,
}

impl CaserEncoder {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        l: usize,
        d: usize,
        heights: &[usize],
        n_h: usize,
        n_v: usize,
        init: Initializer,
        rng: &mut StdRng,
    ) -> Self {
        assert!(!heights.is_empty(), "need at least one horizontal height");
        assert!(
            heights.iter().all(|&h| h >= 1 && h <= l),
            "heights must fit in l"
        );
        let horizontal = heights
            .iter()
            .map(|&h| {
                let conv = Linear::new(store, &format!("{name}.h{h}"), h * d, n_h, true, init, rng);
                (h, conv)
            })
            .collect();
        let vertical = store.add(format!("{name}.v"), init.init(rng, n_v, l));
        let fc_in = heights.len() * n_h + n_v * d;
        let fc = Linear::new(store, &format!("{name}.fc"), fc_in, d, true, init, rng);
        Self {
            horizontal,
            vertical,
            fc,
            l,
            d,
            n_v,
        }
    }

    /// Encode a padded sequence image `E` (`l×d`) to the user
    /// representation (`1×d`).
    pub fn forward(&self, tape: &mut Tape, image: Var) -> Var {
        assert_eq!(tape.shape(image), (self.l, self.d), "image must be l×d");
        let mut features = Vec::with_capacity(self.horizontal.len() + 1);
        for (h, conv) in &self.horizontal {
            let windows = tape.unfold_rows(image, *h);
            let convolved = conv.forward(tape, windows);
            let act = tape.relu(convolved);
            features.push(tape.max_rows(act));
        }
        // Vertical filters: (n_v × l)(l × d) → n_v × d, flattened to
        // 1 × (n_v·d) via a full-height unfold.
        let v = tape.param(self.vertical);
        let vert = tape.matmul(v, image);
        features.push(tape.unfold_rows(vert, self.n_v));
        let cat = tape.concat_cols(&features);
        let proj = self.fc.forward(tape, cat);
        tape.relu(proj)
    }

    /// Build the `l×d` image for a history: gather the most recent `l`
    /// item embeddings and front-pad with zero rows when shorter.
    pub fn image(&self, tape: &mut Tape, emb: &Embedding, history: &[u32]) -> Var {
        let recent = if history.len() > self.l {
            &history[history.len() - self.l..]
        } else {
            history
        };
        if recent.is_empty() {
            return tape.input(Mat::zeros(self.l, self.d));
        }
        let items = emb.lookup(tape, recent);
        if recent.len() == self.l {
            items
        } else {
            let pad = tape.input(Mat::zeros(self.l - recent.len(), self.d));
            tape.concat_rows(&[pad, items])
        }
    }
}

/// A plain MLP: alternating `Linear` + ReLU, final layer linear. This is
/// the fusion network of the integrating component (Eq. 15).
#[derive(Debug, Clone)]
pub struct Mlp {
    pub layers: Vec<Linear>,
}

impl Mlp {
    /// `dims = [d_in, h1, ..., d_out]`.
    pub fn new(
        store: &mut ParamStore,
        name: &str,
        dims: &[usize],
        init: Initializer,
        rng: &mut StdRng,
    ) -> Self {
        assert!(dims.len() >= 2, "MLP needs at least input and output dims");
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| Linear::new(store, &format!("{name}.fc{i}"), w[0], w[1], true, init, rng))
            .collect();
        Self { layers }
    }

    pub fn forward(&self, tape: &mut Tape, x: Var) -> Var {
        let mut h = x;
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward(tape, h);
            if i < last {
                h = tape.relu(h);
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    #[test]
    fn linear_shapes_and_bias() {
        let mut store = ParamStore::new();
        let mut r = rng();
        let lin = Linear::new(
            &mut store,
            "l",
            3,
            5,
            true,
            Initializer::XavierUniform,
            &mut r,
        );
        let mut tape = Tape::new(&store);
        let x = tape.input(Mat::zeros(2, 3));
        let y = lin.forward(&mut tape, x);
        assert_eq!(tape.shape(y), (2, 5));
        // zero input → output equals bias (zeros initially)
        assert!(tape.value(y).data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn embedding_lookup_matches_rows() {
        let mut store = ParamStore::new();
        let mut r = rng();
        let emb = Embedding::new(&mut store, "e", 10, 4, Initializer::XavierUniform, &mut r);
        let mut tape = Tape::new(&store);
        let x = emb.lookup(&mut tape, &[3, 7]);
        assert_eq!(tape.value(x).row(0), emb.row(&store, 3));
        assert_eq!(tape.value(x).row(1), emb.row(&store, 7));
    }

    #[test]
    fn layernorm_normalizes_rows() {
        let mut store = ParamStore::new();
        let ln = LayerNorm::new(&mut store, "ln", 4);
        let mut tape = Tape::new(&store);
        let x = tape.input(Mat::from_vec(
            2,
            4,
            vec![1., 2., 3., 4., 10., 20., 30., 40.],
        ));
        let y = ln.forward(&mut tape, x);
        for r in 0..2 {
            let row = tape.value(y).row(r);
            let mean: f32 = row.iter().sum::<f32>() / 4.0;
            let var: f32 = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-5);
            assert!((var - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn attention_is_causal() {
        // Changing a later input must not change earlier outputs.
        let mut store = ParamStore::new();
        let mut r = rng();
        let mha = MultiHeadSelfAttention::new(
            &mut store,
            "mha",
            4,
            2,
            Initializer::XavierUniform,
            &mut r,
        );
        let base = Mat::from_vec(3, 4, (0..12).map(|v| v as f32 * 0.1).collect());
        let mut tape1 = Tape::new(&store);
        let x1 = tape1.input(base.clone());
        let y1 = mha.forward(&mut tape1, x1);
        let mut modified = base.clone();
        modified.row_mut(2)[0] = 99.0; // perturb the last position
        let mut tape2 = Tape::new(&store);
        let x2 = tape2.input(modified);
        let y2 = mha.forward(&mut tape2, x2);
        for pos in 0..2 {
            for c in 0..4 {
                assert!(
                    (tape1.value(y1).get(pos, c) - tape2.value(y2).get(pos, c)).abs() < 1e-6,
                    "position {pos} leaked future information"
                );
            }
        }
        // ... but the last position does change
        let delta: f32 = (0..4)
            .map(|c| (tape1.value(y1).get(2, c) - tape2.value(y2).get(2, c)).abs())
            .sum();
        assert!(delta > 1e-6);
    }

    #[test]
    fn transformer_block_roundtrip_shapes() {
        let mut store = ParamStore::new();
        let mut r = rng();
        let block = TransformerBlock::new(
            &mut store,
            "b0",
            8,
            1,
            8,
            0.2,
            Initializer::XavierUniform,
            &mut r,
        );
        let mut drop_rng = rng();
        let mut ctx = FwdCtx::new(true, &mut drop_rng);
        let mut tape = Tape::new(&store);
        let x = tape.input(Mat::filled(5, 8, 0.3));
        let y = block.forward(&mut tape, x, &mut ctx);
        assert_eq!(tape.shape(y), (5, 8));
        assert!(!tape.value(y).has_non_finite());
    }

    #[test]
    fn eval_mode_disables_dropout() {
        let mut store = ParamStore::new();
        let mut r = rng();
        let block = TransformerBlock::new(
            &mut store,
            "b0",
            4,
            1,
            4,
            0.9,
            Initializer::XavierUniform,
            &mut r,
        );
        let x_mat = Mat::filled(3, 4, 1.0);
        let run = |train: bool| {
            let mut drop_rng = StdRng::seed_from_u64(99);
            let mut ctx = FwdCtx::new(train, &mut drop_rng);
            let mut tape = Tape::new(&store);
            let x = tape.input(x_mat.clone());
            let y = block.forward(&mut tape, x, &mut ctx);
            tape.value(y).clone()
        };
        // eval is deterministic
        assert_eq!(run(false), run(false));
    }

    #[test]
    fn gru_step_shapes_and_state_mixing() {
        let mut store = ParamStore::new();
        let mut r = rng();
        let gru = Gru::new(&mut store, "g", 3, 5, Initializer::XavierUniform, &mut r);
        let mut tape = Tape::new(&store);
        let x = tape.input(Mat::filled(1, 3, 0.5));
        let h = tape.input(Mat::zeros(1, 5));
        let h1 = gru.step(&mut tape, x, h);
        assert_eq!(tape.shape(h1), (1, 5));
        // With a zero state, h' = z ⊙ tanh(x·Wh + bh) — bounded by 1.
        assert!(tape.value(h1).data().iter().all(|v| v.abs() < 1.0));
        // A second distinct step must change the state.
        let x2 = tape.input(Mat::filled(1, 3, -0.8));
        let h2 = gru.step(&mut tape, x2, h1);
        assert_ne!(tape.value(h1).data(), tape.value(h2).data());
    }

    #[test]
    fn gru_run_returns_all_states_in_order() {
        let mut store = ParamStore::new();
        let mut r = rng();
        let gru = Gru::new(&mut store, "g", 2, 4, Initializer::XavierUniform, &mut r);
        let mut tape = Tape::new(&store);
        let xs: Vec<_> = (0..3)
            .map(|i| tape.input(Mat::filled(1, 2, 0.1 * (i + 1) as f32)))
            .collect();
        let states = gru.run(&mut tape, &xs);
        assert_eq!(states.len(), 3);
        // Prefix property: running only the first two steps reproduces
        // state 2 exactly (the recurrence is left-to-right).
        let mut tape2 = Tape::new(&store);
        let xs2: Vec<_> = (0..2)
            .map(|i| tape2.input(Mat::filled(1, 2, 0.1 * (i + 1) as f32)))
            .collect();
        let states2 = gru.run(&mut tape2, &xs2);
        assert_eq!(tape.value(states[1]).data(), tape2.value(states2[1]).data());
    }

    #[test]
    fn gru_zero_update_gate_preserves_state() {
        // Force Wz/Uz/bz towards -∞ ⇒ z ≈ 0 ⇒ h' ≈ h.
        let mut store = ParamStore::new();
        let mut r = rng();
        let gru = Gru::new(&mut store, "g", 2, 3, Initializer::XavierUniform, &mut r);
        if let Some(b) = gru.wz.b {
            store.value_mut(b).data_mut().fill(-50.0);
        }
        let mut tape = Tape::new(&store);
        let x = tape.input(Mat::filled(1, 2, 1.0));
        let h = tape.input(Mat::from_vec(1, 3, vec![0.3, -0.2, 0.9]));
        let h1 = gru.step(&mut tape, x, h);
        for (a, b) in tape.value(h1).data().iter().zip(tape.value(h).data()) {
            assert!((a - b).abs() < 1e-4, "state should carry through");
        }
    }

    #[test]
    fn gru_infer_step_matches_tape_step() {
        let mut store = ParamStore::new();
        let mut r = rng();
        let gru = Gru::new(&mut store, "g", 3, 5, Initializer::XavierUniform, &mut r);
        let xs_data = [
            vec![0.4f32, -0.2, 0.9],
            vec![-0.7, 0.1, 0.3],
            vec![0.0, 0.8, -0.5],
        ];
        // tape path
        let mut tape = Tape::new(&store);
        let xs: Vec<Var> = xs_data
            .iter()
            .map(|x| tape.input(Mat::row_vector(x)))
            .collect();
        let states = gru.run(&mut tape, &xs);
        let tape_final = tape.value(*states.last().unwrap()).row(0).to_vec();
        // fast path
        let mut h = vec![0.0f32; 5];
        for x in &xs_data {
            gru.infer_step(&store, x, &mut h);
        }
        for (a, b) in tape_final.iter().zip(&h) {
            assert!((a - b).abs() < 1e-5, "tape {a} vs fast {b}");
        }
    }

    #[test]
    fn caser_encoder_output_shape_and_padding() {
        let mut store = ParamStore::new();
        let mut r = rng();
        let emb = Embedding::new(&mut store, "e", 20, 4, Initializer::XavierUniform, &mut r);
        let enc = CaserEncoder::new(
            &mut store,
            "c",
            5,
            4,
            &[2, 3],
            3,
            2,
            Initializer::XavierUniform,
            &mut r,
        );
        let mut tape = Tape::new(&store);
        // Short history is front-padded to l rows.
        let img = enc.image(&mut tape, &emb, &[7, 2]);
        assert_eq!(tape.shape(img), (5, 4));
        assert!(tape.value(img).row(0).iter().all(|&v| v == 0.0));
        assert_eq!(tape.value(img).row(3), emb.row(&store, 7));
        let rep = enc.forward(&mut tape, img);
        assert_eq!(tape.shape(rep), (1, 4));
        // Long history truncates to the most recent l items.
        let img2 = enc.image(&mut tape, &emb, &[1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(tape.value(img2).row(0), emb.row(&store, 3));
    }

    #[test]
    fn caser_empty_history_encodes_zero_image() {
        let mut store = ParamStore::new();
        let mut r = rng();
        let emb = Embedding::new(&mut store, "e", 10, 4, Initializer::XavierUniform, &mut r);
        let enc = CaserEncoder::new(
            &mut store,
            "c",
            4,
            4,
            &[2],
            2,
            1,
            Initializer::XavierUniform,
            &mut r,
        );
        let mut tape = Tape::new(&store);
        let img = enc.image(&mut tape, &emb, &[]);
        assert!(tape.value(img).data().iter().all(|&v| v == 0.0));
        let rep = enc.forward(&mut tape, img);
        assert!(!tape.value(rep).has_non_finite());
    }

    #[test]
    fn mlp_forward_shapes() {
        let mut store = ParamStore::new();
        let mut r = rng();
        let mlp = Mlp::new(
            &mut store,
            "mlp",
            &[6, 8, 4, 1],
            Initializer::XavierUniform,
            &mut r,
        );
        let mut tape = Tape::new(&store);
        let x = tape.input(Mat::zeros(7, 6));
        let y = mlp.forward(&mut tape, x);
        assert_eq!(tape.shape(y), (7, 1));
    }

    #[test]
    #[should_panic(expected = "MLP needs at least")]
    fn mlp_rejects_single_dim() {
        let mut store = ParamStore::new();
        let mut r = rng();
        let _ = Mlp::new(&mut store, "m", &[4], Initializer::Zeros, &mut r);
    }
}
