//! # sccf-tensor
//!
//! The numeric substrate of the SCCF reproduction: dense matrices, a
//! tape-based reverse-mode autodiff engine, neural-network layers and
//! optimizers — everything needed to train FISM (Eq. 1), SASRec's
//! Transformer encoder (Eq. 2–8) and the integrating MLP (Eq. 15) without
//! any external ML framework.
//!
//! ## Architecture
//!
//! * [`mat`] — `Mat`, a row-major `f32` matrix with GEMM kernels in the
//!   three transpose layouts plus vector helpers (`dot`, `cosine`).
//! * [`store`] — `ParamStore` owns parameters and Adam moments; gradients
//!   are produced into a `Grads` buffer (dense, or sparse-by-row for
//!   embedding tables).
//! * [`tape`] — `Tape` records an eager forward pass and replays it in
//!   reverse for gradients. Every op's backward pass is finite-difference
//!   checked in `tests/gradcheck.rs`.
//! * [`nn`] — layers (`Linear`, `Embedding`, `LayerNorm`,
//!   `MultiHeadSelfAttention`, `PointwiseFfn`, `TransformerBlock`, `Mlp`).
//! * [`optim`] — `Adam` (lazy sparse rows, linear lr decay) and `Sgd`.
//! * [`serialize`] — versioned binary snapshots (weights + Adam moments)
//!   for deployment hand-off and warm restarts.
//! * [`init`] — truncated-normal (the paper's §IV-A.4 default) and Xavier
//!   initialization.
//! * [`simd`] — runtime-dispatched AVX2 kernels (dot, axpy, fused PQ
//!   table-lookup) with bit-identical scalar fallbacks.
//!
//! ## Example
//!
//! ```
//! use sccf_tensor::{Mat, ParamStore, Tape};
//! use sccf_tensor::optim::{Adam, AdamConfig};
//!
//! // Fit w ≈ 2 by minimizing mean((w - 2)²).
//! let mut store = ParamStore::new();
//! let w = store.add("w", Mat::zeros(1, 1));
//! let mut adam = Adam::new(AdamConfig { lr: 0.1, ..Default::default() });
//! for _ in 0..200 {
//!     let mut tape = Tape::new(&store);
//!     let wv = tape.param(w);
//!     let target = tape.input(Mat::row_vector(&[2.0]));
//!     let diff = tape.sub(wv, target);
//!     let sq = tape.mul(diff, diff);
//!     let loss = tape.mean_all(sq);
//!     let grads = tape.backward(loss);
//!     adam.step(&mut store, &grads);
//! }
//! assert!((store.value(w).get(0, 0) - 2.0).abs() < 0.05);
//! ```

pub mod init;
pub mod mat;
pub mod nn;
pub mod optim;
pub mod serialize;
pub mod simd;
pub mod store;
pub mod tape;

pub use init::Initializer;
pub use mat::{axpy, cosine, dot, matvec_into, norm, normalize, Mat};
pub use serialize::{load_into, load_store, save_store, SnapshotError};
pub use simd::{avx2_enabled, pq_adc_all, pq_adc_gather, pq_adc_row_scalar};
pub use store::{GradSlot, Grads, ParamId, ParamStore};
pub use tape::{stable_sigmoid, Tape, Var};
