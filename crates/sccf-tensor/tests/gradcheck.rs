//! Finite-difference gradient checks for every differentiable op and layer.
//!
//! For each graph builder `f: &ParamStore -> scalar loss`, we compare the
//! analytic gradient from `Tape::backward` against the central difference
//! `(f(θ+ε) − f(θ−ε)) / 2ε` for every scalar parameter. This is the
//! ground-truth test that makes the rest of the workspace trustworthy:
//! if these pass, training loops can only fail for modeling reasons, not
//! calculus bugs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sccf_tensor::nn::{
    Embedding, FwdCtx, LayerNorm, Linear, Mlp, MultiHeadSelfAttention, PointwiseFfn,
    TransformerBlock,
};
use sccf_tensor::store::GradSlot;
use sccf_tensor::{Initializer, Mat, ParamStore, Tape};

const EPS: f32 = 1e-3;
/// Relative tolerance; f32 finite differences are noisy, so compare with
/// a mixed absolute/relative criterion.
const TOL: f32 = 2e-2;

fn rand_mat(rng: &mut StdRng, r: usize, c: usize) -> Mat {
    Mat::from_vec(r, c, (0..r * c).map(|_| rng.gen_range(-1.0..1.0)).collect())
}

/// Extract the analytic gradient for `pid` as a dense matrix.
fn dense_grad(store: &ParamStore, grads: &sccf_tensor::Grads, pid: sccf_tensor::ParamId) -> Mat {
    match grads.get(pid) {
        None => Mat::zeros(store.value(pid).rows(), store.value(pid).cols()),
        Some(GradSlot::Dense(g)) => g.clone(),
        Some(GradSlot::SparseRows(rows)) => {
            let mut g = Mat::zeros(store.value(pid).rows(), store.value(pid).cols());
            for (&r, row) in rows {
                g.row_mut(r as usize).copy_from_slice(row);
            }
            g
        }
    }
}

/// Check every parameter's analytic gradient against central differences.
fn gradcheck(mut store: ParamStore, f: impl Fn(&ParamStore) -> (f32, sccf_tensor::Grads)) {
    let (_, grads) = f(&store);
    let pids: Vec<sccf_tensor::ParamId> = store.iter().map(|(pid, _)| pid).collect();
    for pid in pids {
        let analytic = dense_grad(&store, &grads, pid);
        let (rows, cols) = store.value(pid).shape();
        for r in 0..rows {
            for c in 0..cols {
                let orig = store.value(pid).get(r, c);
                store.value_mut(pid).set(r, c, orig + EPS);
                let (lp, _) = f(&store);
                store.value_mut(pid).set(r, c, orig - EPS);
                let (lm, _) = f(&store);
                store.value_mut(pid).set(r, c, orig);
                let numeric = (lp - lm) / (2.0 * EPS);
                let a = analytic.get(r, c);
                let denom = 1.0f32.max(a.abs()).max(numeric.abs());
                assert!(
                    (a - numeric).abs() / denom < TOL,
                    "param {:?} [{r},{c}]: analytic {a} vs numeric {numeric}",
                    store.param(pid).name,
                );
            }
        }
    }
}

#[test]
fn gradcheck_matmul_chain() {
    let mut rng = StdRng::seed_from_u64(1);
    let mut store = ParamStore::new();
    let a = store.add("a", rand_mat(&mut rng, 2, 3));
    let b = store.add("b", rand_mat(&mut rng, 3, 4));
    gradcheck(store, move |s| {
        let mut t = Tape::new(s);
        let av = t.param(a);
        let bv = t.param(b);
        let y = t.matmul(av, bv);
        let loss = t.mean_all(y);
        (t.scalar(loss), t.backward(loss))
    });
}

#[test]
fn gradcheck_matmul_nt() {
    let mut rng = StdRng::seed_from_u64(2);
    let mut store = ParamStore::new();
    let a = store.add("a", rand_mat(&mut rng, 3, 4));
    let b = store.add("b", rand_mat(&mut rng, 5, 4));
    gradcheck(store, move |s| {
        let mut t = Tape::new(s);
        let av = t.param(a);
        let bv = t.param(b);
        let y = t.matmul_nt(av, bv);
        let sq = t.mul(y, y);
        let loss = t.mean_all(sq);
        (t.scalar(loss), t.backward(loss))
    });
}

#[test]
fn gradcheck_elementwise_ops() {
    let mut rng = StdRng::seed_from_u64(3);
    let mut store = ParamStore::new();
    let a = store.add("a", rand_mat(&mut rng, 2, 5));
    let b = store.add("b", rand_mat(&mut rng, 2, 5));
    gradcheck(store, move |s| {
        let mut t = Tape::new(s);
        let av = t.param(a);
        let bv = t.param(b);
        let sum = t.add(av, bv);
        let diff = t.sub(sum, bv);
        let prod = t.mul(diff, bv);
        let scaled = t.scale(prod, 0.7);
        let loss = t.mean_all(scaled);
        (t.scalar(loss), t.backward(loss))
    });
}

#[test]
fn gradcheck_activations() {
    let mut rng = StdRng::seed_from_u64(4);
    let mut store = ParamStore::new();
    let a = store.add("a", rand_mat(&mut rng, 3, 4));
    gradcheck(store, move |s| {
        let mut t = Tape::new(s);
        let av = t.param(a);
        let r = t.relu(av);
        let sg = t.sigmoid(r);
        let ls = t.log_sigmoid(sg);
        let loss = t.mean_all(ls);
        (t.scalar(loss), t.backward(loss))
    });
}

#[test]
fn gradcheck_add_bias() {
    let mut rng = StdRng::seed_from_u64(5);
    let mut store = ParamStore::new();
    let x = store.add("x", rand_mat(&mut rng, 4, 3));
    let b = store.add("b", rand_mat(&mut rng, 1, 3));
    gradcheck(store, move |s| {
        let mut t = Tape::new(s);
        let xv = t.param(x);
        let bv = t.param(b);
        let y = t.add_bias(xv, bv);
        let sq = t.mul(y, y);
        let loss = t.mean_all(sq);
        (t.scalar(loss), t.backward(loss))
    });
}

#[test]
fn gradcheck_rows_dot_and_broadcast() {
    let mut rng = StdRng::seed_from_u64(6);
    let mut store = ParamStore::new();
    let a = store.add("a", rand_mat(&mut rng, 4, 3));
    let b = store.add("b", rand_mat(&mut rng, 4, 3));
    let u = store.add("u", rand_mat(&mut rng, 1, 3));
    gradcheck(store, move |s| {
        let mut t = Tape::new(s);
        let av = t.param(a);
        let bv = t.param(b);
        let uv = t.param(u);
        let d1 = t.rows_dot(av, bv); // aligned
        let d2 = t.rows_dot(uv, bv); // broadcast
        let sum = t.add(d1, d2);
        let loss = t.mean_all(sum);
        (t.scalar(loss), t.backward(loss))
    });
}

#[test]
fn gradcheck_mean_rows_alpha() {
    let mut rng = StdRng::seed_from_u64(7);
    let mut store = ParamStore::new();
    let x = store.add("x", rand_mat(&mut rng, 5, 3));
    for &alpha in &[0.0f32, 0.5, 1.0] {
        let (_, _) = (0, 0);
        let store2 = store.clone();
        gradcheck(store2, move |s| {
            let mut t = Tape::new(s);
            let xv = t.param(x);
            let m = t.mean_rows_alpha(xv, alpha);
            let sq = t.mul(m, m);
            let loss = t.mean_all(sq);
            (t.scalar(loss), t.backward(loss))
        });
    }
    let _ = store.len();
}

#[test]
fn gradcheck_slice_concat() {
    let mut rng = StdRng::seed_from_u64(8);
    let mut store = ParamStore::new();
    let x = store.add("x", rand_mat(&mut rng, 3, 6));
    gradcheck(store, move |s| {
        let mut t = Tape::new(s);
        let xv = t.param(x);
        let a = t.slice_cols(xv, 0, 2);
        let b = t.slice_cols(xv, 2, 4);
        let cat = t.concat_cols(&[b, a]); // reordered
        let sq = t.mul(cat, cat);
        let loss = t.mean_all(sq);
        (t.scalar(loss), t.backward(loss))
    });
}

#[test]
fn gradcheck_layer_norm() {
    let mut rng = StdRng::seed_from_u64(9);
    let mut store = ParamStore::new();
    let x = store.add("x", rand_mat(&mut rng, 4, 6));
    let ln = LayerNorm::new(&mut store, "ln", 6);
    gradcheck(store, move |s| {
        let mut t = Tape::new(s);
        let xv = t.param(x);
        let y = ln.forward(&mut t, xv);
        let sq = t.mul(y, y);
        let loss = t.mean_all(sq);
        (t.scalar(loss), t.backward(loss))
    });
}

#[test]
fn gradcheck_causal_softmax() {
    let mut rng = StdRng::seed_from_u64(10);
    let mut store = ParamStore::new();
    let x = store.add("x", rand_mat(&mut rng, 4, 4));
    gradcheck(store, move |s| {
        let mut t = Tape::new(s);
        let xv = t.param(x);
        let y = t.causal_softmax(xv, 0);
        let sq = t.mul(y, y);
        let loss = t.mean_all(sq);
        (t.scalar(loss), t.backward(loss))
    });
}

#[test]
fn gradcheck_plain_softmax() {
    let mut rng = StdRng::seed_from_u64(11);
    let mut store = ParamStore::new();
    let x = store.add("x", rand_mat(&mut rng, 3, 5));
    gradcheck(store, move |s| {
        let mut t = Tape::new(s);
        let xv = t.param(x);
        let y = t.softmax(xv);
        let sq = t.mul(y, y);
        let loss = t.mean_all(sq);
        (t.scalar(loss), t.backward(loss))
    });
}

#[test]
fn gradcheck_bce_with_logits() {
    let mut rng = StdRng::seed_from_u64(12);
    let mut store = ParamStore::new();
    let x = store.add("x", rand_mat(&mut rng, 6, 1));
    let targets = vec![1.0, 0.0, 1.0, 1.0, 0.0, 0.0];
    gradcheck(store, move |s| {
        let mut t = Tape::new(s);
        let xv = t.param(x);
        let loss = t.bce_with_logits(xv, &targets);
        (t.scalar(loss), t.backward(loss))
    });
}

#[test]
fn gradcheck_bpr_loss() {
    let mut rng = StdRng::seed_from_u64(13);
    let mut store = ParamStore::new();
    let p = store.add("pos", rand_mat(&mut rng, 5, 1));
    let n = store.add("neg", rand_mat(&mut rng, 5, 1));
    gradcheck(store, move |s| {
        let mut t = Tape::new(s);
        let pv = t.param(p);
        let nv = t.param(n);
        let loss = t.bpr_loss(pv, nv);
        (t.scalar(loss), t.backward(loss))
    });
}

#[test]
fn gradcheck_gather_sparse() {
    let mut rng = StdRng::seed_from_u64(14);
    let mut store = ParamStore::new();
    let e = store.add_sparse("emb", rand_mat(&mut rng, 6, 3));
    gradcheck(store, move |s| {
        let mut t = Tape::new(s);
        // repeated id forces accumulation in the sparse slot
        let g = t.gather(e, &[0, 3, 3, 5]);
        let sq = t.mul(g, g);
        let loss = t.mean_all(sq);
        (t.scalar(loss), t.backward(loss))
    });
}

#[test]
fn gradcheck_linear_layer() {
    let mut rng = StdRng::seed_from_u64(15);
    let mut store = ParamStore::new();
    let x = store.add("x", rand_mat(&mut rng, 3, 4));
    let lin = Linear::new(
        &mut store,
        "lin",
        4,
        2,
        true,
        Initializer::XavierUniform,
        &mut rng,
    );
    gradcheck(store, move |s| {
        let mut t = Tape::new(s);
        let xv = t.param(x);
        let y = lin.forward(&mut t, xv);
        let sq = t.mul(y, y);
        let loss = t.mean_all(sq);
        (t.scalar(loss), t.backward(loss))
    });
}

#[test]
fn gradcheck_ffn() {
    let mut rng = StdRng::seed_from_u64(16);
    let mut store = ParamStore::new();
    let x = store.add("x", rand_mat(&mut rng, 3, 4));
    let ffn = PointwiseFfn::new(
        &mut store,
        "ffn",
        4,
        6,
        Initializer::XavierUniform,
        &mut rng,
    );
    gradcheck(store, move |s| {
        let mut t = Tape::new(s);
        let xv = t.param(x);
        let y = ffn.forward(&mut t, xv);
        let sq = t.mul(y, y);
        let loss = t.mean_all(sq);
        (t.scalar(loss), t.backward(loss))
    });
}

#[test]
fn gradcheck_attention_multi_head() {
    let mut rng = StdRng::seed_from_u64(17);
    let mut store = ParamStore::new();
    let x = store.add("x", rand_mat(&mut rng, 4, 6));
    let mha = MultiHeadSelfAttention::new(
        &mut store,
        "mha",
        6,
        2,
        Initializer::XavierUniform,
        &mut rng,
    );
    gradcheck(store, move |s| {
        let mut t = Tape::new(s);
        let xv = t.param(x);
        let y = mha.forward(&mut t, xv);
        let sq = t.mul(y, y);
        let loss = t.mean_all(sq);
        (t.scalar(loss), t.backward(loss))
    });
}

#[test]
fn gradcheck_transformer_block_eval_mode() {
    // dropout disabled (eval) so the function is deterministic.
    let mut rng = StdRng::seed_from_u64(18);
    let mut store = ParamStore::new();
    let x = store.add("x", rand_mat(&mut rng, 3, 4));
    let block = TransformerBlock::new(
        &mut store,
        "blk",
        4,
        1,
        4,
        0.5,
        Initializer::XavierUniform,
        &mut rng,
    );
    gradcheck(store, move |s| {
        let mut t = Tape::new(s);
        let mut drop_rng = StdRng::seed_from_u64(0);
        let mut ctx = FwdCtx::new(false, &mut drop_rng);
        let xv = t.param(x);
        let y = block.forward(&mut t, xv, &mut ctx);
        let sq = t.mul(y, y);
        let loss = t.mean_all(sq);
        (t.scalar(loss), t.backward(loss))
    });
}

#[test]
fn gradcheck_mlp() {
    let mut rng = StdRng::seed_from_u64(19);
    let mut store = ParamStore::new();
    let x = store.add("x", rand_mat(&mut rng, 4, 5));
    let mlp = Mlp::new(
        &mut store,
        "mlp",
        &[5, 7, 1],
        Initializer::XavierUniform,
        &mut rng,
    );
    gradcheck(store, move |s| {
        let mut t = Tape::new(s);
        let xv = t.param(x);
        let y = mlp.forward(&mut t, xv);
        let loss = t.bce_with_logits(y, &[1.0, 0.0, 1.0, 0.0]);
        (t.scalar(loss), t.backward(loss))
    });
}

#[test]
fn gradcheck_embedding_lookup_through_pooling() {
    // The exact FISM forward: gather → pool(α) → dot with a target row.
    let mut rng = StdRng::seed_from_u64(20);
    let mut store = ParamStore::new();
    let emb = Embedding::new(
        &mut store,
        "items",
        8,
        4,
        Initializer::XavierUniform,
        &mut rng,
    );
    gradcheck(store, move |s| {
        let mut t = Tape::new(s);
        let hist = emb.lookup(&mut t, &[1, 2, 5]);
        let user = t.mean_rows_alpha(hist, 0.5);
        let targets = emb.lookup(&mut t, &[3, 6]);
        let logits = t.rows_dot(user, targets);
        let loss = t.bce_with_logits(logits, &[1.0, 0.0]);
        (t.scalar(loss), t.backward(loss))
    });
}

#[test]
fn gradcheck_tanh_affine() {
    let mut rng = StdRng::seed_from_u64(41);
    let mut store = ParamStore::new();
    let a = store.add("a", rand_mat(&mut rng, 3, 4));
    gradcheck(store, move |s| {
        let mut t = Tape::new(s);
        let av = t.param(a);
        let th = t.tanh(av);
        let aff = t.affine(th, -0.5, 0.3);
        let loss = t.mean_all(aff);
        (t.scalar(loss), t.backward(loss))
    });
}

#[test]
fn gradcheck_concat_rows() {
    let mut rng = StdRng::seed_from_u64(42);
    let mut store = ParamStore::new();
    let a = store.add("a", rand_mat(&mut rng, 2, 3));
    let b = store.add("b", rand_mat(&mut rng, 3, 3));
    gradcheck(store, move |s| {
        let mut t = Tape::new(s);
        let av = t.param(a);
        let bv = t.param(b);
        let stacked = t.concat_rows(&[av, bv]);
        // Non-uniform weighting so row-routing mistakes show up.
        let w = t.input(Mat::from_vec(
            5,
            3,
            (0..15).map(|v| 0.1 * v as f32 - 0.7).collect(),
        ));
        let prod = t.mul(stacked, w);
        let loss = t.mean_all(prod);
        (t.scalar(loss), t.backward(loss))
    });
}

#[test]
fn gradcheck_unfold_max_rows() {
    let mut rng = StdRng::seed_from_u64(43);
    let mut store = ParamStore::new();
    let x = store.add("x", rand_mat(&mut rng, 5, 3));
    let f = store.add("f", rand_mat(&mut rng, 6, 2)); // two h=2 filters
    gradcheck(store, move |s| {
        let mut t = Tape::new(s);
        let xv = t.param(x);
        let fv = t.param(f);
        let windows = t.unfold_rows(xv, 2); // 4 × 6
        let conv = t.matmul(windows, fv); // 4 × 2
        let pooled = t.max_rows(conv); // 1 × 2
        let loss = t.mean_all(pooled);
        (t.scalar(loss), t.backward(loss))
    });
}

#[test]
fn gradcheck_gru_two_steps() {
    use sccf_tensor::nn::Gru;
    let mut rng = StdRng::seed_from_u64(44);
    let mut store = ParamStore::new();
    let gru = Gru::new(&mut store, "g", 2, 3, Initializer::XavierUniform, &mut rng);
    let x1 = rand_mat(&mut rng, 1, 2);
    let x2 = rand_mat(&mut rng, 1, 2);
    gradcheck(store, move |s| {
        let mut t = Tape::new(s);
        let a = t.input(x1.clone());
        let b = t.input(x2.clone());
        let states = gru.run(&mut t, &[a, b]);
        let loss = t.mean_all(states[1]);
        (t.scalar(loss), t.backward(loss))
    });
}

#[test]
fn gradcheck_caser_encoder() {
    use sccf_tensor::nn::CaserEncoder;
    let mut rng = StdRng::seed_from_u64(45);
    let mut store = ParamStore::new();
    let emb = Embedding::new(&mut store, "e", 8, 3, Initializer::XavierUniform, &mut rng);
    let enc = CaserEncoder::new(
        &mut store,
        "c",
        4,
        3,
        &[2, 3],
        2,
        2,
        Initializer::XavierUniform,
        &mut rng,
    );
    gradcheck(store, move |s| {
        let mut t = Tape::new(s);
        let img = enc.image(&mut t, &emb, &[1, 5, 2]);
        let rep = enc.forward(&mut t, img);
        let loss = t.mean_all(rep);
        (t.scalar(loss), t.backward(loss))
    });
}
