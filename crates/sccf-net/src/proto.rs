//! The fleet wire protocol: every [`crate::server`] request and
//! response as one CRC-framed message.
//!
//! ## Framing
//!
//! One message = one `bytes::framing` frame: `[len u32 le][crc32 u32
//! le][payload]`, the same layout (and the same corruption discipline)
//! as the WAL and checkpoint files — a torn TCP stream or a flipped bit
//! surfaces as a decode **error**, never a panic and never a silently
//! wrong message. [`write_message`]/[`read_message`] are the only
//! socket touch points; everything else in this module is pure bytes in
//! → value out, which is what makes the codec proptestable without a
//! socket (see `tests/serialization.rs`).
//!
//! ## Payloads
//!
//! `payload = [tag u8][body]`, little-endian throughout. Floats travel
//! as their IEEE-754 bit patterns (`to_le_bytes`), so a slate's scores
//! and the timing accumulators cross the wire **bit-identically** —
//! the fleet's pinned equivalence (`tests/fleet.rs`) compares float
//! bits, not approximations. Aggregated timings serialize via
//! [`sccf_util::stats::OnlineStats::parts`], preserving the exact merge
//! algebra.
//!
//! [`ServingError`] crosses the wire structurally for every variant a
//! caller can match on; the two variants that cannot round-trip
//! structurally (`Snapshot` wraps a decode-error enum, `EpochInFlight`
//! carries `&'static str`s) degrade to their display text and arrive as
//! [`ServingError::Wire`].
//!
//! Decoding consumes the whole payload: trailing bytes are an error,
//! so a frame holds exactly one message and framing bugs cannot hide.

use std::io::{self, Read, Write};

use bytes::framing::{read_frame, write_frame};
use sccf_core::{CandidateSource, EngineTimings, EventTiming, Exclusion, FrozenTierMode};
use sccf_serving::api::{
    DurabilityStats, MigrationStats, NeighborhoodStats, PressureStats, RecQuery, RecResponse,
    ServingError, ServingStats, TransportStats,
};
use sccf_serving::sharded::ShardReport;
use sccf_util::checksum::crc32;
use sccf_util::timer::TimingStats;
use sccf_util::topk::Scored;

/// Wire protocol version, checked by the [`Request::Hello`] handshake.
/// Bump on any incompatible payload change.
/// v2: `TransportStats` block appended to the stats payload.
pub const PROTOCOL_VERSION: u32 = 2;

// ----------------------------------------------------------- transport

/// Write `payload` as one CRC-framed message.
pub fn write_message(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    write_frame(w, crc32(payload), payload)
}

/// Read one CRC-framed message into `buf`. `Ok(None)` = the peer
/// closed cleanly at a frame boundary; a torn header/payload is
/// `UnexpectedEof`, a checksum mismatch or impossible length is
/// `InvalidData` — exactly the WAL scanner's taxonomy.
pub fn read_message(r: &mut impl Read, buf: &mut Vec<u8>) -> io::Result<Option<()>> {
    match read_frame(r, buf)? {
        None => Ok(None),
        Some(check) => {
            if crc32(buf) == check {
                Ok(Some(()))
            } else {
                Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "frame checksum mismatch",
                ))
            }
        }
    }
}

// --------------------------------------------------------- wire errors

/// Why a payload failed to decode. Every path out of the decoders is
/// one of these — malformed input can never panic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The payload ended before the value it promised.
    Truncated,
    /// An enum discriminant outside the protocol.
    BadTag { what: &'static str, tag: u8 },
    /// A string field held invalid UTF-8.
    BadUtf8,
    /// Bytes left over after the message — a framing bug or corruption.
    TrailingBytes { left: usize },
    /// The peer speaks a different protocol version.
    BadVersion { theirs: u32, ours: u32 },
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Truncated => write!(f, "payload truncated"),
            Self::BadTag { what, tag } => write!(f, "unknown {what} tag {tag}"),
            Self::BadUtf8 => write!(f, "invalid UTF-8 in string field"),
            Self::TrailingBytes { left } => write!(f, "{left} trailing bytes after message"),
            Self::BadVersion { theirs, ours } => {
                write!(f, "peer speaks protocol {theirs}, this build speaks {ours}")
            }
        }
    }
}

impl std::error::Error for WireError {}

impl From<WireError> for ServingError {
    fn from(e: WireError) -> Self {
        ServingError::Wire(e.to_string())
    }
}

// ------------------------------------------------------ codec plumbing

fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f32(out: &mut Vec<u8>, v: f32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bool(out: &mut Vec<u8>, v: bool) {
    out.push(v as u8);
}

fn put_bytes(out: &mut Vec<u8>, v: &[u8]) {
    put_u64(out, v.len() as u64);
    out.extend_from_slice(v);
}

fn put_str(out: &mut Vec<u8>, v: &str) {
    put_bytes(out, v.as_bytes());
}

/// Bounds-checked reader over one payload.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn bool(&mut self) -> Result<bool, WireError> {
        Ok(self.u8()? != 0)
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f32(&mut self) -> Result<f32, WireError> {
        Ok(f32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// A count of items each at least `min_size` bytes: validated
    /// against the remaining payload *before* any allocation, so a
    /// corrupt length can waste at most one frame's worth of memory.
    fn count(&mut self, min_size: usize) -> Result<usize, WireError> {
        let n = self.u64()?;
        let need = (n as usize)
            .checked_mul(min_size.max(1))
            .ok_or(WireError::Truncated)?;
        if need > self.remaining() {
            return Err(WireError::Truncated);
        }
        Ok(n as usize)
    }

    fn bytes(&mut self) -> Result<&'a [u8], WireError> {
        let n = self.count(1)?;
        self.take(n)
    }

    fn string(&mut self) -> Result<String, WireError> {
        std::str::from_utf8(self.bytes()?)
            .map(str::to_string)
            .map_err(|_| WireError::BadUtf8)
    }

    fn finish(self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError::TrailingBytes {
                left: self.remaining(),
            });
        }
        Ok(())
    }
}

fn put_u32_list(out: &mut Vec<u8>, v: &[u32]) {
    put_u64(out, v.len() as u64);
    for &x in v {
        put_u32(out, x);
    }
}

fn get_u32_list(r: &mut Reader<'_>) -> Result<Vec<u32>, WireError> {
    let n = r.count(4)?;
    let mut v = Vec::with_capacity(n);
    for _ in 0..n {
        v.push(r.u32()?);
    }
    Ok(v)
}

// ------------------------------------------------------- shared shapes

fn put_query(out: &mut Vec<u8>, q: &RecQuery) {
    put_u64(out, q.k as u64);
    put_u8(
        out,
        match q.source {
            CandidateSource::Configured => 0,
            CandidateSource::Exact => 1,
            CandidateSource::Ann => 2,
        },
    );
    match &q.exclude {
        Exclusion::History => put_u8(out, 0),
        Exclusion::HistoryAnd(extra) => {
            put_u8(out, 1);
            put_u32_list(out, extra);
        }
        Exclusion::Nothing => put_u8(out, 2),
    }
}

fn get_query(r: &mut Reader<'_>) -> Result<RecQuery, WireError> {
    let k = r.u64()? as usize;
    let source = match r.u8()? {
        0 => CandidateSource::Configured,
        1 => CandidateSource::Exact,
        2 => CandidateSource::Ann,
        tag => {
            return Err(WireError::BadTag {
                what: "source",
                tag,
            })
        }
    };
    let exclude = match r.u8()? {
        0 => Exclusion::History,
        1 => Exclusion::HistoryAnd(get_u32_list(r)?),
        2 => Exclusion::Nothing,
        tag => {
            return Err(WireError::BadTag {
                what: "exclusion",
                tag,
            })
        }
    };
    Ok(RecQuery { k, source, exclude })
}

fn put_slate(out: &mut Vec<u8>, s: &RecResponse) {
    put_u64(out, s.items.len() as u64);
    for item in &s.items {
        put_u32(out, item.id);
        put_f32(out, item.score);
    }
    put_f64(out, s.timing.infer_ms);
    put_f64(out, s.timing.identify_ms);
}

fn get_slate(r: &mut Reader<'_>) -> Result<RecResponse, WireError> {
    let n = r.count(8)?;
    let mut items = Vec::with_capacity(n);
    for _ in 0..n {
        let id = r.u32()?;
        let score = r.f32()?;
        items.push(Scored { score, id });
    }
    Ok(RecResponse {
        items,
        timing: EventTiming {
            infer_ms: r.f64()?,
            identify_ms: r.f64()?,
        },
    })
}

/// One `OnlineStats`/`TimingStats` accumulator: `n` + four raw f64s
/// ([`OnlineStats::parts`]), so the merge algebra survives the trip.
fn put_timing(out: &mut Vec<u8>, t: &TimingStats) {
    let (n, mean, m2, min, max) = t.parts();
    put_u64(out, n);
    put_f64(out, mean);
    put_f64(out, m2);
    put_f64(out, min);
    put_f64(out, max);
}

fn get_timing(r: &mut Reader<'_>) -> Result<TimingStats, WireError> {
    let n = r.u64()?;
    let mean = r.f64()?;
    let m2 = r.f64()?;
    let min = r.f64()?;
    let max = r.f64()?;
    Ok(TimingStats::from_parts(n, mean, m2, min, max))
}

/// Raw size of one encoded [`put_timing`] record.
const TIMING_LEN: usize = 8 + 4 * 8;

fn put_timings(out: &mut Vec<u8>, t: &EngineTimings) {
    put_timing(out, &t.infer);
    put_timing(out, &t.identify);
}

fn get_timings(r: &mut Reader<'_>) -> Result<EngineTimings, WireError> {
    Ok(EngineTimings {
        infer: get_timing(r)?,
        identify: get_timing(r)?,
    })
}

fn put_tier_mode(out: &mut Vec<u8>, m: FrozenTierMode) {
    match m {
        FrozenTierMode::Flat => put_u8(out, 0),
        FrozenTierMode::Hnsw { ef } => {
            put_u8(out, 1);
            put_u64(out, ef as u64);
        }
        FrozenTierMode::IvfPq { nlist, nprobe, m } => {
            put_u8(out, 2);
            put_u64(out, nlist as u64);
            put_u64(out, nprobe as u64);
            put_u64(out, m as u64);
        }
    }
}

fn get_tier_mode(r: &mut Reader<'_>) -> Result<FrozenTierMode, WireError> {
    match r.u8()? {
        0 => Ok(FrozenTierMode::Flat),
        1 => Ok(FrozenTierMode::Hnsw {
            ef: r.u64()? as usize,
        }),
        2 => Ok(FrozenTierMode::IvfPq {
            nlist: r.u64()? as usize,
            nprobe: r.u64()? as usize,
            m: r.u64()? as usize,
        }),
        tag => Err(WireError::BadTag {
            what: "tier mode",
            tag,
        }),
    }
}

fn put_stats(out: &mut Vec<u8>, s: &ServingStats) {
    put_u64(out, s.events);
    put_u64(out, s.recommends);
    put_timings(out, &s.timings);
    put_u64(out, s.shards.len() as u64);
    for sh in &s.shards {
        put_u64(out, sh.shard as u64);
        put_u64(out, sh.events);
        put_u64(out, sh.recommends);
        put_timings(out, &sh.timings);
        put_bool(out, sh.retired);
        put_u64(out, sh.queue_capacity as u64);
        put_u64(out, sh.tier_dirty);
    }
    let m = &s.migration;
    put_bool(out, m.in_progress);
    put_u64(out, m.migrated_users);
    put_u64(out, m.pending_users);
    put_u64(out, m.batches);
    let n = &s.neighborhood;
    put_bool(out, n.two_tier);
    put_u64(out, n.epoch);
    put_u64(out, n.users_covered);
    put_u64(out, n.events_since_refresh);
    put_f64(out, n.last_refresh_ms);
    put_bool(out, n.refresh_in_progress);
    put_tier_mode(out, n.tier_mode);
    put_u64(out, n.tier_bytes);
    put_f64(out, n.tier_search_ns);
    put_u64(out, n.last_refresh_users);
    put_bool(out, n.delta_ready);
    let d = &s.durability;
    put_bool(out, d.enabled);
    put_u64(out, d.wal_records);
    put_u64(out, d.wal_bytes);
    put_u64(out, d.wal_unsynced_bytes);
    put_u64(out, d.wal_syncs);
    put_u64(out, d.checkpoints);
    put_u64(out, d.checkpoint_watermark);
    put_u64(out, d.last_checkpoint_bytes);
    put_u64(out, d.events_since_checkpoint);
    let p = &s.pressure;
    put_u64(out, p.sends);
    put_u64(out, p.stalls);
    put_f64(out, p.stall_ms);
    put_u64(out, p.queue_capacity);
    put_u64(out, p.peak_queue);
    let t = &s.transport;
    put_u64(out, t.requests);
    put_u64(out, t.read_ahead_hits);
    put_u64(out, t.peak_read_ahead);
    put_u64(out, t.read_ahead_capacity);
}

fn get_stats(r: &mut Reader<'_>) -> Result<ServingStats, WireError> {
    let events = r.u64()?;
    let recommends = r.u64()?;
    let timings = get_timings(r)?;
    let n_shards = r.count(5 * 8 + 2 * TIMING_LEN + 1)?;
    let mut shards = Vec::with_capacity(n_shards);
    for _ in 0..n_shards {
        shards.push(ShardReport {
            shard: r.u64()? as usize,
            events: r.u64()?,
            recommends: r.u64()?,
            timings: get_timings(r)?,
            retired: r.bool()?,
            queue_capacity: r.u64()? as usize,
            tier_dirty: r.u64()?,
        });
    }
    let migration = MigrationStats {
        in_progress: r.bool()?,
        migrated_users: r.u64()?,
        pending_users: r.u64()?,
        batches: r.u64()?,
    };
    let neighborhood = NeighborhoodStats {
        two_tier: r.bool()?,
        epoch: r.u64()?,
        users_covered: r.u64()?,
        events_since_refresh: r.u64()?,
        last_refresh_ms: r.f64()?,
        refresh_in_progress: r.bool()?,
        tier_mode: get_tier_mode(r)?,
        tier_bytes: r.u64()?,
        tier_search_ns: r.f64()?,
        last_refresh_users: r.u64()?,
        delta_ready: r.bool()?,
    };
    let durability = DurabilityStats {
        enabled: r.bool()?,
        wal_records: r.u64()?,
        wal_bytes: r.u64()?,
        wal_unsynced_bytes: r.u64()?,
        wal_syncs: r.u64()?,
        checkpoints: r.u64()?,
        checkpoint_watermark: r.u64()?,
        last_checkpoint_bytes: r.u64()?,
        events_since_checkpoint: r.u64()?,
    };
    let pressure = PressureStats {
        sends: r.u64()?,
        stalls: r.u64()?,
        stall_ms: r.f64()?,
        queue_capacity: r.u64()?,
        peak_queue: r.u64()?,
    };
    let transport = TransportStats {
        requests: r.u64()?,
        read_ahead_hits: r.u64()?,
        peak_read_ahead: r.u64()?,
        read_ahead_capacity: r.u64()?,
    };
    Ok(ServingStats {
        events,
        recommends,
        timings,
        shards,
        migration,
        neighborhood,
        durability,
        pressure,
        transport,
    })
}

fn put_error(out: &mut Vec<u8>, e: &ServingError) {
    match e {
        ServingError::UnknownUser { user, n_users } => {
            put_u8(out, 0);
            put_u32(out, *user);
            put_u64(out, *n_users as u64);
        }
        ServingError::UnknownItem { item, n_items } => {
            put_u8(out, 1);
            put_u32(out, *item);
            put_u64(out, *n_items as u64);
        }
        ServingError::AnnUnavailable => put_u8(out, 2),
        ServingError::NotOwned { user } => {
            put_u8(out, 3);
            put_u32(out, *user);
        }
        ServingError::InvalidConfig(msg) => {
            put_u8(out, 4);
            put_str(out, msg);
        }
        ServingError::Durability(msg) => {
            put_u8(out, 5);
            put_str(out, msg);
        }
        ServingError::Wire(msg) => {
            put_u8(out, 6);
            put_str(out, msg);
        }
        // Structurally unrepresentable variants degrade to display
        // text; they arrive as `ServingError::Wire`.
        other @ (ServingError::Snapshot(_) | ServingError::EpochInFlight { .. }) => {
            put_u8(out, 6);
            put_str(out, &other.to_string());
        }
    }
}

fn get_error(r: &mut Reader<'_>) -> Result<ServingError, WireError> {
    Ok(match r.u8()? {
        0 => ServingError::UnknownUser {
            user: r.u32()?,
            n_users: r.u64()? as usize,
        },
        1 => ServingError::UnknownItem {
            item: r.u32()?,
            n_items: r.u64()? as usize,
        },
        2 => ServingError::AnnUnavailable,
        3 => ServingError::NotOwned { user: r.u32()? },
        4 => ServingError::InvalidConfig(r.string()?),
        5 => ServingError::Durability(r.string()?),
        6 => ServingError::Wire(r.string()?),
        tag => return Err(WireError::BadTag { what: "error", tag }),
    })
}

// ------------------------------------------------------------ requests

/// Everything a router (or supervisor) can ask a shard server.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Handshake: protocol-version check, returns the server's window.
    Hello { protocol: u32 },
    /// Liveness probe (the supervisor's health check).
    Ping,
    /// Ingest `(user, item)` events in order; all must belong to this
    /// server's window (atomic: validated before anything applies).
    IngestBatch(Vec<(u32, u32)>),
    /// Serve one recommendation.
    Recommend { user: u32, query: RecQuery },
    /// Serve the same query for many users (fan-out batching).
    RecommendMany { users: Vec<u32>, query: RecQuery },
    /// Barrier: every prior ingest reflected before the reply.
    Flush,
    /// This server's [`ServingStats`].
    Stats,
    /// This server's whole-population snapshot artifact (owned users
    /// populated, the rest empty — see
    /// [`sccf_serving::fleet::merge_fleet_snapshots`]).
    Snapshot,
    /// Write an incremental checkpoint; replies with the watermark.
    Checkpoint,
    /// Force-fsync every shard WAL.
    WalSync,
    /// Migration blobs ([`sccf_core::encode_user_state`]) for the given
    /// owned users, in input order.
    ExportUsers(Vec<u32>),
    /// Install an encoded [`sccf_core::GlobalNeighborSnapshot`] as the
    /// frozen global tier.
    InstallTier(Vec<u8>),
    /// Drop the frozen global tier (back to shard-local serving).
    ClearTier,
    /// Flush + sync, acknowledge, then exit the process.
    Shutdown,
}

impl Request {
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Hello { protocol } => {
                put_u8(&mut out, 0);
                put_u32(&mut out, *protocol);
            }
            Request::Ping => put_u8(&mut out, 1),
            Request::IngestBatch(events) => {
                put_u8(&mut out, 2);
                put_u64(&mut out, events.len() as u64);
                for &(u, i) in events {
                    put_u32(&mut out, u);
                    put_u32(&mut out, i);
                }
            }
            Request::Recommend { user, query } => {
                put_u8(&mut out, 3);
                put_u32(&mut out, *user);
                put_query(&mut out, query);
            }
            Request::RecommendMany { users, query } => {
                put_u8(&mut out, 4);
                put_u32_list(&mut out, users);
                put_query(&mut out, query);
            }
            Request::Flush => put_u8(&mut out, 5),
            Request::Stats => put_u8(&mut out, 6),
            Request::Snapshot => put_u8(&mut out, 7),
            Request::Checkpoint => put_u8(&mut out, 8),
            Request::WalSync => put_u8(&mut out, 9),
            Request::ExportUsers(users) => {
                put_u8(&mut out, 10);
                put_u32_list(&mut out, users);
            }
            Request::InstallTier(bytes) => {
                put_u8(&mut out, 11);
                put_bytes(&mut out, bytes);
            }
            Request::ClearTier => put_u8(&mut out, 12),
            Request::Shutdown => put_u8(&mut out, 13),
        }
        out
    }

    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(payload);
        let req = match r.u8()? {
            0 => Request::Hello { protocol: r.u32()? },
            1 => Request::Ping,
            2 => {
                let n = r.count(8)?;
                let mut events = Vec::with_capacity(n);
                for _ in 0..n {
                    events.push((r.u32()?, r.u32()?));
                }
                Request::IngestBatch(events)
            }
            3 => Request::Recommend {
                user: r.u32()?,
                query: get_query(&mut r)?,
            },
            4 => Request::RecommendMany {
                users: get_u32_list(&mut r)?,
                query: get_query(&mut r)?,
            },
            5 => Request::Flush,
            6 => Request::Stats,
            7 => Request::Snapshot,
            8 => Request::Checkpoint,
            9 => Request::WalSync,
            10 => Request::ExportUsers(get_u32_list(&mut r)?),
            11 => Request::InstallTier(r.bytes()?.to_vec()),
            12 => Request::ClearTier,
            13 => Request::Shutdown,
            tag => {
                return Err(WireError::BadTag {
                    what: "request",
                    tag,
                })
            }
        };
        r.finish()?;
        Ok(req)
    }
}

// ----------------------------------------------------------- responses

/// Everything a shard server can answer.
#[derive(Debug, Clone)]
pub enum Response {
    /// Handshake reply: protocol version plus the server's identity —
    /// population size and the global-ring window it hosts.
    HelloOk {
        protocol: u32,
        n_users: u64,
        n_items: u64,
        base: u64,
        count: u64,
        total: u64,
    },
    Pong,
    /// Events accepted by an [`Request::IngestBatch`].
    Ingested(u64),
    Slate(RecResponse),
    Slates(Vec<RecResponse>),
    /// Success with nothing to report (flush, sync, installs, shutdown
    /// acknowledgement).
    Done,
    Stats(Box<ServingStats>),
    /// A snapshot artifact or other opaque byte payload.
    Bytes(Vec<u8>),
    /// The watermark a [`Request::Checkpoint`] is consistent with.
    Watermark(u64),
    /// Per-user blobs for [`Request::ExportUsers`], in request order.
    Blobs(Vec<Vec<u8>>),
    /// The remote operation failed.
    Err(ServingError),
}

impl Response {
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::HelloOk {
                protocol,
                n_users,
                n_items,
                base,
                count,
                total,
            } => {
                put_u8(&mut out, 0);
                put_u32(&mut out, *protocol);
                put_u64(&mut out, *n_users);
                put_u64(&mut out, *n_items);
                put_u64(&mut out, *base);
                put_u64(&mut out, *count);
                put_u64(&mut out, *total);
            }
            Response::Pong => put_u8(&mut out, 1),
            Response::Ingested(n) => {
                put_u8(&mut out, 2);
                put_u64(&mut out, *n);
            }
            Response::Slate(s) => {
                put_u8(&mut out, 3);
                put_slate(&mut out, s);
            }
            Response::Slates(slates) => {
                put_u8(&mut out, 4);
                put_u64(&mut out, slates.len() as u64);
                for s in slates {
                    put_slate(&mut out, s);
                }
            }
            Response::Done => put_u8(&mut out, 5),
            Response::Stats(s) => {
                put_u8(&mut out, 6);
                put_stats(&mut out, s);
            }
            Response::Bytes(b) => {
                put_u8(&mut out, 7);
                put_bytes(&mut out, b);
            }
            Response::Watermark(w) => {
                put_u8(&mut out, 8);
                put_u64(&mut out, *w);
            }
            Response::Blobs(blobs) => {
                put_u8(&mut out, 9);
                put_u64(&mut out, blobs.len() as u64);
                for b in blobs {
                    put_bytes(&mut out, b);
                }
            }
            Response::Err(e) => {
                put_u8(&mut out, 10);
                put_error(&mut out, e);
            }
        }
        out
    }

    pub fn decode(payload: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(payload);
        let resp = match r.u8()? {
            0 => Response::HelloOk {
                protocol: r.u32()?,
                n_users: r.u64()?,
                n_items: r.u64()?,
                base: r.u64()?,
                count: r.u64()?,
                total: r.u64()?,
            },
            1 => Response::Pong,
            2 => Response::Ingested(r.u64()?),
            3 => Response::Slate(get_slate(&mut r)?),
            4 => {
                // Each slate is ≥ one count + two timing f64s.
                let n = r.count(8 + 16)?;
                let mut slates = Vec::with_capacity(n);
                for _ in 0..n {
                    slates.push(get_slate(&mut r)?);
                }
                Response::Slates(slates)
            }
            5 => Response::Done,
            6 => Response::Stats(Box::new(get_stats(&mut r)?)),
            7 => Response::Bytes(r.bytes()?.to_vec()),
            8 => Response::Watermark(r.u64()?),
            9 => {
                let n = r.count(8)?;
                let mut blobs = Vec::with_capacity(n);
                for _ in 0..n {
                    blobs.push(r.bytes()?.to_vec());
                }
                Response::Blobs(blobs)
            }
            10 => Response::Err(get_error(&mut r)?),
            tag => {
                return Err(WireError::BadTag {
                    what: "response",
                    tag,
                })
            }
        };
        r.finish()?;
        Ok(resp)
    }

    /// Promote a remote error to `Err`, pass everything else through.
    pub fn into_result(self) -> Result<Response, ServingError> {
        match self {
            Response::Err(e) => Err(e),
            other => Ok(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        let bytes = req.encode();
        let back = Request::decode(&bytes).expect("own encoding decodes");
        assert_eq!(back, req);
        // Decoding must consume everything: one extra byte is an error.
        let mut padded = bytes.clone();
        padded.push(0);
        assert_eq!(
            Request::decode(&padded),
            Err(WireError::TrailingBytes { left: 1 })
        );
        // Every truncation fails cleanly.
        for cut in 0..bytes.len() {
            assert!(Request::decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn requests_roundtrip() {
        for req in [
            Request::Hello {
                protocol: PROTOCOL_VERSION,
            },
            Request::Ping,
            Request::IngestBatch(vec![(0, 1), (7, 42), (u32::MAX, 0)]),
            Request::Recommend {
                user: 3,
                query: RecQuery::top(10),
            },
            Request::Recommend {
                user: 3,
                query: RecQuery {
                    k: 5,
                    source: CandidateSource::Exact,
                    exclude: Exclusion::HistoryAnd(vec![1, 2, 3]),
                },
            },
            Request::RecommendMany {
                users: vec![1, 2, 3],
                query: RecQuery::top(4).with_source(CandidateSource::Ann),
            },
            Request::Flush,
            Request::Stats,
            Request::Snapshot,
            Request::Checkpoint,
            Request::WalSync,
            Request::ExportUsers(vec![9, 8, 7]),
            Request::InstallTier(vec![1, 2, 3, 4, 5]),
            Request::ClearTier,
            Request::Shutdown,
        ] {
            roundtrip_request(req);
        }
    }

    /// Responses carry floats, so equality is checked on re-encoded
    /// bytes — which is also the stronger property (bit-identity).
    fn roundtrip_response(resp: Response) {
        let bytes = resp.encode();
        let back = Response::decode(&bytes).expect("own encoding decodes");
        assert_eq!(back.encode(), bytes, "re-encoding must be bit-identical");
        for cut in 0..bytes.len() {
            assert!(Response::decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn responses_roundtrip() {
        let mut timings = EngineTimings::default();
        timings.record(EventTiming {
            infer_ms: 0.25,
            identify_ms: 0.5,
        });
        timings.record(EventTiming {
            infer_ms: 1.0 / 3.0,
            identify_ms: 2.0 / 7.0,
        });
        let stats = ServingStats {
            events: 12,
            recommends: 3,
            timings: timings.clone(),
            shards: vec![ShardReport {
                shard: 2,
                events: 12,
                recommends: 3,
                timings,
                retired: false,
                queue_capacity: 1024,
                tier_dirty: 7,
            }],
            migration: MigrationStats {
                in_progress: true,
                migrated_users: 4,
                pending_users: 5,
                batches: 6,
            },
            neighborhood: NeighborhoodStats {
                two_tier: true,
                epoch: 3,
                users_covered: 100,
                events_since_refresh: 17,
                last_refresh_ms: 1.5,
                refresh_in_progress: false,
                tier_mode: FrozenTierMode::IvfPq {
                    nlist: 4,
                    nprobe: 2,
                    m: 8,
                },
                tier_bytes: 4096,
                tier_search_ns: 12345.6,
                last_refresh_users: 33,
                delta_ready: true,
            },
            durability: DurabilityStats {
                enabled: true,
                wal_records: 100,
                wal_bytes: 2500,
                wal_unsynced_bytes: 25,
                wal_syncs: 12,
                checkpoints: 2,
                checkpoint_watermark: 96,
                last_checkpoint_bytes: 999,
                events_since_checkpoint: 4,
            },
            pressure: PressureStats {
                sends: 900,
                stalls: 13,
                stall_ms: 2.75,
                queue_capacity: 1024,
                peak_queue: 768,
            },
            transport: TransportStats {
                requests: 4321,
                read_ahead_hits: 1234,
                peak_read_ahead: 4,
                read_ahead_capacity: 4,
            },
        };
        for resp in [
            Response::HelloOk {
                protocol: PROTOCOL_VERSION,
                n_users: 120,
                n_items: 60,
                base: 2,
                count: 2,
                total: 4,
            },
            Response::Pong,
            Response::Ingested(42),
            Response::Slate(RecResponse {
                items: vec![
                    Scored {
                        id: 7,
                        score: 0.125,
                    },
                    Scored {
                        id: 8,
                        score: -1.0 / 3.0,
                    },
                ],
                timing: EventTiming {
                    infer_ms: 0.1,
                    identify_ms: 0.2,
                },
            }),
            Response::Slates(vec![RecResponse {
                items: vec![],
                timing: EventTiming {
                    infer_ms: 0.0,
                    identify_ms: 0.0,
                },
            }]),
            Response::Done,
            Response::Stats(Box::new(stats)),
            Response::Bytes(vec![0xde, 0xad]),
            Response::Watermark(1234),
            Response::Blobs(vec![vec![1], vec![], vec![2, 3]]),
            Response::Err(ServingError::NotOwned { user: 5 }),
            Response::Err(ServingError::InvalidConfig("bad".into())),
        ] {
            roundtrip_response(resp);
        }
    }

    #[test]
    fn timing_stats_cross_the_wire_exactly() {
        let mut t = TimingStats::new();
        for i in 0..37 {
            t.record_ms((i as f64).sin().abs() + 0.001);
        }
        let mut out = Vec::new();
        put_timing(&mut out, &t);
        assert_eq!(out.len(), TIMING_LEN);
        let back = get_timing(&mut Reader::new(&out)).unwrap();
        let (n1, mean1, m21, min1, max1) = t.parts();
        let (n2, mean2, m22, min2, max2) = back.parts();
        assert_eq!(n1, n2);
        assert_eq!(mean1.to_bits(), mean2.to_bits());
        assert_eq!(m21.to_bits(), m22.to_bits());
        assert_eq!(min1.to_bits(), min2.to_bits());
        assert_eq!(max1.to_bits(), max2.to_bits());
    }

    #[test]
    fn unrepresentable_errors_degrade_to_wire_text() {
        let e = ServingError::EpochInFlight {
            requested: "snapshot",
            in_flight: "reshard",
        };
        let mut out = Vec::new();
        put_error(&mut out, &e);
        let back = get_error(&mut Reader::new(&out)).unwrap();
        match back {
            ServingError::Wire(msg) => assert!(msg.contains("reshard")),
            other => panic!("expected Wire, got {other:?}"),
        }
    }

    #[test]
    fn oversized_counts_fail_before_allocating() {
        // A Blobs response claiming u64::MAX entries in a 9-byte body.
        let mut payload = vec![9u8];
        payload.extend_from_slice(&u64::MAX.to_le_bytes());
        // count * min_size overflows → Truncated, no allocation
        assert!(matches!(
            Response::decode(&payload),
            Err(WireError::Truncated)
        ));
    }

    #[test]
    fn message_framing_detects_corruption() {
        let payload = Request::Ping.encode();
        let mut buf = Vec::new();
        write_message(&mut buf, &payload).unwrap();
        // Clean roundtrip.
        let mut cursor = std::io::Cursor::new(buf.clone());
        let mut out = Vec::new();
        assert!(read_message(&mut cursor, &mut out).unwrap().is_some());
        assert_eq!(out, payload);
        assert!(read_message(&mut cursor, &mut out).unwrap().is_none());
        // A flipped payload bit fails the checksum.
        let mut bad = buf.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x40;
        let mut cursor = std::io::Cursor::new(bad);
        let err = read_message(&mut cursor, &mut out).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // Truncation mid-frame is UnexpectedEof.
        let mut cursor = std::io::Cursor::new(buf[..buf.len() - 1].to_vec());
        let err = read_message(&mut cursor, &mut out).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }
}
