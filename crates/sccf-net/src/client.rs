//! One persistent, *pipelined* client connection to a shard server.
//!
//! A [`Connection`] is split into independent send and receive halves
//! over one TCP stream: [`Connection::send`] (or the non-flushing
//! [`Connection::enqueue`]) frames a [`Request`] into an outbox and
//! bumps a FIFO in-flight counter; [`Connection::recv`] awaits the
//! response matching the *oldest* unanswered request. Multiple
//! requests may be in flight at once — the wire protocol carries no
//! correlation ids because none are needed: the server handles each
//! connection's requests strictly in arrival order and answers in the
//! same order, so the k-th outstanding `recv` always pairs with the
//! k-th outstanding `send`. That same per-connection FIFO is what
//! gives the fleet router its per-user read-your-writes guarantee — a
//! user's events and the recommendation that must observe them travel
//! the same connection to the same owning server.
//!
//! The legacy strict request/response round trip is still available as
//! [`Connection::call`] = `send` + `recv` (it refuses to run while
//! other responses are outstanding).
//!
//! Transport failures *poison* the connection: once any read or write
//! fails, the response stream can no longer be trusted to line up with
//! the in-flight queue, so every subsequent operation fails fast with
//! a typed [`ServingError::Wire`] until the router replaces the
//! connection (see `FleetRouter::reconnect`).

use std::io::{BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use sccf_serving::api::ServingError;

use crate::proto::{read_message, write_message, Request, Response, PROTOCOL_VERSION};

fn wire<E: std::fmt::Display>(context: &str) -> impl Fn(E) -> ServingError + '_ {
    move |e| ServingError::Wire(format!("{context}: {e}"))
}

/// A persistent framed connection to one shard server, with pipelined
/// send/receive halves and a FIFO in-flight queue.
pub struct Connection {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    /// Framed requests not yet handed to the kernel; `written` bytes of
    /// it already were (nonblocking flushes stop mid-frame at
    /// `WouldBlock` and resume from that offset).
    outbox: Vec<u8>,
    written: usize,
    /// Requests sent (or queued) whose responses have not been received.
    in_flight: usize,
    nonblocking: bool,
    buf: Vec<u8>,
    poisoned: Option<String>,
}

impl Connection {
    /// Connect to `addr` (e.g. `127.0.0.1:7400`). Transport failures
    /// surface as [`ServingError::Wire`].
    pub fn connect(addr: impl ToSocketAddrs + std::fmt::Debug) -> Result<Self, ServingError> {
        let stream = TcpStream::connect(&addr).map_err(wire(&format!("connecting to {addr:?}")))?;
        Self::from_stream(stream)
    }

    /// Wrap an already-established stream.
    pub fn from_stream(stream: TcpStream) -> Result<Self, ServingError> {
        // Pipelining queues several small frames on one connection; with
        // Nagle on, every frame after the first unacked one waits for the
        // peer's (possibly delayed) ACK, which throttles depth > 1 back to
        // sequential speed. Requests are already batched at the framing
        // layer, so disable it.
        stream
            .set_nodelay(true)
            .map_err(wire("setting TCP_NODELAY"))?;
        let write_half = stream.try_clone().map_err(wire("cloning stream"))?;
        Ok(Self {
            reader: BufReader::new(stream),
            writer: write_half,
            outbox: Vec::new(),
            written: 0,
            in_flight: 0,
            nonblocking: false,
            buf: Vec::new(),
            poisoned: None,
        })
    }

    /// Bound how long one blocking socket operation may take. `None`
    /// removes the bound. (Nonblocking overlapped flushes driven by the
    /// router's readiness loop are not covered by this bound.)
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ServingError> {
        let stream = self.reader.get_ref();
        stream
            .set_read_timeout(timeout)
            .and_then(|()| stream.set_write_timeout(timeout))
            .map_err(wire("setting timeout"))
    }

    /// Number of requests whose responses are still owed by the server
    /// (including any still sitting unflushed in the outbox).
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Bytes framed but not yet handed to the kernel.
    pub fn pending_bytes(&self) -> usize {
        self.outbox.len() - self.written
    }

    /// Why this connection is dead, if it is.
    pub fn poison_reason(&self) -> Option<&str> {
        self.poisoned.as_deref()
    }

    /// Mark the connection unusable; every later operation fails fast.
    fn poison(&mut self, reason: String) -> ServingError {
        let err = ServingError::Wire(reason.clone());
        self.poisoned = Some(reason);
        err
    }

    fn check_poisoned(&self) -> Result<(), ServingError> {
        match &self.poisoned {
            Some(reason) => Err(ServingError::Wire(format!("connection poisoned: {reason}"))),
            None => Ok(()),
        }
    }

    /// The socket handle (for readiness registration).
    pub(crate) fn socket(&self) -> &TcpStream {
        &self.writer
    }

    /// Switch the socket between blocking and nonblocking modes.
    pub(crate) fn set_nonblocking(&mut self, on: bool) -> Result<(), ServingError> {
        if self.nonblocking == on {
            return Ok(());
        }
        self.writer
            .set_nonblocking(on)
            .map_err(wire("switching blocking mode"))?;
        self.nonblocking = on;
        Ok(())
    }

    /// Frame `req` into the outbox *without* touching the socket, and
    /// count it in flight. Pair every enqueue with exactly one
    /// [`Connection::recv`]; flush happens on [`Connection::recv`] at
    /// the latest, or explicitly via [`Connection::flush_outbox`] /
    /// [`Connection::try_flush_outbox`].
    pub fn enqueue(&mut self, req: &Request) -> Result<(), ServingError> {
        self.check_poisoned()?;
        let payload = req.encode();
        write_message(&mut self.outbox, &payload).expect("Vec<u8> writes are infallible");
        self.in_flight += 1;
        Ok(())
    }

    /// Send `req` now: enqueue + blocking flush. The response is owed;
    /// collect it with [`Connection::recv`].
    pub fn send(&mut self, req: &Request) -> Result<(), ServingError> {
        self.enqueue(req)?;
        self.flush_outbox()
    }

    /// Blocking flush of everything in the outbox.
    pub fn flush_outbox(&mut self) -> Result<(), ServingError> {
        self.check_poisoned()?;
        if self.pending_bytes() == 0 {
            self.outbox.clear();
            self.written = 0;
            return Ok(());
        }
        self.set_nonblocking(false)?;
        let written = self.written;
        match self.writer.write_all(&self.outbox[written..]) {
            Ok(()) => {
                self.outbox.clear();
                self.written = 0;
                Ok(())
            }
            Err(e) => Err(self.poison(format!("sending request: {e}"))),
        }
    }

    /// Nonblocking flush: push outbox bytes until the kernel pushes
    /// back. `Ok(true)` = outbox drained; `Ok(false)` = `WouldBlock`,
    /// try again when the socket reports writable.
    pub fn try_flush_outbox(&mut self) -> Result<bool, ServingError> {
        self.check_poisoned()?;
        if self.pending_bytes() == 0 {
            self.outbox.clear();
            self.written = 0;
            return Ok(true);
        }
        self.set_nonblocking(true)?;
        loop {
            let written = self.written;
            match self.writer.write(&self.outbox[written..]) {
                Ok(0) => {
                    return Err(self.poison("sending request: socket wrote zero bytes".to_string()))
                }
                Ok(n) => {
                    self.written += n;
                    if self.pending_bytes() == 0 {
                        self.outbox.clear();
                        self.written = 0;
                        return Ok(true);
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(self.poison(format!("sending request: {e}"))),
            }
        }
    }

    /// Await the response for the *oldest* in-flight request. Never
    /// hangs waiting for a response that was not requested: calling
    /// with nothing in flight is a typed [`ServingError::Wire`].
    /// Remote [`Response::Err`]s are *not* unwrapped here — matching
    /// on the success variant is the caller's job (see
    /// [`Response::into_result`]).
    pub fn recv(&mut self) -> Result<Response, ServingError> {
        self.check_poisoned()?;
        if self.in_flight == 0 {
            return Err(ServingError::Wire(
                "recv with no request in flight".to_string(),
            ));
        }
        // A reply can only arrive for a request the kernel has seen:
        // finish our half first so we cannot deadlock on a full socket.
        self.flush_outbox()?;
        self.set_nonblocking(false)?;
        match read_message(&mut self.reader, &mut self.buf) {
            Ok(Some(())) => {
                self.in_flight -= 1;
                match Response::decode(&self.buf) {
                    Ok(resp) => Ok(resp),
                    Err(e) => Err(self.poison(format!("undecodable response: {e}"))),
                }
            }
            Ok(None) => Err(self.poison(format!(
                "server closed the connection with {} response(s) in flight",
                self.in_flight
            ))),
            Err(e) => Err(self.poison(format!("reading response: {e}"))),
        }
    }

    /// One strict request/response round trip (the legacy shape).
    /// Refuses to interleave with pipelined traffic: any other response
    /// in flight is an error, because the next frame on the wire would
    /// not be the answer to `req`.
    pub fn request(&mut self, req: &Request) -> Result<Response, ServingError> {
        self.check_poisoned()?;
        if self.in_flight != 0 {
            return Err(ServingError::Wire(format!(
                "request while {} pipelined response(s) are in flight",
                self.in_flight
            )));
        }
        self.send(req)?;
        self.recv()
    }

    /// [`Connection::request`] + error unwrapping in one call.
    pub fn call(&mut self, req: &Request) -> Result<Response, ServingError> {
        self.request(req)?.into_result()
    }

    /// The [`Request::Hello`] handshake: verifies the protocol version
    /// and returns `(n_users, n_items, base, count, total)` — the
    /// server's identity in the fleet.
    pub fn hello(&mut self) -> Result<(usize, usize, usize, usize, usize), ServingError> {
        match self.call(&Request::Hello {
            protocol: PROTOCOL_VERSION,
        })? {
            Response::HelloOk {
                protocol,
                n_users,
                n_items,
                base,
                count,
                total,
            } => {
                if protocol != PROTOCOL_VERSION {
                    return Err(ServingError::Wire(format!(
                        "server speaks protocol {protocol}, this build speaks {PROTOCOL_VERSION}"
                    )));
                }
                Ok((
                    n_users as usize,
                    n_items as usize,
                    base as usize,
                    count as usize,
                    total as usize,
                ))
            }
            other => Err(unexpected("HelloOk", &other)),
        }
    }
}

/// The standard "server answered the wrong variant" error.
pub(crate) fn unexpected(wanted: &str, got: &Response) -> ServingError {
    let label = match got {
        Response::HelloOk { .. } => "HelloOk",
        Response::Pong => "Pong",
        Response::Ingested(_) => "Ingested",
        Response::Slate(_) => "Slate",
        Response::Slates(_) => "Slates",
        Response::Done => "Done",
        Response::Stats(_) => "Stats",
        Response::Bytes(_) => "Bytes",
        Response::Watermark(_) => "Watermark",
        Response::Blobs(_) => "Blobs",
        Response::Err(_) => "Err",
    };
    ServingError::Wire(format!("expected a {wanted} response, got {label}"))
}
