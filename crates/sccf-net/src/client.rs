//! One persistent client connection to a shard server.
//!
//! A [`Connection`] is strictly request/response over one TCP stream:
//! the caller writes one framed [`Request`], then blocks for one framed
//! [`Response`]. The server handles each connection's requests in
//! arrival order, which is what gives the fleet router its per-user
//! read-your-writes guarantee for free — a user's events and the
//! recommendation that must observe them travel the same FIFO
//! connection to the same owning server.

use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use sccf_serving::api::ServingError;

use crate::proto::{read_message, write_message, Request, Response, PROTOCOL_VERSION};

fn wire<E: std::fmt::Display>(context: &str) -> impl Fn(E) -> ServingError + '_ {
    move |e| ServingError::Wire(format!("{context}: {e}"))
}

/// A persistent framed connection to one shard server.
pub struct Connection {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    buf: Vec<u8>,
}

impl Connection {
    /// Connect to `addr` (e.g. `127.0.0.1:7400`). Transport failures
    /// surface as [`ServingError::Wire`].
    pub fn connect(addr: impl ToSocketAddrs + std::fmt::Debug) -> Result<Self, ServingError> {
        let stream = TcpStream::connect(&addr).map_err(wire(&format!("connecting to {addr:?}")))?;
        Self::from_stream(stream)
    }

    /// Wrap an already-established stream.
    pub fn from_stream(stream: TcpStream) -> Result<Self, ServingError> {
        let write_half = stream.try_clone().map_err(wire("cloning stream"))?;
        Ok(Self {
            reader: BufReader::new(stream),
            writer: BufWriter::new(write_half),
            buf: Vec::new(),
        })
    }

    /// Bound how long one request may block on the socket. `None`
    /// removes the bound.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ServingError> {
        let stream = self.reader.get_ref();
        stream
            .set_read_timeout(timeout)
            .and_then(|()| stream.set_write_timeout(timeout))
            .map_err(wire("setting timeout"))
    }

    /// One request/response round trip. Remote [`Response::Err`]s are
    /// *not* unwrapped here — matching on the success variant is the
    /// caller's job (see [`Response::into_result`]).
    pub fn request(&mut self, req: &Request) -> Result<Response, ServingError> {
        let payload = req.encode();
        write_message(&mut self.writer, &payload).map_err(wire("sending request"))?;
        self.writer.flush().map_err(wire("sending request"))?;
        match read_message(&mut self.reader, &mut self.buf).map_err(wire("reading response"))? {
            None => Err(ServingError::Wire(
                "server closed the connection mid-request".to_string(),
            )),
            Some(()) => Ok(Response::decode(&self.buf)?),
        }
    }

    /// [`Connection::request`] + error unwrapping in one call.
    pub fn call(&mut self, req: &Request) -> Result<Response, ServingError> {
        self.request(req)?.into_result()
    }

    /// The [`Request::Hello`] handshake: verifies the protocol version
    /// and returns `(n_users, n_items, base, count, total)` — the
    /// server's identity in the fleet.
    pub fn hello(&mut self) -> Result<(usize, usize, usize, usize, usize), ServingError> {
        match self.call(&Request::Hello {
            protocol: PROTOCOL_VERSION,
        })? {
            Response::HelloOk {
                protocol,
                n_users,
                n_items,
                base,
                count,
                total,
            } => {
                if protocol != PROTOCOL_VERSION {
                    return Err(ServingError::Wire(format!(
                        "server speaks protocol {protocol}, this build speaks {PROTOCOL_VERSION}"
                    )));
                }
                Ok((
                    n_users as usize,
                    n_items as usize,
                    base as usize,
                    count as usize,
                    total as usize,
                ))
            }
            other => Err(unexpected("HelloOk", &other)),
        }
    }
}

/// The standard "server answered the wrong variant" error.
pub(crate) fn unexpected(wanted: &str, got: &Response) -> ServingError {
    let label = match got {
        Response::HelloOk { .. } => "HelloOk",
        Response::Pong => "Pong",
        Response::Ingested(_) => "Ingested",
        Response::Slate(_) => "Slate",
        Response::Slates(_) => "Slates",
        Response::Done => "Done",
        Response::Stats(_) => "Stats",
        Response::Bytes(_) => "Bytes",
        Response::Watermark(_) => "Watermark",
        Response::Blobs(_) => "Blobs",
        Response::Err(_) => "Err",
    };
    ServingError::Wire(format!("expected a {wanted} response, got {label}"))
}
