//! The fleet control loop: spawn shard-server processes, health-check
//! them over the protocol, and restart crashed members from their
//! durability directories.
//!
//! A [`Supervisor`] owns the child processes of a fleet. Each child is
//! launched from a [`ShardSpec`] with `--port 0` appended — the OS
//! assigns an ephemeral port, the child announces it on stdout as a
//! `LISTENING {port}` line, and the supervisor parses that line before
//! declaring the child up. Restarting into a fresh ephemeral port (and
//! telling the router to [`reconnect`](crate::FleetRouter::reconnect))
//! sidesteps the listen-socket reuse races a fixed port would invite.
//!
//! Recovery is delegated entirely to the durability layer: a respawned
//! child finds checkpoints in its `--dir` and replays its newest
//! checkpoint chain plus the WAL tail before accepting connections, so
//! from the supervisor's side "restart" is just "spawn again".
//!
//! [`route_main`] is the `sccf route` entry point — a self-contained
//! fleet demo that trains one model, launches the fleet, drives a
//! deterministic event stream through a [`FleetRouter`], and shuts
//! everything down.

use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use sccf_serving::api::{RecQuery, ServingApi};
use sccf_serving::fleet::{FleetMember, FleetTopology};

use crate::client::Connection;
use crate::proto::{Request, Response};
use crate::router::FleetRouter;
use crate::server::ServeShardArgs;
use crate::world::WorldSpec;

/// How to (re)launch one shard-server process. `args` is the full
/// argument vector including the `serve-shard` subcommand word but
/// **excluding** `--port`, which the supervisor always appends as `0`.
#[derive(Debug, Clone)]
pub struct ShardSpec {
    pub exe: PathBuf,
    pub args: Vec<String>,
}

impl ShardSpec {
    pub fn new(exe: PathBuf, args: Vec<String>) -> Self {
        Self { exe, args }
    }
}

/// Spawn one shard server and wait for its `LISTENING {port}`
/// announcement. Returns the child and the port it bound.
pub fn spawn_shard(spec: &ShardSpec) -> Result<(Child, u16), String> {
    let mut child = Command::new(&spec.exe)
        .args(&spec.args)
        .args(["--port", "0"])
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .spawn()
        .map_err(|e| format!("spawning {:?}: {e}", spec.exe))?;
    let stdout = child.stdout.take().expect("stdout was piped");
    let mut reader = BufReader::new(stdout);
    let port = loop {
        let mut line = String::new();
        let n = reader
            .read_line(&mut line)
            .map_err(|e| format!("reading shard-server stdout: {e}"))?;
        if n == 0 {
            let status = child.wait().map_err(|e| e.to_string())?;
            return Err(format!(
                "shard server exited ({status}) before announcing a port"
            ));
        }
        if let Some(rest) = line.trim().strip_prefix("LISTENING ") {
            break rest
                .parse::<u16>()
                .map_err(|_| format!("bad LISTENING line from shard server: {line:?}"))?;
        }
    };
    // Keep draining stdout so the child never blocks on a full pipe.
    std::thread::spawn(move || {
        let _ = std::io::copy(&mut reader, &mut std::io::sink());
    });
    Ok((child, port))
}

struct Supervised {
    spec: ShardSpec,
    child: Child,
    port: u16,
}

/// Owns a fleet's child processes; see the module docs.
pub struct Supervisor {
    shards: Vec<Supervised>,
    ping_timeout: Duration,
}

impl Supervisor {
    /// Launch every spec. If any child dies before announcing its
    /// port, the error propagates and the supervisor's `Drop` kills
    /// whatever was already launched.
    pub fn launch(specs: Vec<ShardSpec>) -> Result<Self, String> {
        let mut sup = Self {
            shards: Vec::with_capacity(specs.len()),
            ping_timeout: Duration::from_secs(10),
        };
        for spec in specs {
            let (child, port) = spawn_shard(&spec)?;
            sup.shards.push(Supervised { spec, child, port });
        }
        Ok(sup)
    }

    pub fn len(&self) -> usize {
        self.shards.len()
    }

    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    pub fn port(&self, i: usize) -> u16 {
        self.shards[i].port
    }

    /// `127.0.0.1:{port}` for member `i` — what the router dials.
    pub fn addr(&self, i: usize) -> String {
        format!("127.0.0.1:{}", self.shards[i].port)
    }

    /// Liveness probe: a fresh short-lived connection sending one
    /// [`Request::Ping`]. A member that cannot answer within the ping
    /// timeout is considered down.
    pub fn ping(&self, i: usize) -> bool {
        let Ok(mut conn) = Connection::connect(self.addr(i).as_str()) else {
            return false;
        };
        if conn.set_timeout(Some(self.ping_timeout)).is_err() {
            return false;
        }
        matches!(conn.call(&Request::Ping), Ok(Response::Pong))
    }

    /// Kill member `i` outright (SIGKILL — simulates a crash; nothing
    /// is flushed). Use [`Supervisor::restart`] or
    /// [`Supervisor::check_and_restart`] to bring it back.
    pub fn kill(&mut self, i: usize) -> Result<(), String> {
        let s = &mut self.shards[i];
        s.child.kill().map_err(|e| e.to_string())?;
        s.child.wait().map_err(|e| e.to_string())?;
        Ok(())
    }

    /// Respawn member `i` from its spec. The replacement binds a fresh
    /// ephemeral port and recovers from its durability directory before
    /// listening; callers must re-point their router at
    /// [`Supervisor::addr`]`(i)` afterwards.
    pub fn restart(&mut self, i: usize) -> Result<(), String> {
        let s = &mut self.shards[i];
        // Reap whatever is left of the old process; ignore errors from
        // an already-dead child.
        let _ = s.child.kill();
        let _ = s.child.wait();
        let (child, port) = spawn_shard(&s.spec)?;
        s.child = child;
        s.port = port;
        Ok(())
    }

    /// One control-loop tick: ping every member and restart the ones
    /// that fail. Returns the indices restarted (their ports changed).
    pub fn check_and_restart(&mut self) -> Result<Vec<usize>, String> {
        let mut restarted = Vec::new();
        for i in 0..self.shards.len() {
            if !self.ping(i) {
                self.restart(i)?;
                restarted.push(i);
            }
        }
        Ok(restarted)
    }

    /// Reap every child. Call after the members were asked to exit
    /// (e.g. [`FleetRouter::shutdown_all`]); any child still running is
    /// killed.
    pub fn shutdown(mut self) {
        for s in &mut self.shards {
            match s.child.try_wait() {
                Ok(Some(_)) => {}
                _ => {
                    let _ = s.child.kill();
                    let _ = s.child.wait();
                }
            }
        }
        self.shards.clear();
    }
}

impl Drop for Supervisor {
    fn drop(&mut self) {
        for s in &mut self.shards {
            if !matches!(s.child.try_wait(), Ok(Some(_))) {
                let _ = s.child.kill();
                let _ = s.child.wait();
            }
        }
    }
}

fn flag(args: &[String], key: &str) -> Option<String> {
    args.windows(2)
        .find(|w| w[0] == format!("--{key}"))
        .map(|w| w[1].clone())
}

fn parse_flag<T: std::str::FromStr>(args: &[String], key: &str, default: T) -> Result<T, String> {
    match flag(args, key) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|_| format!("bad value for --{key}: {v}")),
    }
}

/// Entry point for `sccf route` — launch a fleet, drive it, tear it
/// down. Flags: `--procs` (default 2), `--shards-per-proc` (default 2),
/// `--vnodes` (default 0 = modulo ring), `--events` (default 400),
/// `--dir` (durability root; default: temp, removed afterwards), plus
/// the `--world-*` flags of [`WorldSpec`].
pub fn route_main(args: &[String]) -> Result<(), String> {
    let procs: usize = parse_flag(args, "procs", 2)?;
    let per: usize = parse_flag(args, "shards-per-proc", 2)?;
    let vnodes: usize = parse_flag(args, "vnodes", 0)?;
    let events: u64 = parse_flag(args, "events", 400)?;
    if procs == 0 || per == 0 {
        return Err("--procs and --shards-per-proc must be ≥ 1".to_string());
    }
    let world = WorldSpec::from_flag(|key| flag(args, key))?;
    let total = procs * per;

    let root = match flag(args, "dir") {
        Some(d) => PathBuf::from(d),
        None => std::env::temp_dir().join(format!("sccf-route-{}", std::process::id())),
    };
    std::fs::create_dir_all(&root).map_err(|e| format!("creating {}: {e}", root.display()))?;

    // Train once; every shard server rehydrates the same floats.
    eprintln!("[route] training model for {} users…", world.n_users);
    let model_path = root.join("model.fism");
    std::fs::write(&model_path, world.train_model())
        .map_err(|e| format!("writing {}: {e}", model_path.display()))?;

    let exe = std::env::current_exe().map_err(|e| e.to_string())?;
    let specs: Vec<ShardSpec> = (0..procs)
        .map(|p| {
            let shard_args = ServeShardArgs {
                base: p * per,
                count: per,
                total,
                vnodes,
                dir: Some(root.join(format!("member-{p}"))),
                world: world.clone(),
                model_file: Some(model_path.clone()),
                ..ServeShardArgs::default()
            };
            let mut argv = vec!["serve-shard".to_string()];
            argv.extend(shard_args.to_args());
            ShardSpec::new(exe.clone(), argv)
        })
        .collect();

    eprintln!("[route] launching {procs} shard servers × {per} shards…");
    let mut sup = Supervisor::launch(specs)?;
    let members: Vec<FleetMember> = (0..procs)
        .map(|p| FleetMember {
            base: p * per,
            count: per,
            addr: sup.addr(p),
        })
        .collect();
    let topology = FleetTopology::try_new(total, vnodes, members).map_err(|e| e.to_string())?;
    let mut router = FleetRouter::connect(topology).map_err(|e| e.to_string())?;

    let n_users = world.n_users as u32;
    let n_items = world.n_items as u32;
    let batch: Vec<(u32, u32)> = (0..events)
        .map(|k| {
            let k = k as u32;
            (
                k.wrapping_mul(131) % n_users,
                (k.wrapping_mul(7919).wrapping_add(13)) % n_items,
            )
        })
        .collect();
    eprintln!("[route] ingesting {events} events…");
    let ingested = router.ingest_batch(&batch).map_err(|e| e.to_string())?;
    router.flush().map_err(|e| e.to_string())?;

    let sample: Vec<u32> = (0..n_users).step_by(7).collect();
    let slates = router
        .recommend_many(&sample, &RecQuery::top(5))
        .map_err(|e| e.to_string())?;
    let marks = router.checkpoint_all().map_err(|e| e.to_string())?;
    let restarted = sup.check_and_restart()?;
    let stats = router.serving_stats().map_err(|e| e.to_string())?;

    println!("fleet: {procs} procs × {per} shards (vnodes={vnodes})");
    println!("ingested: {ingested} events, flushed");
    println!(
        "recommended: {} slates of 5 (first user {} → {:?})",
        slates.len(),
        sample[0],
        slates[0].ids()
    );
    println!("checkpoint epochs: {marks:?}");
    println!("health check: restarted {restarted:?}");
    println!(
        "stats: events={} recommends={} durable={}",
        stats.events, stats.recommends, stats.durability.enabled
    );
    std::io::stdout().flush().map_err(|e| e.to_string())?;

    router.shutdown_all().map_err(|e| e.to_string())?;
    sup.shutdown();
    if flag(args, "dir").is_none() {
        let _ = std::fs::remove_dir_all(&root);
    }
    Ok(())
}
