//! # sccf-net — the networked shard fleet
//!
//! Everything needed to run an SCCF serving deployment as **multiple
//! processes** instead of one: a length-prefixed, CRC-checked wire
//! protocol carrying the full [`ServingApi`](sccf_serving::ServingApi)
//! vocabulary, a shard-server process that hosts a window of the
//! global shard space, a fleet router that fans requests out over
//! persistent TCP connections, and a supervisor that health-checks the
//! processes and restarts crashed members from their durability
//! directories.
//!
//! | module | role |
//! |---|---|
//! | [`proto`] | framed messages: [`Request`]/[`Response`] codecs over CRC32 frames |
//! | [`client`] | one persistent request/response [`Connection`] |
//! | [`server`] | `sccf serve-shard`: a [`ShardedEngine`](sccf_serving::ShardedEngine) slice behind a listener |
//! | [`router`] | [`FleetRouter`]: `ServingApi` over the wire, fan-out + merge |
//! | [`supervisor`] | [`Supervisor`]: spawn / ping / restart; `sccf route` demo loop |
//! | [`world`] | [`WorldSpec`]: the deterministic world every process rebuilds identically |
//!
//! The design contract, proven end-to-end in `tests/fleet.rs`: a fleet
//! of shard-server processes fed one event stream through the router is
//! **bit-identical** — snapshot bytes and slate float bits — to a
//! single-process [`ShardedEngine`](sccf_serving::ShardedEngine) with
//! the same total shard count fed the same stream, including across a
//! supervised kill-and-restart of one member.

pub mod client;
pub mod proto;
pub mod router;
pub mod server;
pub mod supervisor;
pub mod world;

pub use client::Connection;
pub use proto::{Request, Response, WireError, PROTOCOL_VERSION};
pub use router::{FleetRouter, DEFAULT_PIPELINE_DEPTH};
pub use server::{serve_shard_main, ServeShardArgs};
pub use supervisor::{route_main, spawn_shard, ShardSpec, Supervisor};
pub use world::{World, WorldSpec};
