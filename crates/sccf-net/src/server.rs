//! The shard-server process role: `sccf serve-shard`.
//!
//! One process hosts a [`ShardedEngine`] **slice** — global shards
//! `[base, base + count)` of a `total`-shard ring
//! ([`RouterKind::Slice`]) — behind the wire protocol of
//! [`crate::proto`]. Startup is recovery-aware: pointed at a durability
//! directory that already holds a checkpoint chain, the server rebuilds
//! its slice via [`ShardedEngine::recover`] (checkpoints + WAL gap
//! replay) instead of starting empty, which is what lets the
//! supervisor restart a crashed shard with the *same* command line and
//! get the acknowledged state back.
//!
//! The server prints `LISTENING {port}` on stdout once the socket is
//! bound — with `--port 0` (the supervisor's choice, since a
//! just-killed port lingers in TIME_WAIT) that line is how the parent
//! learns the ephemeral port. Connections are served one thread each;
//! requests on a connection are handled strictly in order (the FIFO
//! that carries read-your-writes); the engine itself is the
//! concurrency limit (one mutex — the `ShardedEngine` router fans out
//! to worker threads internally).

use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use sccf_core::GlobalNeighborSnapshot;
use sccf_models::Fism;
use sccf_serving::api::{ServingApi, ServingError};
use sccf_serving::sharded::{DurabilityConfig, RouterKind, ShardedConfig, ShardedEngine};

use crate::proto::{read_message, write_message, Request, Response, PROTOCOL_VERSION};
use crate::world::WorldSpec;

/// The immutable facts a server reports in its Hello.
#[derive(Debug, Clone, Copy)]
struct ShardMeta {
    n_users: usize,
    n_items: usize,
    base: usize,
    count: usize,
    total: usize,
    durable: bool,
}

/// Everything `sccf serve-shard` takes on its command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeShardArgs {
    /// TCP port to bind on loopback; 0 = ephemeral (the port is
    /// announced via the `LISTENING {port}` stdout line).
    pub port: u16,
    /// First global shard of this server's window.
    pub base: usize,
    /// Local shard count.
    pub count: usize,
    /// Global ring size.
    pub total: usize,
    /// Global ring vnodes (0 = modulo ring).
    pub vnodes: usize,
    /// Durability directory; `None` serves in-memory only.
    pub dir: Option<PathBuf>,
    /// WAL records per fsync (with `dir`).
    pub fsync_every: u32,
    /// Auto-checkpoint cadence in events (0 = manual; with `dir`).
    pub checkpoint_every: u64,
    /// The shared world every fleet process rebuilds.
    pub world: WorldSpec,
    /// Pre-trained model weights (skips in-process training).
    pub model_file: Option<PathBuf>,
}

impl Default for ServeShardArgs {
    fn default() -> Self {
        Self {
            port: 0,
            base: 0,
            count: 1,
            total: 1,
            vnodes: 0,
            dir: None,
            fsync_every: 8,
            checkpoint_every: 0,
            world: WorldSpec::default(),
            model_file: None,
        }
    }
}

impl ServeShardArgs {
    /// Parse `--flag value` pairs (every flag takes a value).
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut pairs = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let key = args[i]
                .strip_prefix("--")
                .ok_or_else(|| format!("expected a flag, got `{}`", args[i]))?;
            let value = args
                .get(i + 1)
                .ok_or_else(|| format!("flag --{key} needs a value"))?;
            pairs.push((key.to_string(), value.clone()));
            i += 2;
        }
        let get = |key: &str| pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v.clone());
        fn parsed<T: std::str::FromStr>(
            get: &impl Fn(&str) -> Option<String>,
            key: &str,
            default: T,
        ) -> Result<T, String> {
            match get(key) {
                None => Ok(default),
                Some(v) => v.parse().map_err(|_| format!("bad value for --{key}: {v}")),
            }
        }
        let d = ServeShardArgs::default();
        Ok(Self {
            port: parsed(&get, "port", d.port)?,
            base: parsed(&get, "base", d.base)?,
            count: parsed(&get, "count", d.count)?,
            total: parsed(&get, "total", d.total)?,
            vnodes: parsed(&get, "vnodes", d.vnodes)?,
            dir: get("dir").map(PathBuf::from),
            fsync_every: parsed(&get, "fsync-every", d.fsync_every)?,
            checkpoint_every: parsed(&get, "checkpoint-every", d.checkpoint_every)?,
            world: WorldSpec::from_flag(get)?,
            model_file: get("model-file").map(PathBuf::from),
        })
    }

    /// The inverse of [`ServeShardArgs::parse`] — what a launcher
    /// passes to the child process (the `serve-shard` subcommand word
    /// itself is the launcher's business).
    pub fn to_args(&self) -> Vec<String> {
        let mut out = vec![
            "--port".into(),
            self.port.to_string(),
            "--base".into(),
            self.base.to_string(),
            "--count".into(),
            self.count.to_string(),
            "--total".into(),
            self.total.to_string(),
            "--vnodes".into(),
            self.vnodes.to_string(),
            "--fsync-every".into(),
            self.fsync_every.to_string(),
            "--checkpoint-every".into(),
            self.checkpoint_every.to_string(),
        ];
        if let Some(dir) = &self.dir {
            out.push("--dir".into());
            out.push(dir.display().to_string());
        }
        if let Some(f) = &self.model_file {
            out.push("--model-file".into());
            out.push(f.display().to_string());
        }
        out.extend(self.world.to_args());
        out
    }
}

/// Does `dir` already hold durability state to recover from?
fn has_checkpoints(dir: &std::path::Path) -> bool {
    std::fs::read_dir(dir).is_ok_and(|entries| {
        entries.flatten().any(|e| {
            e.file_name()
                .to_str()
                .is_some_and(|n| n.starts_with("ckpt-") && n.ends_with(".ckpt"))
        })
    })
}

/// CLI entry point: parse, build, serve. Blocks forever (the process
/// exits through [`Request::Shutdown`] or a signal).
pub fn serve_shard_main(args: &[String]) -> Result<(), String> {
    run_shard_server(ServeShardArgs::parse(args)?)
}

/// Build the slice engine (recovering if the durability directory has
/// history) and serve the wire protocol on loopback.
pub fn run_shard_server(args: ServeShardArgs) -> Result<(), String> {
    let model_bytes = match &args.model_file {
        Some(path) => {
            Some(std::fs::read(path).map_err(|e| format!("reading {}: {e}", path.display()))?)
        }
        None => None,
    };
    let world = args.world.build(model_bytes.as_deref())?;
    let meta = ShardMeta {
        n_users: world.n_users,
        n_items: world.n_items,
        base: args.base,
        count: args.count,
        total: args.total,
        durable: args.dir.is_some(),
    };
    let cfg = ShardedConfig {
        n_shards: args.count,
        queue_capacity: 256,
        router: RouterKind::Slice {
            total: args.total,
            base: args.base,
            vnodes: args.vnodes,
        },
    };
    let engine = match &args.dir {
        None => ShardedEngine::try_new(world.sccf, world.histories, cfg)
            .map_err(|e| format!("building slice engine: {e}"))?,
        Some(dir) => {
            let dcfg = DurabilityConfig {
                dir: dir.clone(),
                fsync_every: args.fsync_every,
                checkpoint_every_events: args.checkpoint_every,
            };
            if has_checkpoints(dir) {
                let (engine, report) = ShardedEngine::recover(world.sccf, cfg, dcfg)
                    .map_err(|e| format!("recovering from {}: {e}", dir.display()))?;
                eprintln!(
                    "recovered shards [{}, {}): {} checkpoints, watermark {}, {} replayed",
                    args.base,
                    args.base + args.count,
                    report.checkpoints_loaded,
                    report.watermark,
                    report.replayed.len()
                );
                engine
            } else {
                let mut engine = ShardedEngine::try_new(world.sccf, world.histories, cfg)
                    .map_err(|e| format!("building slice engine: {e}"))?;
                engine
                    .enable_durability(dcfg)
                    .map_err(|e| format!("arming durability in {}: {e}", dir.display()))?;
                engine
            }
        }
    };

    let listener = TcpListener::bind(("127.0.0.1", args.port))
        .map_err(|e| format!("binding 127.0.0.1:{}: {e}", args.port))?;
    let port = listener
        .local_addr()
        .map_err(|e| format!("local_addr: {e}"))?
        .port();
    // The launch contract: parents parse this exact line to learn an
    // ephemeral port.
    println!("LISTENING {port}");
    std::io::stdout().flush().ok();

    let engine = Arc::new(Mutex::new(engine));
    for stream in listener.incoming() {
        let Ok(stream) = stream else { continue };
        let engine = Arc::clone(&engine);
        std::thread::spawn(move || serve_connection(stream, engine, meta));
    }
    Ok(())
}

fn serve_connection(stream: TcpStream, engine: Arc<Mutex<ShardedEngine<Fism>>>, meta: ShardMeta) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    let mut writer = BufWriter::new(write_half);
    let mut buf = Vec::new();
    loop {
        match read_message(&mut reader, &mut buf) {
            Ok(Some(())) => {}
            // Clean close, torn stream or corrupt frame: this
            // connection is done (the engine is untouched — a corrupt
            // request was never decoded, let alone applied).
            Ok(None) | Err(_) => return,
        }
        let response = match Request::decode(&buf) {
            Err(e) => Response::Err(ServingError::from(e)),
            Ok(Request::Shutdown) => {
                // Quiesce, acknowledge, exit: flush so every queued
                // event reached its worker, sync so the WAL covers it.
                let mut engine = engine.lock().expect("engine lock");
                let result = engine.flush().and_then(|()| {
                    if meta.durable {
                        engine.wal_sync().map(|_| ())
                    } else {
                        Ok(())
                    }
                });
                let response = match result {
                    Ok(()) => Response::Done,
                    Err(e) => Response::Err(e),
                };
                let _ = write_message(&mut writer, &response.encode());
                let _ = writer.flush();
                std::process::exit(0);
            }
            Ok(req) => {
                let mut engine = engine.lock().expect("engine lock");
                handle_request(&mut engine, req, meta)
            }
        };
        if write_message(&mut writer, &response.encode())
            .and_then(|()| writer.flush())
            .is_err()
        {
            return;
        }
    }
}

/// One request against the engine. Pure dispatch: every engine error
/// becomes a [`Response::Err`] and the connection lives on.
fn handle_request(engine: &mut ShardedEngine<Fism>, req: Request, meta: ShardMeta) -> Response {
    fn ok_or_err<T>(r: Result<T, ServingError>, f: impl FnOnce(T) -> Response) -> Response {
        match r {
            Ok(v) => f(v),
            Err(e) => Response::Err(e),
        }
    }
    match req {
        Request::Hello { protocol } => {
            if protocol != PROTOCOL_VERSION {
                return Response::Err(ServingError::Wire(format!(
                    "client speaks protocol {protocol}, this server speaks {PROTOCOL_VERSION}"
                )));
            }
            Response::HelloOk {
                protocol: PROTOCOL_VERSION,
                n_users: meta.n_users as u64,
                n_items: meta.n_items as u64,
                base: meta.base as u64,
                count: meta.count as u64,
                total: meta.total as u64,
            }
        }
        Request::Ping => Response::Pong,
        Request::IngestBatch(events) => ok_or_err(engine.ingest_batch(&events), Response::Ingested),
        Request::Recommend { user, query } => {
            ok_or_err(engine.try_recommend(user, &query), Response::Slate)
        }
        Request::RecommendMany { users, query } => {
            ok_or_err(engine.recommend_many(&users, &query), Response::Slates)
        }
        Request::Flush => ok_or_err(engine.flush(), |()| Response::Done),
        Request::Stats => ok_or_err(engine.serving_stats(), |s| Response::Stats(Box::new(s))),
        Request::Snapshot => ok_or_err(engine.snapshot_state(), Response::Bytes),
        Request::Checkpoint => ok_or_err(engine.checkpoint(), Response::Watermark),
        Request::WalSync => ok_or_err(engine.wal_sync(), |_| Response::Done),
        Request::ExportUsers(users) => {
            ok_or_err(engine.export_user_states(&users), Response::Blobs)
        }
        Request::InstallTier(bytes) => match GlobalNeighborSnapshot::decode(&bytes) {
            Err(e) => Response::Err(ServingError::InvalidConfig(format!(
                "tier snapshot failed to decode: {e:?}"
            ))),
            Ok(snapshot) => ok_or_err(engine.install_global_tier(snapshot), |()| Response::Done),
        },
        Request::ClearTier => ok_or_err(engine.clear_global_tier(), |()| Response::Done),
        // Handled (with process exit) by the connection loop.
        Request::Shutdown => Response::Done,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_roundtrip_through_the_command_line() {
        let args = ServeShardArgs {
            port: 0,
            base: 2,
            count: 2,
            total: 4,
            vnodes: 32,
            dir: Some(PathBuf::from("/tmp/shard-a")),
            fsync_every: 4,
            checkpoint_every: 100,
            world: WorldSpec {
                n_users: 99,
                ..WorldSpec::default()
            },
            model_file: Some(PathBuf::from("/tmp/model.bin")),
        };
        let parsed = ServeShardArgs::parse(&args.to_args()).unwrap();
        assert_eq!(parsed, args);
        assert_eq!(
            ServeShardArgs::parse(&[]).unwrap(),
            ServeShardArgs::default()
        );
        assert!(ServeShardArgs::parse(&["--port".into()]).is_err());
        assert!(ServeShardArgs::parse(&["oops".into(), "1".into()]).is_err());
    }
}
