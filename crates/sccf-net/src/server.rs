//! The shard-server process role: `sccf serve-shard`.
//!
//! One process hosts a [`ShardedEngine`] **slice** — global shards
//! `[base, base + count)` of a `total`-shard ring
//! ([`RouterKind::Slice`]) — behind the wire protocol of
//! [`crate::proto`]. Startup is recovery-aware: pointed at a durability
//! directory that already holds a checkpoint chain, the server rebuilds
//! its slice via [`ShardedEngine::recover`] (checkpoints + WAL gap
//! replay) instead of starting empty, which is what lets the
//! supervisor restart a crashed shard with the *same* command line and
//! get the acknowledged state back.
//!
//! The server prints `LISTENING {port}` on stdout once the socket is
//! bound — with `--port 0` (the supervisor's choice, since a
//! just-killed port lingers in TIME_WAIT) that line is how the parent
//! learns the ephemeral port. Connections are served one thread each;
//! requests on a connection are handled strictly in order (the FIFO
//! that carries read-your-writes); the engine itself is the
//! concurrency limit (one mutex — the `ShardedEngine` router fans out
//! to worker threads internally).
//!
//! **Read-ahead.** Each connection splits into a *reader* thread and a
//! *processing* loop joined by a bounded channel (`--read-ahead` frames
//! deep, default 4; 0 restores the synchronous legacy loop). While the
//! engine works on request *k*, the reader is already pulling and
//! CRC-checking request *k+1* off the socket — so a pipelining router
//! overlaps its socket time with engine work instead of parking behind
//! it, and the socket buffer stops being the only pipeline. FIFO order
//! is untouched: the channel is ordered and responses are written by
//! the single processing loop in arrival order. The overlap actually
//! achieved is observable as `ServingStats::transport`
//! (`read_ahead_hits / requests`).

use std::io::{BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use sccf_core::GlobalNeighborSnapshot;
use sccf_models::Fism;
use sccf_serving::api::{ServingApi, ServingError, TransportStats};
use sccf_serving::sharded::{DurabilityConfig, RouterKind, ShardedConfig, ShardedEngine};

use crate::proto::{read_message, write_message, Request, Response, PROTOCOL_VERSION};
use crate::world::WorldSpec;

/// The immutable facts a server reports in its Hello.
#[derive(Debug, Clone, Copy)]
struct ShardMeta {
    n_users: usize,
    n_items: usize,
    base: usize,
    count: usize,
    total: usize,
    durable: bool,
    read_ahead: usize,
}

/// Process-wide transport counters, shared by every connection and
/// reported in [`Request::Stats`] responses as
/// [`TransportStats`].
#[derive(Default)]
struct TransportCounters {
    requests: AtomicU64,
    read_ahead_hits: AtomicU64,
    peak_read_ahead: AtomicU64,
}

impl TransportCounters {
    fn snapshot(&self, read_ahead_capacity: usize) -> TransportStats {
        TransportStats {
            requests: self.requests.load(Ordering::Relaxed),
            read_ahead_hits: self.read_ahead_hits.load(Ordering::Relaxed),
            peak_read_ahead: self.peak_read_ahead.load(Ordering::Relaxed),
            read_ahead_capacity: read_ahead_capacity as u64,
        }
    }

    fn observe_depth(&self, depth: u64) {
        self.peak_read_ahead.fetch_max(depth, Ordering::Relaxed);
    }
}

/// Everything `sccf serve-shard` takes on its command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeShardArgs {
    /// TCP port to bind on loopback; 0 = ephemeral (the port is
    /// announced via the `LISTENING {port}` stdout line).
    pub port: u16,
    /// First global shard of this server's window.
    pub base: usize,
    /// Local shard count.
    pub count: usize,
    /// Global ring size.
    pub total: usize,
    /// Global ring vnodes (0 = modulo ring).
    pub vnodes: usize,
    /// Durability directory; `None` serves in-memory only.
    pub dir: Option<PathBuf>,
    /// WAL records per fsync (with `dir`).
    pub fsync_every: u32,
    /// Auto-checkpoint cadence in events (0 = manual; with `dir`).
    pub checkpoint_every: u64,
    /// The shared world every fleet process rebuilds.
    pub world: WorldSpec,
    /// Pre-trained model weights (skips in-process training).
    pub model_file: Option<PathBuf>,
    /// Frames each connection's reader thread may buffer ahead of the
    /// engine (0 = synchronous legacy loop, no read-ahead).
    pub read_ahead: usize,
}

impl Default for ServeShardArgs {
    fn default() -> Self {
        Self {
            port: 0,
            base: 0,
            count: 1,
            total: 1,
            vnodes: 0,
            dir: None,
            fsync_every: 8,
            checkpoint_every: 0,
            world: WorldSpec::default(),
            model_file: None,
            read_ahead: 4,
        }
    }
}

impl ServeShardArgs {
    /// Parse `--flag value` pairs (every flag takes a value).
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut pairs = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let key = args[i]
                .strip_prefix("--")
                .ok_or_else(|| format!("expected a flag, got `{}`", args[i]))?;
            let value = args
                .get(i + 1)
                .ok_or_else(|| format!("flag --{key} needs a value"))?;
            pairs.push((key.to_string(), value.clone()));
            i += 2;
        }
        let get = |key: &str| pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v.clone());
        fn parsed<T: std::str::FromStr>(
            get: &impl Fn(&str) -> Option<String>,
            key: &str,
            default: T,
        ) -> Result<T, String> {
            match get(key) {
                None => Ok(default),
                Some(v) => v.parse().map_err(|_| format!("bad value for --{key}: {v}")),
            }
        }
        let d = ServeShardArgs::default();
        Ok(Self {
            port: parsed(&get, "port", d.port)?,
            base: parsed(&get, "base", d.base)?,
            count: parsed(&get, "count", d.count)?,
            total: parsed(&get, "total", d.total)?,
            vnodes: parsed(&get, "vnodes", d.vnodes)?,
            dir: get("dir").map(PathBuf::from),
            fsync_every: parsed(&get, "fsync-every", d.fsync_every)?,
            checkpoint_every: parsed(&get, "checkpoint-every", d.checkpoint_every)?,
            world: WorldSpec::from_flag(get)?,
            model_file: get("model-file").map(PathBuf::from),
            read_ahead: parsed(&get, "read-ahead", d.read_ahead)?,
        })
    }

    /// The inverse of [`ServeShardArgs::parse`] — what a launcher
    /// passes to the child process (the `serve-shard` subcommand word
    /// itself is the launcher's business).
    pub fn to_args(&self) -> Vec<String> {
        let mut out = vec![
            "--port".into(),
            self.port.to_string(),
            "--base".into(),
            self.base.to_string(),
            "--count".into(),
            self.count.to_string(),
            "--total".into(),
            self.total.to_string(),
            "--vnodes".into(),
            self.vnodes.to_string(),
            "--fsync-every".into(),
            self.fsync_every.to_string(),
            "--checkpoint-every".into(),
            self.checkpoint_every.to_string(),
            "--read-ahead".into(),
            self.read_ahead.to_string(),
        ];
        if let Some(dir) = &self.dir {
            out.push("--dir".into());
            out.push(dir.display().to_string());
        }
        if let Some(f) = &self.model_file {
            out.push("--model-file".into());
            out.push(f.display().to_string());
        }
        out.extend(self.world.to_args());
        out
    }
}

/// Does `dir` already hold durability state to recover from?
fn has_checkpoints(dir: &std::path::Path) -> bool {
    std::fs::read_dir(dir).is_ok_and(|entries| {
        entries.flatten().any(|e| {
            e.file_name()
                .to_str()
                .is_some_and(|n| n.starts_with("ckpt-") && n.ends_with(".ckpt"))
        })
    })
}

/// CLI entry point: parse, build, serve. Blocks forever (the process
/// exits through [`Request::Shutdown`] or a signal).
pub fn serve_shard_main(args: &[String]) -> Result<(), String> {
    run_shard_server(ServeShardArgs::parse(args)?)
}

/// Build the slice engine (recovering if the durability directory has
/// history) and serve the wire protocol on loopback.
pub fn run_shard_server(args: ServeShardArgs) -> Result<(), String> {
    let model_bytes = match &args.model_file {
        Some(path) => {
            Some(std::fs::read(path).map_err(|e| format!("reading {}: {e}", path.display()))?)
        }
        None => None,
    };
    let world = args.world.build(model_bytes.as_deref())?;
    let meta = ShardMeta {
        n_users: world.n_users,
        n_items: world.n_items,
        base: args.base,
        count: args.count,
        total: args.total,
        durable: args.dir.is_some(),
        read_ahead: args.read_ahead,
    };
    let cfg = ShardedConfig {
        n_shards: args.count,
        queue_capacity: 256,
        router: RouterKind::Slice {
            total: args.total,
            base: args.base,
            vnodes: args.vnodes,
        },
    };
    let engine = match &args.dir {
        None => ShardedEngine::try_new(world.sccf, world.histories, cfg)
            .map_err(|e| format!("building slice engine: {e}"))?,
        Some(dir) => {
            let dcfg = DurabilityConfig {
                dir: dir.clone(),
                fsync_every: args.fsync_every,
                checkpoint_every_events: args.checkpoint_every,
            };
            if has_checkpoints(dir) {
                let (engine, report) = ShardedEngine::recover(world.sccf, cfg, dcfg)
                    .map_err(|e| format!("recovering from {}: {e}", dir.display()))?;
                eprintln!(
                    "recovered shards [{}, {}): {} checkpoints, watermark {}, {} replayed",
                    args.base,
                    args.base + args.count,
                    report.checkpoints_loaded,
                    report.watermark,
                    report.replayed.len()
                );
                engine
            } else {
                let mut engine = ShardedEngine::try_new(world.sccf, world.histories, cfg)
                    .map_err(|e| format!("building slice engine: {e}"))?;
                engine
                    .enable_durability(dcfg)
                    .map_err(|e| format!("arming durability in {}: {e}", dir.display()))?;
                engine
            }
        }
    };

    let listener = TcpListener::bind(("127.0.0.1", args.port))
        .map_err(|e| format!("binding 127.0.0.1:{}: {e}", args.port))?;
    let port = listener
        .local_addr()
        .map_err(|e| format!("local_addr: {e}"))?
        .port();
    // The launch contract: parents parse this exact line to learn an
    // ephemeral port.
    println!("LISTENING {port}");
    std::io::stdout().flush().ok();

    let engine = Arc::new(Mutex::new(engine));
    let counters = Arc::new(TransportCounters::default());
    for stream in listener.incoming() {
        let Ok(stream) = stream else { continue };
        // Responses are single framed writes; with pipelined clients the
        // next response must not queue behind Nagle waiting for an ACK.
        stream.set_nodelay(true).ok();
        let engine = Arc::clone(&engine);
        let counters = Arc::clone(&counters);
        std::thread::spawn(move || serve_connection(stream, engine, meta, counters));
    }
    Ok(())
}

/// Process one decoded-frame payload: dispatch to the engine, write
/// the framed response. Returns `false` when the connection is done
/// (write failure). `Request::Shutdown` exits the process after
/// acknowledging, exactly as before — any read-ahead frames behind it
/// die with the process, which is the same outcome as a kill arriving
/// between two requests.
fn process_payload(
    payload: &[u8],
    engine: &Mutex<ShardedEngine<Fism>>,
    meta: ShardMeta,
    counters: &TransportCounters,
    writer: &mut BufWriter<TcpStream>,
) -> bool {
    counters.requests.fetch_add(1, Ordering::Relaxed);
    let response = match Request::decode(payload) {
        Err(e) => Response::Err(ServingError::from(e)),
        Ok(Request::Shutdown) => {
            // Quiesce, acknowledge, exit: flush so every queued
            // event reached its worker, sync so the WAL covers it.
            let mut engine = engine.lock().expect("engine lock");
            let result = engine.flush().and_then(|()| {
                if meta.durable {
                    engine.wal_sync().map(|_| ())
                } else {
                    Ok(())
                }
            });
            let response = match result {
                Ok(()) => Response::Done,
                Err(e) => Response::Err(e),
            };
            let _ = write_message(writer, &response.encode());
            let _ = writer.flush();
            std::process::exit(0);
        }
        Ok(req) => {
            let mut engine = engine.lock().expect("engine lock");
            handle_request(&mut engine, req, meta, counters)
        }
    };
    write_message(writer, &response.encode())
        .and_then(|()| writer.flush())
        .is_ok()
}

fn serve_connection(
    stream: TcpStream,
    engine: Arc<Mutex<ShardedEngine<Fism>>>,
    meta: ShardMeta,
    counters: Arc<TransportCounters>,
) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    let mut writer = BufWriter::new(write_half);

    if meta.read_ahead == 0 {
        // Synchronous legacy loop: read one, process one.
        let mut buf = Vec::new();
        loop {
            match read_message(&mut reader, &mut buf) {
                Ok(Some(())) => {}
                // Clean close, torn stream or corrupt frame: this
                // connection is done (the engine is untouched — a
                // corrupt request was never decoded, let alone applied).
                Ok(None) | Err(_) => return,
            }
            if !process_payload(&buf, &engine, meta, &counters, &mut writer) {
                return;
            }
        }
    }

    // Pipelined loop: a reader thread pulls and CRC-checks up to
    // `read_ahead` frames ahead of the engine. The bounded channel is
    // the depth limit; beyond it, backpressure falls back to the
    // socket buffer as before.
    let (tx, rx) = crossbeam::channel::bounded::<Vec<u8>>(meta.read_ahead);
    let reader_counters = Arc::clone(&counters);
    let reader_thread = std::thread::spawn(move || {
        let mut buf = Vec::new();
        loop {
            match read_message(&mut reader, &mut buf) {
                Ok(Some(())) => {
                    if tx.send(std::mem::take(&mut buf)).is_err() {
                        return; // processing side is gone
                    }
                    reader_counters.observe_depth(tx.len() as u64);
                }
                // Clean close, torn stream or corrupt frame: stop
                // reading; queued requests still get processed.
                Ok(None) | Err(_) => return,
            }
        }
    });
    loop {
        // A frame already buffered means its socket read overlapped the
        // previous request's engine work — count the pipeline hit.
        let payload = match rx.try_recv() {
            Ok(p) => {
                counters.read_ahead_hits.fetch_add(1, Ordering::Relaxed);
                p
            }
            Err(crossbeam::channel::TryRecvError::Empty) => match rx.recv() {
                Ok(p) => p,
                Err(_) => break, // reader finished and the queue is drained
            },
            Err(crossbeam::channel::TryRecvError::Disconnected) => break,
        };
        if !process_payload(&payload, &engine, meta, &counters, &mut writer) {
            break;
        }
    }
    let _ = reader_thread.join();
}

/// One request against the engine. Pure dispatch: every engine error
/// becomes a [`Response::Err`] and the connection lives on.
fn handle_request(
    engine: &mut ShardedEngine<Fism>,
    req: Request,
    meta: ShardMeta,
    counters: &TransportCounters,
) -> Response {
    fn ok_or_err<T>(r: Result<T, ServingError>, f: impl FnOnce(T) -> Response) -> Response {
        match r {
            Ok(v) => f(v),
            Err(e) => Response::Err(e),
        }
    }
    match req {
        Request::Hello { protocol } => {
            if protocol != PROTOCOL_VERSION {
                return Response::Err(ServingError::Wire(format!(
                    "client speaks protocol {protocol}, this server speaks {PROTOCOL_VERSION}"
                )));
            }
            Response::HelloOk {
                protocol: PROTOCOL_VERSION,
                n_users: meta.n_users as u64,
                n_items: meta.n_items as u64,
                base: meta.base as u64,
                count: meta.count as u64,
                total: meta.total as u64,
            }
        }
        Request::Ping => Response::Pong,
        Request::IngestBatch(events) => ok_or_err(engine.ingest_batch(&events), Response::Ingested),
        Request::Recommend { user, query } => {
            ok_or_err(engine.try_recommend(user, &query), Response::Slate)
        }
        Request::RecommendMany { users, query } => {
            ok_or_err(engine.recommend_many(&users, &query), Response::Slates)
        }
        Request::Flush => ok_or_err(engine.flush(), |()| Response::Done),
        Request::Stats => ok_or_err(engine.serving_stats(), |mut s| {
            s.transport = counters.snapshot(meta.read_ahead);
            Response::Stats(Box::new(s))
        }),
        Request::Snapshot => ok_or_err(engine.snapshot_state(), Response::Bytes),
        Request::Checkpoint => ok_or_err(engine.checkpoint(), Response::Watermark),
        Request::WalSync => ok_or_err(engine.wal_sync(), |_| Response::Done),
        Request::ExportUsers(users) => {
            ok_or_err(engine.export_user_states(&users), Response::Blobs)
        }
        Request::InstallTier(bytes) => match GlobalNeighborSnapshot::decode(&bytes) {
            Err(e) => Response::Err(ServingError::InvalidConfig(format!(
                "tier snapshot failed to decode: {e:?}"
            ))),
            Ok(snapshot) => ok_or_err(engine.install_global_tier(snapshot), |()| Response::Done),
        },
        Request::ClearTier => ok_or_err(engine.clear_global_tier(), |()| Response::Done),
        // Handled (with process exit) by the connection loop.
        Request::Shutdown => Response::Done,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_roundtrip_through_the_command_line() {
        let args = ServeShardArgs {
            port: 0,
            base: 2,
            count: 2,
            total: 4,
            vnodes: 32,
            dir: Some(PathBuf::from("/tmp/shard-a")),
            fsync_every: 4,
            checkpoint_every: 100,
            world: WorldSpec {
                n_users: 99,
                ..WorldSpec::default()
            },
            model_file: Some(PathBuf::from("/tmp/model.bin")),
            read_ahead: 8,
        };
        let parsed = ServeShardArgs::parse(&args.to_args()).unwrap();
        assert_eq!(parsed, args);
        assert_eq!(
            ServeShardArgs::parse(&[]).unwrap(),
            ServeShardArgs::default()
        );
        assert!(ServeShardArgs::parse(&["--port".into()]).is_err());
        assert!(ServeShardArgs::parse(&["oops".into(), "1".into()]).is_err());
    }
}
