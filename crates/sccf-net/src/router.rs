//! The fleet's front end: a [`FleetRouter`] that speaks [`ServingApi`]
//! over the wire.
//!
//! The router holds one persistent [`Connection`] per fleet member and
//! the **global** [`HashRing`] of the topology — the same ring every
//! member slices — so its user→member routing agrees with each
//! server's user→shard routing by construction. Batched entry points
//! group work per member (one framed message per member per batch, not
//! per event), and per-user read-your-writes holds because one user
//! maps to one member and each connection is FIFO.
//!
//! On top of the `ServingApi` surface the router exposes the
//! fleet-orchestration verbs the in-process engine does on its own:
//! checkpoint/WAL-sync fan-outs, whole-fleet snapshot merging
//! ([`merge_fleet_snapshots`]), user-state collection and frozen-tier
//! installs, and [`FleetRouter::reconnect`] — the supervisor's hook for
//! re-pointing a member at its restarted process.

use sccf_core::EventTiming;
use sccf_serving::api::{RecQuery, RecResponse, ServingApi, ServingError, ServingStats};
use sccf_serving::fleet::{merge_fleet_snapshots, merge_fleet_stats, FleetTopology};
use sccf_serving::ring::HashRing;

use crate::client::{unexpected, Connection};
use crate::proto::{Request, Response};

/// A connected fleet front end. See the module docs.
pub struct FleetRouter {
    topology: FleetTopology,
    ring: HashRing,
    conns: Vec<Connection>,
    n_users: usize,
    n_items: usize,
}

impl FleetRouter {
    /// Connect to every member of `topology` and handshake. Rejects a
    /// member whose announced window or population disagrees with the
    /// topology — a mis-launched fleet fails here, not with silently
    /// split users.
    pub fn connect(topology: FleetTopology) -> Result<Self, ServingError> {
        let mut conns = Vec::with_capacity(topology.members().len());
        let mut fleet_users: Option<(usize, usize)> = None;
        for (m, member) in topology.members().iter().enumerate() {
            let mut conn = Connection::connect(member.addr.as_str())?;
            let (n_users, n_items, base, count, total) = conn.hello()?;
            if (base, count, total) != (member.base, member.count, topology.total_shards()) {
                return Err(ServingError::Wire(format!(
                    "member {m} at {} announced window [{base}, {base}+{count}) of {total} \
                     shards; the topology expects [{}, {}+{}) of {}",
                    member.addr,
                    member.base,
                    member.base,
                    member.count,
                    topology.total_shards()
                )));
            }
            match fleet_users {
                None => fleet_users = Some((n_users, n_items)),
                Some(expect) if expect != (n_users, n_items) => {
                    return Err(ServingError::Wire(format!(
                        "member {m} serves a {n_users}×{n_items} world; member 0 serves {}×{}",
                        expect.0, expect.1
                    )));
                }
                Some(_) => {}
            }
            conns.push(conn);
        }
        let (n_users, n_items) = fleet_users.expect("topology has ≥ 1 member");
        Ok(Self {
            ring: topology.global_ring(),
            topology,
            conns,
            n_users,
            n_items,
        })
    }

    pub fn topology(&self) -> &FleetTopology {
        &self.topology
    }

    /// The member index owning `user` on the global ring.
    pub fn owner_of(&self, user: u32) -> usize {
        self.topology.member_of_shard(self.ring.route(user))
    }

    /// Re-point member `m` at `addr` (a restarted process) and redo the
    /// handshake. The old connection is dropped; in-flight state is the
    /// durability layer's problem, which is exactly what the supervisor
    /// restart path relies on.
    pub fn reconnect(&mut self, m: usize, addr: &str) -> Result<(), ServingError> {
        let member = self
            .topology
            .members()
            .get(m)
            .ok_or_else(|| ServingError::Wire(format!("no fleet member {m} to reconnect")))?;
        let mut conn = Connection::connect(addr)?;
        let (n_users, n_items, base, count, total) = conn.hello()?;
        if (base, count, total) != (member.base, member.count, self.topology.total_shards()) {
            return Err(ServingError::Wire(format!(
                "reconnected member {m} announced window [{base}, {base}+{count}) of {total}; \
                 expected [{}, {}+{})",
                member.base, member.base, member.count
            )));
        }
        if (n_users, n_items) != (self.n_users, self.n_items) {
            return Err(ServingError::Wire(format!(
                "reconnected member {m} serves a {n_users}×{n_items} world; the fleet serves {}×{}",
                self.n_users, self.n_items
            )));
        }
        self.conns[m] = conn;
        Ok(())
    }

    fn check_user(&self, user: u32) -> Result<(), ServingError> {
        if user as usize >= self.n_users {
            return Err(ServingError::UnknownUser {
                user,
                n_users: self.n_users,
            });
        }
        Ok(())
    }

    fn check_item(&self, item: u32) -> Result<(), ServingError> {
        if item as usize >= self.n_items {
            return Err(ServingError::UnknownItem {
                item,
                n_items: self.n_items,
            });
        }
        Ok(())
    }

    /// Group `users` per owning member, preserving input positions.
    fn group_by_owner(&self, users: &[u32]) -> Vec<(usize, Vec<u32>, Vec<usize>)> {
        let mut groups: Vec<(Vec<u32>, Vec<usize>)> =
            vec![(Vec::new(), Vec::new()); self.conns.len()];
        for (pos, &u) in users.iter().enumerate() {
            let m = self.owner_of(u);
            groups[m].0.push(u);
            groups[m].1.push(pos);
        }
        groups
            .into_iter()
            .enumerate()
            .filter(|(_, (us, _))| !us.is_empty())
            .map(|(m, (us, ps))| (m, us, ps))
            .collect()
    }

    /// Send `req` to every member, expecting [`Response::Done`].
    fn fan_out_done(&mut self, req: &Request) -> Result<(), ServingError> {
        for conn in &mut self.conns {
            match conn.call(req)? {
                Response::Done => {}
                other => return Err(unexpected("Done", &other)),
            }
        }
        Ok(())
    }

    /// Write an incremental checkpoint on every member; returns each
    /// member's checkpoint epoch (members advance independently — each
    /// numbers only its own checkpoints).
    pub fn checkpoint_all(&mut self) -> Result<Vec<u64>, ServingError> {
        let mut marks = Vec::with_capacity(self.conns.len());
        for conn in &mut self.conns {
            match conn.call(&Request::Checkpoint)? {
                Response::Watermark(w) => marks.push(w),
                other => return Err(unexpected("Watermark", &other)),
            }
        }
        Ok(marks)
    }

    /// Force-fsync every member's WALs.
    pub fn wal_sync_all(&mut self) -> Result<(), ServingError> {
        self.fan_out_done(&Request::WalSync)
    }

    /// Gracefully stop every member: each flushes, syncs, acknowledges
    /// and exits. Connections are dropped afterwards; the router is
    /// consumed because nothing answers it anymore.
    pub fn shutdown_all(mut self) -> Result<(), ServingError> {
        self.fan_out_done(&Request::Shutdown)
    }

    /// Collect migration blobs ([`sccf_core::encode_user_state`]) for
    /// `users`, each from its owning member, in input order — the
    /// cross-process building block for fleet-level tier refreshes.
    pub fn export_user_states(&mut self, users: &[u32]) -> Result<Vec<Vec<u8>>, ServingError> {
        for &u in users {
            self.check_user(u)?;
        }
        let groups = self.group_by_owner(users);
        let mut out: Vec<Vec<u8>> = vec![Vec::new(); users.len()];
        for (m, members_users, positions) in groups {
            match self.conns[m].call(&Request::ExportUsers(members_users))? {
                Response::Blobs(blobs) => {
                    if blobs.len() != positions.len() {
                        return Err(ServingError::Wire(format!(
                            "member {m} returned {} blobs for {} users",
                            blobs.len(),
                            positions.len()
                        )));
                    }
                    for (pos, blob) in positions.into_iter().zip(blobs) {
                        out[pos] = blob;
                    }
                }
                other => return Err(unexpected("Blobs", &other)),
            }
        }
        Ok(out)
    }

    /// Install an encoded [`sccf_core::GlobalNeighborSnapshot`] as the
    /// frozen tier on every member — the whole fleet serves the same
    /// two-tier neighborhoods afterwards.
    pub fn install_tier_bytes(&mut self, bytes: &[u8]) -> Result<(), ServingError> {
        self.fan_out_done(&Request::InstallTier(bytes.to_vec()))
    }

    /// Drop the frozen tier on every member.
    pub fn clear_tier(&mut self) -> Result<(), ServingError> {
        self.fan_out_done(&Request::ClearTier)
    }
}

impl ServingApi for FleetRouter {
    fn try_ingest(&mut self, user: u32, item: u32) -> Result<Option<EventTiming>, ServingError> {
        self.check_user(user)?;
        self.check_item(item)?;
        let m = self.owner_of(user);
        match self.conns[m].call(&Request::IngestBatch(vec![(user, item)]))? {
            Response::Ingested(_) => Ok(None),
            other => Err(unexpected("Ingested", &other)),
        }
    }

    fn ingest_batch(&mut self, events: &[(u32, u32)]) -> Result<u64, ServingError> {
        // Validate everything before sending anything: the batch is
        // atomic for validation failures even though it spans members.
        for &(user, item) in events {
            self.check_user(user)?;
            self.check_item(item)?;
        }
        let mut groups: Vec<Vec<(u32, u32)>> = vec![Vec::new(); self.conns.len()];
        for &(user, item) in events {
            groups[self.owner_of(user)].push((user, item));
        }
        let mut total = 0u64;
        for (m, group) in groups.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            match self.conns[m].call(&Request::IngestBatch(group))? {
                Response::Ingested(n) => total += n,
                other => return Err(unexpected("Ingested", &other)),
            }
        }
        Ok(total)
    }

    fn try_recommend(&mut self, user: u32, query: &RecQuery) -> Result<RecResponse, ServingError> {
        self.check_user(user)?;
        let m = self.owner_of(user);
        match self.conns[m].call(&Request::Recommend {
            user,
            query: query.clone(),
        })? {
            Response::Slate(slate) => Ok(slate),
            other => Err(unexpected("Slate", &other)),
        }
    }

    fn recommend_many(
        &mut self,
        users: &[u32],
        query: &RecQuery,
    ) -> Result<Vec<RecResponse>, ServingError> {
        for &u in users {
            self.check_user(u)?;
        }
        let groups = self.group_by_owner(users);
        let mut out: Vec<Option<RecResponse>> = vec![None; users.len()];
        for (m, member_users, positions) in groups {
            let n_asked = member_users.len();
            match self.conns[m].call(&Request::RecommendMany {
                users: member_users,
                query: query.clone(),
            })? {
                Response::Slates(slates) => {
                    if slates.len() != n_asked {
                        return Err(ServingError::Wire(format!(
                            "member {m} returned {} slates for {n_asked} users",
                            slates.len()
                        )));
                    }
                    for (pos, slate) in positions.into_iter().zip(slates) {
                        out[pos] = Some(slate);
                    }
                }
                other => return Err(unexpected("Slates", &other)),
            }
        }
        Ok(out
            .into_iter()
            .map(|s| s.expect("every position grouped exactly once"))
            .collect())
    }

    fn flush(&mut self) -> Result<(), ServingError> {
        self.fan_out_done(&Request::Flush)
    }

    fn serving_stats(&mut self) -> Result<ServingStats, ServingError> {
        let mut parts = Vec::with_capacity(self.conns.len());
        for (m, conn) in self.conns.iter_mut().enumerate() {
            match conn.call(&Request::Stats)? {
                Response::Stats(stats) => parts.push((m, *stats)),
                other => return Err(unexpected("Stats", &other)),
            }
        }
        Ok(merge_fleet_stats(&self.topology, parts))
    }

    fn snapshot_state(&mut self) -> Result<Vec<u8>, ServingError> {
        let mut parts = Vec::with_capacity(self.conns.len());
        for (m, conn) in self.conns.iter_mut().enumerate() {
            match conn.call(&Request::Snapshot)? {
                Response::Bytes(bytes) => parts.push((m, bytes)),
                other => return Err(unexpected("Bytes", &other)),
            }
        }
        merge_fleet_snapshots(&self.topology, &parts)
    }
}
