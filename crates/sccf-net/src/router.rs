//! The fleet's front end: a [`FleetRouter`] that speaks [`ServingApi`]
//! over the wire.
//!
//! The router holds one persistent [`Connection`] per fleet member and
//! the **global** [`HashRing`] of the topology — the same ring every
//! member slices — so its user→member routing agrees with each
//! server's user→shard routing by construction. Batched entry points
//! group work per member (one framed message per member per batch, not
//! per event), and per-user read-your-writes holds because one user
//! maps to one member and each connection is FIFO.
//!
//! **Fan-outs are two-phase and overlapped.** Every multi-member
//! operation first *sends to all* members (nonblocking, readiness-driven
//! via the vendored `mio` shim, so one slow member cannot
//! head-of-line-block writes to the others), then *collects in member
//! order*. All members work concurrently; wall-clock cost is ≈ the
//! slowest member's round trip instead of the sum of all of them.
//! Setting the pipeline depth to 1 ([`FleetRouter::set_pipeline_depth`],
//! or `SCCF_NET_DEPTH=1` at connect time) restores the legacy strictly
//! sequential member-by-member transport — the slow reference the
//! pipelined path is pinned bit-identical against.
//!
//! Control-plane fan-outs (flush, WAL sync, checkpoint, tier installs,
//! shutdown) are **best-effort across all members**: every member is
//! contacted even after an earlier member fails, and the failures come
//! back as one combined [`ServingError`] — a shutdown can no longer
//! leak live processes because member 0's socket died first.
//!
//! On top of the `ServingApi` surface the router exposes the
//! fleet-orchestration verbs the in-process engine does on its own:
//! checkpoint/WAL-sync fan-outs, whole-fleet snapshot merging
//! ([`merge_fleet_snapshots`]), user-state collection and frozen-tier
//! installs, pipelined multi-batch ingest
//! ([`FleetRouter::ingest_batches`]: up to `depth` batches in flight
//! per connection), and [`FleetRouter::reconnect`] — the supervisor's
//! hook for re-pointing a member at its restarted process.

use sccf_core::EventTiming;
use sccf_serving::api::{RecQuery, RecResponse, ServingApi, ServingError, ServingStats};
use sccf_serving::fleet::{merge_fleet_snapshots, merge_fleet_stats, FleetTopology};
use sccf_serving::ring::HashRing;

use crate::client::{unexpected, Connection};
use crate::proto::{Request, Response};

/// Default number of requests the router keeps in flight per
/// connection when pipelining multi-batch streams.
pub const DEFAULT_PIPELINE_DEPTH: usize = 4;

/// A connected fleet front end. See the module docs.
pub struct FleetRouter {
    topology: FleetTopology,
    ring: HashRing,
    conns: Vec<Connection>,
    n_users: usize,
    n_items: usize,
    /// Max in-flight requests per connection; 1 = legacy sequential.
    depth: usize,
    /// Per member: responses abandoned by a reconnect-while-in-flight.
    /// The next collect (or any other operation) reports them as a
    /// typed [`ServingError::Wire`] instead of hanging on a socket
    /// that no longer exists.
    lost_in_flight: Vec<u64>,
    /// Events acknowledged by acks drained early (depth control)
    /// before [`FleetRouter::ingest_collect`] is called.
    acked_events: u64,
}

impl FleetRouter {
    /// Connect to every member of `topology` and handshake. Rejects a
    /// member whose announced window or population disagrees with the
    /// topology — a mis-launched fleet fails here, not with silently
    /// split users. The pipeline depth starts at `SCCF_NET_DEPTH` when
    /// set (min 1), else [`DEFAULT_PIPELINE_DEPTH`].
    pub fn connect(topology: FleetTopology) -> Result<Self, ServingError> {
        let mut conns = Vec::with_capacity(topology.members().len());
        let mut fleet_users: Option<(usize, usize)> = None;
        for (m, member) in topology.members().iter().enumerate() {
            let mut conn = Connection::connect(member.addr.as_str())?;
            let (n_users, n_items, base, count, total) = conn.hello()?;
            if (base, count, total) != (member.base, member.count, topology.total_shards()) {
                return Err(ServingError::Wire(format!(
                    "member {m} at {} announced window [{base}, {base}+{count}) of {total} \
                     shards; the topology expects [{}, {}+{}) of {}",
                    member.addr,
                    member.base,
                    member.base,
                    member.count,
                    topology.total_shards()
                )));
            }
            match fleet_users {
                None => fleet_users = Some((n_users, n_items)),
                Some(expect) if expect != (n_users, n_items) => {
                    return Err(ServingError::Wire(format!(
                        "member {m} serves a {n_users}×{n_items} world; member 0 serves {}×{}",
                        expect.0, expect.1
                    )));
                }
                Some(_) => {}
            }
            conns.push(conn);
        }
        let (n_users, n_items) = fleet_users.expect("topology has ≥ 1 member");
        let depth = std::env::var("SCCF_NET_DEPTH")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(DEFAULT_PIPELINE_DEPTH)
            .max(1);
        let n_members = conns.len();
        Ok(Self {
            ring: topology.global_ring(),
            topology,
            conns,
            n_users,
            n_items,
            depth,
            lost_in_flight: vec![0; n_members],
            acked_events: 0,
        })
    }

    pub fn topology(&self) -> &FleetTopology {
        &self.topology
    }

    /// Max requests in flight per connection (1 = legacy sequential).
    pub fn pipeline_depth(&self) -> usize {
        self.depth
    }

    /// Set the per-connection pipeline depth. Depth 1 restores the
    /// strictly sequential member-by-member transport.
    pub fn set_pipeline_depth(&mut self, depth: usize) {
        self.depth = depth.max(1);
    }

    /// Total responses currently owed across all connections.
    pub fn in_flight(&self) -> usize {
        self.conns.iter().map(Connection::in_flight).sum()
    }

    /// The member index owning `user` on the global ring.
    pub fn owner_of(&self, user: u32) -> usize {
        self.topology.member_of_shard(self.ring.route(user))
    }

    /// Re-point member `m` at `addr` (a restarted process) and redo the
    /// handshake. The old connection is dropped; durable state is the
    /// durability layer's problem, which is exactly what the supervisor
    /// restart path relies on. Responses still in flight on the old
    /// connection are recorded as *lost*: the pending collect fails
    /// with a typed [`ServingError::Wire`] instead of hanging on a
    /// socket that no longer exists.
    pub fn reconnect(&mut self, m: usize, addr: &str) -> Result<(), ServingError> {
        let member = self
            .topology
            .members()
            .get(m)
            .ok_or_else(|| ServingError::Wire(format!("no fleet member {m} to reconnect")))?;
        let mut conn = Connection::connect(addr)?;
        let (n_users, n_items, base, count, total) = conn.hello()?;
        if (base, count, total) != (member.base, member.count, self.topology.total_shards()) {
            return Err(ServingError::Wire(format!(
                "reconnected member {m} announced window [{base}, {base}+{count}) of {total}; \
                 expected [{}, {}+{})",
                member.base, member.base, member.count
            )));
        }
        if (n_users, n_items) != (self.n_users, self.n_items) {
            return Err(ServingError::Wire(format!(
                "reconnected member {m} serves a {n_users}×{n_items} world; the fleet serves {}×{}",
                self.n_users, self.n_items
            )));
        }
        let abandoned = self.conns[m].in_flight();
        if abandoned > 0 {
            self.lost_in_flight[m] += abandoned as u64;
        }
        self.conns[m] = conn;
        Ok(())
    }

    fn check_user(&self, user: u32) -> Result<(), ServingError> {
        if user as usize >= self.n_users {
            return Err(ServingError::UnknownUser {
                user,
                n_users: self.n_users,
            });
        }
        Ok(())
    }

    fn check_item(&self, item: u32) -> Result<(), ServingError> {
        if item as usize >= self.n_items {
            return Err(ServingError::UnknownItem {
                item,
                n_items: self.n_items,
            });
        }
        Ok(())
    }

    /// Group `users` per owning member, preserving input positions.
    fn group_by_owner(&self, users: &[u32]) -> Vec<(usize, Vec<u32>, Vec<usize>)> {
        let mut groups: Vec<(Vec<u32>, Vec<usize>)> =
            vec![(Vec::new(), Vec::new()); self.conns.len()];
        for (pos, &u) in users.iter().enumerate() {
            let m = self.owner_of(u);
            groups[m].0.push(u);
            groups[m].1.push(pos);
        }
        groups
            .into_iter()
            .enumerate()
            .filter(|(_, (us, _))| !us.is_empty())
            .map(|(m, (us, ps))| (m, us, ps))
            .collect()
    }

    /// If a reconnect abandoned in-flight responses, surface them as a
    /// typed error exactly once and reset the counters.
    fn take_lost(&mut self) -> Option<ServingError> {
        if self.lost_in_flight.iter().all(|&n| n == 0) {
            return None;
        }
        let detail: Vec<String> = self
            .lost_in_flight
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(m, &n)| format!("member {m}: {n}"))
            .collect();
        self.lost_in_flight.iter_mut().for_each(|n| *n = 0);
        self.acked_events = 0;
        Some(ServingError::Wire(format!(
            "in-flight response(s) lost to reconnect ({})",
            detail.join(", ")
        )))
    }

    /// Every operation except the ingest-pipeline primitives requires
    /// an idle wire: no lost responses and no *healthy* connection with
    /// responses still owed (they would misalign the FIFO pairing). A
    /// poisoned connection can never deliver a response, so its
    /// in-flight count is not a hazard here — per-member operations on
    /// it fail typed at enqueue/recv instead, which is what lets
    /// best-effort control fan-outs still reach the live members.
    fn ensure_idle(&mut self, op: &str) -> Result<(), ServingError> {
        if let Some(err) = self.take_lost() {
            return Err(err);
        }
        for (m, conn) in self.conns.iter().enumerate() {
            if conn.in_flight() == 0 || conn.poison_reason().is_some() {
                continue;
            }
            return Err(ServingError::Wire(format!(
                "{op} while {} pipelined response(s) are in flight on member {m}; \
                 collect them first",
                conn.in_flight()
            )));
        }
        Ok(())
    }

    /// Push every member's pending outbox bytes to the kernel,
    /// overlapped: nonblocking writes driven by a readiness loop, so a
    /// member with a full socket buffer never delays the others' sends.
    /// Write failures poison the individual connection and surface at
    /// its `recv`; this function itself only fails on setup errors
    /// that affect no connection state.
    fn flush_overlapped(&mut self, members: &[usize]) {
        let mut pending: Vec<usize> = Vec::with_capacity(members.len());
        for &m in members {
            let conn = &mut self.conns[m];
            if conn.poison_reason().is_some() || conn.pending_bytes() == 0 {
                continue;
            }
            // Optimistic first pass: loopback-sized sends usually fit
            // the socket buffer outright.
            match conn.try_flush_outbox() {
                Ok(true) | Err(_) => {}
                Ok(false) => pending.push(m),
            }
        }
        if !pending.is_empty() {
            match mio::Poll::new() {
                Err(_) => {
                    // No poller: fall back to blocking flushes. Writes
                    // serialize but correctness holds.
                    for &m in &pending {
                        let _ = self.conns[m].flush_outbox();
                    }
                    pending.clear();
                }
                Ok(mut poll) => {
                    let mut registered: Vec<usize> = Vec::with_capacity(pending.len());
                    for &m in &pending {
                        if poll
                            .register(
                                self.conns[m].socket(),
                                mio::Token(m),
                                mio::Interest::WRITABLE,
                            )
                            .is_ok()
                        {
                            registered.push(m);
                        }
                    }
                    let mut events = mio::Events::with_capacity(pending.len().max(4));
                    while !pending.is_empty() {
                        if poll
                            .poll(&mut events, Some(std::time::Duration::from_millis(100)))
                            .is_err()
                        {
                            // Poller died mid-loop: finish blocking.
                            for &m in &pending {
                                let _ = self.conns[m].flush_outbox();
                            }
                            break;
                        }
                        // Retry every still-pending member (level-triggered
                        // readiness; non-writable sockets cost one EAGAIN).
                        pending.retain(|&m| match self.conns[m].try_flush_outbox() {
                            Ok(false) => true,
                            Ok(true) | Err(_) => {
                                if registered.contains(&m) {
                                    let _ = poll.deregister(self.conns[m].socket());
                                    registered.retain(|&r| r != m);
                                }
                                false
                            }
                        });
                    }
                    for &m in &registered {
                        let _ = poll.deregister(self.conns[m].socket());
                    }
                }
            }
        }
        // Leave every touched connection in blocking mode for the
        // collect phase.
        for &m in members {
            let _ = self.conns[m].set_nonblocking(false);
        }
    }

    /// Two-phase fan-out: send one request to each listed member (all
    /// sends overlapped), then collect one response per member in
    /// list order, unwrapping remote errors. On failure every owed
    /// response is still consumed (or its connection poisoned), so no
    /// stale response can bleed into a later operation; the first
    /// error wins. Depth 1 runs the legacy strictly sequential
    /// round-trip-per-member transport instead.
    fn scatter_gather(&mut self, reqs: &[(usize, Request)]) -> Result<Vec<Response>, ServingError> {
        if self.depth <= 1 {
            let mut out = Vec::with_capacity(reqs.len());
            for (m, req) in reqs {
                out.push(self.conns[*m].call(req)?);
            }
            return Ok(out);
        }
        // Refuse before the first enqueue so a failed fan-out never
        // leaves half-framed requests behind in some outboxes.
        for &(m, _) in reqs {
            if let Some(reason) = self.conns[m].poison_reason() {
                return Err(ServingError::Wire(format!(
                    "member {m} connection poisoned ({reason}); reconnect required"
                )));
            }
        }
        let mut members = Vec::with_capacity(reqs.len());
        for (m, req) in reqs {
            self.conns[*m].enqueue(req)?;
            members.push(*m);
        }
        self.flush_overlapped(&members);
        let mut first_err: Option<ServingError> = None;
        let mut out = Vec::with_capacity(reqs.len());
        for &(m, _) in reqs {
            match self.conns[m].recv().and_then(Response::into_result) {
                Ok(resp) => out.push(resp),
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(out),
        }
    }

    /// Best-effort fan-out of `req` to *every* member: all members are
    /// contacted even when earlier ones fail; each member's outcome is
    /// returned. Used by the control plane so that e.g. a shutdown
    /// cannot leak live processes behind one dead socket.
    fn fan_out_collect(&mut self, req: &Request) -> Vec<(usize, Result<Response, ServingError>)> {
        if self.depth <= 1 {
            return (0..self.conns.len())
                .map(|m| (m, self.conns[m].call(req)))
                .collect();
        }
        let mut sent = Vec::with_capacity(self.conns.len());
        let mut out: Vec<(usize, Result<Response, ServingError>)> =
            Vec::with_capacity(self.conns.len());
        for m in 0..self.conns.len() {
            match self.conns[m].enqueue(req) {
                Ok(()) => sent.push(m),
                Err(e) => out.push((m, Err(e))),
            }
        }
        self.flush_overlapped(&sent);
        for m in sent {
            out.push((m, self.conns[m].recv().and_then(Response::into_result)));
        }
        out.sort_by_key(|&(m, _)| m);
        out
    }

    /// Fold per-member failures into one result: zero failures is `Ok`,
    /// one failure keeps its typed error, several combine into a
    /// [`ServingError::Wire`] naming every failed member.
    fn combine_errors(
        op: &str,
        n_members: usize,
        mut errs: Vec<(usize, ServingError)>,
    ) -> Result<(), ServingError> {
        match errs.len() {
            0 => Ok(()),
            1 => Err(errs.pop().expect("len checked").1),
            n => {
                let detail: Vec<String> = errs
                    .iter()
                    .map(|(m, e)| format!("member {m}: {e}"))
                    .collect();
                Err(ServingError::Wire(format!(
                    "{op} failed on {n}/{n_members} members: {}",
                    detail.join("; ")
                )))
            }
        }
    }

    /// Send `req` to every member, expecting [`Response::Done`] from
    /// each. Best-effort: all members are contacted; failures combine.
    fn fan_out_done(&mut self, op: &str, req: &Request) -> Result<(), ServingError> {
        self.ensure_idle(op)?;
        let n_members = self.conns.len();
        let mut errs = Vec::new();
        for (m, res) in self.fan_out_collect(req) {
            match res {
                Ok(Response::Done) => {}
                Ok(other) => errs.push((m, unexpected("Done", &other))),
                Err(e) => errs.push((m, e)),
            }
        }
        Self::combine_errors(op, n_members, errs)
    }

    /// Write an incremental checkpoint on every member; returns each
    /// member's checkpoint epoch (members advance independently — each
    /// numbers only its own checkpoints). Best-effort: every member is
    /// asked even if an earlier one fails.
    pub fn checkpoint_all(&mut self) -> Result<Vec<u64>, ServingError> {
        self.ensure_idle("checkpoint")?;
        let n_members = self.conns.len();
        let mut marks = Vec::with_capacity(n_members);
        let mut errs = Vec::new();
        for (m, res) in self.fan_out_collect(&Request::Checkpoint) {
            match res {
                Ok(Response::Watermark(w)) => marks.push(w),
                Ok(other) => errs.push((m, unexpected("Watermark", &other))),
                Err(e) => errs.push((m, e)),
            }
        }
        Self::combine_errors("checkpoint", n_members, errs)?;
        Ok(marks)
    }

    /// Force-fsync every member's WALs.
    pub fn wal_sync_all(&mut self) -> Result<(), ServingError> {
        self.fan_out_done("wal-sync", &Request::WalSync)
    }

    /// Gracefully stop every member: each flushes, syncs, acknowledges
    /// and exits. Best-effort — every member receives the shutdown even
    /// when an earlier member's socket is already dead, so a partial
    /// failure cannot leak live processes. Connections are dropped
    /// afterwards; the router is consumed because nothing answers it
    /// anymore.
    pub fn shutdown_all(mut self) -> Result<(), ServingError> {
        self.fan_out_done("shutdown", &Request::Shutdown)
    }

    /// Collect migration blobs ([`sccf_core::encode_user_state`]) for
    /// `users`, each from its owning member, in input order — the
    /// cross-process building block for fleet-level tier refreshes.
    pub fn export_user_states(&mut self, users: &[u32]) -> Result<Vec<Vec<u8>>, ServingError> {
        self.ensure_idle("export-users")?;
        for &u in users {
            self.check_user(u)?;
        }
        let groups = self.group_by_owner(users);
        let reqs: Vec<(usize, Request)> = groups
            .iter()
            .map(|(m, us, _)| (*m, Request::ExportUsers(us.clone())))
            .collect();
        let responses = self.scatter_gather(&reqs)?;
        let mut out: Vec<Vec<u8>> = vec![Vec::new(); users.len()];
        for ((m, _, positions), resp) in groups.into_iter().zip(responses) {
            match resp {
                Response::Blobs(blobs) => {
                    if blobs.len() != positions.len() {
                        return Err(ServingError::Wire(format!(
                            "member {m} returned {} blobs for {} users",
                            blobs.len(),
                            positions.len()
                        )));
                    }
                    for (pos, blob) in positions.into_iter().zip(blobs) {
                        out[pos] = blob;
                    }
                }
                other => return Err(unexpected("Blobs", &other)),
            }
        }
        Ok(out)
    }

    /// Install an encoded [`sccf_core::GlobalNeighborSnapshot`] as the
    /// frozen tier on every member — the whole fleet serves the same
    /// two-tier neighborhoods afterwards.
    pub fn install_tier_bytes(&mut self, bytes: &[u8]) -> Result<(), ServingError> {
        self.fan_out_done("install-tier", &Request::InstallTier(bytes.to_vec()))
    }

    /// Drop the frozen tier on every member.
    pub fn clear_tier(&mut self) -> Result<(), ServingError> {
        self.fan_out_done("clear-tier", &Request::ClearTier)
    }

    /// Consume one ingest acknowledgement from member `m`, folding the
    /// acked event count into the running total.
    fn recv_ingest_ack(&mut self, m: usize) -> Result<(), ServingError> {
        match self.conns[m].recv().and_then(Response::into_result)? {
            Response::Ingested(n) => {
                self.acked_events += n;
                Ok(())
            }
            other => Err(unexpected("Ingested", &other)),
        }
    }

    /// Queue one ingest batch on the wire **without waiting for the
    /// acknowledgements** — the pipelined half of a multi-batch ingest
    /// stream. Per-member sends are overlapped; if a member already has
    /// [`FleetRouter::pipeline_depth`] responses in flight, its oldest
    /// ack is drained first (bounded depth). Validation is atomic per
    /// batch, exactly like [`ServingApi::ingest_batch`]. Pair with
    /// [`FleetRouter::ingest_collect`], which returns the total event
    /// count and any deferred errors.
    pub fn ingest_send(&mut self, events: &[(u32, u32)]) -> Result<(), ServingError> {
        if let Some(err) = self.take_lost() {
            return Err(err);
        }
        for &(user, item) in events {
            self.check_user(user)?;
            self.check_item(item)?;
        }
        let mut groups: Vec<Vec<(u32, u32)>> = vec![Vec::new(); self.conns.len()];
        for &(user, item) in events {
            groups[self.owner_of(user)].push((user, item));
        }
        let depth = self.depth.max(1);
        let mut members = Vec::new();
        for (m, group) in groups.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            while self.conns[m].in_flight() >= depth {
                self.recv_ingest_ack(m)?;
            }
            self.conns[m].enqueue(&Request::IngestBatch(group))?;
            members.push(m);
        }
        self.flush_overlapped(&members);
        Ok(())
    }

    /// Drain every outstanding ingest acknowledgement and return the
    /// total number of events the fleet acknowledged since the last
    /// collect. Responses lost to a reconnect-while-in-flight surface
    /// here as a typed [`ServingError::Wire`] — never a hang.
    pub fn ingest_collect(&mut self) -> Result<u64, ServingError> {
        let mut first_err: Option<ServingError> = None;
        for m in 0..self.conns.len() {
            while self.conns[m].in_flight() > 0 {
                match self.recv_ingest_ack(m) {
                    Ok(()) => {}
                    Err(e) => {
                        if first_err.is_none() {
                            first_err = Some(e);
                        }
                        if self.conns[m].poison_reason().is_some() {
                            // A poisoned connection can never produce the
                            // remaining responses; stop draining it.
                            break;
                        }
                    }
                }
            }
        }
        if let Some(err) = self.take_lost() {
            if first_err.is_none() {
                first_err = Some(err);
            }
        }
        let total = self.acked_events;
        self.acked_events = 0;
        match first_err {
            Some(e) => Err(e),
            None => Ok(total),
        }
    }

    /// Pipelined multi-batch ingest: stream `batches` with up to
    /// [`FleetRouter::pipeline_depth`] batches in flight per
    /// connection, then collect every acknowledgement. Per-user event
    /// order is preserved — a user's batches all travel the same FIFO
    /// connection in submission order. At depth 1 this degrades to the
    /// sequential [`ServingApi::ingest_batch`] loop (the pinned
    /// reference). Returns the total acknowledged event count.
    pub fn ingest_batches(&mut self, batches: &[Vec<(u32, u32)>]) -> Result<u64, ServingError> {
        if self.depth <= 1 {
            let mut total = 0u64;
            for batch in batches {
                total += self.ingest_batch(batch)?;
            }
            return Ok(total);
        }
        for batch in batches {
            if let Err(e) = self.ingest_send(batch) {
                // Leave the wire clean before reporting: consume
                // whatever is still owed.
                let _ = self.ingest_collect();
                return Err(e);
            }
        }
        self.ingest_collect()
    }
}

impl ServingApi for FleetRouter {
    fn try_ingest(&mut self, user: u32, item: u32) -> Result<Option<EventTiming>, ServingError> {
        self.ensure_idle("ingest")?;
        self.check_user(user)?;
        self.check_item(item)?;
        let m = self.owner_of(user);
        match self.conns[m].call(&Request::IngestBatch(vec![(user, item)]))? {
            Response::Ingested(_) => Ok(None),
            other => Err(unexpected("Ingested", &other)),
        }
    }

    fn ingest_batch(&mut self, events: &[(u32, u32)]) -> Result<u64, ServingError> {
        self.ensure_idle("ingest")?;
        // Validate everything before sending anything: the batch is
        // atomic for validation failures even though it spans members.
        for &(user, item) in events {
            self.check_user(user)?;
            self.check_item(item)?;
        }
        let mut groups: Vec<Vec<(u32, u32)>> = vec![Vec::new(); self.conns.len()];
        for &(user, item) in events {
            groups[self.owner_of(user)].push((user, item));
        }
        let reqs: Vec<(usize, Request)> = groups
            .into_iter()
            .enumerate()
            .filter(|(_, g)| !g.is_empty())
            .map(|(m, g)| (m, Request::IngestBatch(g)))
            .collect();
        let mut total = 0u64;
        for resp in self.scatter_gather(&reqs)? {
            match resp {
                Response::Ingested(n) => total += n,
                other => return Err(unexpected("Ingested", &other)),
            }
        }
        Ok(total)
    }

    fn try_recommend(&mut self, user: u32, query: &RecQuery) -> Result<RecResponse, ServingError> {
        self.ensure_idle("recommend")?;
        self.check_user(user)?;
        let m = self.owner_of(user);
        match self.conns[m].call(&Request::Recommend {
            user,
            query: query.clone(),
        })? {
            Response::Slate(slate) => Ok(slate),
            other => Err(unexpected("Slate", &other)),
        }
    }

    fn recommend_many(
        &mut self,
        users: &[u32],
        query: &RecQuery,
    ) -> Result<Vec<RecResponse>, ServingError> {
        self.ensure_idle("recommend")?;
        for &u in users {
            self.check_user(u)?;
        }
        let groups = self.group_by_owner(users);
        let reqs: Vec<(usize, Request)> = groups
            .iter()
            .map(|(m, us, _)| {
                (
                    *m,
                    Request::RecommendMany {
                        users: us.clone(),
                        query: query.clone(),
                    },
                )
            })
            .collect();
        let responses = self.scatter_gather(&reqs)?;
        let mut out: Vec<Option<RecResponse>> = vec![None; users.len()];
        for ((m, member_users, positions), resp) in groups.into_iter().zip(responses) {
            let n_asked = member_users.len();
            match resp {
                Response::Slates(slates) => {
                    if slates.len() != n_asked {
                        return Err(ServingError::Wire(format!(
                            "member {m} returned {} slates for {n_asked} users",
                            slates.len()
                        )));
                    }
                    for (pos, slate) in positions.into_iter().zip(slates) {
                        out[pos] = Some(slate);
                    }
                }
                other => return Err(unexpected("Slates", &other)),
            }
        }
        Ok(out
            .into_iter()
            .map(|s| s.expect("every position grouped exactly once"))
            .collect())
    }

    fn flush(&mut self) -> Result<(), ServingError> {
        self.fan_out_done("flush", &Request::Flush)
    }

    fn serving_stats(&mut self) -> Result<ServingStats, ServingError> {
        self.ensure_idle("stats")?;
        let reqs: Vec<(usize, Request)> =
            (0..self.conns.len()).map(|m| (m, Request::Stats)).collect();
        let responses = self.scatter_gather(&reqs)?;
        let mut parts = Vec::with_capacity(responses.len());
        for (m, resp) in responses.into_iter().enumerate() {
            match resp {
                Response::Stats(stats) => parts.push((m, *stats)),
                other => return Err(unexpected("Stats", &other)),
            }
        }
        Ok(merge_fleet_stats(&self.topology, parts))
    }

    fn snapshot_state(&mut self) -> Result<Vec<u8>, ServingError> {
        self.ensure_idle("snapshot")?;
        let reqs: Vec<(usize, Request)> = (0..self.conns.len())
            .map(|m| (m, Request::Snapshot))
            .collect();
        let responses = self.scatter_gather(&reqs)?;
        let mut parts = Vec::with_capacity(responses.len());
        for (m, resp) in responses.into_iter().enumerate() {
            match resp {
                Response::Bytes(bytes) => parts.push((m, bytes)),
                other => return Err(unexpected("Bytes", &other)),
            }
        }
        merge_fleet_snapshots(&self.topology, &parts)
    }
}
