//! The fleet's shared world: a deterministic recipe every process in a
//! fleet builds **identically** from the same [`WorldSpec`].
//!
//! The item-side half of an SCCF engine (the trained UI model, the
//! integrator, the candidate index) is read-only at serving time and
//! must be byte-identical in every shard-server process and in the
//! router's reference engine — otherwise "the fleet is bit-identical to
//! one process" is unfalsifiable. Rather than shipping megabytes of
//! floats over the wire at startup, each process rebuilds the world
//! from the spec (synthetic dataset → leave-one-out split → FISM →
//! `Sccf::build`, all seeded, all single-threaded).
//!
//! The one step worth sharing as bytes is model training (it is the
//! slow part): [`WorldSpec::train_model`] once in the launcher, write
//! the bytes to a file, and pass `--model-file` to every shard server —
//! [`WorldSpec::build`] then rehydrates the identical floats via
//! `Fism::load_bytes` instead of retraining. Training is deterministic
//! too, so this is an optimization, not a correctness requirement.

use sccf_core::{FrozenTierMode, IntegratorConfig, Sccf, SccfConfig, UserBasedConfig};
use sccf_data::catalog::{ml1m_sim, Scale};
use sccf_data::synthetic::generate;
use sccf_data::LeaveOneOut;
use sccf_models::{Fism, FismConfig, TrainConfig};

/// Everything needed to rebuild the fleet's world from scratch. All
/// fields feed seeded, single-threaded constructions, so two processes
/// holding equal specs hold bit-identical worlds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorldSpec {
    /// Synthetic population size.
    pub n_users: usize,
    /// Synthetic catalog size.
    pub n_items: usize,
    /// Generator + training seed.
    pub seed: u64,
    /// Embedding dimension of the FISM model.
    pub dim: usize,
    /// FISM training epochs.
    pub epochs: usize,
    /// Neighborhood size β (Eq. 11).
    pub beta: usize,
    /// Recency window for the user-based component.
    pub recent_window: usize,
    /// Candidate pool size fed to the integrator.
    pub candidate_n: usize,
}

impl Default for WorldSpec {
    fn default() -> Self {
        Self {
            n_users: 120,
            n_items: 60,
            seed: 2026,
            dim: 8,
            epochs: 2,
            beta: 8,
            recent_window: 5,
            candidate_n: 12,
        }
    }
}

/// A built world: the framework plus the serving-side source of truth.
pub struct World {
    pub sccf: Sccf<Fism>,
    /// `train_plus_val` per user — the history table every engine
    /// constructor takes.
    pub histories: Vec<Vec<u32>>,
    pub n_users: usize,
    pub n_items: usize,
}

impl WorldSpec {
    fn fism_config(&self) -> FismConfig {
        FismConfig {
            train: TrainConfig {
                dim: self.dim,
                epochs: self.epochs,
                seed: self.seed,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    fn split(&self) -> LeaveOneOut {
        let mut cfg = ml1m_sim(Scale::Quick);
        cfg.name = "fleet".to_string();
        cfg.n_users = self.n_users;
        cfg.n_items = self.n_items;
        cfg.n_categories = 4;
        cfg.mean_len = 8.0;
        cfg.min_len = 4;
        let data = generate(&cfg, self.seed).dataset;
        LeaveOneOut::split(&data)
    }

    /// Train the spec's FISM model and return its weight bytes — do
    /// this once in the fleet launcher and hand the file to every
    /// shard server so none of them pays the training cost.
    pub fn train_model(&self) -> Vec<u8> {
        Fism::train(&self.split(), &self.fism_config()).save_bytes()
    }

    /// Build the world. With `model_bytes` the model is rehydrated
    /// (fast path); without, it is trained in place — both yield the
    /// same floats.
    pub fn build(&self, model_bytes: Option<&[u8]>) -> Result<World, String> {
        let split = self.split();
        let cfg = self.fism_config();
        let fism = match model_bytes {
            Some(bytes) => Fism::load_bytes(split.n_items(), &cfg, bytes)
                .map_err(|e| format!("model bytes do not match the world spec: {e:?}"))?,
            None => Fism::train(&split, &cfg),
        };
        let mut sccf = Sccf::build(
            fism,
            &split,
            SccfConfig {
                user_based: UserBasedConfig {
                    beta: self.beta,
                    recent_window: self.recent_window,
                },
                candidate_n: self.candidate_n,
                integrator: IntegratorConfig {
                    epochs: 2,
                    seed: 7,
                    ..Default::default()
                },
                threads: 1,
                profiles: None,
                ui_ann: None,
                frozen_tier: FrozenTierMode::Flat,
            },
        );
        sccf.refresh_for_test(&split);
        let histories: Vec<Vec<u32>> = (0..split.n_users() as u32)
            .map(|u| split.train_plus_val(u))
            .collect();
        Ok(World {
            n_users: split.n_users(),
            n_items: split.n_items(),
            sccf,
            histories,
        })
    }

    /// Command-line form, consumed by [`WorldSpec::from_flag`] on the
    /// other side of a process spawn.
    pub fn to_args(&self) -> Vec<String> {
        vec![
            "--world-users".into(),
            self.n_users.to_string(),
            "--world-items".into(),
            self.n_items.to_string(),
            "--world-seed".into(),
            self.seed.to_string(),
            "--world-dim".into(),
            self.dim.to_string(),
            "--world-epochs".into(),
            self.epochs.to_string(),
            "--world-beta".into(),
            self.beta.to_string(),
            "--world-recent".into(),
            self.recent_window.to_string(),
            "--world-candidates".into(),
            self.candidate_n.to_string(),
        ]
    }

    /// Rebuild a spec from a flag lookup (`flag name without "--"` →
    /// value), defaulting each missing flag. Errors on unparsable
    /// values.
    pub fn from_flag(get: impl Fn(&str) -> Option<String>) -> Result<Self, String> {
        fn parse<T: std::str::FromStr>(
            get: &impl Fn(&str) -> Option<String>,
            key: &str,
            default: T,
        ) -> Result<T, String> {
            match get(key) {
                None => Ok(default),
                Some(v) => v.parse().map_err(|_| format!("bad value for --{key}: {v}")),
            }
        }
        let d = WorldSpec::default();
        Ok(Self {
            n_users: parse(&get, "world-users", d.n_users)?,
            n_items: parse(&get, "world-items", d.n_items)?,
            seed: parse(&get, "world-seed", d.seed)?,
            dim: parse(&get, "world-dim", d.dim)?,
            epochs: parse(&get, "world-epochs", d.epochs)?,
            beta: parse(&get, "world-beta", d.beta)?,
            recent_window: parse(&get, "world-recent", d.recent_window)?,
            candidate_n: parse(&get, "world-candidates", d.candidate_n)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_roundtrips_through_args() {
        let spec = WorldSpec {
            n_users: 99,
            seed: 7,
            ..WorldSpec::default()
        };
        let args = spec.to_args();
        let lookup = |key: &str| {
            args.windows(2)
                .find(|w| w[0] == format!("--{key}"))
                .map(|w| w[1].clone())
        };
        assert_eq!(WorldSpec::from_flag(lookup).unwrap(), spec);
        assert_eq!(
            WorldSpec::from_flag(|_| None).unwrap(),
            WorldSpec::default()
        );
    }

    #[test]
    fn trained_bytes_rehydrate_the_same_world() {
        let spec = WorldSpec {
            n_users: 24,
            n_items: 16,
            epochs: 1,
            ..WorldSpec::default()
        };
        let bytes = spec.train_model();
        let a = spec.build(Some(&bytes)).unwrap();
        let b = spec.build(Some(&bytes)).unwrap();
        assert_eq!(a.n_users, 24);
        assert_eq!(a.histories, b.histories);
        // Identical worlds produce identical slates.
        let ra = a.sccf.recommend(0, &a.histories[0], 5);
        let rb = b.sccf.recommend(0, &b.histories[0], 5);
        let bits = |v: &[sccf_util::topk::Scored]| {
            v.iter()
                .map(|s| (s.id, s.score.to_bits()))
                .collect::<Vec<_>>()
        };
        assert_eq!(bits(&ra), bits(&rb));
    }
}
