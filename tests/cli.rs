//! Integration tests for the `sccf` command-line binary: the full
//! gen → train → eval → recommend lifecycle through the real executable,
//! plus the error paths an operator will actually hit.

use std::path::PathBuf;
use std::process::{Command, Output};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sccf"))
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("sccf-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn full_lifecycle_gen_train_eval_recommend() {
    let data = tmp("lifecycle.tsv");
    let model = tmp("lifecycle.sccf");

    let out = bin()
        .args(["gen", "--dataset", "games-sim", "--seed", "11"])
        .args(["--out", data.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "gen failed: {}", stderr(&out));
    assert!(stdout(&out).contains("wrote games-sim"));
    assert!(data.exists());

    let out = bin()
        .args(["train", "--data", data.to_str().unwrap()])
        .args(["--model", "fism", "--dim", "8", "--epochs", "2"])
        .args(["--out", model.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "train failed: {}", stderr(&out));
    assert!(model.exists());

    let out = bin()
        .args(["eval", "--data", data.to_str().unwrap()])
        .args(["--model", model.to_str().unwrap(), "--ks", "10"])
        .output()
        .unwrap();
    assert!(out.status.success(), "eval failed: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("HR@10"), "missing metrics: {text}");
    assert!(text.contains("model: FISM"));

    let out = bin()
        .args(["recommend", "--data", data.to_str().unwrap()])
        .args(["--model", model.to_str().unwrap()])
        .args(["--user", "0", "--n", "3"])
        .output()
        .unwrap();
    assert!(out.status.success(), "recommend failed: {}", stderr(&out));
    let recs = stdout(&out);
    assert_eq!(recs.lines().count(), 3, "expected 3 lines: {recs}");
    assert!(recs.contains("item"));
}

#[test]
fn unknown_dataset_fails_cleanly() {
    let out = bin()
        .args(["gen", "--dataset", "nope", "--out", "/tmp/never.tsv"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown dataset"));
}

#[test]
fn garbage_model_file_fails_cleanly() {
    let data = tmp("garbage.tsv");
    let fake = tmp("garbage.sccf");
    bin()
        .args([
            "gen",
            "--dataset",
            "games-sim",
            "--out",
            data.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    std::fs::write(&fake, b"this is not a model").unwrap();
    let out = bin()
        .args(["eval", "--data", data.to_str().unwrap()])
        .args(["--model", fake.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(stderr(&out).contains("not an sccf model file"));
}

#[test]
fn catalog_mismatch_is_detected() {
    let data_a = tmp("cat_a.tsv");
    let data_b = tmp("cat_b.tsv");
    let model = tmp("cat_a.sccf");
    bin()
        .args(["gen", "--dataset", "games-sim", "--seed", "1"])
        .args(["--out", data_a.to_str().unwrap()])
        .output()
        .unwrap();
    bin()
        .args(["gen", "--dataset", "ml1m-sim", "--seed", "2"])
        .args(["--out", data_b.to_str().unwrap()])
        .output()
        .unwrap();
    let out = bin()
        .args(["train", "--data", data_a.to_str().unwrap()])
        .args(["--model", "fism", "--dim", "4", "--epochs", "1"])
        .args(["--out", model.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", stderr(&out));
    // evaluating against a different catalog must be rejected
    let out = bin()
        .args(["eval", "--data", data_b.to_str().unwrap()])
        .args(["--model", model.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(stderr(&out).contains("items"));
}

#[test]
fn missing_required_flag_prints_usage() {
    let out = bin().args(["train", "--model", "fism"]).output().unwrap();
    assert!(!out.status.success());
    assert!(stderr(&out).contains("missing --data") || stderr(&out).contains("usage"));
}

#[test]
fn user_out_of_range_is_rejected() {
    let data = tmp("range.tsv");
    let model = tmp("range.sccf");
    bin()
        .args([
            "gen",
            "--dataset",
            "games-sim",
            "--out",
            data.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    bin()
        .args(["train", "--data", data.to_str().unwrap()])
        .args(["--model", "fism", "--dim", "4", "--epochs", "1"])
        .args(["--out", model.to_str().unwrap()])
        .output()
        .unwrap();
    let out = bin()
        .args(["recommend", "--data", data.to_str().unwrap()])
        .args(["--model", model.to_str().unwrap()])
        .args(["--user", "999999"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(stderr(&out).contains("out of range"));
}
