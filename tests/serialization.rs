//! Save/load integration: a trained model snapshot must reproduce the
//! exact same scores after rehydration — the deployment hand-off path.

use sccf::data::catalog::{ml1m_sim, Scale};
use sccf::data::synthetic::generate;
use sccf::data::LeaveOneOut;
use sccf::models::{Fism, FismConfig, Recommender, SasRec, SasRecConfig, TrainConfig};

fn world() -> LeaveOneOut {
    let mut cfg = ml1m_sim(Scale::Quick);
    cfg.n_users = 60;
    cfg.n_items = 80;
    LeaveOneOut::split(&generate(&cfg, 77).dataset)
}

#[test]
fn fism_roundtrip_preserves_scores() {
    let split = world();
    let cfg = FismConfig {
        train: TrainConfig {
            dim: 8,
            epochs: 3,
            ..Default::default()
        },
        ..Default::default()
    };
    let trained = Fism::train(&split, &cfg);
    let bytes = trained.save_bytes();
    let loaded = Fism::load_bytes(split.n_items(), &cfg, &bytes).unwrap();
    for u in split.test_users().iter().take(5) {
        let hist = split.train_plus_val(*u);
        assert_eq!(trained.score_all(*u, &hist), loaded.score_all(*u, &hist));
    }
}

#[test]
fn sasrec_roundtrip_preserves_scores() {
    let split = world();
    let cfg = SasRecConfig {
        train: TrainConfig {
            dim: 8,
            epochs: 2,
            ..Default::default()
        },
        max_len: 10,
        n_blocks: 1,
        ..Default::default()
    };
    let trained = SasRec::train(&split, &cfg);
    let bytes = trained.save_bytes();
    let loaded = SasRec::load_bytes(split.n_items(), &cfg, &bytes).unwrap();
    for u in split.test_users().iter().take(5) {
        let hist = split.train_plus_val(*u);
        assert_eq!(trained.score_all(*u, &hist), loaded.score_all(*u, &hist));
    }
}

#[test]
fn wrong_architecture_is_rejected() {
    let split = world();
    let cfg = FismConfig {
        train: TrainConfig {
            dim: 8,
            epochs: 1,
            ..Default::default()
        },
        ..Default::default()
    };
    let trained = Fism::train(&split, &cfg);
    let bytes = trained.save_bytes();
    // wrong dimension
    let bad_dim = FismConfig {
        train: TrainConfig {
            dim: 16,
            epochs: 1,
            ..Default::default()
        },
        ..Default::default()
    };
    assert!(Fism::load_bytes(split.n_items(), &bad_dim, &bytes).is_err());
    // wrong catalog size
    assert!(Fism::load_bytes(split.n_items() + 1, &cfg, &bytes).is_err());
    // wrong table layout
    let sep = FismConfig {
        separate_output_table: true,
        ..cfg
    };
    assert!(Fism::load_bytes(split.n_items(), &sep, &bytes).is_err());
}

#[test]
fn snapshot_survives_disk_roundtrip() {
    let split = world();
    let cfg = FismConfig {
        train: TrainConfig {
            dim: 8,
            epochs: 1,
            ..Default::default()
        },
        ..Default::default()
    };
    let trained = Fism::train(&split, &cfg);
    let dir = std::env::temp_dir().join("sccf_snapshot_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("fism.sccf");
    std::fs::write(&path, trained.save_bytes()).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    let loaded = Fism::load_bytes(split.n_items(), &cfg, &bytes).unwrap();
    let u = split.test_users()[0];
    let hist = split.train_plus_val(u);
    assert_eq!(trained.score_all(u, &hist), loaded.score_all(u, &hist));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn global_neighbor_snapshot_roundtrips_search_and_windows() {
    // The two-tier snapshot is an operational artifact (persist a
    // routing-warm tier alongside an engine snapshot): decoding it must
    // reproduce bit-identical searches and frozen windows.
    use sccf::core::{GlobalNeighborSnapshot, NeighborSource};
    let n_users = 40usize;
    let dim = 6usize;
    let mut rng = sccf::util::rng::rng_for(91, 4);
    use rand::Rng;
    let entries: Vec<(u32, Vec<f32>, Vec<u32>)> = (0..n_users as u32)
        .filter(|u| u % 5 != 3) // a few uncovered users
        .map(|u| {
            let v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            let w: Vec<u32> = (0..(u % 7)).collect();
            (u, v, w)
        })
        .collect();
    let snap = GlobalNeighborSnapshot::build(3, n_users, dim, entries);
    let bytes = snap.encode();
    let back = GlobalNeighborSnapshot::decode(&bytes).expect("own artifact decodes");
    assert_eq!(back.epoch(), snap.epoch());
    assert_eq!(back.covered_users(), snap.covered_users());
    let q: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let mut a = Vec::new();
    let mut b = Vec::new();
    snap.search_append(&q, 10, &|_| false, &mut a);
    back.search_append(&q, 10, &|_| false, &mut b);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.id, y.id);
        assert_eq!(x.score.to_bits(), y.score.to_bits());
    }
    for u in 0..n_users as u32 {
        assert_eq!(snap.frozen_window(u), back.frozen_window(u));
    }
    // Corruption is rejected, never a panic.
    assert!(GlobalNeighborSnapshot::decode(&bytes[..bytes.len() / 2]).is_err());
    assert!(GlobalNeighborSnapshot::decode(b"garbage").is_err());
}

#[test]
fn accelerated_tier_snapshot_roundtrips_and_rebuilds_byte_identically() {
    // ANN / quantized tier structures ride inside the snapshot
    // encoding; decoding must reproduce them byte-for-byte, and —
    // because the build seed is carried explicitly — rebuilding from
    // the same entries must too (the determinism the refresh pipeline
    // relies on for reproducible fleets).
    use sccf::core::{GlobalNeighborSnapshot, NeighborSource};
    use sccf::index::FrozenTierMode;
    let n_users = 50usize;
    let dim = 6usize;
    let mut rng = sccf::util::rng::rng_for(17, 2);
    use rand::Rng;
    let entries: Vec<(u32, Vec<f32>, Vec<u32>)> = (0..n_users as u32)
        .map(|u| {
            let v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            (u, v, vec![u % 3])
        })
        .collect();
    for mode in [
        FrozenTierMode::Hnsw { ef: 16 },
        FrozenTierMode::IvfPq {
            nlist: 4,
            nprobe: 2,
            m: 3,
        },
    ] {
        let snap =
            GlobalNeighborSnapshot::build_with_mode(5, n_users, dim, mode, 77, entries.clone());
        assert_eq!(snap.tier_mode(), mode);
        let bytes = snap.encode();
        let back = GlobalNeighborSnapshot::decode(&bytes).expect("own artifact decodes");
        assert_eq!(back.encode(), bytes, "roundtrip must be byte-identical");
        let again =
            GlobalNeighborSnapshot::build_with_mode(5, n_users, dim, mode, 77, entries.clone());
        assert_eq!(
            again.encode(),
            bytes,
            "seeded rebuild must be byte-identical"
        );
        // Truncations anywhere in the accel section are typed errors.
        assert!(GlobalNeighborSnapshot::decode(&bytes[..bytes.len() - 3]).is_err());
    }
}
