//! Save/load integration: a trained model snapshot must reproduce the
//! exact same scores after rehydration — the deployment hand-off path.

use sccf::data::catalog::{ml1m_sim, Scale};
use sccf::data::synthetic::generate;
use sccf::data::LeaveOneOut;
use sccf::models::{Fism, FismConfig, Recommender, SasRec, SasRecConfig, TrainConfig};

fn world() -> LeaveOneOut {
    let mut cfg = ml1m_sim(Scale::Quick);
    cfg.n_users = 60;
    cfg.n_items = 80;
    LeaveOneOut::split(&generate(&cfg, 77).dataset)
}

#[test]
fn fism_roundtrip_preserves_scores() {
    let split = world();
    let cfg = FismConfig {
        train: TrainConfig {
            dim: 8,
            epochs: 3,
            ..Default::default()
        },
        ..Default::default()
    };
    let trained = Fism::train(&split, &cfg);
    let bytes = trained.save_bytes();
    let loaded = Fism::load_bytes(split.n_items(), &cfg, &bytes).unwrap();
    for u in split.test_users().iter().take(5) {
        let hist = split.train_plus_val(*u);
        assert_eq!(trained.score_all(*u, &hist), loaded.score_all(*u, &hist));
    }
}

#[test]
fn sasrec_roundtrip_preserves_scores() {
    let split = world();
    let cfg = SasRecConfig {
        train: TrainConfig {
            dim: 8,
            epochs: 2,
            ..Default::default()
        },
        max_len: 10,
        n_blocks: 1,
        ..Default::default()
    };
    let trained = SasRec::train(&split, &cfg);
    let bytes = trained.save_bytes();
    let loaded = SasRec::load_bytes(split.n_items(), &cfg, &bytes).unwrap();
    for u in split.test_users().iter().take(5) {
        let hist = split.train_plus_val(*u);
        assert_eq!(trained.score_all(*u, &hist), loaded.score_all(*u, &hist));
    }
}

#[test]
fn wrong_architecture_is_rejected() {
    let split = world();
    let cfg = FismConfig {
        train: TrainConfig {
            dim: 8,
            epochs: 1,
            ..Default::default()
        },
        ..Default::default()
    };
    let trained = Fism::train(&split, &cfg);
    let bytes = trained.save_bytes();
    // wrong dimension
    let bad_dim = FismConfig {
        train: TrainConfig {
            dim: 16,
            epochs: 1,
            ..Default::default()
        },
        ..Default::default()
    };
    assert!(Fism::load_bytes(split.n_items(), &bad_dim, &bytes).is_err());
    // wrong catalog size
    assert!(Fism::load_bytes(split.n_items() + 1, &cfg, &bytes).is_err());
    // wrong table layout
    let sep = FismConfig {
        separate_output_table: true,
        ..cfg
    };
    assert!(Fism::load_bytes(split.n_items(), &sep, &bytes).is_err());
}

#[test]
fn snapshot_survives_disk_roundtrip() {
    let split = world();
    let cfg = FismConfig {
        train: TrainConfig {
            dim: 8,
            epochs: 1,
            ..Default::default()
        },
        ..Default::default()
    };
    let trained = Fism::train(&split, &cfg);
    let dir = std::env::temp_dir().join("sccf_snapshot_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("fism.sccf");
    std::fs::write(&path, trained.save_bytes()).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    let loaded = Fism::load_bytes(split.n_items(), &cfg, &bytes).unwrap();
    let u = split.test_users()[0];
    let hist = split.train_plus_val(u);
    assert_eq!(trained.score_all(u, &hist), loaded.score_all(u, &hist));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn global_neighbor_snapshot_roundtrips_search_and_windows() {
    // The two-tier snapshot is an operational artifact (persist a
    // routing-warm tier alongside an engine snapshot): decoding it must
    // reproduce bit-identical searches and frozen windows.
    use sccf::core::{GlobalNeighborSnapshot, NeighborSource};
    let n_users = 40usize;
    let dim = 6usize;
    let mut rng = sccf::util::rng::rng_for(91, 4);
    use rand::Rng;
    let entries: Vec<(u32, Vec<f32>, Vec<u32>)> = (0..n_users as u32)
        .filter(|u| u % 5 != 3) // a few uncovered users
        .map(|u| {
            let v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            let w: Vec<u32> = (0..(u % 7)).collect();
            (u, v, w)
        })
        .collect();
    let snap = GlobalNeighborSnapshot::build(3, n_users, dim, entries);
    let bytes = snap.encode();
    let back = GlobalNeighborSnapshot::decode(&bytes).expect("own artifact decodes");
    assert_eq!(back.epoch(), snap.epoch());
    assert_eq!(back.covered_users(), snap.covered_users());
    let q: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
    let mut a = Vec::new();
    let mut b = Vec::new();
    snap.search_append(&q, 10, &|_| false, &mut a);
    back.search_append(&q, 10, &|_| false, &mut b);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.id, y.id);
        assert_eq!(x.score.to_bits(), y.score.to_bits());
    }
    for u in 0..n_users as u32 {
        assert_eq!(snap.frozen_window(u), back.frozen_window(u));
    }
    // Corruption is rejected, never a panic.
    assert!(GlobalNeighborSnapshot::decode(&bytes[..bytes.len() / 2]).is_err());
    assert!(GlobalNeighborSnapshot::decode(b"garbage").is_err());
}

#[test]
fn accelerated_tier_snapshot_roundtrips_and_rebuilds_byte_identically() {
    // ANN / quantized tier structures ride inside the snapshot
    // encoding; decoding must reproduce them byte-for-byte, and —
    // because the build seed is carried explicitly — rebuilding from
    // the same entries must too (the determinism the refresh pipeline
    // relies on for reproducible fleets).
    use sccf::core::{GlobalNeighborSnapshot, NeighborSource};
    use sccf::index::FrozenTierMode;
    let n_users = 50usize;
    let dim = 6usize;
    let mut rng = sccf::util::rng::rng_for(17, 2);
    use rand::Rng;
    let entries: Vec<(u32, Vec<f32>, Vec<u32>)> = (0..n_users as u32)
        .map(|u| {
            let v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            (u, v, vec![u % 3])
        })
        .collect();
    for mode in [
        FrozenTierMode::Hnsw { ef: 16 },
        FrozenTierMode::IvfPq {
            nlist: 4,
            nprobe: 2,
            m: 3,
        },
    ] {
        let snap =
            GlobalNeighborSnapshot::build_with_mode(5, n_users, dim, mode, 77, entries.clone());
        assert_eq!(snap.tier_mode(), mode);
        let bytes = snap.encode();
        let back = GlobalNeighborSnapshot::decode(&bytes).expect("own artifact decodes");
        assert_eq!(back.encode(), bytes, "roundtrip must be byte-identical");
        let again =
            GlobalNeighborSnapshot::build_with_mode(5, n_users, dim, mode, 77, entries.clone());
        assert_eq!(
            again.encode(),
            bytes,
            "seeded rebuild must be byte-identical"
        );
        // Truncations anywhere in the accel section are typed errors.
        assert!(GlobalNeighborSnapshot::decode(&bytes[..bytes.len() - 3]).is_err());
    }
}

// ------------------------------------------- corruption proptests
//
// Every `SCCF*` byte format shares one contract: a decoder fed
// truncated input or a corrupted length prefix returns a typed error —
// it never panics, never over-allocates on an oversized count (every
// multiply is `checked_mul`-guarded), and never half-applies. The
// properties below feed each public decoder every strict prefix and
// randomized byte corruption of a valid artifact.

use proptest::prelude::*;

/// A valid engine-snapshot artifact (`SCCFRT01`) and the histories it
/// encodes.
fn histories_artifact(seed: u64) -> (Vec<Vec<u32>>, Vec<u8>) {
    use proptest::Gen;
    let mut g = Gen::new(seed);
    let n_users = 1 + g.below(20) as usize;
    let histories: Vec<Vec<u32>> = (0..n_users)
        .map(|_| (0..g.below(12)).map(|_| g.below(500) as u32).collect())
        .collect();
    let bytes = sccf::core::encode_histories(&histories);
    (histories, bytes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `SCCFRT01` (whole-engine snapshot): every strict prefix is a
    /// typed error, and arbitrary byte corruption never panics.
    #[test]
    fn histories_decoder_survives_truncation_and_corruption(
        seed in 0u64..10_000,
        cut_frac in 0.0f64..1.0,
        flip_pos in 0usize..4096,
        flip_bit in 0u8..8,
    ) {
        let (histories, bytes) = histories_artifact(seed);
        prop_assert_eq!(
            sccf::core::decode_histories(&bytes).expect("own artifact decodes"),
            histories
        );
        let cut = (bytes.len() as f64 * cut_frac) as usize;
        prop_assert!(
            sccf::core::decode_histories(&bytes[..cut.min(bytes.len() - 1)]).is_err(),
            "a strict prefix must not decode"
        );
        let mut corrupt = bytes.clone();
        let pos = flip_pos % corrupt.len();
        corrupt[pos] ^= 1 << flip_bit;
        // Flips in id regions may decode to different content; flips in
        // a length prefix must be caught by the checked-length guards.
        // Either way: a clean return, never a panic or over-allocation.
        let _ = sccf::core::decode_histories(&corrupt);
    }

    /// `SCCFUM01` (per-user state blob, the checkpoint payload): same
    /// contract as above.
    #[test]
    fn user_state_decoder_survives_truncation_and_corruption(
        user in 0u32..1000,
        rep in prop::collection::vec(-1.0f32..1.0, 0..16),
        history in prop::collection::vec(0u32..500, 0..24),
        cut_frac in 0.0f64..1.0,
        flip_pos in 0usize..4096,
        flip_bit in 0u8..8,
    ) {
        let bytes = sccf::core::encode_user_state(user, &rep, &history);
        let (u, r, h) = sccf::core::decode_user_state(&bytes).expect("own artifact decodes");
        prop_assert_eq!(u, user);
        prop_assert_eq!(r, rep);
        prop_assert_eq!(h, history);
        let cut = (bytes.len() as f64 * cut_frac) as usize;
        prop_assert!(
            sccf::core::decode_user_state(&bytes[..cut.min(bytes.len() - 1)]).is_err(),
            "a strict prefix must not decode"
        );
        let mut corrupt = bytes.clone();
        let pos = flip_pos % corrupt.len();
        corrupt[pos] ^= 1 << flip_bit;
        let _ = sccf::core::decode_user_state(&corrupt);
    }

    /// `SCCFWL01` (WAL): corruption anywhere makes the scan stop at a
    /// frame boundary — the surviving records are always an exact
    /// prefix of the original sequence, never a reordered or
    /// half-decoded subset (CRC framing catches every single-bit flip).
    #[test]
    fn wal_scan_yields_an_exact_prefix_under_any_corruption(
        n_records in 1usize..40,
        cut_frac in 0.0f64..1.0,
        flip_pos in 0usize..4096,
        flip_bit in 0u8..8,
    ) {
        use sccf::serving::wal;
        let dir = std::env::temp_dir()
            .join(format!("sccf_ser_wal_{}_{n_records}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = wal::wal_path(&dir, 0);
        let mut w = wal::WalWriter::create(&path, 4).unwrap();
        for k in 0..n_records as u64 {
            w.append(wal::WalRecord {
                seq: k + 1,
                user: (k * 7 % 64) as u32,
                item: (k * 13 % 64) as u32,
            })
            .unwrap();
        }
        w.sync().unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let _ = std::fs::remove_dir_all(&dir);

        let clean = wal::scan_wal(&bytes).expect("own artifact scans clean");
        prop_assert_eq!(clean.records.len(), n_records);

        // Truncate anywhere past the magic: scan keeps whole frames only.
        let cut = wal::WAL_MAGIC.len()
            + ((bytes.len() - wal::WAL_MAGIC.len()) as f64 * cut_frac) as usize;
        let scan = wal::scan_wal(&bytes[..cut]).expect("torn tails are data, not errors");
        let whole = (cut - wal::WAL_MAGIC.len()) / wal::RECORD_FRAME_LEN;
        prop_assert_eq!(scan.records.len(), whole);

        // Flip one bit anywhere past the magic: the records that survive
        // are an exact prefix of the clean sequence.
        let mut corrupt = bytes.clone();
        let pos = wal::WAL_MAGIC.len() + flip_pos % (corrupt.len() - wal::WAL_MAGIC.len());
        corrupt[pos] ^= 1 << flip_bit;
        let scan = wal::scan_wal(&corrupt).expect("corrupt tails are data, not errors");
        prop_assert!(scan.records.len() < n_records, "CRC must catch every single-bit flip");
        for (got, want) in scan.records.iter().zip(&clean.records) {
            prop_assert_eq!(got, want);
        }
    }

    /// `SCCFCP01` (checkpoint): all-or-nothing — every strict prefix
    /// and every single-bit flip is a typed error (header and every
    /// blob are CRC-framed; the entry count is sanity-bounded against
    /// the remaining bytes, so an oversized count cannot drive an
    /// allocation).
    #[test]
    fn checkpoint_decoder_is_all_or_nothing(
        n_blobs in 0usize..10,
        blob_len in 1usize..40,
        cut_frac in 0.0f64..1.0,
        flip_pos in 0usize..4096,
        flip_bit in 0u8..8,
    ) {
        use sccf::serving::wal;
        let blobs: Vec<Vec<u8>> = (0..n_blobs)
            .map(|b| (0..blob_len).map(|i| (b * 31 + i) as u8).collect())
            .collect();
        let bytes = wal::encode_checkpoint(3, 999, &blobs);
        let ck = wal::decode_checkpoint(&bytes).expect("own artifact decodes");
        prop_assert_eq!(ck.epoch, 3);
        prop_assert_eq!(ck.watermark, 999);
        prop_assert_eq!(&ck.blobs, &blobs);

        let cut = (bytes.len() as f64 * cut_frac) as usize;
        prop_assert!(
            wal::decode_checkpoint(&bytes[..cut.min(bytes.len() - 1)]).is_err(),
            "a strict prefix must not decode"
        );
        let mut corrupt = bytes.clone();
        let pos = flip_pos % corrupt.len();
        corrupt[pos] ^= 1 << flip_bit;
        prop_assert!(
            wal::decode_checkpoint(&corrupt).is_err(),
            "flip at byte {pos} went undetected"
        );
    }

    /// `SCCFGT02`/`SCCFFZ01`/`SCCFAC01` (global-tier snapshot and its
    /// embedded frozen/accelerator sections): truncation is always a
    /// typed error; arbitrary corruption never panics.
    #[test]
    fn tier_snapshot_decoder_survives_truncation_and_corruption(
        seed in 0u64..10_000,
        cut_frac in 0.0f64..1.0,
        flip_pos in 0usize..65_536,
        flip_bit in 0u8..8,
    ) {
        use proptest::Gen;
        use sccf::core::GlobalNeighborSnapshot;
        let mut g = Gen::new(seed);
        let dim = 4usize;
        let n_users = 2 + g.below(30) as usize;
        let entries: Vec<(u32, Vec<f32>, Vec<u32>)> = (0..n_users as u32)
            .map(|u| {
                let v: Vec<f32> = (0..dim).map(|_| g.unit_f64() as f32 - 0.5).collect();
                let w: Vec<u32> = (0..g.below(5)).map(|_| g.below(64) as u32).collect();
                (u, v, w)
            })
            .collect();
        let snap = GlobalNeighborSnapshot::build(1, n_users, dim, entries);
        let bytes = snap.encode();
        prop_assert!(GlobalNeighborSnapshot::decode(&bytes).is_ok());

        let cut = (bytes.len() as f64 * cut_frac) as usize;
        prop_assert!(
            GlobalNeighborSnapshot::decode(&bytes[..cut.min(bytes.len() - 1)]).is_err(),
            "a strict prefix must not decode"
        );
        let mut corrupt = bytes.clone();
        let pos = flip_pos % corrupt.len();
        corrupt[pos] ^= 1 << flip_bit;
        let _ = GlobalNeighborSnapshot::decode(&corrupt);
    }
}

// ------------------------------------ fleet wire protocol (sccf-net)

/// A deterministic mixed bag of fleet requests for the stream
/// properties below.
fn fleet_requests(seed: u64, n: usize) -> Vec<sccf::net::Request> {
    use proptest::Gen;
    use sccf::net::Request;
    use sccf::serving::RecQuery;
    let mut g = Gen::new(seed);
    (0..n)
        .map(|_| match g.below(6) {
            0 => Request::Ping,
            1 => Request::IngestBatch(
                (0..g.below(8))
                    .map(|_| (g.below(100) as u32, g.below(100) as u32))
                    .collect(),
            ),
            2 => Request::Recommend {
                user: g.below(100) as u32,
                query: RecQuery::top(1 + g.below(10) as usize),
            },
            3 => Request::Flush,
            4 => Request::ExportUsers((0..g.below(6)).map(|_| g.below(100) as u32).collect()),
            _ => Request::Checkpoint,
        })
        .collect()
}

/// Frame `reqs` into one contiguous stream; returns the stream and the
/// byte offset where each frame ends.
fn framed_stream(reqs: &[sccf::net::Request]) -> (Vec<u8>, Vec<usize>) {
    use sccf::net::proto::write_message;
    let mut stream = Vec::new();
    let mut ends = Vec::new();
    for r in reqs {
        write_message(&mut stream, &r.encode()).expect("Vec sink never fails");
        ends.push(stream.len());
    }
    (stream, ends)
}

/// Scan a framed stream to exhaustion: recovered messages, plus whether
/// the stream ended cleanly (EOF at a frame boundary) or torn/corrupt.
fn scan_stream(mut cursor: &[u8]) -> (Vec<sccf::net::Request>, bool) {
    use sccf::net::proto::read_message;
    use sccf::net::Request;
    let mut buf = Vec::new();
    let mut got = Vec::new();
    let clean = loop {
        match read_message(&mut cursor, &mut buf) {
            Ok(Some(())) => match Request::decode(&buf) {
                Ok(r) => got.push(r),
                Err(_) => break false,
            },
            Ok(None) => break true,
            Err(_) => break false,
        }
    };
    (got, clean)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Fleet frame scan under truncation: the survivors are exactly the
    /// frames fully contained in the cut — an exact prefix of what was
    /// sent — and the scan reports clean EOF iff the cut lands on a
    /// frame boundary.
    #[test]
    fn fleet_stream_truncation_recovers_exact_prefix(
        seed in 0u64..10_000,
        n in 1usize..8,
        cut_frac in 0.0f64..1.0,
    ) {
        let reqs = fleet_requests(seed, n);
        let (stream, ends) = framed_stream(&reqs);
        let cut = (stream.len() as f64 * cut_frac) as usize;
        let n_complete = ends.iter().filter(|&&e| e <= cut).count();
        let (got, clean) = scan_stream(&stream[..cut]);
        prop_assert_eq!(&got[..], &reqs[..n_complete], "survivors must be an exact prefix");
        prop_assert_eq!(clean, cut == 0 || ends.contains(&cut));
    }

    /// Single-bit corruption anywhere in a framed stream: frames before
    /// the flip are recovered intact, the flipped frame is rejected by
    /// the CRC, and nothing panics. A corrupted stream can never
    /// surface an altered message as valid.
    #[test]
    fn fleet_stream_bit_flips_are_detected(
        seed in 0u64..10_000,
        n in 1usize..8,
        flip_pos in 0usize..65_536,
        flip_bit in 0u8..8,
    ) {
        let reqs = fleet_requests(seed, n);
        let (mut stream, ends) = framed_stream(&reqs);
        let pos = flip_pos % stream.len();
        stream[pos] ^= 1 << flip_bit;
        // The frame whose bytes contain `pos` is the first casualty.
        let corrupt_idx = ends.partition_point(|&e| e <= pos);
        let (got, clean) = scan_stream(&stream);
        prop_assert_eq!(&got[..], &reqs[..corrupt_idx]);
        prop_assert!(!clean, "a flipped bit must not scan as a clean stream");
    }

    /// The payload decoders themselves: every strict prefix of an
    /// encoded request is a typed error, and arbitrary byte corruption
    /// never panics or over-allocates.
    #[test]
    fn fleet_request_decoder_survives_truncation_and_corruption(
        seed in 0u64..10_000,
        cut_frac in 0.0f64..1.0,
        flip_pos in 0usize..65_536,
        flip_bit in 0u8..8,
    ) {
        use sccf::net::Request;
        let req = fleet_requests(seed, 1).pop().expect("one request");
        let bytes = req.encode();
        prop_assert_eq!(Request::decode(&bytes).expect("own encoding decodes"), req);
        let cut = ((bytes.len() as f64 * cut_frac) as usize).min(bytes.len() - 1);
        prop_assert!(Request::decode(&bytes[..cut]).is_err(), "a strict prefix must not decode");
        let mut corrupt = bytes.clone();
        let pos = flip_pos % corrupt.len();
        corrupt[pos] ^= 1 << flip_bit;
        // Tag or count flips must fail cleanly; value flips may decode
        // to different content. Either way: no panic, no OOM.
        let _ = Request::decode(&corrupt);
    }
}

// -------------------------------- pipelined stream delivery hazards
//
// A pipelined connection keeps several frames back-to-back on one TCP
// stream, and the kernel is free to deliver them in arbitrary
// fragments (partial reads) or accept them in arbitrary slivers
// (short writes). The framing layer must reassemble the exact frame
// sequence regardless — the FIFO request/response pairing the fleet
// router relies on is only sound if fragmentation can never reorder,
// merge, or bleed bytes across frames.

/// A reader that fragments the stream into tiny variable-size chunks —
/// the pathological TCP delivery `read_message` must reassemble.
struct ChoppyReader<'a> {
    data: &'a [u8],
    pos: usize,
    sizes: Vec<usize>,
    k: usize,
}

impl std::io::Read for ChoppyReader<'_> {
    fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
        if self.pos == self.data.len() {
            return Ok(0);
        }
        let want = self.sizes[self.k % self.sizes.len()].max(1);
        self.k += 1;
        let n = want.min(out.len()).min(self.data.len() - self.pos);
        out[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

/// A writer that accepts only a few bytes per call (short writes) and
/// dies outright once `budget` total bytes have been taken — the
/// mid-frame connection loss a poisoned `Connection` models.
struct DribbleWriter {
    out: Vec<u8>,
    sizes: Vec<usize>,
    k: usize,
    budget: usize,
}

impl std::io::Write for DribbleWriter {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        if self.out.len() >= self.budget {
            return Err(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "wire died mid-stream",
            ));
        }
        let want = self.sizes[self.k % self.sizes.len()].max(1);
        self.k += 1;
        let n = want.min(buf.len()).min(self.budget - self.out.len());
        self.out.extend_from_slice(&buf[..n]);
        Ok(n)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Partial reads: a pipelined stream delivered in arbitrary tiny
    /// fragments reassembles to exactly the sent frame sequence — same
    /// frames, same order, no bytes bleeding across frame boundaries,
    /// clean EOF at the end.
    #[test]
    fn pipelined_stream_survives_arbitrary_read_fragmentation(
        seed in 0u64..10_000,
        n in 1usize..10,
        sizes in prop::collection::vec(1usize..7, 1..8),
    ) {
        use sccf::net::proto::read_message;
        use sccf::net::Request;
        let reqs = fleet_requests(seed, n);
        let (stream, _) = framed_stream(&reqs);
        let mut rd = ChoppyReader { data: &stream, pos: 0, sizes: sizes.clone(), k: 0 };
        let mut buf = Vec::new();
        let mut got = Vec::new();
        loop {
            match read_message(&mut rd, &mut buf) {
                Ok(Some(())) => got.push(
                    Request::decode(&buf).expect("reassembled frame decodes intact"),
                ),
                Ok(None) => break,
                Err(e) => prop_assert!(
                    false,
                    "fragmented delivery of a clean stream must not error: {e}"
                ),
            }
        }
        prop_assert_eq!(&got[..], &reqs[..], "fragmentation reordered or bled frames");
    }

    /// Short writes: frames pushed through a writer that takes only a
    /// few bytes per call and dies mid-stream leave a byte-exact prefix
    /// of the clean stream on the wire. Scanning that prefix recovers
    /// exactly the fully-written frames — a torn trailing frame is
    /// detected, never surfaced as a message, and nothing panics.
    #[test]
    fn pipelined_short_writes_leave_an_exact_survivor_prefix(
        seed in 0u64..10_000,
        n in 1usize..10,
        sizes in prop::collection::vec(1usize..7, 1..8),
        budget_frac in 0.0f64..1.25,
    ) {
        use sccf::net::proto::write_message;
        let reqs = fleet_requests(seed, n);
        let (full, ends) = framed_stream(&reqs);
        let budget = (full.len() as f64 * budget_frac) as usize;
        let mut w = DribbleWriter { out: Vec::new(), sizes: sizes.clone(), k: 0, budget };
        let mut accepted = 0usize;
        for r in &reqs {
            match write_message(&mut w, &r.encode()) {
                Ok(()) => accepted += 1,
                Err(_) => break, // poison point: no further frames enter the wire
            }
        }
        // Whatever reached the wire is a byte-exact prefix of the clean
        // stream — short writes never duplicated or skipped bytes.
        prop_assert_eq!(&w.out[..], &full[..w.out.len()]);
        // The receiver recovers exactly the frames fully on the wire.
        let n_complete = ends.iter().filter(|&&e| e <= w.out.len()).count();
        let (got, clean) = scan_stream(&w.out);
        prop_assert_eq!(&got[..], &reqs[..n_complete], "survivors must be an exact prefix");
        prop_assert!(accepted >= n_complete, "a frame cannot survive unacknowledged");
        if budget >= full.len() {
            prop_assert_eq!(accepted, n);
            prop_assert!(clean, "an undamaged stream must scan to clean EOF");
        }
    }
}
