//! Closed-loop control plane acceptance: the autoscaling + refresh
//! policy, proven by a deterministic policy-simulation harness.
//!
//! [`PolicyState`] is a pure function of its observation sequence —
//! no wall clock, no I/O, no randomness — so every property here is
//! driven by `Observation` streams fabricated from a seeded
//! [`Lcg`]. A failing seed is printed in the panic message and
//! replays the identical decision trace locally (that replayability
//! is itself the last property in the pure section). The engine-level
//! tests then pin the actuator side: a delta tier refresh must be
//! **bit-identical** to a full rebuild at the same watermark, and a
//! real [`ControlDriver`] must actually scale a fleet under a
//! sustained burst. Exact-replay claims stop at the policy layer on
//! purpose: live pressure readings depend on worker scheduling, which
//! is why the policy consumes value-typed observations a simulation
//! can fabricate.

use sccf::serving::control::{Decision, Observation, PolicyConfig, PolicyState};
use sccf::serving::{
    ActuatorStep, ControlDriver, RecQuery, RouterKind, ServingApi, ShardedConfig, ShardedEngine,
};
use sccf_bench::chaos::{ChaosWorld, Lcg};
use sccf_bench::workload::{FlashSale, WorkloadConfig, WorkloadGen};

const SEEDS: [u64; 8] = [1, 2, 3, 5, 8, 13, 21, 42];

fn cfg() -> PolicyConfig {
    PolicyConfig {
        min_shards: 1,
        max_shards: 8,
        scale_up_pressure: 0.10,
        scale_down_pressure: 0.01,
        sustain_ticks: 3,
        scale_in_sustain_ticks: 6,
        reshard_cooldown: 8,
        refresh_staleness: 1_000,
        refresh_cooldown: 10,
    }
}

fn obs(tick: u64, n_shards: usize, pressure: f64) -> Observation {
    Observation {
        tick,
        n_shards,
        pressure,
        staleness: 0,
        tier_present: true,
        delta_ready: true,
        epoch_in_flight: false,
    }
}

// ------------------------------------------------------ pure policy

/// Hysteresis: load that oscillates around the scale-up edge — hot
/// runs always shorter than `sustain_ticks`, broken by dead-band
/// ticks — must never reshard, in either direction, ever.
#[test]
fn oscillating_load_near_threshold_never_reshards() {
    let c = cfg();
    for &seed in &SEEDS {
        let mut r = Lcg::new(seed);
        let mut p = PolicyState::new(c).unwrap();
        let mut tick = 0u64;
        while tick < 500 {
            // 1..sustain_ticks hot ticks: never enough to fire.
            let hot_run = 1 + r.below(c.sustain_ticks as u64 - 1);
            for _ in 0..hot_run {
                let pressure = c.scale_up_pressure + (r.below(90) as f64) / 100.0;
                let d = p.decide(&obs(tick, 2, pressure));
                assert!(
                    !matches!(d, Decision::ScaleTo(_)),
                    "seed {seed} tick {tick}: resharded ({d:?}) inside a short hot run"
                );
                tick += 1;
            }
            // 1..=2 dead-band ticks: reset both streaks without ever
            // counting as calm (so scale-in can't accumulate either).
            for _ in 0..=r.below(2) {
                let d = p.decide(&obs(tick, 2, 0.05));
                assert!(
                    !matches!(d, Decision::ScaleTo(_)),
                    "seed {seed} tick {tick}: resharded ({d:?}) in the dead band"
                );
                tick += 1;
            }
        }
    }
}

/// Sustained backpressure with the actuator feedback closed: shard
/// count doubles 1→2→4→8, exactly one scale-up per level, consecutive
/// scale-ups spaced by the cooldown, and nothing further at the cap.
#[test]
fn sustained_backpressure_scales_up_exactly_once_per_level() {
    let c = cfg();
    let mut p = PolicyState::new(c).unwrap();
    let mut n_shards = 1usize;
    let mut ups: Vec<(u64, usize)> = Vec::new();
    for tick in 0..200u64 {
        match p.decide(&obs(tick, n_shards, 0.9)) {
            Decision::ScaleTo(m) => {
                assert_eq!(m, n_shards * 2, "tick {tick}: not a doubling step");
                ups.push((tick, m));
                n_shards = m; // the actuator applies the decision
            }
            Decision::Hold => {}
            other => panic!("tick {tick}: unexpected {other:?} under pure pressure"),
        }
    }
    let targets: Vec<usize> = ups.iter().map(|&(_, m)| m).collect();
    assert_eq!(targets, vec![2, 4, 8], "one scale-up per level, then cap");
    for w in ups.windows(2) {
        assert!(
            w[1].0 - w[0].0 >= c.reshard_cooldown as u64,
            "scale-ups {w:?} closer than the cooldown"
        );
    }
}

/// Freshness: staleness crossing the threshold on a calm fleet fires
/// exactly one refresh — delta when the installed tier is the
/// fleet's own, full otherwise — and the refresh cooldown spaces the
/// next one.
#[test]
fn staleness_threshold_fires_refresh_once() {
    let c = cfg();
    for delta_ready in [true, false] {
        let mut p = PolicyState::new(c).unwrap();
        let mut fired: Vec<(u64, Decision)> = Vec::new();
        for tick in 0..40u64 {
            let mut o = obs(tick, 1, 0.0);
            o.staleness = tick * 100; // crosses 1_000 at tick 10
            o.delta_ready = delta_ready;
            let d = p.decide(&o);
            if d != Decision::Hold {
                fired.push((tick, d));
            }
        }
        let want = if delta_ready {
            Decision::RefreshDelta
        } else {
            Decision::RefreshFull
        };
        assert!(
            !fired.is_empty() && fired[0] == (10, want),
            "delta_ready={delta_ready}: first firing was {fired:?}"
        );
        for w in fired.windows(2) {
            assert_eq!(w[1].1, want);
            assert!(
                w[1].0 - w[0].0 >= c.refresh_cooldown as u64,
                "refreshes {w:?} closer than the cooldown"
            );
        }
    }
}

/// Fuzz both cooldowns at once: seeded random pressure, staleness and
/// in-flight flags, actuator feedback closed. Invariants: an
/// in-flight epoch always yields `Hold`, consecutive scaling
/// decisions are spaced by `reshard_cooldown`, consecutive refreshes
/// by `refresh_cooldown`, and the shard count never leaves
/// `[min_shards, max_shards]`.
#[test]
fn cooldowns_and_bounds_hold_under_random_load() {
    let c = cfg();
    for &seed in &SEEDS {
        let mut r = Lcg::new(seed);
        let mut p = PolicyState::new(c).unwrap();
        let mut n_shards = 1usize;
        let mut last_reshard: Option<u64> = None;
        let mut last_refresh: Option<u64> = None;
        for tick in 0..1_000u64 {
            let o = Observation {
                tick,
                n_shards,
                pressure: (r.below(1_000) as f64) / 1_000.0,
                staleness: r.below(3_000),
                tier_present: r.chance(90),
                delta_ready: r.chance(70),
                epoch_in_flight: r.chance(20),
            };
            let d = p.decide(&o);
            if o.epoch_in_flight {
                assert_eq!(
                    d,
                    Decision::Hold,
                    "seed {seed} tick {tick}: acted mid-epoch"
                );
                continue;
            }
            match d {
                Decision::ScaleTo(m) => {
                    if let Some(t0) = last_reshard {
                        assert!(
                            tick - t0 >= c.reshard_cooldown as u64,
                            "seed {seed}: reshards at {t0} and {tick} inside cooldown"
                        );
                    }
                    assert!(
                        (c.min_shards..=c.max_shards).contains(&m),
                        "seed {seed} tick {tick}: target {m} out of bounds"
                    );
                    last_reshard = Some(tick);
                    n_shards = m;
                }
                Decision::RefreshFull | Decision::RefreshDelta => {
                    if let Some(t0) = last_refresh {
                        assert!(
                            tick - t0 >= c.refresh_cooldown as u64,
                            "seed {seed}: refreshes at {t0} and {tick} inside cooldown"
                        );
                    }
                    last_refresh = Some(tick);
                }
                Decision::Hold => {}
            }
        }
    }
}

/// The replay contract the whole harness rests on: the same seed
/// produces the same observation stream produces the same decision
/// trace, bit for bit — including when one policy is cloned mid-run
/// and both halves continue independently.
#[test]
fn failing_seeds_replay_identical_decision_traces() {
    let c = cfg();
    for &seed in &SEEDS {
        let stream = |s: u64| {
            let mut r = Lcg::new(s);
            (0..600u64).map(move |tick| Observation {
                tick,
                n_shards: 1 + r.below(8) as usize,
                pressure: (r.below(1_000) as f64) / 1_000.0,
                staleness: r.below(3_000),
                tier_present: r.chance(90),
                delta_ready: r.chance(70),
                epoch_in_flight: r.chance(20),
            })
        };
        let mut a = PolicyState::new(c).unwrap();
        let trace_a: Vec<Decision> = stream(seed).map(|o| a.decide(&o)).collect();
        let mut b = PolicyState::new(c).unwrap();
        let mut forked: Option<PolicyState> = None;
        let mut trace_b = Vec::new();
        let mut trace_f = Vec::new();
        for (i, o) in stream(seed).enumerate() {
            if i == 300 {
                forked = Some(b.clone());
            }
            trace_b.push(b.decide(&o));
            if let Some(f) = forked.as_mut() {
                trace_f.push(f.decide(&o));
            }
        }
        assert_eq!(trace_a, trace_b, "seed {seed}: replay diverged");
        assert_eq!(
            &trace_a[300..],
            &trace_f[..],
            "seed {seed}: mid-run clone diverged from the original"
        );
    }
}

// --------------------------------------------------- engine actuator

fn fleet(world: &ChaosWorld, n_shards: usize) -> ShardedEngine<sccf::models::Fism> {
    let cfg = ShardedConfig {
        n_shards,
        queue_capacity: 256,
        router: RouterKind::Consistent { vnodes: 8 },
    };
    ShardedEngine::try_new(world.fresh_sccf(), world.histories.clone(), cfg).expect("fleet builds")
}

fn event_stream(world: &ChaosWorld, seed: u64, len: usize) -> Vec<(u32, u32)> {
    let mut r = Lcg::new(seed);
    (0..len)
        .map(|_| {
            (
                r.below(world.n_users as u64) as u32,
                r.below(world.n_items as u64) as u32,
            )
        })
        .collect()
}

fn all_slates(
    e: &mut ShardedEngine<sccf::models::Fism>,
    n_users: usize,
) -> Vec<Vec<sccf::util::topk::Scored>> {
    let q = RecQuery::top(10);
    (0..n_users as u32)
        .map(|u| e.try_recommend(u, &q).expect("recommend").items)
        .collect()
}

fn assert_slates_bit_identical(
    a: &[Vec<sccf::util::topk::Scored>],
    b: &[Vec<sccf::util::topk::Scored>],
    ctx: &str,
) {
    assert_eq!(a.len(), b.len());
    for (u, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.len(), y.len(), "{ctx}: user {u} slate length");
        for (i, j) in x.iter().zip(y) {
            assert_eq!(i.id, j.id, "{ctx}: user {u} item id");
            assert_eq!(
                i.score.to_bits(),
                j.score.to_bits(),
                "{ctx}: user {u} score bits differ on item {}",
                i.id
            );
        }
    }
}

/// The pinned equivalence the delta path must honor forever: at the
/// same event watermark, a delta refresh (re-export only users dirty
/// since the last epoch) installs a tier whose **encoded snapshot
/// bytes** equal a from-scratch full rebuild's, and every
/// recommendation slate matches to the float bit. An empty delta —
/// no user dirty — exports zero users and leaves the bytes unchanged.
#[test]
fn delta_refresh_is_bit_identical_to_full_rebuild() {
    let world = ChaosWorld::build(42);
    let mut full = fleet(&world, 4);
    let mut delta = fleet(&world, 4);

    // Same prefix into both, tier built by each fleet's own pipeline.
    let prefix = event_stream(&world, 7, 300);
    full.ingest_batch(&prefix).unwrap();
    delta.ingest_batch(&prefix).unwrap();
    full.flush().unwrap();
    delta.flush().unwrap();
    let r0 = full.refresh_global_tier().unwrap();
    let r1 = delta.refresh_global_tier().unwrap();
    assert!(!r0.delta && !r1.delta);
    assert_eq!(
        full.global_tier().unwrap().encode(),
        delta.global_tier().unwrap().encode(),
        "identical fleets built different base tiers"
    );

    // Same delta stream; then full rebuild vs dirty-only delta.
    let tail = event_stream(&world, 11, 120);
    let touched: std::collections::BTreeSet<u32> = tail.iter().map(|&(u, _)| u).collect();
    full.ingest_batch(&tail).unwrap();
    delta.ingest_batch(&tail).unwrap();
    full.flush().unwrap();
    delta.flush().unwrap();
    let rf = full.refresh_global_tier().unwrap();
    let rd = delta.refresh_global_tier_delta().unwrap();
    assert!(!rf.delta && rd.delta);
    assert_eq!(
        rf.users, world.n_users as u64,
        "full exports the population"
    );
    assert_eq!(
        rd.users,
        touched.len() as u64,
        "delta exports exactly the dirty users"
    );
    assert_eq!(
        full.global_tier().unwrap().encode(),
        delta.global_tier().unwrap().encode(),
        "delta tier bytes diverge from the full rebuild"
    );
    let sf = all_slates(&mut full, world.n_users);
    let sd = all_slates(&mut delta, world.n_users);
    assert_slates_bit_identical(&sf, &sd, "post-delta");

    // Empty delta: nothing dirty, nothing exported. The installed
    // snapshot differs from the previous one only in its epoch stamp
    // (bytes 8..16 of the encoding) — documented on
    // `begin_delta_refresh`; a full refresh at the same watermark
    // bumps the epoch identically.
    let before = delta.global_tier().unwrap().encode();
    let re = delta.refresh_global_tier_delta().unwrap();
    assert!(re.delta);
    assert_eq!(re.users, 0, "empty delta exported users");
    let after = delta.global_tier().unwrap().encode();
    assert_eq!(after.len(), before.len());
    assert_eq!(&after[..8], &before[..8], "magic changed");
    assert_ne!(&after[8..16], &before[8..16], "epoch stamp did not advance");
    assert_eq!(
        &after[16..],
        &before[16..],
        "empty delta rewrote tier content beyond the epoch stamp"
    );

    full.shutdown();
    delta.shutdown();
}

/// End-to-end actuator smoke: a real `ControlDriver` on a real fleet,
/// fed the seeded flash-sale workload, must (a) scale up at least
/// once, (b) hold while epochs are in flight, (c) drain to idle on
/// `settle`, and (d) keep the shard count inside the policy bounds.
#[test]
fn control_driver_scales_a_real_fleet_under_burst() {
    let world = ChaosWorld::build(42);
    let base = ShardedConfig {
        n_shards: 1,
        queue_capacity: 64,
        router: RouterKind::Consistent { vnodes: 8 },
    };
    let mut engine =
        ShardedEngine::try_new(world.fresh_sccf(), world.histories.clone(), base.clone())
            .expect("fleet builds");
    engine.refresh_global_tier().expect("initial tier");
    let policy = PolicyConfig {
        min_shards: 1,
        max_shards: 4,
        scale_up_pressure: 0.5,
        scale_down_pressure: 0.05,
        sustain_ticks: 2,
        scale_in_sustain_ticks: 64,
        reshard_cooldown: 2,
        refresh_staleness: 100_000, // freshness out of the way
        refresh_cooldown: 4,
    };
    let mut driver = ControlDriver::new(engine, base, policy)
        .expect("valid policy")
        .with_batches(world.n_users, world.n_users);
    let wl = WorkloadConfig {
        seed: 42,
        n_users: world.n_users as u32,
        n_items: world.n_items as u32,
        ticks: 48,
        base_events_per_tick: 48,
        recommends_per_tick: 4,
        diurnal_period: 24,
        diurnal_amplitude: 0.4,
        user_skew: 2.0,
        flash: Some(FlashSale {
            start: 12,
            len: 24,
            multiplier: 10.0,
            hot_item: 0,
            hot_percent: 40,
        }),
    };
    let q = RecQuery::top(5);
    let mut gen = WorkloadGen::new(wl);
    while let Some(tick) = gen.next_tick() {
        driver.engine_mut().ingest_batch(&tick.events).unwrap();
        for &u in &tick.recommends {
            driver.engine_mut().try_recommend(u, &q).unwrap();
        }
        driver.step().expect("control tick");
    }
    driver.settle(64).expect("control plane drains");
    assert!(!driver.epoch_in_flight(), "settle left an epoch in flight");

    let mut scale_ups = 0;
    for r in driver.log() {
        if r.obs.epoch_in_flight {
            assert_eq!(
                r.decision,
                Decision::Hold,
                "tick {}: decided {:?} mid-epoch",
                r.obs.tick,
                r.decision
            );
        }
        if let ActuatorStep::BeginReshard(m) = r.step {
            assert!((1..=4).contains(&m), "reshard target {m} out of bounds");
            scale_ups += 1;
        }
    }
    assert!(
        scale_ups >= 1,
        "a x10 flash burst on a 64-deep queue never scaled the fleet"
    );
    assert!(driver.engine().n_shards() > 1, "burst ended at one shard");
    driver.into_engine().shutdown();
}
