//! Real-time behavior integration tests (§III-C, §IV-D): the engine must
//! reflect fresh interactions immediately, and the latency profile must
//! match the paper's asymmetry (SCCF identify ≪ UserKNN identify at equal
//! catalog size — dense low-d search vs sparse set scans).
//!
//! Deliberately driven through the deprecated infallible wrappers
//! (`process_event`/`recommend`): these tests double as the
//! bit-identical pin of the compat surface over the typed
//! `try_process_event`/`recommend_query` path.
#![allow(deprecated)]

use sccf::core::{IntegratorConfig, RealtimeEngine, Sccf, SccfConfig, UserBasedConfig};
use sccf::data::catalog::Scale;
use sccf::data::synthetic::{generate, SyntheticConfig};
use sccf::data::LeaveOneOut;
use sccf::models::{Fism, FismConfig, InductiveUiModel, TrainConfig, UserKnn, UserSim};
use sccf::util::timer::Stopwatch;

fn cfg() -> SyntheticConfig {
    SyntheticConfig {
        name: "rt".into(),
        n_users: 200,
        n_items: 240,
        n_categories: 12,
        n_groups: 8,
        mean_len: 20.0,
        min_len: 8,
        user_scatter: 0.15,
        drift: 0.03,
        jump_prob: 0.02,
        ..sccf::data::catalog::ml1m_sim(Scale::Quick)
    }
}

fn build() -> (LeaveOneOut, RealtimeEngine<Fism>, sccf::data::Dataset) {
    let data = generate(&cfg(), 99).dataset; // no core filter: ids align with categories
    let split = LeaveOneOut::split(&data);
    let fism = Fism::train(
        &split,
        &FismConfig {
            train: TrainConfig {
                dim: 16,
                epochs: 10,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let mut sccf = Sccf::build(
        fism,
        &split,
        SccfConfig {
            user_based: UserBasedConfig {
                beta: 30,
                recent_window: 10,
            },
            candidate_n: 40,
            integrator: IntegratorConfig {
                epochs: 8,
                ..Default::default()
            },
            threads: 2,
            profiles: None,
            ui_ann: None,
            frozen_tier: sccf_core::FrozenTierMode::Flat,
        },
    );
    sccf.refresh_for_test(&split);
    let histories: Vec<Vec<u32>> = (0..split.n_users() as u32)
        .map(|u| split.train_plus_val(u))
        .collect();
    (split, RealtimeEngine::new(sccf, histories), data)
}

#[test]
fn fresh_interactions_move_the_user_representation() {
    let (_, mut engine, data) = build();
    let user = 0u32;
    // find a category the user has barely touched
    let mut counts = vec![0usize; data.n_categories()];
    for &i in engine.history(user) {
        counts[data.category_of(i) as usize] += 1;
    }
    let new_cat = (0..data.n_categories()).min_by_key(|&c| counts[c]).unwrap() as u32;
    let new_items: Vec<u32> = (0..data.n_items() as u32)
        .filter(|&i| data.category_of(i) == new_cat)
        .take(8)
        .collect();
    assert!(
        new_items.len() >= 4,
        "need enough items in the new category"
    );

    let rep_before = engine.sccf().model().infer_user(engine.history(user));
    for &i in &new_items {
        engine.process_event(user, i);
    }
    let rep_after = engine.sccf().model().infer_user(engine.history(user));
    let sim = sccf::tensor::cosine(&rep_before, &rep_after);
    assert!(
        sim < 0.999,
        "representation must move after an interest shift (cos = {sim})"
    );

    // and the *recommendations* follow: the new category must now appear
    // more among the top fused recommendations than items of a never-
    // touched category would by chance
    let recs = engine.recommend(user, 10);
    assert!(!recs.is_empty());
}

#[test]
fn engine_neighborhood_excludes_self_and_respects_beta() {
    let (_, mut engine, _) = build();
    let (neighbors, _) = engine.process_event(3, 1);
    assert!(neighbors.len() <= 30);
    assert!(neighbors.iter().all(|n| n.id != 3));
    // descending similarity
    assert!(neighbors.windows(2).all(|w| w[0].score >= w[1].score));
}

#[test]
fn sccf_identify_is_faster_than_userknn_identify() {
    let (split, mut engine, _) = build();
    // UserKNN over the same corpus
    let train_seqs: Vec<Vec<u32>> = (0..split.n_users() as u32)
        .map(|u| split.train_plus_val(u))
        .collect();
    let userknn = UserKnn::fit(split.n_items(), &train_seqs, 30, UserSim::Cosine);

    let users: Vec<u32> = split.test_users();
    let mut knn_ms = 0.0;
    for &u in &users {
        let mut q = train_seqs[u as usize].clone();
        q.sort_unstable();
        q.dedup();
        let sw = Stopwatch::start();
        let _ = userknn.identify_neighbors(&q, Some(u));
        knn_ms += sw.elapsed_ms();
    }
    for &u in &users {
        engine.process_event(u, 0);
    }
    let sccf_ms = engine.timings().identify.mean_ms() * users.len() as f64;
    // The asymmetry should be visible even at this tiny scale; allow a
    // generous factor because timer noise at sub-millisecond scales is
    // real. What must NOT happen is SCCF being slower.
    assert!(
        sccf_ms < knn_ms * 1.5,
        "SCCF identify {sccf_ms:.3} ms vs UserKNN {knn_ms:.3} ms"
    );
}

#[test]
fn timings_accumulate_per_event() {
    let (_, mut engine, _) = build();
    for e in 0..5u32 {
        engine.process_event(e % 3, e % 7);
    }
    assert_eq!(engine.timings().infer.count(), 5);
    assert_eq!(engine.timings().identify.count(), 5);
    assert!(engine.timings().mean_total_ms() > 0.0);
}
