//! Cross-crate property-based tests (proptest): the invariants that keep
//! the whole reproduction trustworthy.

use proptest::prelude::*;
use sccf::data::dataset::{Dataset, Interaction};
use sccf::data::LeaveOneOut;
use sccf::index::{FlatIndex, IvfIndex, Metric};
use sccf::util::stats::zscore_normalize;
use sccf::util::topk::{rank_of, topk_of_scores};

// ----------------------------------------------------------- top-k / ranks

proptest! {
    /// TopK must agree with full sort.
    #[test]
    fn topk_equals_sort(scores in prop::collection::vec(-1e3f32..1e3, 1..200), k in 1usize..50) {
        let got: Vec<u32> = topk_of_scores(&scores, k).into_iter().map(|s| s.id).collect();
        let mut idx: Vec<u32> = (0..scores.len() as u32).collect();
        idx.sort_by(|&a, &b| {
            scores[b as usize]
                .total_cmp(&scores[a as usize])
                .then(a.cmp(&b))
        });
        idx.truncate(k);
        prop_assert_eq!(got, idx);
    }

    /// rank_of must equal the position in the same full sort.
    #[test]
    fn rank_of_matches_sort(scores in prop::collection::vec(-1e3f32..1e3, 1..120), target_seed in 0usize..1000) {
        let target = (target_seed % scores.len()) as u32;
        let mut idx: Vec<u32> = (0..scores.len() as u32).collect();
        idx.sort_by(|&a, &b| {
            scores[b as usize]
                .total_cmp(&scores[a as usize])
                .then(a.cmp(&b))
        });
        let expect = idx.iter().position(|&i| i == target).unwrap() + 1;
        prop_assert_eq!(rank_of(&scores, target), expect);
    }
}

// ----------------------------------------------------------- statistics

proptest! {
    /// z-normalization always yields (≈0 mean, ≈unit variance) unless the
    /// input was constant.
    #[test]
    fn zscore_invariants(values in prop::collection::vec(-1e3f32..1e3, 2..100)) {
        let mut v = values.clone();
        zscore_normalize(&mut v);
        let mean: f32 = v.iter().sum::<f32>() / v.len() as f32;
        prop_assert!(mean.abs() < 1e-2, "mean {mean}");
        let var: f32 = v.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / v.len() as f32;
        let orig_var: f32 = {
            let m: f32 = values.iter().sum::<f32>() / values.len() as f32;
            values.iter().map(|x| (x - m) * (x - m)).sum::<f32>() / values.len() as f32
        };
        if orig_var > 1e-6 {
            prop_assert!((var - 1.0).abs() < 0.05, "var {var}");
        }
    }
}

// ----------------------------------------------------------- index exactness

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// FlatIndex top-1 must equal the brute-force argmax.
    #[test]
    fn flat_index_is_exact(
        vectors in prop::collection::vec(prop::collection::vec(-10.0f32..10.0, 4), 1..60),
        query in prop::collection::vec(-10.0f32..10.0, 4),
    ) {
        let mut idx = FlatIndex::new(4, Metric::InnerProduct);
        for v in &vectors {
            idx.add(v);
        }
        let hits = idx.search(&query, 1, None);
        let brute: (u32, f32) = vectors
            .iter()
            .enumerate()
            .map(|(i, v)| (i as u32, v.iter().zip(&query).map(|(a, b)| a * b).sum::<f32>()))
            .max_by(|a, b| a.1.total_cmp(&b.1).then(b.0.cmp(&a.0)))
            .unwrap();
        prop_assert_eq!(hits[0].id, brute.0);
    }

    /// The frozen global tier with nothing skipped — i.e. the merged
    /// two-tier search when the fresh delta is empty — must be
    /// bit-identical to a single flat cosine index over the same
    /// vectors: same ids, same float bits, same tie-breaks.
    #[test]
    fn frozen_tier_with_empty_delta_equals_single_index_search(
        seed in 0u64..1000,
        n in 2usize..80,
        k in 1usize..20,
    ) {
        use rand::Rng;
        use sccf::index::FrozenUserIndex;
        let mut rng = sccf::util::rng::rng_for(seed, 5);
        let dim = 5;
        let data: Vec<f32> = (0..n * dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let frozen = FrozenUserIndex::from_rows(
            n,
            dim,
            data.chunks_exact(dim)
                .enumerate()
                .map(|(i, v)| (i as u32, v.to_vec())),
        );
        let mut flat = FlatIndex::new(dim, Metric::Cosine);
        flat.add_batch(&data);
        let q: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let a = frozen.search(&q, k, &|_| false);
        let e = flat.search(&q, k, None);
        prop_assert_eq!(a.len(), e.len());
        for (x, y) in a.iter().zip(&e) {
            prop_assert_eq!(x.id, y.id);
            prop_assert_eq!(x.score.to_bits(), y.score.to_bits());
        }
    }

    /// Delta-wins dedup: when a user exists in both tiers, the merged
    /// search must surface her exactly once, scored by the *fresh*
    /// (delta) vector — the frozen copy is masked by the skip set. The
    /// union of frozen-minus-masked and the fresh overrides must equal
    /// a single index holding the freshest vector of every user.
    #[test]
    fn delta_wins_dedup_when_user_exists_in_both_tiers(
        seed in 0u64..1000,
        n in 4usize..60,
        k in 1usize..16,
        n_fresh in 1usize..8,
    ) {
        use rand::Rng;
        use sccf::index::FrozenUserIndex;
        use sccf::util::sparse::StampSet;
        let mut rng = sccf::util::rng::rng_for(seed, 6);
        let dim = 4;
        let stale: Vec<f32> = (0..n * dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let frozen = FrozenUserIndex::from_rows(
            n,
            dim,
            stale.chunks_exact(dim)
                .enumerate()
                .map(|(i, v)| (i as u32, v.to_vec())),
        );
        // A fresh delta overriding a subset of users with new vectors.
        let n_fresh = n_fresh.min(n);
        let fresh_ids: Vec<u32> = (0..n_fresh as u32).map(|i| i * (n as u32 / n_fresh as u32)).collect();
        let mut delta = FlatIndex::new(dim, Metric::Cosine);
        let mut fresh_vecs = Vec::new();
        for _ in &fresh_ids {
            let v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            delta.add(&v);
            fresh_vecs.push(v);
        }
        let q: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();

        // The merged two-tier search, exactly as `Sccf` performs it:
        // delta hits first (translated to global ids), stamped into the
        // seen-set; frozen tier skips stamped users; re-rank, top-k.
        let mut seen = StampSet::new(n);
        let mut merged: Vec<sccf::util::topk::Scored> = delta
            .search(&q, k, None)
            .into_iter()
            .map(|mut s| { s.id = fresh_ids[s.id as usize]; s })
            .collect();
        for s in &merged {
            seen.insert(s.id);
        }
        frozen.search_append(&q, k, &|u| seen.contains(u) || fresh_ids.contains(&u), &mut merged);
        merged.sort_unstable_by(|a, b| b.cmp(a));
        merged.truncate(k);

        // Reference: one index where every user has her freshest vector.
        let mut freshest = FlatIndex::new(dim, Metric::Cosine);
        for (u, v) in stale.chunks_exact(dim).enumerate() {
            match fresh_ids.iter().position(|&f| f == u as u32) {
                Some(p) => freshest.add(&fresh_vecs[p]),
                None => freshest.add(v),
            };
        }
        let expect = freshest.search(&q, k, None);
        prop_assert_eq!(merged.len(), expect.len());
        let mut once = StampSet::new(n);
        for (x, y) in merged.iter().zip(&expect) {
            prop_assert_eq!(x.id, y.id);
            prop_assert_eq!(x.score.to_bits(), y.score.to_bits());
            prop_assert!(once.insert(x.id), "user {} surfaced twice", x.id);
        }
    }

    /// IVF with every list probed is exactly the flat result.
    #[test]
    fn ivf_full_probe_is_exact(
        seed in 0u64..1000,
        n in 20usize..120,
    ) {
        use rand::Rng;
        let mut rng = sccf::util::rng::rng_for(seed, 1);
        let dim = 6;
        let data: Vec<f32> = (0..n * dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let nlist = 5;
        let mut ivf = IvfIndex::train(dim, Metric::InnerProduct, nlist, &data, &mut rng);
        let mut flat = FlatIndex::new(dim, Metric::InnerProduct);
        for v in data.chunks_exact(dim) {
            ivf.add(v);
            flat.add(v);
        }
        let q: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let a: Vec<u32> = ivf.search_with_nprobe(&q, 5, None, nlist).iter().map(|s| s.id).collect();
        let e: Vec<u32> = flat.search(&q, 5, None).iter().map(|s| s.id).collect();
        prop_assert_eq!(a, e);
    }
}

// ----------------------------------------------------------- data invariants

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Leave-one-out partitions each user's sequence with no leakage.
    #[test]
    fn loo_partitions(lens in prop::collection::vec(0usize..12, 1..30)) {
        let mut inter = Vec::new();
        let mut item = 0u32;
        let n_items = lens.iter().sum::<usize>().max(1);
        for (u, &len) in lens.iter().enumerate() {
            for t in 0..len {
                inter.push(Interaction { user: u as u32, item, ts: t as i64 });
                item += 1;
            }
        }
        let d = Dataset::from_interactions("p", lens.len(), n_items, &inter, None);
        let s = LeaveOneOut::split(&d);
        for u in 0..lens.len() as u32 {
            let full: Vec<u32> = d.sequence(u).to_vec();
            let mut rebuilt = s.train_seq(u).to_vec();
            if let Some(v) = s.val_item(u) {
                rebuilt.push(v);
            }
            if let Some(t) = s.test_item(u) {
                rebuilt.push(t);
            }
            prop_assert_eq!(rebuilt, full);
        }
    }

    /// 5-core filtering never leaves an item or user below the threshold.
    #[test]
    fn core_filter_postcondition(seed in 0u64..500) {
        use rand::Rng;
        let mut rng = sccf::util::rng::rng_for(seed, 2);
        let n_users = 30;
        let n_items = 40;
        let mut inter = Vec::new();
        for u in 0..n_users {
            let len = rng.gen_range(1..12);
            for t in 0..len {
                inter.push(Interaction {
                    user: u,
                    item: rng.gen_range(0..n_items),
                    ts: t,
                });
            }
        }
        let d = Dataset::from_interactions("c", n_users as usize, n_items as usize, &inter, None);
        let f = d.core_filter(3);
        for u in 0..f.n_users() as u32 {
            prop_assert!(f.sequence(u).len() >= 3);
        }
        for (i, &c) in f.item_counts().iter().enumerate() {
            prop_assert!(c >= 3, "item {i} has {c} actions");
        }
    }
}

// ----------------------------------------------------------- Eq. 12 behavior

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Adding a neighbor can only increase (or keep) every item's UU
    /// score — Eq. 12 is a positive-weighted sum.
    #[test]
    fn uu_scores_monotone_in_neighbors(seed in 0u64..300) {
        use rand::Rng;
        use sccf::core::{UserBasedComponent, UserBasedConfig};
        use sccf::util::topk::Scored;
        let mut rng = sccf::util::rng::rng_for(seed, 3);
        let n_items = 20;
        let histories: Vec<Vec<u32>> = (0..6)
            .map(|_| (0..5).map(|_| rng.gen_range(0..n_items as u32)).collect())
            .collect();
        let comp = UserBasedComponent::new(
            UserBasedConfig { beta: 6, recent_window: 5 },
            n_items,
            histories.into_iter(),
        );
        let mut neighbors: Vec<Scored> = (0..3u32)
            .map(|id| Scored { id, score: rng.gen_range(0.01f32..1.0) })
            .collect();
        let before = comp.scores(&neighbors);
        neighbors.push(Scored { id: 4, score: rng.gen_range(0.01f32..1.0) });
        let after = comp.scores(&neighbors);
        for (b, a) in before.iter().zip(&after) {
            prop_assert!(a >= b);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The sparse Eq. 12 accumulator must match the dense `scores()`
    /// output *exactly* — same neighbors, same floats (summation order is
    /// fixed by construction) — across randomized windows, window sizes,
    /// ring-buffer wrap states, and neighborhoods.
    #[test]
    fn sparse_eq12_matches_dense_exactly(seed in 0u64..500, window in 1usize..20) {
        use rand::Rng;
        use sccf::core::{UserBasedComponent, UserBasedConfig};
        use sccf::util::topk::Scored;
        let mut rng = sccf::util::rng::rng_for(seed, 11);
        let n_items = 64usize;
        let n_users = 10usize;
        let histories: Vec<Vec<u32>> = (0..n_users)
            .map(|_| {
                let len = rng.gen_range(0..3 * window);
                (0..len).map(|_| rng.gen_range(0..n_items as u32)).collect()
            })
            .collect();
        let mut comp = UserBasedComponent::new(
            UserBasedConfig { beta: n_users, recent_window: window },
            n_items,
            histories.into_iter(),
        );
        // roll some rings past capacity so wrapped state is exercised
        for _ in 0..rng.gen_range(0..4 * window) {
            let u = rng.gen_range(0..n_users as u32);
            comp.record(u, rng.gen_range(0..n_items as u32));
        }
        let n_neighbors = rng.gen_range(0..=n_users);
        let neighbors: Vec<Scored> = (0..n_neighbors as u32)
            .map(|id| Scored { id, score: rng.gen_range(-0.5f32..1.0) })
            .collect();
        let dense = comp.scores(&neighbors);
        let mut scratch = comp.new_scratch();
        // run twice through the same scratch: stale state must not leak
        comp.scores_into(&neighbors, &mut scratch);
        comp.scores_into(&neighbors, &mut scratch);
        for (i, &d) in dense.iter().enumerate() {
            let s = scratch.scores.get(i as u32);
            prop_assert_eq!(s.to_bits(), d.to_bits(), "item {} sparse {} dense {}", i, s, d);
        }
        // and every touched id really was scored by some neighbor
        for &(id, _) in scratch.scores.iter().collect::<Vec<_>>().iter() {
            prop_assert!(dense[id as usize] != 0.0 || neighbors.iter().any(|n| n.score == 0.0));
        }
        let mut scratch2 = comp.new_scratch();
        let sparse_cands = comp.candidates_sparse(&neighbors, 10, &mut scratch2);
        prop_assert_eq!(sparse_cands, comp.candidates(&neighbors, 10));
    }
}

// ------------------------------------------------- recommend determinism

/// `recommend` must be byte-identical between the one-shot (allocating)
/// path and the scratch-reusing serving path, and stable across repeated
/// calls through the *same* scratch — on a fixed-seed dataset.
#[test]
fn recommend_identical_between_oneshot_and_scratch_paths() {
    use sccf::core::{Sccf, SccfConfig};
    use sccf::models::{Fism, FismConfig, TrainConfig};
    let mut inter = Vec::new();
    for u in 0..24u32 {
        for t in 0..8i64 {
            inter.push(Interaction {
                user: u,
                item: (u * 3 + t as u32 * 5) % 40,
                ts: t,
            });
        }
    }
    let data = Dataset::from_interactions("det", 24, 40, &inter, None);
    let split = LeaveOneOut::split(&data);
    let fism = Fism::train(
        &split,
        &FismConfig {
            train: TrainConfig {
                dim: 8,
                epochs: 3,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let sccf = Sccf::build(
        fism,
        &split,
        SccfConfig {
            candidate_n: 20,
            threads: 1,
            ..Default::default()
        },
    );
    let mut scratch = sccf.new_scratch();
    for u in 0..24u32 {
        let history = split.train_plus_val(u);
        let oneshot = sccf.recommend(u, &history, 10);
        let with_scratch = sccf.recommend_with(u, &history, 10, &mut scratch);
        assert_eq!(oneshot.len(), with_scratch.len(), "user {u}");
        for (a, b) in oneshot.iter().zip(&with_scratch) {
            assert_eq!(a.id, b.id, "user {u}");
            assert_eq!(a.score.to_bits(), b.score.to_bits(), "user {u}");
        }
        // a second pass through the reused scratch must not drift
        let again = sccf.recommend_with(u, &history, 10, &mut scratch);
        assert_eq!(with_scratch, again, "user {u} scratch reuse drifted");
    }
}

// ------------------------------------------------- scalar quantization

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every SQ8-decoded value stays within half a quantization step of
    /// the original, and codes roundtrip deterministically.
    #[test]
    fn sq_codebook_error_bound(
        data in prop::collection::vec(-10.0f32..10.0, 8..160),
    ) {
        use sccf::index::SqCodebook;
        let dim = 4;
        let n = data.len() / dim;
        let slab = &data[..n * dim];
        let cb = SqCodebook::train(slab, dim);
        let bound = cb.max_error() + 1e-5;
        let mut codes = vec![0u8; dim];
        let mut out = vec![0.0f32; dim];
        for row in slab.chunks_exact(dim) {
            cb.encode(row, &mut codes);
            cb.decode(&codes, &mut out);
            for (a, b) in row.iter().zip(&out) {
                prop_assert!((a - b).abs() <= bound, "{a} vs {b} (bound {bound})");
            }
            // determinism
            let mut codes2 = vec![0u8; dim];
            cb.encode(row, &mut codes2);
            prop_assert_eq!(&codes, &codes2);
        }
    }

    /// SQ8 inner-product search returns the same item the exact scan
    /// does whenever the top-1 margin exceeds the worst-case quantization
    /// slack (d · max_error · max|q|).
    #[test]
    fn sq_search_respects_margin(
        data in prop::collection::vec(-1.0f32..1.0, 32..320),
        qseed in 0u64..1000,
    ) {
        use rand::{Rng, SeedableRng};
        use sccf::index::{FlatIndex, SqIndex};
        let dim = 8;
        let n = data.len() / dim;
        prop_assume!(n >= 2);
        let slab = &data[..n * dim];
        let mut rng = rand::rngs::StdRng::seed_from_u64(qseed);
        let q: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let mut flat = FlatIndex::new(dim, Metric::InnerProduct);
        flat.add_batch(slab);
        let sq = SqIndex::build(slab, dim, Metric::InnerProduct);
        let exact = flat.search(&q, 2, None);
        let approx = sq.search(&q, 1, None);
        let slack = dim as f32
            * sq_max_error(slab, dim)
            * q.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        if exact.len() == 2 && exact[0].score - exact[1].score > 2.0 * slack {
            prop_assert_eq!(approx[0].id, exact[0].id);
        }
    }
}

/// Worst-case per-dimension SQ8 reconstruction error for a slab.
fn sq_max_error(slab: &[f32], dim: usize) -> f32 {
    sccf::index::SqCodebook::train(slab, dim).max_error()
}

// ------------------------------------------------- watermark reordering

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Any input whose disorder is bounded by the allowed lateness comes
    /// out (a) complete and (b) globally sorted.
    #[test]
    fn watermark_sorts_bounded_disorder(
        base in prop::collection::vec(0i64..500, 1..120),
        lateness in 1i64..40,
    ) {
        use sccf::serving::{StreamEvent, WatermarkBuffer};
        // construct bounded disorder: sort, then perturb each timestamp
        // back by at most `lateness` positions worth of time
        let mut ts = base.clone();
        ts.sort_unstable();
        let events: Vec<StreamEvent> = ts
            .iter()
            .enumerate()
            .map(|(i, &t)| StreamEvent { ts: t, user: (i % 5) as u32, item: i as u32 })
            .collect();
        // emit in an order where event i may arrive early by < lateness
        let mut arrival = events.clone();
        arrival.sort_by_key(|e| e.ts + ((e.item as i64 * 7919) % lateness));
        let mut buf = WatermarkBuffer::new(2 * lateness);
        let mut out = Vec::new();
        for e in arrival {
            out.extend(buf.push(e));
        }
        out.extend(buf.flush());
        prop_assert_eq!(out.len(), events.len(), "dropped {}", buf.dropped());
        prop_assert!(out.windows(2).all(|w| w[0].ts <= w[1].ts));
    }

    /// Whatever the input, emissions are sorted and
    /// accepted = emitted + pending, dropped = input − accepted.
    #[test]
    fn watermark_conservation(
        raw in prop::collection::vec((0i64..200, 0u32..8, 0u32..50), 1..100),
        lateness in 0i64..30,
    ) {
        use sccf::serving::{StreamEvent, WatermarkBuffer};
        let mut buf = WatermarkBuffer::new(lateness);
        let mut emitted = Vec::new();
        for &(ts, user, item) in &raw {
            emitted.extend(buf.push(StreamEvent { ts, user, item }));
        }
        let pending = buf.pending();
        prop_assert_eq!(
            buf.accepted() as usize,
            emitted.len() + pending
        );
        prop_assert_eq!(
            buf.dropped() as usize + buf.accepted() as usize,
            raw.len()
        );
        emitted.extend(buf.flush());
        prop_assert!(emitted.windows(2).all(|w| w[0].ts <= w[1].ts));
    }
}

// ------------------------------------------------- latency histogram

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Histogram quantiles are monotone in q, bracket the true extremes,
    /// and stay within the 10 % bucket tolerance of exact quantiles.
    #[test]
    fn latency_histogram_quantile_accuracy(
        samples in prop::collection::vec(0.001f64..1e4, 1..300),
    ) {
        use sccf::util::LatencyHistogram;
        let mut h = LatencyHistogram::new();
        for &s in &samples {
            h.record_ms(s);
        }
        let mut sorted = samples.clone();
        sorted.sort_by(f64::total_cmp);
        let mut prev = 0.0f64;
        for q in [0.1, 0.5, 0.9, 0.99] {
            let got = h.quantile_ms(q);
            prop_assert!(got >= prev);
            prev = got;
            let idx = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1;
            let exact = sorted[idx];
            // one geometric bucket of slack (base 1.1) plus float fuzz
            prop_assert!(
                got <= exact * 1.11 + 1e-3 && got >= exact / 1.11 - 1e-3,
                "q{q}: histogram {got} vs exact {exact}"
            );
        }
        prop_assert!((h.quantile_ms(0.0) - sorted[0]).abs() < 1e-9);
        prop_assert!((h.quantile_ms(1.0) - sorted[sorted.len() - 1]).abs() < 1e-9);
    }
}

// ------------------------------------------------- linear CF invariants

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// SLIM weights are always non-negative with a zero diagonal, and
    /// raising ℓ1 never increases the number of non-zeros.
    #[test]
    fn slim_structural_invariants(seed in 0u64..200) {
        use rand::{Rng, SeedableRng};
        use sccf::models::{LinearCfConfig, Slim};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n_items = 10usize;
        let sets: Vec<Vec<u32>> = (0..12)
            .map(|_| {
                let mut s: Vec<u32> = (0..n_items as u32)
                    .filter(|_| rng.gen_bool(0.4))
                    .collect();
                if s.is_empty() {
                    s.push(rng.gen_range(0..n_items as u32));
                }
                s
            })
            .collect();
        let weak = Slim::fit(&sets, n_items, &LinearCfConfig { l1: 0.05, threads: 1, ..Default::default() });
        let strong = Slim::fit(&sets, n_items, &LinearCfConfig { l1: 3.0, threads: 1, ..Default::default() });
        for i in 0..n_items as u32 {
            prop_assert_eq!(weak.weights_of(i)[i as usize], 0.0);
            prop_assert!(weak.weights_of(i).iter().all(|&w| w >= 0.0));
        }
        prop_assert!(strong.nnz() <= weak.nnz());
    }
}

// ------------------------------------------------- realtime snapshot

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The realtime snapshot codec roundtrips arbitrary history shapes
    /// byte-exactly (decode ∘ encode = id), via the public engine API on
    /// a minimal framework.
    #[test]
    fn snapshot_codec_roundtrip(lens in prop::collection::vec(0usize..12, 2..10)) {
        use sccf::core::{RealtimeEngine, Sccf, SccfConfig};
        use sccf::models::{Fism, FismConfig, TrainConfig};
        // one tiny shared dataset; histories vary with `lens`
        let n_users = lens.len();
        let n_items = 16usize;
        let mut inter = Vec::new();
        for u in 0..n_users as u32 {
            for t in 0..5i64 {
                inter.push(Interaction { user: u, item: (u + t as u32) % n_items as u32, ts: t });
            }
        }
        let data = Dataset::from_interactions("p", n_users, n_items, &inter, None);
        let split = LeaveOneOut::split(&data);
        let fism = Fism::train(&split, &FismConfig {
            train: TrainConfig { dim: 4, epochs: 1, ..Default::default() },
            ..Default::default()
        });
        let sccf = Sccf::build(fism, &split, SccfConfig {
            threads: 1,
            ..Default::default()
        });
        let histories: Vec<Vec<u32>> = lens
            .iter()
            .enumerate()
            .map(|(u, &l)| (0..l as u32).map(|t| (u as u32 + t) % n_items as u32).collect())
            .collect();
        let engine = RealtimeEngine::new(sccf, histories.clone());
        let snap = engine.snapshot();
        let restored = RealtimeEngine::restore(engine.into_sccf(), &snap).unwrap();
        for (u, h) in histories.iter().enumerate() {
            prop_assert_eq!(restored.history(u as u32), h.as_slice());
        }
    }
}

// ---------------------------------------------- frozen-tier acceleration

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Exhaustive-beam HNSW over the frozen tier, followed by the exact
    /// rerank, is bit-identical to the flat scan: with `ef ≥ population`
    /// the beam never saturates, the walk visits the whole layer-0
    /// component, and the candidate set therefore contains the true
    /// top-β — which the rerank scores with the same float expression
    /// and `Scored` tie-break as the scan.
    #[test]
    fn tier_hnsw_exhaustive_equals_flat_bitwise(seed in 0u64..500) {
        use rand::{Rng, SeedableRng};
        use sccf::index::{FrozenTierAccel, FrozenTierMode, FrozenUserIndex, TierScratch};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let dim = 6;
        let n = rng.gen_range(20usize..120);
        let rows: Vec<(u32, Vec<f32>)> = (0..n as u32)
            .map(|u| (u, (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect()))
            .collect();
        let frozen = FrozenUserIndex::from_rows(n, dim, rows);
        let accel =
            FrozenTierAccel::build(FrozenTierMode::Hnsw { ef: n }, &frozen, seed).unwrap();
        let mut scratch = TierScratch::new();
        let q: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let beta = rng.gen_range(1usize..=20);
        let exact = frozen.search(&q, beta, &|_| false);
        let mut fast = Vec::new();
        accel.search_append(&frozen, &q, beta, &|_| false, &mut scratch, &mut fast);
        prop_assert_eq!(exact.len(), fast.len());
        for (a, b) in exact.iter().zip(&fast) {
            prop_assert_eq!(a.id, b.id);
            prop_assert_eq!(a.score.to_bits(), b.score.to_bits());
        }
    }

    /// Full-probe IVF-PQ with an over-fetch that covers the whole
    /// population reduces, after the exact rerank, to the flat top-β —
    /// the quantization error cancels out entirely because quantized
    /// scores only *order* candidates, never score the output.
    #[test]
    fn tier_ivfpq_full_probe_equals_flat_top_beta(seed in 0u64..300) {
        use rand::{Rng, SeedableRng};
        use sccf::index::tier::OVERFETCH;
        use sccf::index::{FrozenTierAccel, FrozenTierMode, FrozenUserIndex, TierScratch};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x9E37);
        let dim = 8;
        let n = rng.gen_range(16usize..100);
        let rows: Vec<(u32, Vec<f32>)> = (0..n as u32)
            .map(|u| (u, (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect()))
            .collect();
        let frozen = FrozenUserIndex::from_rows(n, dim, rows);
        let nlist = rng.gen_range(1usize..8);
        let accel = FrozenTierAccel::build(
            FrozenTierMode::IvfPq { nlist, nprobe: nlist, m: 4 },
            &frozen,
            seed,
        )
        .unwrap();
        let mut scratch = TierScratch::new();
        let q: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        // fetch = OVERFETCH·β ≥ n ⇒ the candidate set is the whole
        // population ⇒ the rerank must reproduce the exact scan.
        let beta = n.div_ceil(OVERFETCH);
        let exact = frozen.search(&q, beta, &|_| false);
        let mut fast = Vec::new();
        accel.search_append(&frozen, &q, beta, &|_| false, &mut scratch, &mut fast);
        prop_assert_eq!(exact.len(), fast.len());
        for (a, b) in exact.iter().zip(&fast) {
            prop_assert_eq!(a.id, b.id);
            prop_assert_eq!(a.score.to_bits(), b.score.to_bits());
        }
    }

    /// Accelerated snapshots survive encode → decode → re-encode
    /// byte-identically in every tier mode, and the decoded tier
    /// searches exactly like the original.
    #[test]
    fn tier_snapshot_roundtrip_all_modes(seed in 0u64..150, mode_tag in 0u8..3) {
        use rand::{Rng, SeedableRng};
        use sccf::core::{GlobalNeighborSnapshot, NeighborSource};
        use sccf::index::{FrozenTierMode, TierScratch};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed.wrapping_mul(31));
        let dim = 4;
        let n = rng.gen_range(8usize..60);
        let entries: Vec<(u32, Vec<f32>, Vec<u32>)> = (0..n as u32)
            .map(|u| {
                let v: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
                let w: Vec<u32> = (0..rng.gen_range(0usize..4)).map(|t| t as u32).collect();
                (u, v, w)
            })
            .collect();
        let mode = match mode_tag {
            0 => FrozenTierMode::Flat,
            1 => FrozenTierMode::Hnsw { ef: 32 },
            _ => FrozenTierMode::IvfPq { nlist: 3, nprobe: 2, m: 2 },
        };
        let snap = GlobalNeighborSnapshot::build_with_mode(9, n, dim, mode, seed, entries);
        let bytes = snap.encode();
        let back = GlobalNeighborSnapshot::decode(&bytes).unwrap();
        prop_assert_eq!(back.encode(), bytes);
        prop_assert_eq!(back.tier_mode(), snap.tier_mode());
        prop_assert_eq!(back.tier_bytes(), snap.tier_bytes());
        let q: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
        let mut scratch = TierScratch::new();
        let (mut a, mut b) = (Vec::new(), Vec::new());
        snap.search_append_with(&q, 8, &|_| false, &mut scratch, &mut a);
        back.search_append_with(&q, 8, &|_| false, &mut scratch, &mut b);
        prop_assert_eq!(a, b);
    }

    /// PQ quantization is a fixed point: re-encoding a reconstructed
    /// vector reproduces the reconstruction bit-for-bit (each subspace
    /// of a reconstruction *is* a codeword, and its nearest codeword is
    /// itself — or a bit-identical duplicate).
    #[test]
    fn pq_requantization_is_fixed_point(
        data in prop::collection::vec(-2.0f32..2.0, 32..256),
    ) {
        use sccf::index::{PqConfig, PqIndex};
        let dim = 8;
        let n = data.len() / dim;
        let slab = &data[..n * dim];
        let mut pq = PqIndex::build(
            slab,
            dim,
            Metric::InnerProduct,
            PqConfig { m: 4, k: 16, iters: 6, seed: 7 },
        );
        for id in 0..n as u32 {
            let v = pq.vector(id);
            pq.update(id, &v);
            let again = pq.vector(id);
            for (x, y) in v.iter().zip(&again) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }
}
