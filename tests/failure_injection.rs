//! Failure-injection tests: feed the system the inputs production feeds
//! it on a bad day — disordered and late events, corrupted snapshots,
//! degenerate users, out-of-distribution vectors — and assert it degrades
//! the way the design documents say it should (drop + count, reject +
//! explain, never panic, never silently corrupt).
//!
//! Drives the deprecated infallible wrappers on purpose — part of the
//! compat pin; the typed surface has its own suite in
//! `tests/serving_api.rs`.
#![allow(deprecated)]

use sccf::core::{RealtimeEngine, Sccf, SccfConfig, SnapshotDecodeError};
use sccf::data::dataset::{Dataset, Interaction};
use sccf::data::LeaveOneOut;
use sccf::index::{Metric, SqIndex};
use sccf::models::{Fism, FismConfig, InductiveUiModel, Recommender, TrainConfig};
use sccf::serving::{
    RecQuery, RouterKind, ServingApi, ShardedConfig, ShardedEngine, StreamEvent, WatermarkBuffer,
};

fn tiny_world(seed: u64) -> (LeaveOneOut, Dataset) {
    use rand::Rng;
    let mut inter = Vec::new();
    let mut rng = sccf::util::rng::rng_for(seed, 3);
    for u in 0..16u32 {
        let base = if u < 8 { 0 } else { 8 };
        let mut seen = sccf::util::hash::fx_set();
        let mut t = 0i64;
        while (t as usize) < 6 {
            let item = base + rng.gen_range(0..8u32);
            if seen.insert(item) {
                inter.push(Interaction {
                    user: u,
                    item,
                    ts: t,
                });
                t += 1;
            }
        }
    }
    let d = Dataset::from_interactions("fi", 16, 16, &inter, None);
    (LeaveOneOut::split(&d), d)
}

fn build_engine(seed: u64) -> RealtimeEngine<Fism> {
    let (split, _) = tiny_world(seed);
    let fism = Fism::train(
        &split,
        &FismConfig {
            train: TrainConfig {
                dim: 8,
                epochs: 5,
                seed,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let mut sccf = Sccf::build(
        fism,
        &split,
        SccfConfig {
            threads: 1,
            ..Default::default()
        },
    );
    sccf.refresh_for_test(&split);
    let histories: Vec<Vec<u32>> = (0..split.n_users() as u32)
        .map(|u| split.train_plus_val(u))
        .collect();
    RealtimeEngine::new(sccf, histories)
}

// --------------------------------------------------------- event stream

#[test]
fn late_events_are_dropped_not_reordered_backwards() {
    let mut buf = WatermarkBuffer::new(2);
    let mut emitted: Vec<StreamEvent> = Vec::new();
    // a hot stream, then a straggler from long ago
    for ts in [100i64, 101, 102, 103] {
        emitted.extend(buf.push(StreamEvent {
            ts,
            user: 0,
            item: ts as u32,
        }));
    }
    emitted.extend(buf.push(StreamEvent {
        ts: 50,
        user: 1,
        item: 99,
    }));
    emitted.extend(buf.flush());
    assert_eq!(buf.dropped(), 1, "the straggler must be dropped");
    assert!(emitted.iter().all(|e| e.item != 99));
    assert!(emitted.windows(2).all(|w| w[0].ts <= w[1].ts));
}

#[test]
fn engine_survives_disordered_stream_via_watermark() {
    let mut engine = build_engine(4);
    let mut buf = WatermarkBuffer::new(3);
    // events arrive shuffled within a bounded window
    let arrivals = [
        (5i64, 0u32, 1u32),
        (3, 1, 2),
        (4, 0, 3),
        (7, 2, 4),
        (6, 1, 5),
        (9, 0, 6),
    ];
    let mut processed = 0usize;
    let mut feed = |e: StreamEvent, engine: &mut RealtimeEngine<Fism>| {
        engine.process_event(e.user, e.item);
        processed += 1;
    };
    let mut pending: Vec<StreamEvent> = Vec::new();
    for (ts, user, item) in arrivals {
        pending.extend(buf.push(StreamEvent { ts, user, item }));
        for e in pending.drain(..) {
            feed(e, &mut engine);
        }
    }
    for e in buf.flush() {
        feed(e, &mut engine);
    }
    assert_eq!(processed, arrivals.len());
    // user 0's events were (ts 5, item 1), (ts 4, item 3), (ts 9, item 6);
    // the buffer must deliver them in timestamp order: 3, 1, 6
    let h = engine.history(0);
    let tail = &h[h.len() - 3..];
    assert_eq!(tail, &[3, 1, 6]);
}

// ------------------------------------------------------------ snapshots

#[test]
fn bit_flip_in_snapshot_is_rejected_or_roundtrips_lengths() {
    // Flipping a byte inside an item id region decodes to *different
    // content* but must never panic; flipping inside a length prefix is
    // caught as truncation (lengths no longer add up) — either way the
    // engine never comes up half-initialized.
    let engine = build_engine(5);
    let snap = engine.snapshot();
    let sccf = engine.into_sccf();
    let mut corrupted = snap.clone();
    // flip one byte in the middle of the payload
    let mid = snap.len() / 2;
    corrupted[mid] ^= 0xFF;
    match RealtimeEngine::restore(sccf, &corrupted) {
        Ok(mut restored) => {
            // decoded fine: the flip hit an item id; engine must be fully
            // initialized and serviceable
            let recs = restored.recommend(0, 3);
            assert!(recs.len() <= 3);
        }
        Err(e) => {
            assert!(
                matches!(
                    e,
                    SnapshotDecodeError::Truncated
                        | SnapshotDecodeError::UserCountMismatch { .. }
                        | SnapshotDecodeError::ItemOutOfRange { .. }
                ),
                "unexpected error class: {e}"
            );
        }
    }
}

#[test]
fn truncated_snapshot_never_panics_at_any_cut_point() {
    let engine = build_engine(6);
    let snap = engine.snapshot();
    for cut in 0..snap.len().min(64) {
        let engine2 = build_engine(6);
        let sccf = engine2.into_sccf();
        // every strict prefix must be rejected cleanly
        assert!(
            RealtimeEngine::restore(sccf, &snap[..cut]).is_err(),
            "prefix of {cut} bytes must not decode"
        );
    }
}

// ------------------------------------------------------- degenerate users

#[test]
fn empty_history_user_still_gets_recommendations_path() {
    let engine = build_engine(7);
    let sccf = engine.sccf();
    // a brand-new user (empty history) must not panic anywhere in the
    // pipeline; UI scores collapse to zeros, the UU side may be empty
    let recs = sccf.recommend(0, &[], 5);
    assert!(recs.len() <= 5);
    let cand = sccf.candidate_features(0, &[]);
    assert_eq!(cand.ui_scores.len(), cand.items.len());
    assert_eq!(cand.uu_scores.len(), cand.items.len());
}

#[test]
fn user_with_everything_interacted_gets_nothing() {
    let engine = build_engine(8);
    let sccf = engine.sccf();
    let all: Vec<u32> = (0..sccf.model().n_items() as u32).collect();
    // every item is in the history ⇒ the candidate union is empty and the
    // contract says "no repeats", so no recommendations
    let recs = sccf.recommend(0, &all, 5);
    assert!(recs.is_empty());
}

#[test]
fn repeated_single_item_history_is_finite() {
    let engine = build_engine(9);
    let sccf = engine.sccf();
    let rep = sccf.model().infer_user(&[3; 50]);
    assert!(rep.iter().all(|v| v.is_finite()));
    let recs = sccf.recommend(1, &[3; 50], 5);
    assert!(recs.iter().all(|s| s.score.is_finite()));
    assert!(
        recs.iter().all(|s| s.id != 3),
        "never recommend the history"
    );
}

// ------------------------------------------------------- quantized index

#[test]
fn sq_update_far_outside_training_range_clamps() {
    let data: Vec<f32> = (0..64).map(|i| (i as f32 / 64.0) - 0.5).collect();
    let mut sq = SqIndex::build(&data, 4, Metric::InnerProduct);
    sq.update(0, &[1e9, -1e9, 0.0, 0.0]);
    let v = sq.vector(0);
    // clamped to the trained bounds, still finite and searchable
    assert!(v.iter().all(|x| x.is_finite() && x.abs() <= 0.6));
    let hits = sq.search(&[1.0, 0.0, 0.0, 0.0], 3, None);
    assert!(hits.iter().all(|s| s.score.is_finite()));
}

#[test]
fn nan_scores_never_enter_topk() {
    // The TopK layer silently rejects NaN scores — a NaN-poisoned scorer
    // degrades to fewer results rather than a poisoned ranking.
    let scores = vec![0.5, f32::NAN, 0.9, f32::NAN, 0.1];
    let top = sccf::util::topk::topk_of_scores(&scores, 5);
    assert_eq!(top.len(), 3);
    assert!(top.iter().all(|s| s.score.is_finite()));
    assert_eq!(top[0].id, 2);
}

// ------------------------------------------------------ model mismatches

#[test]
fn model_load_rejects_wrong_catalog_size() {
    let (split, _) = tiny_world(10);
    let cfg = FismConfig {
        train: TrainConfig {
            dim: 8,
            epochs: 1,
            ..Default::default()
        },
        ..Default::default()
    };
    let model = Fism::train(&split, &cfg);
    let bytes = model.save_bytes();
    // a catalog twice the size cannot absorb these weights
    assert!(Fism::load_bytes(split.n_items() * 2, &cfg, &bytes).is_err());
}

#[test]
fn model_load_rejects_wrong_dimension() {
    let (split, _) = tiny_world(11);
    let cfg8 = FismConfig {
        train: TrainConfig {
            dim: 8,
            epochs: 1,
            ..Default::default()
        },
        ..Default::default()
    };
    let model = Fism::train(&split, &cfg8);
    let bytes = model.save_bytes();
    let cfg16 = FismConfig {
        train: TrainConfig {
            dim: 16,
            epochs: 1,
            ..Default::default()
        },
        ..Default::default()
    };
    assert!(Fism::load_bytes(split.n_items(), &cfg16, &bytes).is_err());
}

// ------------------------------------------------------ live resharding

/// A sharded fleet over the tiny world, with every queue as small as
/// the config allows — the adversarial setting for handoff
/// backpressure.
fn build_fleet(seed: u64, n_shards: usize, queue_capacity: usize) -> ShardedEngine<Fism> {
    let (split, _) = tiny_world(seed);
    let fism = Fism::train(
        &split,
        &FismConfig {
            train: TrainConfig {
                dim: 8,
                epochs: 5,
                seed,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let sccf = Sccf::build(
        fism,
        &split,
        SccfConfig {
            threads: 1,
            ..Default::default()
        },
    );
    let histories: Vec<Vec<u32>> = (0..split.n_users() as u32)
        .map(|u| split.train_plus_val(u))
        .collect();
    ShardedEngine::try_new(
        sccf,
        histories,
        ShardedConfig {
            n_shards,
            queue_capacity,
            router: RouterKind::Consistent { vnodes: 16 },
        },
    )
    .expect("valid fleet config")
}

#[test]
fn reshard_with_full_queues_backpressures_and_never_deadlocks() {
    // queue_capacity = 1: every import send lands on an effectively full
    // queue and must resolve through worker drain (backpressure). One
    // giant batch moves everyone at once — the worst single-step load.
    // The test passing *is* the assertion: a router↔worker cycle would
    // hang here forever.
    let mut fleet = build_fleet(31, 2, 1);
    for k in 0..40u32 {
        fleet.try_ingest(k % 16, k % 16).expect("ids in range");
    }
    fleet
        .begin_reshard(
            ShardedConfig {
                n_shards: 4,
                queue_capacity: 1,
                router: RouterKind::Consistent { vnodes: 16 },
            },
            usize::MAX, // one batch: the whole plan in a single handoff
        )
        .expect("begin reshard");
    let mut extra = 0u64;
    while fleet.is_migrating() {
        // Keep traffic flowing into the congested fleet between steps.
        for k in 0..8u32 {
            fleet
                .try_ingest(k % 16, (k + 3) % 16)
                .expect("ids in range");
            extra += 1;
        }
        fleet.reshard_step().expect("handoff despite full queues");
    }
    fleet.flush().expect("barrier");
    let stats = fleet.serving_stats().expect("stats");
    assert_eq!(
        stats.events,
        40 + extra,
        "backpressure must not drop events"
    );
    for u in 0..16u32 {
        assert!(!fleet
            .try_recommend(u, &RecQuery::top(3))
            .expect("valid user")
            .items
            .is_empty());
    }
    fleet.shutdown();
}

// --------------------------------------------- two-tier refresh epochs

#[test]
fn refresh_mid_reshard_is_cleanly_rejected_and_vice_versa() {
    // The two epoch machines must never interleave: user ownership
    // shifting under a half-collected snapshot would freeze users on
    // the wrong shard or drop them from the tier. Either order is a
    // typed rejection that leaves both epochs able to run to
    // completion — no deadlock, no corruption.
    let mut fleet = build_fleet(41, 2, 4);
    for k in 0..30u32 {
        fleet
            .try_ingest(k % 16, (k * 3) % 16)
            .expect("ids in range");
    }

    // A migration is in flight: refresh is rejected until it quiesces.
    fleet
        .begin_reshard(
            ShardedConfig {
                n_shards: 3,
                queue_capacity: 4,
                router: RouterKind::Consistent { vnodes: 16 },
            },
            2,
        )
        .expect("begin reshard");
    assert!(fleet.is_migrating());
    assert!(matches!(
        fleet.begin_refresh(4),
        Err(sccf::serving::ServingError::InvalidConfig(_))
    ));
    assert!(matches!(
        fleet.refresh_global_tier(),
        Err(sccf::serving::ServingError::InvalidConfig(_))
    ));
    while fleet.is_migrating() {
        fleet.reshard_step().expect("drive migration to completion");
    }
    // The rejected refresh left nothing half-open: a fresh one runs.
    let report = fleet.refresh_global_tier().expect("refresh after quiesce");
    assert_eq!(report.users, 16);

    // A refresh is collecting: reshard is rejected until it completes.
    fleet.begin_refresh(3).expect("begin refresh");
    assert!(matches!(
        fleet.begin_reshard(
            ShardedConfig {
                n_shards: 2,
                queue_capacity: 4,
                router: RouterKind::Consistent { vnodes: 16 },
            },
            2,
        ),
        Err(sccf::serving::ServingError::InvalidConfig(_))
    ));
    assert!(matches!(
        fleet.clear_global_tier(),
        Err(sccf::serving::ServingError::InvalidConfig(_))
    ));
    // Traffic keeps flowing between collection batches.
    let mut extra = 0u64;
    while fleet.refresh_step().expect("collection batch") > 0 {
        for k in 0..4u32 {
            fleet
                .try_ingest(k % 16, (k + 9) % 16)
                .expect("ids in range");
            extra += 1;
        }
    }
    // Both epochs done: the fleet reshards and keeps serving.
    fleet
        .reshard(ShardedConfig {
            n_shards: 2,
            queue_capacity: 4,
            router: RouterKind::Consistent { vnodes: 16 },
        })
        .expect("reshard after refresh completes");
    fleet.flush().expect("barrier");
    let stats = fleet.serving_stats().expect("stats");
    assert_eq!(stats.events, 30 + extra);
    assert!(stats.neighborhood.two_tier, "the tier survives the reshard");
    for u in 0..16u32 {
        assert!(!fleet
            .try_recommend(u, &RecQuery::top(3))
            .expect("valid user")
            .items
            .is_empty());
    }
    fleet.shutdown();
}

#[test]
fn refresh_with_full_queues_backpressures_and_never_deadlocks() {
    // queue_capacity = 1 and one giant collection batch: every
    // TierExport lands on an effectively full queue and resolves
    // through worker drain. The test passing *is* the assertion — a
    // router↔worker wait cycle would hang forever.
    let mut fleet = build_fleet(43, 2, 1);
    for k in 0..40u32 {
        fleet.try_ingest(k % 16, k % 16).expect("ids in range");
    }
    fleet.begin_refresh(usize::MAX).expect("begin refresh");
    assert_eq!(fleet.refresh_step().expect("one batch"), 0);
    let stats = fleet.serving_stats().expect("stats");
    assert!(stats.neighborhood.two_tier);
    assert_eq!(stats.neighborhood.users_covered, 16);
    for u in 0..16u32 {
        assert!(!fleet
            .try_recommend(u, &RecQuery::top(3))
            .expect("valid user")
            .items
            .is_empty());
    }
    fleet.shutdown();
}

#[test]
fn snapshot_mid_epoch_is_a_typed_rejection_not_a_corrupt_artifact() {
    use sccf::serving::ServingError;
    // Mid-reshard and mid-refresh, the fleet's layout is transitional —
    // users mid-handoff, a half-collected tier. A snapshot cut there
    // would be a state no uninterrupted engine ever held, so the typed
    // surface must reject it with EpochInFlight (and recover cleanly
    // once the epoch quiesces), never export a half-migrated artifact.
    let mut fleet = build_fleet(47, 2, 4);
    for k in 0..30u32 {
        fleet
            .try_ingest(k % 16, (k * 3) % 16)
            .expect("ids in range");
    }
    let baseline = fleet.try_snapshot().expect("stable fleet snapshots");

    fleet
        .begin_reshard(
            ShardedConfig {
                n_shards: 3,
                queue_capacity: 4,
                router: RouterKind::Consistent { vnodes: 16 },
            },
            2,
        )
        .expect("begin reshard");
    assert!(matches!(
        fleet.try_snapshot(),
        Err(ServingError::EpochInFlight {
            requested: "snapshot",
            in_flight: "reshard",
        })
    ));
    while fleet.is_migrating() {
        fleet.reshard_step().expect("drive migration to completion");
    }
    // Nothing ingested during the epoch: the post-epoch artifact is the
    // same canonical bytes the pre-epoch fleet exported.
    assert_eq!(
        fleet.try_snapshot().expect("snapshot after quiesce"),
        baseline,
        "a reshard moves users, it must not change their histories"
    );

    fleet.begin_refresh(4).expect("begin refresh");
    assert!(matches!(
        fleet.try_snapshot(),
        Err(ServingError::EpochInFlight {
            requested: "snapshot",
            in_flight: "refresh",
        })
    ));
    while fleet.refresh_step().expect("collection batch") > 0 {}
    assert_eq!(
        fleet.try_snapshot().expect("snapshot after refresh"),
        baseline
    );
    fleet.shutdown();
}

#[test]
fn shutdown_mid_migration_drains_cleanly_with_complete_accounting() {
    // Kill the fleet between handoff batches: some users already moved
    // to the freshly spawned shards, some still pending. Shutdown must
    // drain every queue (including in-flight imports), join every
    // worker — old and new — and account for every event exactly once.
    let mut fleet = build_fleet(37, 2, 4);
    for k in 0..50u32 {
        fleet
            .try_ingest(k % 16, (k * 5) % 16)
            .expect("ids in range");
    }
    fleet
        .begin_reshard(
            ShardedConfig {
                n_shards: 4,
                queue_capacity: 4,
                router: RouterKind::Consistent { vnodes: 16 },
            },
            2,
        )
        .expect("begin reshard");
    let remaining = fleet.reshard_step().expect("one batch only");
    assert!(
        remaining > 0,
        "the scale-out must still be mid-flight for this test to bite"
    );
    assert!(fleet.is_migrating());
    // More traffic lands on the half-migrated routing.
    for k in 0..20u32 {
        fleet
            .try_ingest(k % 16, (k * 7) % 16)
            .expect("ids in range");
    }
    let reports = fleet.shutdown();
    assert_eq!(
        reports.len(),
        4,
        "old and freshly spawned workers all joined"
    );
    assert_eq!(
        reports.iter().map(|r| r.events).sum::<u64>(),
        70,
        "every accepted event processed exactly once before exit"
    );
}

#[test]
fn reshard_swaps_surviving_workers_onto_new_capacity_queues() {
    // Regression: a reshard whose target config changes `queue_capacity`
    // used to resize only the freshly spawned workers' queues — the
    // surviving workers kept draining their spawn-time queues, so an
    // operator "raise the queues" reshard silently did nothing for the
    // shards that needed it most. The swap must reach every survivor,
    // worker-side (ShardReport), not just the router's bookkeeping
    // (PressureStats).
    let mut fleet = build_fleet(47, 2, 4);
    for k in 0..30u32 {
        fleet.try_ingest(k % 16, k % 16).expect("ids in range");
    }
    // Scale-out with a capacity raise, traffic flowing mid-migration.
    fleet
        .begin_reshard(
            ShardedConfig {
                n_shards: 4,
                queue_capacity: 64,
                router: RouterKind::Consistent { vnodes: 16 },
            },
            2,
        )
        .expect("begin reshard");
    let mut extra = 0u64;
    while fleet.is_migrating() {
        for k in 0..4u32 {
            fleet
                .try_ingest(k % 16, (k + 5) % 16)
                .expect("ids in range");
            extra += 1;
        }
        fleet.reshard_step().expect("handoff");
    }
    let stats = fleet.serving_stats().expect("stats");
    assert_eq!(
        stats.pressure.queue_capacity, 64,
        "router must report the post-reshard capacity"
    );
    assert_eq!(stats.events, 30 + extra, "no event lost across the swap");

    // Capacity-only reshard: same shard count, same router — the plan
    // is empty, no user moves, yet every queue must shrink to 2.
    fleet
        .begin_reshard(
            ShardedConfig {
                n_shards: 4,
                queue_capacity: 2,
                router: RouterKind::Consistent { vnodes: 16 },
            },
            8,
        )
        .expect("capacity-only reshard");
    while fleet.is_migrating() {
        fleet.reshard_step().expect("empty-plan steps");
    }
    // The shrunken queues still carry traffic (backpressure, no hang).
    for k in 0..40u32 {
        fleet
            .try_ingest(k % 16, (k * 3) % 16)
            .expect("ids in range");
        extra += 1;
    }
    fleet.flush().expect("barrier");
    for u in 0..16u32 {
        assert!(!fleet
            .try_recommend(u, &RecQuery::top(3))
            .expect("valid user")
            .items
            .is_empty());
    }
    let reports = fleet.shutdown();
    assert_eq!(reports.len(), 4);
    for r in &reports {
        assert_eq!(
            r.queue_capacity, 2,
            "shard {}: worker still drains an old-capacity queue",
            r.shard
        );
    }
    assert_eq!(
        reports.iter().map(|r| r.events).sum::<u64>(),
        30 + extra,
        "every accepted event processed exactly once"
    );
}
