//! Sharded-engine contracts (ISSUE 2 + ISSUE 3 acceptance):
//!
//! * shard routing is deterministic — the same user always lands on the
//!   same shard, across engines and across calls;
//! * `ShardedEngine` with `n_shards = 1` produces **bit-identical**
//!   recommendations to the plain single-writer `RealtimeEngine` on a
//!   seeded event stream (driven through the deprecated wrappers on
//!   purpose — that pins the compat surface over the typed path);
//! * at `n_shards > 1`, drain/shutdown account for every event and
//!   per-user event order is preserved end to end;
//! * construction and routing edge cases (`n_shards = 0`, out-of-range
//!   user/item ids) surface `ServingError` — no panics, no silent
//!   drops, and workers survive rejected requests.
//!
//! The typed `ServingApi` surface itself (batching, snapshot/reshard)
//! is covered in `tests/serving_api.rs`.

use rand::Rng;
use sccf::core::{IntegratorConfig, RealtimeEngine, Sccf, SccfConfig, UserBasedConfig};
use sccf::data::{Dataset, Interaction, LeaveOneOut};
use sccf::models::{Fism, FismConfig, TrainConfig};
use sccf::serving::{
    HashRing, RecQuery, RouterKind, ServingApi, ServingError, ShardedConfig, ShardedEngine,
};
use sccf::util::topk::Scored;

const N_USERS: u32 = 24;
const N_ITEMS: u32 = 18;

/// Two taste groups over the catalog, deterministic for a given seed.
fn world(seed: u64) -> (LeaveOneOut, Vec<Vec<u32>>) {
    let mut rng = sccf::util::rng::rng_for(seed, 77);
    let mut inter = Vec::new();
    for u in 0..N_USERS {
        let base = if u < N_USERS / 2 { 0 } else { N_ITEMS / 2 };
        let mut seen = sccf::util::hash::fx_set();
        let mut t = 0i64;
        while (t as usize) < 6 {
            let item = base + rng.gen_range(0..N_ITEMS / 2);
            if seen.insert(item) {
                inter.push(Interaction {
                    user: u,
                    item,
                    ts: t,
                });
                t += 1;
            }
        }
    }
    let data =
        Dataset::from_interactions("sharded", N_USERS as usize, N_ITEMS as usize, &inter, None);
    let split = LeaveOneOut::split(&data);
    let histories = (0..N_USERS).map(|u| split.train_plus_val(u)).collect();
    (split, histories)
}

/// Deterministic build: same seed in, same floats out.
fn build_sccf(split: &LeaveOneOut, seed: u64) -> Sccf<Fism> {
    build_sccf_with_tier(split, seed, sccf_core::FrozenTierMode::Flat)
}

/// Same deterministic build, but with a chosen frozen-tier mode.
fn build_sccf_with_tier(
    split: &LeaveOneOut,
    seed: u64,
    frozen_tier: sccf_core::FrozenTierMode,
) -> Sccf<Fism> {
    let fism = Fism::train(
        split,
        &FismConfig {
            train: TrainConfig {
                dim: 8,
                epochs: 6,
                seed,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let mut sccf = Sccf::build(
        fism,
        split,
        SccfConfig {
            user_based: UserBasedConfig {
                beta: 5,
                recent_window: 5,
            },
            candidate_n: 10,
            integrator: IntegratorConfig {
                epochs: 4,
                seed,
                ..Default::default()
            },
            threads: 1,
            profiles: None,
            ui_ann: None,
            frozen_tier,
        },
    );
    sccf.refresh_for_test(split);
    sccf
}

/// A seeded interleaving of events and recommendation points.
fn event_stream(seed: u64, len: usize) -> Vec<(u32, u32)> {
    let mut rng = sccf::util::rng::rng_for(seed, 31);
    (0..len)
        .map(|_| (rng.gen_range(0..N_USERS), rng.gen_range(0..N_ITEMS)))
        .collect()
}

fn assert_bit_identical(a: &[Scored], b: &[Scored], ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: length mismatch");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.id, y.id, "{ctx}: id mismatch");
        assert_eq!(
            x.score.to_bits(),
            y.score.to_bits(),
            "{ctx}: score bits differ for item {}",
            x.id
        );
    }
}

#[test]
fn routing_is_deterministic_across_calls_and_spread() {
    for n in [1usize, 2, 4, 8] {
        let ring = HashRing::modulo(n);
        let first: Vec<usize> = (0..200u32).map(|u| ring.route(u)).collect();
        let second: Vec<usize> = (0..200u32).map(|u| ring.route(u)).collect();
        assert_eq!(first, second, "routing must be a pure function");
        assert!(first.iter().all(|&s| s < n));
        if n > 1 {
            let mut counts = vec![0usize; n];
            for &s in &first {
                counts[s] += 1;
            }
            assert!(
                counts.iter().all(|&c| c > 0),
                "200 users must touch every one of {n} shards: {counts:?}"
            );
        }
    }
}

#[test]
#[allow(deprecated)] // pins the compat wrappers bit-identical to the typed path
fn single_shard_is_bit_identical_to_plain_engine() {
    for seed in [3u64, 11] {
        let (split, histories) = world(seed);
        // Two independent builds from the same seed are the same floats;
        // one drives the plain engine, one the sharded engine.
        let plain_sccf = build_sccf(&split, seed);
        let sharded_sccf = build_sccf(&split, seed);

        let mut plain = RealtimeEngine::new(plain_sccf, histories.clone());
        let mut sharded = ShardedEngine::new(
            sharded_sccf,
            histories,
            ShardedConfig {
                n_shards: 1,
                queue_capacity: 64,
                router: RouterKind::Modulo,
            },
        );

        for (k, &(user, item)) in event_stream(seed, 120).iter().enumerate() {
            plain.process_event(user, item);
            sharded.ingest(user, item);
            // recommend at a deterministic subsample of points
            if k % 7 == 0 {
                let a = plain.recommend(user, 8);
                let b = sharded.recommend(user, 8);
                assert_bit_identical(&a, &b, &format!("seed {seed}, event {k}, user {user}"));
            }
        }
        // final pass: every user agrees bit-for-bit
        for u in 0..N_USERS {
            let a = plain.recommend(u, 8);
            let b = sharded.recommend(u, 8);
            assert_bit_identical(&a, &b, &format!("seed {seed}, final user {u}"));
        }
        let reports = sharded.shutdown();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].events, 120);
    }
}

#[test]
#[allow(deprecated)] // compat-wrapper pin (ingest/drain/recommend)
fn multi_shard_accounts_for_every_event_and_preserves_user_order() {
    let seed = 5u64;
    let (split, histories) = world(seed);
    let sccf = build_sccf(&split, seed);
    let stream = event_stream(seed, 200);

    let mut engine = ShardedEngine::new(
        sccf,
        histories.clone(),
        ShardedConfig {
            n_shards: 4,
            queue_capacity: 16, // small: exercises backpressure
            router: RouterKind::Modulo,
        },
    );
    assert_eq!(engine.n_shards(), 4);
    for &(user, item) in &stream {
        engine.ingest(user, item);
    }
    engine.drain();
    // After the barrier, recommendations reflect all ingested events.
    for u in 0..N_USERS {
        let recs = engine.recommend(u, 5);
        assert!(!recs.is_empty(), "user {u} must get recommendations");
    }

    let (engines, reports) = engine.shutdown_into_engines();
    assert_eq!(reports.iter().map(|r| r.events).sum::<u64>(), 200);
    assert_eq!(
        reports.iter().map(|r| r.recommends).sum::<u64>(),
        N_USERS as u64
    );
    // Every shard got some work from 24 users (FxHash spread).
    assert!(reports.iter().filter(|r| r.events > 0).count() >= 2);

    // Per-user order: the owning shard's engine history must equal the
    // initial history plus that user's events in stream order.
    let ring = HashRing::modulo(4);
    for u in 0..N_USERS {
        let shard = ring.route(u);
        let mut expect = histories[u as usize].clone();
        expect.extend(stream.iter().filter(|(eu, _)| *eu == u).map(|&(_, i)| i));
        assert_eq!(
            engines[shard].history(u),
            expect.as_slice(),
            "user {u} event order must survive sharding"
        );
    }
}

#[test]
#[allow(deprecated)] // compat-wrapper pin (new/ingest/drain/recommend)
fn sharded_engine_rejects_nothing_it_should_accept() {
    // Smoke: default config (auto shard count) works end to end.
    let (split, histories) = world(9);
    let sccf = build_sccf(&split, 9);
    let mut engine = ShardedEngine::new(sccf, histories, ShardedConfig::default());
    engine.ingest(0, 1);
    engine.ingest(N_USERS - 1, 2);
    engine.drain();
    assert!(!engine.recommend(0, 3).is_empty());
    let reports = engine.shutdown();
    assert_eq!(reports.iter().map(|r| r.events).sum::<u64>(), 2);
}

#[test]
#[allow(deprecated)] // the deprecated wrappers are the panicking surface under test
fn deprecated_ingest_panics_with_descriptive_error_not_a_dead_worker() {
    let (split, histories) = world(13);
    let sccf = build_sccf(&split, 13);
    let mut engine = ShardedEngine::new(
        sccf,
        histories,
        ShardedConfig {
            n_shards: 2,
            queue_capacity: 8,
            router: RouterKind::Modulo,
        },
    );
    // An out-of-range item id is rejected at the router (the typed path
    // returns `ServingError`); the deprecated wrapper panics with that
    // error's message — never a generic "worker exited" report, because
    // the bad id no longer reaches (or kills) a worker.
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        engine.ingest(0, 10_000);
    }));
    let payload = result.expect_err("out-of-range item must panic via the wrapper");
    let msg = payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(
        msg.contains("item 10000") && !msg.contains("exited early"),
        "want the typed error's message, got: {msg:?}"
    );
    // The fleet survived: the same engine keeps serving.
    engine.drain();
    assert!(!engine.recommend(0, 3).is_empty());
    let reports = engine.shutdown();
    assert_eq!(reports.iter().map(|r| r.events).sum::<u64>(), 0);
}

// ---------------------------------------------------------------------
// ISSUE 3 edge cases: construction and routing must surface
// `ServingError`, never panic or silently drop.

#[test]
fn zero_shard_and_zero_capacity_configs_are_rejected() {
    for (n_shards, queue_capacity) in [(0usize, 64usize), (2, 0)] {
        let (split, histories) = world(17);
        let sccf = build_sccf(&split, 17);
        let err = ShardedEngine::try_new(
            sccf,
            histories,
            ShardedConfig {
                n_shards,
                queue_capacity,
                router: RouterKind::Modulo,
            },
        )
        .err()
        .expect("degenerate config must be rejected");
        assert!(
            matches!(err, ServingError::InvalidConfig(_)),
            "({n_shards}, {queue_capacity}) → {err:?}"
        );
    }
}

#[test]
fn mismatched_or_corrupt_histories_are_rejected_at_construction() {
    let (split, mut histories) = world(19);
    let sccf = build_sccf(&split, 19);
    histories.pop(); // one user short
    let err = ShardedEngine::try_new(sccf, histories, ShardedConfig::default())
        .err()
        .expect("short history table must be rejected");
    assert!(matches!(err, ServingError::InvalidConfig(_)));

    let (split, mut histories) = world(19);
    let sccf = build_sccf(&split, 19);
    histories[3].push(40_000); // item outside the catalog
    let err = ShardedEngine::try_new(sccf, histories, ShardedConfig::default())
        .err()
        .expect("out-of-catalog history item must be rejected");
    assert!(matches!(
        err,
        ServingError::UnknownItem { item: 40_000, .. }
    ));
}

// ---------------------------------------------------------------------
// ISSUE 4: live resharding at the engine level (the bit-identity pins
// against offline snapshot/restore live in tests/serving_api.rs).

/// A consistent-router config — the deployment shape for fleets that
/// expect to reshard live.
fn consistent(n_shards: usize) -> ShardedConfig {
    ShardedConfig {
        n_shards,
        queue_capacity: 32,
        router: RouterKind::Consistent { vnodes: 32 },
    }
}

fn all_slates(engine: &mut ShardedEngine<Fism>) -> Vec<Vec<Scored>> {
    engine
        .recommend_many(&(0..N_USERS).collect::<Vec<_>>(), &RecQuery::top(8))
        .expect("all users valid")
        .into_iter()
        .map(|r| r.items)
        .collect()
}

#[test]
fn live_reshard_n_to_n_is_a_noop() {
    let seed = 51u64;
    let (split, histories) = world(seed);
    let mut engine =
        ShardedEngine::try_new(build_sccf(&split, seed), histories, consistent(3)).expect("valid");
    engine.ingest_batch(&event_stream(seed, 80)).expect("valid");
    engine.flush().expect("barrier");
    let before = all_slates(&mut engine);

    let report = engine.reshard(consistent(3)).expect("no-op reshard");
    assert_eq!(report.moved_users, 0, "same ring ⇒ nobody moves");
    assert_eq!(report.batches, 0);
    assert!(!engine.is_migrating());
    assert_eq!(engine.n_shards(), 3);

    let after = all_slates(&mut engine);
    for (u, (x, y)) in before.iter().zip(&after).enumerate() {
        assert_bit_identical(x, y, &format!("N→N no-op, user {u}"));
    }
    let stats = engine.serving_stats().expect("stats");
    assert_eq!(stats.events, 80);
    assert_eq!(stats.migration.migrated_users, 0);
    engine.shutdown();
}

#[test]
fn live_scale_out_moves_the_ring_diff_and_keeps_serving() {
    let seed = 53u64;
    let (split, histories) = world(seed);
    let mut engine =
        ShardedEngine::try_new(build_sccf(&split, seed), histories, consistent(2)).expect("valid");
    engine
        .ingest_batch(&event_stream(seed, 100))
        .expect("valid");

    let report = engine.reshard(consistent(5)).expect("live scale-out");
    assert_eq!((report.from_shards, report.to_shards), (2, 5));
    // The ring diff is exactly the users whose route changed — and with
    // a consistent router every one of them moved *to a new shard*.
    let (old_ring, new_ring) = (
        consistent(2).ring().expect("valid"),
        consistent(5).ring().expect("valid"),
    );
    let expect_moved = (0..N_USERS)
        .filter(|&u| old_ring.route(u) != new_ring.route(u))
        .count() as u64;
    assert_eq!(report.moved_users, expect_moved);
    assert!(
        expect_moved > 0,
        "the test world must actually migrate someone"
    );
    assert_eq!(engine.n_shards(), 5);

    // Post-quiesce the fleet ingests and serves everyone.
    engine
        .ingest_batch(&event_stream(seed ^ 7, 40))
        .expect("valid");
    engine.flush().expect("barrier");
    for slate in all_slates(&mut engine) {
        assert!(!slate.is_empty());
    }
    let stats = engine.serving_stats().expect("stats");
    assert_eq!(
        stats.events, 140,
        "every event exactly once across the move"
    );
    let reports = engine.shutdown();
    assert_eq!(reports.len(), 5);
    assert_eq!(reports.iter().map(|r| r.events).sum::<u64>(), 140);
}

#[test]
fn live_scale_in_retires_workers_with_complete_accounting() {
    let seed = 57u64;
    let (split, histories) = world(seed);
    let mut engine =
        ShardedEngine::try_new(build_sccf(&split, seed), histories, consistent(4)).expect("valid");
    engine
        .ingest_batch(&event_stream(seed, 120))
        .expect("valid");

    let report = engine.reshard(consistent(2)).expect("live scale-in");
    assert_eq!((report.from_shards, report.to_shards), (4, 2));
    assert!(report.moved_users > 0);
    assert_eq!(engine.n_shards(), 2);

    engine
        .ingest_batch(&event_stream(seed ^ 9, 30))
        .expect("valid");
    engine.flush().expect("barrier");
    let stats = engine.serving_stats().expect("stats");
    // Retired workers' reports stay in the accounting: the totals cover
    // the fleet's whole life, before and after the scale-in.
    assert_eq!(stats.events, 150);
    assert_eq!(stats.shards.len(), 4, "2 live + 2 retired reports");

    let reports = engine.shutdown();
    assert_eq!(reports.len(), 4);
    assert_eq!(reports.iter().map(|r| r.events).sum::<u64>(), 150);
}

#[test]
fn overlapping_reshards_are_rejected_and_ingestion_flows_mid_migration() {
    let seed = 59u64;
    let (split, histories) = world(seed);
    let mut engine =
        ShardedEngine::try_new(build_sccf(&split, seed), histories, consistent(2)).expect("valid");
    engine.ingest_batch(&event_stream(seed, 40)).expect("valid");

    engine.begin_reshard(consistent(4), 2).expect("begin");
    assert!(engine.is_migrating());
    // A second migration cannot start while one is in flight.
    assert!(matches!(
        engine.begin_reshard(consistent(3), 2),
        Err(ServingError::InvalidConfig(_))
    ));
    // Mid-migration the fleet ingests and recommends for every user —
    // moved and unmoved alike.
    let mut mid_events = 0u64;
    let extra = event_stream(seed ^ 3, 60);
    let mut extra_it = extra.iter();
    while engine.is_migrating() {
        for &(u, i) in extra_it.by_ref().take(5) {
            engine.try_ingest(u, i).expect("mid-migration ingest");
            mid_events += 1;
        }
        let stats = engine.serving_stats().expect("stats mid-migration");
        assert!(stats.migration.in_progress);
        engine.reshard_step().expect("handoff batch");
    }
    for &(u, i) in extra_it {
        engine.try_ingest(u, i).expect("post-migration ingest");
        mid_events += 1;
    }
    engine.flush().expect("barrier");
    let stats = engine.serving_stats().expect("stats");
    assert_eq!(stats.events, 40 + mid_events);
    assert!(!stats.migration.in_progress);
    assert_eq!(stats.migration.pending_users, 0);
    for slate in all_slates(&mut engine) {
        assert!(!slate.is_empty());
    }
    engine.shutdown();
}

// ---------------------------------------------------------------------
// ISSUE 5: the "two-tier disabled" pin. A fleet that never refreshes —
// and a fleet whose tier was installed and then cleared — must be
// bit-identical to the historical shard-local behavior.

#[test]
fn global_tier_disabled_or_cleared_is_bit_identical_to_shard_local() {
    let seed = 67u64;
    let (split, histories) = world(seed);
    let stream = event_stream(seed, 80);
    let cfg = || ShardedConfig {
        n_shards: 4,
        queue_capacity: 32,
        router: RouterKind::Modulo,
    };

    // Baseline: the historical shard-local fleet (no tier, ever).
    let mut baseline =
        ShardedEngine::try_new(build_sccf(&split, seed), histories.clone(), cfg()).expect("valid");
    baseline.ingest_batch(&stream).expect("valid");
    baseline.flush().expect("barrier");
    let expect = all_slates(&mut baseline);

    // A twin that refreshes mid-stream, serves two-tier for a while,
    // then clears the tier: once cleared, every slate and neighborhood
    // returns to the baseline bit-for-bit.
    let mut twin =
        ShardedEngine::try_new(build_sccf(&split, seed), histories, cfg()).expect("valid");
    twin.ingest_batch(&stream[..40]).expect("valid");
    twin.refresh_global_tier().expect("refresh");
    assert!(twin.serving_stats().expect("stats").neighborhood.two_tier);
    twin.ingest_batch(&stream[40..]).expect("valid");
    twin.flush().expect("barrier");
    twin.clear_global_tier().expect("clear");

    let got = all_slates(&mut twin);
    for (u, (x, y)) in expect.iter().zip(&got).enumerate() {
        assert_bit_identical(x, y, &format!("cleared tier, user {u}"));
    }
    for u in 0..N_USERS {
        let a = baseline.neighbors_of(u).expect("valid user");
        let b = twin.neighbors_of(u).expect("valid user");
        assert_bit_identical(&a, &b, &format!("cleared tier, neighborhood of {u}"));
    }
    // Ingestion was never affected: both fleets processed everything.
    assert_eq!(baseline.serving_stats().unwrap().events, 80);
    assert_eq!(twin.serving_stats().unwrap().events, 80);
    baseline.shutdown();
    twin.shutdown();
}

/// ISSUE 6 pin at fleet level: an exhaustive-parameter ANN frozen tier
/// (HNSW with ef ≥ population, candidates exactly reranked) serves
/// **bit-identical** slates and neighborhoods to the flat-scan tier on
/// the same seeded stream — the accelerated path is a drop-in, not an
/// approximation, at these settings.
#[test]
fn exhaustive_hnsw_tier_fleet_is_bit_identical_to_flat_tier_fleet() {
    use sccf_core::FrozenTierMode;
    let seed = 91u64;
    let (split, histories) = world(seed);
    let stream = event_stream(seed, 80);
    let cfg = || ShardedConfig {
        n_shards: 3,
        queue_capacity: 32,
        router: RouterKind::Modulo,
    };
    let run = |mode: FrozenTierMode| {
        let mut fleet = ShardedEngine::try_new(
            build_sccf_with_tier(&split, seed, mode),
            histories.clone(),
            cfg(),
        )
        .expect("valid");
        fleet.ingest_batch(&stream[..40]).expect("valid");
        fleet.refresh_global_tier().expect("refresh");
        fleet.ingest_batch(&stream[40..]).expect("valid");
        fleet.flush().expect("barrier");
        let slates = all_slates(&mut fleet);
        let hoods: Vec<Vec<Scored>> = (0..N_USERS)
            .map(|u| fleet.neighbors_of(u).expect("valid user"))
            .collect();
        let stats = fleet.serving_stats().expect("stats").neighborhood;
        fleet.shutdown();
        (slates, hoods, stats)
    };

    let (flat_slates, flat_hoods, flat_stats) = run(FrozenTierMode::Flat);
    let (ann_slates, ann_hoods, ann_stats) = run(FrozenTierMode::Hnsw {
        ef: N_USERS as usize,
    });

    for (u, (x, y)) in flat_slates.iter().zip(&ann_slates).enumerate() {
        assert_bit_identical(x, y, &format!("hnsw tier, slate of user {u}"));
    }
    for (u, (x, y)) in flat_hoods.iter().zip(&ann_hoods).enumerate() {
        assert_bit_identical(x, y, &format!("hnsw tier, neighborhood of {u}"));
    }

    // The serving surface reports what is actually installed.
    assert!(flat_stats.two_tier && ann_stats.two_tier);
    assert_eq!(flat_stats.tier_mode, FrozenTierMode::Flat);
    assert_eq!(flat_stats.tier_bytes, 0);
    assert!(matches!(ann_stats.tier_mode, FrozenTierMode::Hnsw { .. }));
    assert!(ann_stats.tier_bytes > 0, "ANN structure occupies memory");
    assert!(
        ann_stats.tier_search_ns > 0.0,
        "tier probe latency is measured at install"
    );
}

#[test]
fn out_of_range_ids_surface_errors_and_leave_workers_alive() {
    let (split, histories) = world(23);
    let sccf = build_sccf(&split, 23);
    let mut engine = ShardedEngine::try_new(
        sccf,
        histories,
        ShardedConfig {
            n_shards: 4,
            queue_capacity: 16,
            router: RouterKind::Modulo,
        },
    )
    .expect("valid config");

    assert!(matches!(
        engine.try_ingest(N_USERS + 5, 0),
        Err(ServingError::UnknownUser { .. })
    ));
    assert!(matches!(
        engine.try_ingest(0, N_ITEMS + 7),
        Err(ServingError::UnknownItem { .. })
    ));
    assert!(matches!(
        engine.try_recommend(N_USERS, &RecQuery::top(3)),
        Err(ServingError::UnknownUser { .. })
    ));
    // A batch with one bad id applies nothing (atomic validation).
    assert!(matches!(
        engine.ingest_batch(&[(0, 1), (1, 2), (2, N_ITEMS)]),
        Err(ServingError::UnknownItem { .. })
    ));

    // Every worker is still alive and serving.
    engine.try_ingest(0, 1).expect("valid event");
    engine.flush().expect("barrier");
    for u in 0..N_USERS {
        assert!(
            !engine
                .try_recommend(u, &RecQuery::top(3))
                .expect("valid user")
                .items
                .is_empty(),
            "user {u} must still be served after rejected requests"
        );
    }
    let stats = engine.serving_stats().expect("stats");
    assert_eq!(stats.events, 1, "rejected events must not be counted");
    assert_eq!(stats.recommends, N_USERS as u64);
    assert_eq!(stats.shards.len(), 4);
    let reports = engine.shutdown();
    assert_eq!(reports.iter().map(|r| r.events).sum::<u64>(), 1);
}
