//! Durability integration: the WAL + incremental-checkpoint layer's
//! contracts, pinned deterministically (the randomized adversarial
//! schedules live in `tests/chaos.rs`).
//!
//! * checkpoint-chain equivalence — k incremental epochs + WAL replay,
//!   one full checkpoint, and a never-durable engine fed the same
//!   stream all converge to bit-identical snapshots;
//! * crash-at-every-fsync-batch — a fixed 1k-event stream cut at every
//!   fsync boundary recovers bit-identically to a reference fed the
//!   surviving prefix, at every single cut;
//! * the guard rails — dirty-directory rejection, recovery without a
//!   checkpoint, recovery across shard counts.

use std::path::{Path, PathBuf};
use std::sync::OnceLock;

use proptest::prelude::*;
use sccf::core::{FrozenTierMode, IntegratorConfig, Sccf, SccfConfig, UserBasedConfig};
use sccf::data::catalog::{ml1m_sim, Scale};
use sccf::data::synthetic::generate;
use sccf::data::LeaveOneOut;
use sccf::models::{Fism, FismConfig, TrainConfig};
use sccf::serving::{
    wal, DurabilityConfig, RecQuery, RouterKind, ServingApi, ServingError, ShardedConfig,
    ShardedEngine,
};

/// The fixed population every test perturbs. The trained model is
/// frozen as bytes so every fleet — durable, recovered, reference —
/// rehydrates the *same* floats; without that, bit-identity assertions
/// would compare two different models.
struct World {
    split: LeaveOneOut,
    histories: Vec<Vec<u32>>,
    n_users: usize,
    n_items: usize,
    model_bytes: Vec<u8>,
    fism_cfg: FismConfig,
}

fn world() -> &'static World {
    static WORLD: OnceLock<World> = OnceLock::new();
    WORLD.get_or_init(|| {
        let mut cfg = ml1m_sim(Scale::Quick);
        cfg.name = "durability".to_string();
        cfg.n_users = 32;
        cfg.n_items = 24;
        cfg.n_categories = 4;
        cfg.mean_len = 8.0;
        cfg.min_len = 4;
        let data = generate(&cfg, 2024).dataset;
        let split = LeaveOneOut::split(&data);
        let fism_cfg = FismConfig {
            train: TrainConfig {
                dim: 8,
                epochs: 2,
                seed: 2024,
                ..Default::default()
            },
            ..Default::default()
        };
        let fism = Fism::train(&split, &fism_cfg);
        let model_bytes = fism.save_bytes();
        let histories: Vec<Vec<u32>> = (0..split.n_users() as u32)
            .map(|u| split.train_plus_val(u))
            .collect();
        World {
            n_users: split.n_users(),
            n_items: split.n_items(),
            histories,
            split,
            model_bytes,
            fism_cfg,
        }
    })
}

fn fresh_sccf(w: &World) -> Sccf<Fism> {
    let fism = Fism::load_bytes(w.n_items, &w.fism_cfg, &w.model_bytes)
        .expect("own model bytes always rehydrate");
    let mut sccf = Sccf::build(
        fism,
        &w.split,
        SccfConfig {
            user_based: UserBasedConfig {
                beta: 8,
                recent_window: 5,
            },
            candidate_n: 12,
            integrator: IntegratorConfig {
                epochs: 2,
                seed: 7,
                ..Default::default()
            },
            threads: 1,
            profiles: None,
            ui_ann: None,
            frozen_tier: FrozenTierMode::Flat,
        },
    );
    sccf.refresh_for_test(&w.split);
    sccf
}

fn shard_cfg(n_shards: usize) -> ShardedConfig {
    ShardedConfig {
        n_shards,
        queue_capacity: 32,
        router: RouterKind::Consistent { vnodes: 16 },
    }
}

fn fresh_fleet(w: &World, n_shards: usize) -> ShardedEngine<Fism> {
    ShardedEngine::try_new(fresh_sccf(w), w.histories.clone(), shard_cfg(n_shards))
        .expect("valid fleet config")
}

fn durability(dir: &Path, fsync_every: u32) -> DurabilityConfig {
    DurabilityConfig {
        fsync_every,
        ..DurabilityConfig::new(dir)
    }
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sccf_durability_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The deterministic event stream all tests share: touches every user,
/// never repeats an (offset, user, item) pattern within a test.
fn event_at(w: &World, k: u64) -> (u32, u32) {
    (
        (k as u32).wrapping_mul(131) % w.n_users as u32,
        (k as u32).wrapping_mul(7919).wrapping_add(13) % w.n_items as u32,
    )
}

/// Bit-level equality of two fleets: snapshot bytes plus id+score-bit
/// recommendation slates for every user.
fn assert_fleets_identical(
    a: &mut ShardedEngine<Fism>,
    b: &mut ShardedEngine<Fism>,
    context: &str,
) {
    let sa = a.try_snapshot().expect("no epoch in flight");
    let sb = b.try_snapshot().expect("no epoch in flight");
    assert!(
        sa == sb,
        "{context}: snapshot bytes diverge ({} vs {} bytes)",
        sa.len(),
        sb.len()
    );
    let n_users = world().n_users as u32;
    for u in 0..n_users {
        let ra = a.try_recommend(u, &RecQuery::top(5)).expect("valid user");
        let rb = b.try_recommend(u, &RecQuery::top(5)).expect("valid user");
        let abits: Vec<(u32, u32)> = ra.items.iter().map(|s| (s.id, s.score.to_bits())).collect();
        let bbits: Vec<(u32, u32)> = rb.items.iter().map(|s| (s.id, s.score.to_bits())).collect();
        assert_eq!(abits, bbits, "{context}: user {u} slate diverges");
    }
}

// --------------------------------------------------------- guard rails

#[test]
fn enable_durability_rejects_dirty_directory_and_zero_fsync() {
    let w = world();
    let dir = scratch_dir("dirty");

    let mut fleet = fresh_fleet(w, 2);
    assert!(
        matches!(
            fleet.enable_durability(durability(&dir, 0)),
            Err(ServingError::InvalidConfig(_))
        ),
        "fsync_every == 0 would mean 'never sync'; must be rejected"
    );
    fleet
        .enable_durability(durability(&dir, 8))
        .expect("fresh directory");
    assert!(
        matches!(
            fleet.enable_durability(durability(&dir, 8)),
            Err(ServingError::Durability(_))
        ),
        "double enable must be rejected"
    );
    fleet.shutdown();

    // The directory now holds a WAL + epoch-0 checkpoint: a *new* fleet
    // must not silently interleave its history into it.
    let mut second = fresh_fleet(w, 2);
    assert!(
        matches!(
            second.enable_durability(durability(&dir, 8)),
            Err(ServingError::Durability(_))
        ),
        "a directory with prior durability state belongs to recover()"
    );
    second.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn recover_requires_a_checkpoint() {
    let w = world();
    let dir = scratch_dir("nockpt");
    // Nonexistent directory: nothing to recover from.
    assert!(matches!(
        ShardedEngine::recover(fresh_sccf(w), shard_cfg(2), durability(&dir, 8)),
        Err(ServingError::Durability(_))
    ));
    // A WAL with no checkpoint is equally unusable — the epoch-0 full
    // export is the floor replay stacks on.
    std::fs::create_dir_all(&dir).unwrap();
    wal::WalWriter::create(&wal::wal_path(&dir, 0), 8).unwrap();
    assert!(matches!(
        ShardedEngine::recover(fresh_sccf(w), shard_cfg(2), durability(&dir, 8)),
        Err(ServingError::Durability(_))
    ));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn recover_into_different_shard_counts_is_bit_identical() {
    let w = world();
    let dir = scratch_dir("reshape");
    let mut fleet = fresh_fleet(w, 2);
    fleet
        .enable_durability(durability(&dir, 8))
        .expect("fresh directory");
    for k in 0..200 {
        let (u, i) = event_at(w, k);
        fleet.try_ingest(u, i).expect("ids in range");
    }
    fleet.checkpoint().expect("no epoch in flight");
    for k in 200..300 {
        let (u, i) = event_at(w, k);
        fleet.try_ingest(u, i).expect("ids in range");
    }
    fleet.wal_sync().expect("durability enabled");
    fleet.shutdown();

    // The artifacts are whole-population: any fleet shape rehydrates
    // them. The canonical snapshot hides the shard count entirely;
    // recommendation slates are compared against a reference of the
    // *same* shape, because fresh deltas are shard-local by design (a
    // 1-shard fleet sees every user's delta, a 3-shard fleet only its
    // own) — that's the paper's neighborhood partitioning, not
    // recovery drift.
    let mut canonical: Option<Vec<u8>> = None;
    for n_shards in [1usize, 2, 3] {
        let (mut recovered, rec) =
            ShardedEngine::recover(fresh_sccf(w), shard_cfg(n_shards), durability(&dir, 8))
                .expect("clean-tail recovery");
        assert_eq!(rec.watermark, 200);
        assert_eq!(rec.replayed.len(), 100);
        assert_eq!(rec.max_seq, 300);
        let mut reference = fresh_fleet(w, n_shards);
        for k in 0..300 {
            let (u, i) = event_at(w, k);
            reference.try_ingest(u, i).expect("ids in range");
        }
        reference.flush().expect("barrier");
        assert_fleets_identical(
            &mut recovered,
            &mut reference,
            &format!("recover 2 shards -> {n_shards}"),
        );
        let snap = recovered.try_snapshot().expect("no epoch in flight");
        if let Some(prev) = &canonical {
            assert_eq!(
                prev, &snap,
                "the snapshot artifact must not depend on the recovered shape"
            );
        }
        canonical = Some(snap);
        recovered.shutdown();
        reference.shutdown();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

// ------------------------------------------- crash-at-every-batch sweep

/// A fixed 1k-event stream, a crash simulated at *every* fsync-batch
/// boundary: for each cut, every shard's WAL is truncated to the frames
/// with `seq <= cut` (exactly what survives a power cut that hit after
/// that batch's fsync), and the recovered fleet must be bit-identical
/// to a never-crashed fleet fed `events[..cut]`.
#[test]
fn crash_at_every_fsync_batch_recovers_bit_identically() {
    const EVENTS: u64 = 1000;
    const FSYNC_EVERY: u32 = 8;
    const SHARDS: usize = 2;
    let w = world();
    let dir = scratch_dir("sweep");

    let mut fleet = fresh_fleet(w, SHARDS);
    fleet
        .enable_durability(durability(&dir, FSYNC_EVERY))
        .expect("fresh directory");
    for k in 0..EVENTS {
        let (u, i) = event_at(w, k);
        fleet.try_ingest(u, i).expect("ids in range");
    }
    fleet.flush().expect("barrier");
    fleet.shutdown();

    // Pristine per-shard WAL images; every cut below re-derives its
    // truncated view from these (the graceful shutdown synced the
    // tails, so the full images are the "all batches landed" state).
    let files = wal::list_wal_files(&dir).expect("wal files present");
    assert_eq!(files.len(), SHARDS);
    let pristine: Vec<Vec<u8>> = files
        .iter()
        .map(|f| std::fs::read(f).expect("readable wal"))
        .collect();
    // Frame offsets per file from the low-level scanner — the same
    // source of truth recovery trusts.
    let scans: Vec<Vec<(usize, wal::WalRecord)>> = pristine
        .iter()
        .map(|bytes| {
            wal::scan_wal(bytes)
                .expect("pristine wal scans clean")
                .records
        })
        .collect();

    let mut reference = fresh_fleet(w, SHARDS);
    let mut fed = 0u64;
    for cut in (0..=EVENTS).step_by(FSYNC_EVERY as usize * SHARDS) {
        // Each shard keeps exactly its frames with seq <= cut: WAL
        // bytes after the last surviving frame are gone.
        for (i, f) in files.iter().enumerate() {
            let keep = scans[i]
                .iter()
                .take_while(|(_, r)| r.seq <= cut)
                .last()
                .map(|&(off, _)| off + wal::RECORD_FRAME_LEN)
                .unwrap_or(wal::WAL_MAGIC.len());
            std::fs::write(f, &pristine[i][..keep]).expect("writable wal");
        }
        let (mut recovered, rec) = ShardedEngine::recover(
            fresh_sccf(w),
            shard_cfg(SHARDS),
            durability(&dir, FSYNC_EVERY),
        )
        .expect("every cut recovers");
        assert_eq!(
            rec.replayed.len() as u64,
            cut,
            "cut {cut}: replay must cover exactly the surviving prefix"
        );
        assert_eq!(rec.max_seq, cut);
        // Advance the reference to the same prefix instead of
        // rebuilding it 60+ times.
        while fed < cut {
            let (u, i) = event_at(w, fed);
            reference.try_ingest(u, i).expect("ids in range");
            fed += 1;
        }
        reference.flush().expect("barrier");
        assert_fleets_identical(&mut recovered, &mut reference, &format!("cut {cut}"));
        recovered.shutdown();
    }
    reference.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

// ------------------------------------- checkpoint-chain equivalence

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For any stream shape and checkpoint cadence: (a) k incremental
    /// epochs + WAL replay of the uncheckpointed tail, (b) one
    /// checkpoint after the whole stream (replay-free recovery), and
    /// (c) a fleet that was never durable at all, fed the same events,
    /// converge to bit-identical state. The incremental chain encodes
    /// only dirty users per epoch — this is the proof that the overlay
    /// (newest blob per user, then replay) loses nothing.
    #[test]
    fn incremental_chain_equals_full_checkpoint_equals_rebuild(
        seed in 0u64..10_000,
        epochs in 1usize..5,
        burst in 10u64..80,
        tail in 0u64..40,
    ) {
        let w = world();
        let total = epochs as u64 * burst + tail;
        let stream: Vec<(u32, u32)> = (0..total)
            .map(|k| event_at(w, seed.wrapping_mul(977).wrapping_add(k)))
            .collect();

        // (a) incremental: checkpoint after every burst, crash with an
        // uncheckpointed (but synced) tail.
        let dir_a = scratch_dir(&format!("chain_a_{seed}_{epochs}_{burst}_{tail}"));
        let mut fleet = fresh_fleet(w, 2);
        fleet.enable_durability(durability(&dir_a, 4)).expect("fresh directory");
        let mut cursor = 0usize;
        for _ in 0..epochs {
            for _ in 0..burst {
                let (u, i) = stream[cursor];
                fleet.try_ingest(u, i).expect("ids in range");
                cursor += 1;
            }
            fleet.checkpoint().expect("no epoch in flight");
        }
        for _ in 0..tail {
            let (u, i) = stream[cursor];
            fleet.try_ingest(u, i).expect("ids in range");
            cursor += 1;
        }
        fleet.wal_sync().expect("durability enabled");
        fleet.shutdown();
        let (mut via_chain, rec) =
            ShardedEngine::recover(fresh_sccf(w), shard_cfg(2), durability(&dir_a, 4))
                .expect("chain recovery");
        prop_assert_eq!(rec.checkpoints_loaded, epochs + 1, "epoch 0 + one per burst");
        prop_assert_eq!(rec.watermark, epochs as u64 * burst);
        prop_assert_eq!(rec.replayed.len() as u64, tail);

        // (b) full: the entire stream under one checkpoint, no replay.
        let dir_b = scratch_dir(&format!("chain_b_{seed}_{epochs}_{burst}_{tail}"));
        let mut fleet = fresh_fleet(w, 2);
        fleet.enable_durability(durability(&dir_b, 4)).expect("fresh directory");
        for &(u, i) in &stream {
            fleet.try_ingest(u, i).expect("ids in range");
        }
        fleet.checkpoint().expect("no epoch in flight");
        fleet.shutdown();
        let (mut via_full, rec) =
            ShardedEngine::recover(fresh_sccf(w), shard_cfg(2), durability(&dir_b, 4))
                .expect("full recovery");
        prop_assert_eq!(rec.replayed.len(), 0, "nothing past the watermark");

        // (c) never durable at all.
        let mut rebuilt = fresh_fleet(w, 2);
        for &(u, i) in &stream {
            rebuilt.try_ingest(u, i).expect("ids in range");
        }
        rebuilt.flush().expect("barrier");

        assert_fleets_identical(&mut via_chain, &mut via_full, "chain vs full");
        assert_fleets_identical(&mut via_full, &mut rebuilt, "full vs rebuild");
        via_chain.shutdown();
        via_full.shutdown();
        rebuilt.shutdown();
        let _ = std::fs::remove_dir_all(&dir_a);
        let _ = std::fs::remove_dir_all(&dir_b);
    }
}

// ------------------------------------------- WAL rotation (bounded disk)

/// Each checkpoint seals the active segment and prunes segments the
/// *previous* watermark already covered, so on-disk WAL stays bounded
/// by ~one checkpoint interval of slack per shard no matter how long
/// the stream runs — and recovery still replays cleanly across the
/// sealed-segment boundary.
#[test]
fn wal_rotation_bounds_disk_and_recovers_across_segments() {
    const SHARDS: usize = 2;
    const ROUND: u64 = 50;
    const ROUNDS: u64 = 6;
    const TAIL: u64 = 30;
    let w = world();
    let dir = scratch_dir("rotate");

    let mut fleet = fresh_fleet(w, SHARDS);
    fleet
        .enable_durability(durability(&dir, 8))
        .expect("fresh directory");
    let mut fed = 0u64;
    for round in 0..ROUNDS {
        for _ in 0..ROUND {
            let (u, i) = event_at(w, fed);
            fleet.try_ingest(u, i).expect("ids in range");
            fed += 1;
        }
        fleet.flush().expect("barrier");
        fleet.checkpoint().expect("checkpoint");
        // Active segment + at most one sealed segment of slack per
        // shard: rotation must not let segments pile up.
        let files = wal::list_wal_files(&dir).expect("wal dir lists");
        assert!(
            files.len() <= SHARDS * 2,
            "round {round}: {} WAL files on disk — rotation is not pruning",
            files.len()
        );
    }
    // An uncheckpointed tail forces recovery to replay across the last
    // sealed boundary.
    for _ in 0..TAIL {
        let (u, i) = event_at(w, fed);
        fleet.try_ingest(u, i).expect("ids in range");
        fed += 1;
    }
    fleet.flush().expect("barrier");
    fleet.shutdown();

    let (mut recovered, rec) =
        ShardedEngine::recover(fresh_sccf(w), shard_cfg(SHARDS), durability(&dir, 8))
            .expect("rotated directory recovers");
    assert_eq!(
        rec.replayed.len() as u64,
        TAIL,
        "replay covers exactly the tail"
    );
    assert_eq!(rec.max_seq, ROUNDS * ROUND + TAIL);

    let mut reference = fresh_fleet(w, SHARDS);
    for k in 0..fed {
        let (u, i) = event_at(w, k);
        reference.try_ingest(u, i).expect("ids in range");
    }
    reference.flush().expect("barrier");
    assert_fleets_identical(&mut recovered, &mut reference, "after rotation");
    recovered.shutdown();
    reference.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

// ------------------------------------------- point-in-time restore

/// `recover_at(target)` rewinds the fleet to "as of seq `target`":
/// state is bit-identical to a fleet fed exactly that prefix, the
/// report records where replay stopped, and the restored fleet comes up
/// with durability disarmed (re-arming would collide with the
/// surviving suffix on disk).
#[test]
fn point_in_time_restore_stops_exactly_at_target() {
    const SHARDS: usize = 2;
    const EVENTS: u64 = 200;
    let w = world();
    let dir = scratch_dir("pit");

    let mut fleet = fresh_fleet(w, SHARDS);
    fleet
        .enable_durability(durability(&dir, 8))
        .expect("fresh directory");
    for k in 0..EVENTS {
        let (u, i) = event_at(w, k);
        fleet.try_ingest(u, i).expect("ids in range");
        if k == 59 || k == 119 {
            fleet.flush().expect("barrier");
            fleet.checkpoint().expect("mid-stream checkpoint");
        }
    }
    fleet.flush().expect("barrier");
    fleet.shutdown();

    // Targets straddle every interesting boundary. Rewind resolution
    // is bounded by WAL rotation: the checkpoint at seq 120 pruned the
    // sealed segment the previous watermark (60) covered, so a target
    // *inside* the pruned interval (30) can only reach the newest
    // checkpoint at or below it — seq 0. Within the retained window
    // (61 onwards, one interval of slack plus the tail), the rewind is
    // exact.
    let mut reference = fresh_fleet(w, SHARDS);
    let mut fed = 0u64;
    for (target, applied) in [
        (0u64, 0u64),
        (30, 0), // pruned interval: clamps to checkpoint watermark 0
        (90, 90),
        (150, 150),
        (EVENTS, EVENTS),
        (EVENTS + 300, EVENTS),
    ] {
        let (mut restored, rec) = ShardedEngine::recover_at(
            fresh_sccf(w),
            shard_cfg(SHARDS),
            durability(&dir, 8),
            target,
        )
        .expect("every target restores");
        assert_eq!(
            rec.stopped_at,
            Some(applied),
            "target {target}: stopped_at records the highest applied seq"
        );
        while fed < applied {
            let (u, i) = event_at(w, fed);
            reference.try_ingest(u, i).expect("ids in range");
            fed += 1;
        }
        reference.flush().expect("barrier");
        assert_fleets_identical(&mut restored, &mut reference, &format!("target {target}"));
        assert!(
            matches!(restored.checkpoint(), Err(ServingError::Durability(_))),
            "target {target}: a rewound fleet must come up disarmed"
        );
        restored.shutdown();
    }
    // A full recovery of the same directory still works afterwards —
    // restore-at is read-only with respect to the log.
    let (mut full, rec) =
        ShardedEngine::recover(fresh_sccf(w), shard_cfg(SHARDS), durability(&dir, 8))
            .expect("directory intact after PIT reads");
    assert_eq!(
        rec.stopped_at, None,
        "plain recovery does not report a stop"
    );
    assert_eq!(rec.max_seq, EVENTS);
    while fed < EVENTS {
        let (u, i) = event_at(w, fed);
        reference.try_ingest(u, i).expect("ids in range");
        fed += 1;
    }
    reference.flush().expect("barrier");
    assert_fleets_identical(&mut full, &mut reference, "full recovery after PIT");
    full.shutdown();
    reference.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
