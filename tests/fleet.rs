//! The networked fleet's headline contract, pinned: a multi-process
//! fleet over loopback TCP is **bit-identical** to a single-process
//! `ShardedEngine` with the same total shard count fed the same event
//! stream — snapshot bytes and slate float bits — including across a
//! supervised kill-and-restart of one member.
//!
//! The processes are the real `sccf` binary (`CARGO_BIN_EXE_sccf`)
//! running `serve-shard`; nothing here is mocked. Determinism comes
//! from the shared [`WorldSpec`] recipe plus a trained-model file every
//! process rehydrates, so the only degrees of freedom left are the ones
//! the wire protocol and the durability layer must preserve.

use std::path::{Path, PathBuf};

use sccf::net::{
    Connection, FleetRouter, Request, Response, ServeShardArgs, ShardSpec, Supervisor, WorldSpec,
};
use sccf::serving::fleet::{FleetMember, FleetTopology};
use sccf::serving::{RecQuery, RouterKind, ServingApi, ServingError, ShardedConfig, ShardedEngine};

const TOTAL_SHARDS: usize = 4;
const PROCS: usize = 2;
const PER_PROC: usize = TOTAL_SHARDS / PROCS;

fn spec() -> WorldSpec {
    WorldSpec {
        n_users: 48,
        n_items: 32,
        seed: 2026,
        epochs: 2,
        ..WorldSpec::default()
    }
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sccf_fleet_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// The same deterministic stream `tests/durability.rs` uses.
fn event_at(spec: &WorldSpec, k: u64) -> (u32, u32) {
    (
        (k as u32).wrapping_mul(131) % spec.n_users as u32,
        (k as u32).wrapping_mul(7919).wrapping_add(13) % spec.n_items as u32,
    )
}

/// Launch `PROCS` real `sccf serve-shard` processes over the model
/// file, each owning `PER_PROC` shards of the global space, each with
/// its own durability directory under `root`.
fn launch_fleet(spec: &WorldSpec, root: &Path, model: &Path) -> Supervisor {
    let exe = PathBuf::from(env!("CARGO_BIN_EXE_sccf"));
    let specs = (0..PROCS)
        .map(|p| {
            let args = ServeShardArgs {
                base: p * PER_PROC,
                count: PER_PROC,
                total: TOTAL_SHARDS,
                vnodes: 0,
                dir: Some(root.join(format!("member-{p}"))),
                world: spec.clone(),
                model_file: Some(model.to_path_buf()),
                ..ServeShardArgs::default()
            };
            let mut argv = vec!["serve-shard".to_string()];
            argv.extend(args.to_args());
            ShardSpec::new(exe.clone(), argv)
        })
        .collect();
    Supervisor::launch(specs).expect("fleet launches")
}

fn connect_router(sup: &Supervisor) -> FleetRouter {
    let members = (0..PROCS)
        .map(|p| FleetMember {
            base: p * PER_PROC,
            count: PER_PROC,
            addr: sup.addr(p),
        })
        .collect();
    let topology = FleetTopology::try_new(TOTAL_SHARDS, 0, members).expect("valid tiling");
    FleetRouter::connect(topology).expect("fleet handshake")
}

/// Bit-level equality: whole-population snapshot bytes plus id +
/// score-bit slates for every user, fleet vs baseline.
fn assert_fleet_matches_baseline(
    spec: &WorldSpec,
    router: &mut FleetRouter,
    baseline: &mut ShardedEngine<sccf::models::Fism>,
    context: &str,
) {
    let fleet_snap = router.snapshot_state().expect("fleet snapshot");
    let base_snap = baseline.snapshot_state().expect("baseline snapshot");
    assert!(
        fleet_snap == base_snap,
        "{context}: snapshot bytes diverge ({} vs {} bytes)",
        fleet_snap.len(),
        base_snap.len()
    );
    let users: Vec<u32> = (0..spec.n_users as u32).collect();
    let slates = router
        .recommend_many(&users, &RecQuery::top(5))
        .expect("fleet slates");
    for (&u, slate) in users.iter().zip(&slates) {
        let rb = baseline
            .try_recommend(u, &RecQuery::top(5))
            .expect("valid user");
        let fleet_bits: Vec<(u32, u32)> = slate
            .items
            .iter()
            .map(|s| (s.id, s.score.to_bits()))
            .collect();
        let base_bits: Vec<(u32, u32)> =
            rb.items.iter().map(|s| (s.id, s.score.to_bits())).collect();
        assert_eq!(fleet_bits, base_bits, "{context}: user {u} slate diverges");
    }
}

#[test]
fn fleet_matches_single_process_bit_for_bit_across_kill_and_restart() {
    let spec = spec();
    let root = scratch_dir("equiv");
    let model_path = root.join("model.fism");
    std::fs::write(&model_path, spec.train_model()).expect("write model");

    let mut sup = launch_fleet(&spec, &root, &model_path);
    let mut router = connect_router(&sup);

    // The reference: all four shards in this process, same world, same
    // modulo ring the fleet's slice engines share (vnodes = 0).
    let world = spec
        .build(Some(&std::fs::read(&model_path).unwrap()))
        .unwrap();
    let mut baseline = ShardedEngine::try_new(
        world.sccf,
        world.histories,
        ShardedConfig {
            n_shards: TOTAL_SHARDS,
            queue_capacity: 64,
            router: RouterKind::Modulo,
        },
    )
    .expect("baseline fleet");

    let stream =
        |lo: u64, hi: u64| -> Vec<(u32, u32)> { (lo..hi).map(|k| event_at(&spec, k)).collect() };

    // Phase 1: both sides ingest the same prefix.
    let phase1 = stream(0, 300);
    assert_eq!(router.ingest_batch(&phase1).expect("fleet ingest"), 300);
    assert_eq!(
        baseline.ingest_batch(&phase1).expect("baseline ingest"),
        300
    );
    router.flush().expect("fleet flush");
    baseline.flush().expect("baseline flush");
    assert_fleet_matches_baseline(&spec, &mut router, &mut baseline, "after phase 1");
    let stats = router.serving_stats().expect("fleet stats");
    assert_eq!(stats.events, 300, "merged stats count the whole stream");
    assert!(stats.durability.enabled);

    // Checkpoint, then keep writing past it so recovery must replay a
    // WAL tail on top of the checkpoint chain.
    let epochs = router.checkpoint_all().expect("fleet checkpoint");
    assert_eq!(epochs.len(), PROCS);
    let phase2 = stream(300, 450);
    router.ingest_batch(&phase2).expect("fleet ingest");
    baseline.ingest_batch(&phase2).expect("baseline ingest");
    router.flush().expect("fleet flush");
    // Every acknowledged event must be on disk before the crash; the
    // wire ACK alone only proves the shard applied it in memory.
    router.wal_sync_all().expect("fleet wal_sync");

    // Crash member 1 (SIGKILL — no flush, no goodbye), supervise it
    // back up, and re-point the router at the replacement.
    sup.kill(1).expect("kill member 1");
    let restarted = sup.check_and_restart().expect("control loop tick");
    assert_eq!(restarted, vec![1], "only the killed member restarts");
    router.reconnect(1, &sup.addr(1)).expect("reconnect");
    assert_fleet_matches_baseline(&spec, &mut router, &mut baseline, "after restart");

    // Phase 3: the stream continues across the restart seam.
    let phase3 = stream(450, 600);
    router.ingest_batch(&phase3).expect("fleet ingest");
    baseline.ingest_batch(&phase3).expect("baseline ingest");
    router.flush().expect("fleet flush");
    assert_fleet_matches_baseline(&spec, &mut router, &mut baseline, "after phase 3");

    // Operational counters are process-local and intentionally not
    // durable: the restarted member counts from its recovery onwards,
    // so the merged total covers the surviving member's whole stream
    // plus the replacement's post-restart share — less than 600, but
    // every shard still reports.
    let stats = router.serving_stats().expect("fleet stats");
    assert!(
        stats.events < 600 && stats.events >= 150,
        "restart resets the crashed member's counters (got {})",
        stats.events
    );
    assert_eq!(
        stats.shards.len(),
        TOTAL_SHARDS,
        "every shard reports after merge"
    );
    assert!(stats.durability.enabled);

    router.shutdown_all().expect("graceful shutdown");
    sup.shutdown();
    baseline.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

/// The pipelined≡sequential pin: depth-4 multi-batch ingest (several
/// requests in flight per connection) lands bit-identically to the
/// single-process baseline fed the same concatenated stream, and the
/// pipelined read path returns the same slate bits as the legacy
/// depth-1 transport against the same fleet state. The stream revisits
/// every user across many small batches, so this is also the per-user
/// FIFO ordering pin under depth-k pipelining — one reordered event
/// would move that user's history ring and change the bits.
#[test]
fn pipelined_ingest_matches_sequential_bit_for_bit() {
    let spec = spec();
    let root = scratch_dir("pipeline");
    let model_path = root.join("model.fism");
    std::fs::write(&model_path, spec.train_model()).expect("write model");

    let sup = launch_fleet(&spec, &root, &model_path);
    let mut router = connect_router(&sup);
    router.set_pipeline_depth(4);

    let world = spec
        .build(Some(&std::fs::read(&model_path).unwrap()))
        .unwrap();
    let mut baseline = ShardedEngine::try_new(
        world.sccf,
        world.histories,
        ShardedConfig {
            n_shards: TOTAL_SHARDS,
            queue_capacity: 64,
            router: RouterKind::Modulo,
        },
    )
    .expect("baseline fleet");

    // 40 batches × 15 events: every user appears in many different
    // batches, so depth-4 pipelining keeps several of each user's
    // events in flight at once.
    let batches: Vec<Vec<(u32, u32)>> = (0..40)
        .map(|b| (0..15).map(|i| event_at(&spec, b * 15 + i)).collect())
        .collect();
    let flat: Vec<(u32, u32)> = batches.iter().flatten().copied().collect();
    let total = router.ingest_batches(&batches).expect("pipelined ingest");
    assert_eq!(total, flat.len() as u64, "every event acknowledged");
    assert_eq!(router.in_flight(), 0, "collect drained the pipeline");
    assert_eq!(
        baseline.ingest_batch(&flat).expect("baseline ingest"),
        flat.len() as u64
    );
    router.flush().expect("fleet flush");
    baseline.flush().expect("baseline flush");
    assert_fleet_matches_baseline(&spec, &mut router, &mut baseline, "after pipelined stream");

    // Same fleet state read through both transports: pipelined
    // two-phase fan-out vs legacy sequential — identical slate bits.
    let users: Vec<u32> = (0..spec.n_users as u32).collect();
    let pipelined = router
        .recommend_many(&users, &RecQuery::top(5))
        .expect("pipelined slates");
    router.set_pipeline_depth(1);
    let sequential = router
        .recommend_many(&users, &RecQuery::top(5))
        .expect("sequential slates");
    for (u, (p, s)) in users.iter().zip(pipelined.iter().zip(&sequential)) {
        let pb: Vec<(u32, u32)> = p.items.iter().map(|x| (x.id, x.score.to_bits())).collect();
        let sb: Vec<(u32, u32)> = s.items.iter().map(|x| (x.id, x.score.to_bits())).collect();
        assert_eq!(pb, sb, "user {u}: pipelined and sequential reads diverge");
    }

    // The servers actually pipelined: with depth-4 multi-batch ingest,
    // some frames must have been waiting in a member's read-ahead queue
    // while its engine worked on an earlier one.
    router.set_pipeline_depth(4);
    let stats = router.serving_stats().expect("fleet stats");
    assert!(
        stats.transport.requests > 0,
        "transport counters cross the wire"
    );
    assert_eq!(stats.transport.read_ahead_capacity, 4, "default capacity");
    assert!(
        stats.transport.read_ahead_hits > 0,
        "depth-4 ingest should land frames in the read-ahead queue \
         (requests {}, hits {})",
        stats.transport.requests,
        stats.transport.read_ahead_hits
    );

    router.shutdown_all().expect("graceful shutdown");
    sup.shutdown();
    baseline.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

/// Regression (reconnect-while-in-flight): replacing a member's
/// connection while responses are owed must fail the pending collect
/// with a typed `ServingError::Wire` — never hang on a socket that no
/// longer exists — and the router must be usable again afterwards.
#[test]
fn reconnect_while_in_flight_fails_pending_recvs_typed() {
    let spec = spec();
    let root = scratch_dir("reconnect");
    let model_path = root.join("model.fism");
    std::fs::write(&model_path, spec.train_model()).expect("write model");

    let sup = launch_fleet(&spec, &root, &model_path);
    let mut router = connect_router(&sup);

    // Queue a batch touching every member without collecting the acks.
    let batch: Vec<(u32, u32)> = (0..60).map(|k| event_at(&spec, k)).collect();
    router.ingest_send(&batch).expect("pipelined send");
    assert!(router.in_flight() > 0, "acks are outstanding");

    // Re-point member 0 at the same (still running) process: the old
    // connection and the responses it is owed are abandoned.
    router.reconnect(0, &sup.addr(0)).expect("reconnect");
    match router.ingest_collect() {
        Err(ServingError::Wire(msg)) => {
            assert!(
                msg.contains("lost to reconnect"),
                "error should name the cause, got: {msg}"
            );
        }
        other => panic!("expected a typed Wire error for lost responses, got {other:?}"),
    }

    // The loss is reported exactly once; afterwards the wire is clean.
    assert_eq!(router.in_flight(), 0);
    let more: Vec<(u32, u32)> = (60..120).map(|k| event_at(&spec, k)).collect();
    assert_eq!(
        router.ingest_batch(&more).expect("router recovered"),
        more.len() as u64
    );
    router.flush().expect("flush after recovery");

    router.shutdown_all().expect("graceful shutdown");
    sup.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

/// Regression (best-effort control plane): a dead member must not
/// shield the live ones from control fan-outs. With member 0 killed,
/// `flush` reports the failure, and `shutdown_all` still delivers the
/// shutdown to member 1 — the old first-error-returns behavior left
/// member 1 running as a leaked process.
#[test]
fn control_fanouts_reach_all_members_past_a_dead_one() {
    let spec = spec();
    let root = scratch_dir("besteffort");
    let model_path = root.join("model.fism");
    std::fs::write(&model_path, spec.train_model()).expect("write model");

    let mut sup = launch_fleet(&spec, &root, &model_path);
    let mut router = connect_router(&sup);

    sup.kill(0).expect("kill member 0");
    assert!(router.flush().is_err(), "flush must report the dead member");
    // Member 0's connection is poisoned now; shutdown is still
    // delivered to member 1 and the combined error names the failure.
    assert!(router.shutdown_all().is_err(), "member 0 cannot ack");

    // Member 1 actually received the shutdown and exited: its port
    // stops answering pings (each ping is a fresh connect, so this is
    // the process, not a stale socket).
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    let mut gone = false;
    while std::time::Instant::now() < deadline && !gone {
        gone = !sup.ping(1);
        if !gone {
            std::thread::sleep(std::time::Duration::from_millis(100));
        }
    }
    assert!(
        gone,
        "member 1 should have exited on the best-effort shutdown"
    );

    sup.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn remote_errors_and_routing_guards_cross_the_wire() {
    let spec = spec();
    let root = scratch_dir("errors");
    let model_path = root.join("model.fism");
    std::fs::write(&model_path, spec.train_model()).expect("write model");

    let sup = launch_fleet(&spec, &root, &model_path);
    let mut router = connect_router(&sup);

    // Local validation: out-of-range ids fail before any bytes move.
    let n_users = spec.n_users as u32;
    let n_items = spec.n_items as u32;
    assert!(matches!(
        router.try_recommend(n_users, &RecQuery::top(5)),
        Err(ServingError::UnknownUser { .. })
    ));
    // A batch with one bad event is rejected whole: fleet state must
    // be untouched even though the batch spans members.
    let before = router.snapshot_state().expect("snapshot");
    let bad = vec![(0, 0), (1, n_items), (2, 1)];
    assert!(matches!(
        router.ingest_batch(&bad),
        Err(ServingError::UnknownItem { .. })
    ));
    let after = router.snapshot_state().expect("snapshot");
    assert!(before == after, "rejected batch must not move the fleet");

    // Remote errors survive the wire as typed variants: dial member 0
    // directly and ask it for a user it does not own.
    let mut direct = Connection::connect(sup.addr(0).as_str()).expect("dial member 0");
    let foreign = (0..n_users)
        .find(|&u| router.owner_of(u) != 0)
        .expect("some user lives on member 1");
    match direct
        .request(&Request::Recommend {
            user: foreign,
            query: RecQuery::top(5),
        })
        .expect("transport ok")
    {
        Response::Err(ServingError::NotOwned { user }) => assert_eq!(user, foreign),
        other => panic!("expected NotOwned over the wire, got {other:?}"),
    }

    router.shutdown_all().expect("graceful shutdown");
    sup.shutdown();
    let _ = std::fs::remove_dir_all(&root);
}
