//! End-to-end integration: synthetic data with strong neighborhood
//! structure → trained UI models → SCCF → protocol evaluation.
//!
//! These tests assert the paper's *qualitative* claims on data where the
//! exploited structure is guaranteed to exist:
//! RQ1 — SCCF does not lose to its base UI model and the UU component
//! carries real signal; the personalized models beat Pop.

use sccf::core::{IntegratorConfig, Sccf, SccfConfig, UserBasedConfig};
use sccf::data::catalog::Scale;
use sccf::data::synthetic::{generate, SyntheticConfig};
use sccf::data::LeaveOneOut;
use sccf::eval::{evaluate, EvalTarget};
use sccf::models::{Fism, FismConfig, Pop, TrainConfig};

/// Tight groups, mild drift: the UU signal is strong by construction.
fn structured_cfg() -> SyntheticConfig {
    SyntheticConfig {
        name: "e2e".into(),
        n_users: 240,
        n_items: 200,
        n_categories: 12,
        n_groups: 8,
        mean_len: 24.0,
        min_len: 8,
        user_scatter: 0.15,
        drift: 0.03,
        jump_prob: 0.02,
        ..sccf::data::catalog::ml1m_sim(Scale::Quick)
    }
}

struct World {
    split: LeaveOneOut,
    sccf: Sccf<Fism>,
    pop: Pop,
}

fn build_world(seed: u64) -> World {
    let data = generate(&structured_cfg(), seed).dataset.core_filter(5);
    let split = LeaveOneOut::split(&data);
    let train_seqs = (0..split.n_users() as u32).map(|u| split.train_seq(u).to_vec());
    let pop = Pop::fit_sequences(split.n_items(), train_seqs);
    let fism = Fism::train(
        &split,
        &FismConfig {
            train: TrainConfig {
                dim: 24,
                epochs: 20,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let mut sccf = Sccf::build(
        fism,
        &split,
        SccfConfig {
            user_based: UserBasedConfig {
                beta: 40,
                recent_window: 15,
            },
            candidate_n: 50,
            integrator: IntegratorConfig::default(),
            threads: 4,
            profiles: None,
            ui_ann: None,
            frozen_tier: sccf_core::FrozenTierMode::Flat,
        },
    );
    sccf.refresh_for_test(&split);
    World { split, sccf, pop }
}

#[test]
fn sccf_beats_or_matches_its_base_ui_model() {
    let w = build_world(4242);
    let ks = [20usize, 50];
    let base = evaluate(
        w.sccf.model(),
        &w.split,
        EvalTarget::Test,
        &ks,
        4,
        "FISM",
        "e2e",
    );
    let full = evaluate(
        &w.sccf,
        &w.split,
        EvalTarget::Test,
        &ks,
        4,
        "FISM-SCCF",
        "e2e",
    );
    // RQ1 shape: the fused model should improve (or at worst roughly tie)
    // on NDCG — allow a 3% relative slack for seed noise.
    assert!(
        full.metrics.ndcg(50) >= base.metrics.ndcg(50) * 0.97,
        "SCCF NDCG@50 {} vs base {}",
        full.metrics.ndcg(50),
        base.metrics.ndcg(50)
    );
    assert!(
        full.metrics.hr(50) >= base.metrics.hr(50) * 0.97,
        "SCCF HR@50 {} vs base {}",
        full.metrics.hr(50),
        base.metrics.hr(50)
    );
}

#[test]
fn uu_component_carries_real_signal() {
    let w = build_world(777);
    let ks = [50usize];
    let uu = evaluate(
        &w.sccf.uu_scorer(),
        &w.split,
        EvalTarget::Test,
        &ks,
        4,
        "FISM-UU",
        "e2e",
    );
    let pop = evaluate(&w.pop, &w.split, EvalTarget::Test, &ks, 4, "Pop", "e2e");
    // Neighborhood recommendations must clearly beat non-personalized
    // popularity on group-structured data.
    assert!(
        uu.metrics.ndcg(50) > pop.metrics.ndcg(50),
        "UU NDCG@50 {} vs Pop {}",
        uu.metrics.ndcg(50),
        pop.metrics.ndcg(50)
    );
}

#[test]
fn personalized_beats_popularity_on_structured_data() {
    let w = build_world(31337);
    let ks = [20usize];
    let fism = evaluate(
        w.sccf.model(),
        &w.split,
        EvalTarget::Test,
        &ks,
        4,
        "FISM",
        "e2e",
    );
    let pop = evaluate(&w.pop, &w.split, EvalTarget::Test, &ks, 4, "Pop", "e2e");
    assert!(
        fism.metrics.ndcg(20) > pop.metrics.ndcg(20),
        "FISM NDCG@20 {} vs Pop {}",
        fism.metrics.ndcg(20),
        pop.metrics.ndcg(20)
    );
}

#[test]
fn sccf_scores_respect_candidate_contract() {
    use sccf::models::Recommender;
    let w = build_world(5);
    let u = w.split.test_users()[0];
    let history = w.split.train_plus_val(u);
    let scores = w.sccf.score_all(u, &history);
    // finite scores only on the candidate union; everything else −∞
    let finite = scores.iter().filter(|s| s.is_finite()).count();
    assert!(finite > 0);
    assert!(finite <= 2 * w.sccf.config().candidate_n);
    // candidates never include the history
    for &i in &history {
        assert_eq!(scores[i as usize], f32::NEG_INFINITY);
    }
}
