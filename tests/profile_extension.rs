//! Integration tests for the §V future-work extension: side-information
//! (user-profile) aware neighborhoods.
//!
//! The synthetic generator emits noisy group-indicator profiles. With a
//! deliberately *weak* behavioral model (1 training epoch — cold-start
//! conditions), profile blending must raise neighborhood quality: the
//! fraction of same-group users among the β nearest neighbors.

use sccf::core::{IntegratorConfig, Sccf, SccfConfig, UserBasedConfig, UserProfiles};
use sccf::data::catalog::Scale;
use sccf::data::synthetic::{generate, SyntheticConfig, SyntheticData};
use sccf::data::LeaveOneOut;
use sccf::models::{Fism, FismConfig, InductiveUiModel, TrainConfig};

fn world() -> SyntheticData {
    generate(
        &SyntheticConfig {
            name: "profiles".into(),
            n_users: 200,
            n_items: 200,
            n_categories: 12,
            n_groups: 8,
            mean_len: 14.0,
            min_len: 6,
            ..sccf::data::catalog::ml1m_sim(Scale::Quick)
        },
        21,
    )
}

fn build_sccf(gen: &SyntheticData, weight: f32, epochs: usize) -> (LeaveOneOut, Sccf<Fism>) {
    let split = LeaveOneOut::split(&gen.dataset);
    let fism = Fism::train(
        &split,
        &FismConfig {
            train: TrainConfig {
                dim: 16,
                epochs,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let profiles = (weight > 0.0).then(|| UserProfiles::new(gen.profiles.clone(), weight));
    let mut sccf = Sccf::build(
        fism,
        &split,
        SccfConfig {
            user_based: UserBasedConfig {
                beta: 20,
                recent_window: 10,
            },
            candidate_n: 40,
            integrator: IntegratorConfig {
                epochs: 3,
                ..Default::default()
            },
            threads: 2,
            profiles,
            ui_ann: None,
            frozen_tier: sccf_core::FrozenTierMode::Flat,
        },
    );
    sccf.refresh_for_test(&split);
    (split, sccf)
}

/// Mean fraction of same-group users in each user's neighborhood.
fn group_purity(gen: &SyntheticData, split: &LeaveOneOut, sccf: &Sccf<Fism>) -> f64 {
    let groups = &gen.truth.user_group;
    let mut total = 0.0;
    let mut n = 0u32;
    for u in 0..split.n_users() as u32 {
        let rep = sccf.model().infer_user(&split.train_plus_val(u));
        let neighbors = sccf.neighbors(u, &rep);
        if neighbors.is_empty() {
            continue;
        }
        let same = neighbors
            .iter()
            .filter(|s| groups[s.id as usize] == groups[u as usize])
            .count();
        total += same as f64 / neighbors.len() as f64;
        n += 1;
    }
    total / n.max(1) as f64
}

#[test]
fn profiles_raise_neighborhood_purity_for_cold_models() {
    let gen = world();
    // 1 epoch: behavioral reps are nearly random (cold start)
    let (split, plain) = build_sccf(&gen, 0.0, 1);
    let (_, with_profiles) = build_sccf(&gen, 1.0, 1);
    let p0 = group_purity(&gen, &split, &plain);
    let p1 = group_purity(&gen, &split, &with_profiles);
    // random assignment over 8 groups ⇒ purity ≈ 0.125
    assert!(
        p1 > p0 + 0.1,
        "profile-augmented purity {p1:.3} should clearly beat behavioral-only {p0:.3}"
    );
    assert!(p1 > 0.4, "purity with profiles too low: {p1:.3}");
}

#[test]
fn zero_weight_profiles_change_nothing() {
    let gen = world();
    let (split, plain) = build_sccf(&gen, 0.0, 2);
    // weight 0 through the UserProfiles path must reproduce Eq. 11 exactly
    let split2 = LeaveOneOut::split(&gen.dataset);
    let fism = Fism::train(
        &split2,
        &FismConfig {
            train: TrainConfig {
                dim: 16,
                epochs: 2,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let mut zero = Sccf::build(
        fism,
        &split2,
        SccfConfig {
            user_based: UserBasedConfig {
                beta: 20,
                recent_window: 10,
            },
            candidate_n: 40,
            integrator: IntegratorConfig {
                epochs: 3,
                ..Default::default()
            },
            threads: 2,
            profiles: Some(UserProfiles::new(gen.profiles.clone(), 0.0)),
            ui_ann: None,
            frozen_tier: sccf_core::FrozenTierMode::Flat,
        },
    );
    zero.refresh_for_test(&split2);
    for u in [0u32, 7, 42] {
        let rep = plain.model().infer_user(&split.train_plus_val(u));
        let a: Vec<u32> = plain.neighbors(u, &rep).iter().map(|s| s.id).collect();
        let b: Vec<u32> = zero.neighbors(u, &rep).iter().map(|s| s.id).collect();
        assert_eq!(
            a, b,
            "user {u}: w=0 must reproduce plain Eq. 11 neighborhoods"
        );
    }
}

#[test]
fn profile_sccf_still_recommends() {
    let gen = world();
    let (split, sccf) = build_sccf(&gen, 0.5, 4);
    let u = split.test_users()[0];
    let recs = sccf.recommend(u, &split.train_plus_val(u), 10);
    assert!(!recs.is_empty());
    assert!(recs.windows(2).all(|w| w[0].score >= w[1].score));
}
