//! The durability acceptance gate: seeded crash-chaos schedules
//! interleaving ingest, recommendation, live-reshard steps,
//! tier-refresh steps, checkpoints, WAL syncs and kill-and-recover
//! cycles with torn-tail / bit-flip / trailing-checkpoint corruption.
//!
//! Every schedule is a pure function of its `u64` seed; a failing seed
//! is printed in the panic message and replays locally with
//! `run_chaos(&world, &ChaosConfig::quick(seed))`. The fixed seed set
//! below runs in tier-1; export `SCCF_CHAOS_LONG=1` for the
//! nightly-style widened sweep (more seeds, longer schedules).

use sccf_bench::chaos::{run_chaos, ChaosConfig, ChaosWorld};

/// Tier-1 seed set: small but diverse — different schedules hit
/// different interleavings of epochs, corruption and kills.
const CI_SEEDS: [u64; 6] = [1, 2, 3, 5, 8, 13];

#[test]
fn chaos_ci_seeds_recover_bit_identically() {
    let world = ChaosWorld::build(42);
    let mut kills = 0;
    let mut torn = 0;
    let mut flips = 0;
    let mut attacks = 0;
    let mut skips = 0;
    let mut rejections = 0;
    let mut replayed = 0;
    let mut policy_ticks = 0;
    let mut policy_actions = 0;
    for &seed in &CI_SEEDS {
        let report = run_chaos(&world, &ChaosConfig::quick(seed));
        assert!(report.kills >= 1, "seed {seed}: no kill exercised");
        assert!(report.ingested > 0, "seed {seed}: no events ingested");
        kills += report.kills;
        torn += report.torn_tails;
        flips += report.bit_flips;
        attacks += report.checkpoint_attacks;
        skips += report.trailing_skips;
        rejections += report.epoch_rejections;
        replayed += report.replayed_total;
        policy_ticks += report.policy_ticks;
        policy_actions += report.policy_scales + report.policy_refreshes;
    }
    // The seed set as a whole must exercise the interesting machinery;
    // a silent schedule regression (e.g. kills stop tearing tails)
    // would otherwise hollow the suite out without failing it.
    assert!(kills >= CI_SEEDS.len() as u64, "too few kills: {kills}");
    assert!(torn > 0, "no torn tail was ever injected");
    assert!(flips > 0, "no bit flip was ever injected");
    assert!(attacks > 0, "no trailing checkpoint was ever attacked");
    assert!(
        skips > 0,
        "recovery never skipped a corrupt trailing checkpoint"
    );
    assert!(
        rejections > 0,
        "no checkpoint/snapshot was ever rejected mid-epoch"
    );
    assert!(replayed > 0, "no WAL record was ever replayed");
    // The closed-loop control plane must ride the same schedules: real
    // policy ticks over real stats, with at least some of them
    // actuating (so kills can land mid-policy-epoch and the recovery
    // pin covers policy-driven fleets).
    assert!(policy_ticks > 0, "no policy tick was ever taken");
    assert!(
        policy_actions > 0,
        "the policy never actuated a scale or refresh across the seed set"
    );
}

/// A no-corruption control: with crash simulation limited to clean
/// syncs (`corrupt: false`), every acknowledged event must survive
/// every kill — zero loss, always.
#[test]
fn chaos_without_corruption_loses_nothing() {
    let world = ChaosWorld::build(42);
    for seed in [21, 34] {
        let report = run_chaos(
            &world,
            &ChaosConfig {
                corrupt: false,
                ..ChaosConfig::quick(seed)
            },
        );
        assert!(report.kills >= 1, "seed {seed}: no kill exercised");
        assert_eq!(
            report.lost_events, 0,
            "seed {seed}: clean kills must lose nothing"
        );
    }
}

/// Auto-checkpoint cadence under chaos: the incremental checkpoints
/// fired from the ingest path must survive the same schedules.
#[test]
fn chaos_with_auto_checkpoints() {
    let world = ChaosWorld::build(42);
    for seed in [55, 89] {
        let report = run_chaos(
            &world,
            &ChaosConfig {
                checkpoint_every_events: 40,
                ..ChaosConfig::quick(seed)
            },
        );
        assert!(report.kills >= 1, "seed {seed}: no kill exercised");
    }
}

/// The widened sweep: opt-in via `SCCF_CHAOS_LONG=1` (CI runs it in
/// the scheduled job; tier-1 skips it to stay fast).
#[test]
fn chaos_long_sweep() {
    if std::env::var("SCCF_CHAOS_LONG").is_err() {
        eprintln!("chaos_long_sweep: skipped (set SCCF_CHAOS_LONG=1 to run)");
        return;
    }
    let world = ChaosWorld::build(42);
    for seed in 100..140u64 {
        let mut cfg = ChaosConfig::quick(seed);
        cfg.steps = 400;
        cfg.checkpoint_every_events = if seed % 3 == 0 { 64 } else { 0 };
        cfg.fsync_every = 1 + (seed % 8) as u32;
        let report = run_chaos(&world, &cfg);
        assert!(report.kills >= 1, "seed {seed}: no kill exercised");
    }
}
