//! The unified `ServingApi` surface (ISSUE 3 acceptance):
//!
//! * one generic driver serves the plain and the sharded engine with
//!   zero engine-specific glue, and at `n_shards = 1` the two are
//!   bit-identical;
//! * `recommend_many` ≡ sequential `try_recommend`s and
//!   `ingest_batch` ≡ sequential `try_ingest`s (same floats, same
//!   counters) on both engines;
//! * the snapshot artifact is engine-agnostic: sharded
//!   `snapshot → restore` at N→N is recommendation-identical to the
//!   drained source fleet, N→1 (plain or single-shard) and N→2N equal
//!   a fresh engine of the target shape built from the same drained
//!   histories — state carries completely, only the partitioning
//!   changes;
//! * typed query knobs behave: forcing `Exact` on a scan-built engine
//!   changes nothing, `Ann` errors, exclusions shape the slate.

use rand::Rng;
use sccf::core::{
    CandidateSource, Exclusion, IntegratorConfig, RealtimeEngine, Sccf, SccfConfig, UserBasedConfig,
};
use sccf::data::{Dataset, Interaction, LeaveOneOut};
use sccf::models::{Fism, FismConfig, TrainConfig};
use sccf::serving::{RecQuery, RouterKind, ServingApi, ServingError, ShardedConfig, ShardedEngine};
use sccf::util::topk::Scored;

const N_USERS: u32 = 24;
const N_ITEMS: u32 = 18;

/// Two taste groups over the catalog, deterministic for a given seed.
fn world(seed: u64) -> (LeaveOneOut, Vec<Vec<u32>>) {
    let mut rng = sccf::util::rng::rng_for(seed, 77);
    let mut inter = Vec::new();
    for u in 0..N_USERS {
        let base = if u < N_USERS / 2 { 0 } else { N_ITEMS / 2 };
        let mut seen = sccf::util::hash::fx_set();
        let mut t = 0i64;
        while (t as usize) < 6 {
            let item = base + rng.gen_range(0..N_ITEMS / 2);
            if seen.insert(item) {
                inter.push(Interaction {
                    user: u,
                    item,
                    ts: t,
                });
                t += 1;
            }
        }
    }
    let data = Dataset::from_interactions("api", N_USERS as usize, N_ITEMS as usize, &inter, None);
    let split = LeaveOneOut::split(&data);
    let histories = (0..N_USERS).map(|u| split.train_plus_val(u)).collect();
    (split, histories)
}

/// Deterministic build: same seed in, same floats out.
fn build_sccf(split: &LeaveOneOut, seed: u64) -> Sccf<Fism> {
    let fism = Fism::train(
        split,
        &FismConfig {
            train: TrainConfig {
                dim: 8,
                epochs: 6,
                seed,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let mut sccf = Sccf::build(
        fism,
        split,
        SccfConfig {
            user_based: UserBasedConfig {
                beta: 5,
                recent_window: 5,
            },
            candidate_n: 10,
            integrator: IntegratorConfig {
                epochs: 4,
                seed,
                ..Default::default()
            },
            threads: 1,
            profiles: None,
            ui_ann: None,
        },
    );
    sccf.refresh_for_test(split);
    sccf
}

fn event_stream(seed: u64, len: usize) -> Vec<(u32, u32)> {
    let mut rng = sccf::util::rng::rng_for(seed, 31);
    (0..len)
        .map(|_| (rng.gen_range(0..N_USERS), rng.gen_range(0..N_ITEMS)))
        .collect()
}

fn assert_bit_identical(a: &[Scored], b: &[Scored], ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: length mismatch");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.id, y.id, "{ctx}: id mismatch");
        assert_eq!(
            x.score.to_bits(),
            y.score.to_bits(),
            "{ctx}: score bits differ for item {}",
            x.id
        );
    }
}

/// The whole point of the API: one function, any engine. Ingests a
/// stream, flushes, and returns every user's slate.
fn drive(api: &mut impl ServingApi, stream: &[(u32, u32)]) -> Vec<Vec<Scored>> {
    api.ingest_batch(stream).expect("stream ids are valid");
    api.flush().expect("barrier");
    api.recommend_many(&(0..N_USERS).collect::<Vec<_>>(), &RecQuery::top(8))
        .expect("all users exist")
        .into_iter()
        .map(|r| r.items)
        .collect()
}

#[test]
fn one_driver_serves_both_engines_bit_identically() {
    let seed = 3u64;
    let (split, histories) = world(seed);
    let stream = event_stream(seed, 120);

    let mut plain = RealtimeEngine::new(build_sccf(&split, seed), histories.clone());
    let mut sharded = ShardedEngine::try_new(
        build_sccf(&split, seed),
        histories,
        ShardedConfig {
            n_shards: 1,
            queue_capacity: 64,
            router: RouterKind::Modulo,
        },
    )
    .expect("valid config");

    let a = drive(&mut plain, &stream);
    let b = drive(&mut sharded, &stream);
    for (u, (x, y)) in a.iter().zip(&b).enumerate() {
        assert_bit_identical(x, y, &format!("user {u}"));
    }

    // Unified stats read identically too.
    let sa = plain.serving_stats().expect("plain stats");
    let sb = sharded.serving_stats().expect("sharded stats");
    assert_eq!(sa.events, stream.len() as u64);
    assert_eq!(sb.events, stream.len() as u64);
    assert_eq!(sa.recommends, N_USERS as u64);
    assert_eq!(sb.recommends, N_USERS as u64);
    assert!(sa.shards.is_empty());
    assert_eq!(sb.shards.len(), 1);
}

#[test]
fn recommend_many_equals_sequential_recommends() {
    for n_shards in [1usize, 4] {
        let seed = 7u64;
        let (split, histories) = world(seed);
        let mut engine = ShardedEngine::try_new(
            build_sccf(&split, seed),
            histories,
            ShardedConfig {
                n_shards,
                queue_capacity: 32,
                router: RouterKind::Modulo,
            },
        )
        .expect("valid config");
        engine
            .ingest_batch(&event_stream(seed, 90))
            .expect("valid stream");

        // An adversarial user list: duplicates, non-monotone order.
        let users: Vec<u32> = (0..N_USERS).chain([3, 3, 17, 0]).rev().collect();
        let query = RecQuery::top(6);
        let batched = engine
            .recommend_many(&users, &query)
            .expect("all users valid");
        assert_eq!(batched.len(), users.len());
        for (i, &u) in users.iter().enumerate() {
            let single = engine.try_recommend(u, &query).expect("valid user");
            assert_bit_identical(
                &batched[i].items,
                &single.items,
                &format!("{n_shards} shards, position {i} (user {u})"),
            );
        }
        engine.shutdown();
    }
}

#[test]
fn ingest_batch_equals_sequential_ingests() {
    let seed = 13u64;
    let (split, histories) = world(seed);
    let stream = event_stream(seed, 100);

    let mut batched = ShardedEngine::try_new(
        build_sccf(&split, seed),
        histories.clone(),
        ShardedConfig {
            n_shards: 4,
            queue_capacity: 16,
            router: RouterKind::Modulo,
        },
    )
    .expect("valid config");
    let mut sequential = ShardedEngine::try_new(
        build_sccf(&split, seed),
        histories,
        ShardedConfig {
            n_shards: 4,
            queue_capacity: 16,
            router: RouterKind::Modulo,
        },
    )
    .expect("valid config");

    batched.ingest_batch(&stream).expect("valid stream");
    for &(u, i) in &stream {
        sequential.try_ingest(u, i).expect("valid event");
    }
    let users: Vec<u32> = (0..N_USERS).collect();
    let a = batched
        .recommend_many(&users, &RecQuery::top(8))
        .expect("valid");
    let b = sequential
        .recommend_many(&users, &RecQuery::top(8))
        .expect("valid");
    for (u, (x, y)) in a.iter().zip(&b).enumerate() {
        assert_bit_identical(&x.items, &y.items, &format!("user {u}"));
    }
    assert_eq!(
        batched.serving_stats().expect("stats").events,
        sequential.serving_stats().expect("stats").events,
    );
}

#[test]
fn plain_and_sharded_agree_on_query_validation_edge_cases() {
    // Both implementations must reject an unsatisfiable query even over
    // an empty user list — code written against one engine cannot
    // observe a difference when the other is swapped in.
    let seed = 43u64;
    let (split, histories) = world(seed);
    let mut plain = RealtimeEngine::new(build_sccf(&split, seed), histories.clone());
    let mut sharded = ShardedEngine::try_new(
        build_sccf(&split, seed),
        histories,
        ShardedConfig {
            n_shards: 2,
            queue_capacity: 16,
            router: RouterKind::Modulo,
        },
    )
    .expect("valid config");
    let ann = RecQuery::top(5).with_source(CandidateSource::Ann);
    let bad_exclude = RecQuery::top(5).excluding(Exclusion::HistoryAnd(vec![N_ITEMS + 9]));
    assert!(matches!(
        plain.recommend_many(&[], &ann),
        Err(ServingError::AnnUnavailable)
    ));
    assert!(matches!(
        sharded.recommend_many(&[], &ann),
        Err(ServingError::AnnUnavailable)
    ));
    assert!(matches!(
        plain.recommend_many(&[], &bad_exclude),
        Err(ServingError::UnknownItem { .. })
    ));
    assert!(matches!(
        sharded.recommend_many(&[], &bad_exclude),
        Err(ServingError::UnknownItem { .. })
    ));
}

#[test]
fn shard_view_engine_batches_are_atomic_for_unowned_users() {
    // A shard-view RealtimeEngine (recovered via shutdown_into_engines)
    // owns a user subset; a batch naming a foreign user must reject
    // atomically — no partial application before the NotOwned error.
    let seed = 47u64;
    let (split, histories) = world(seed);
    let engine = ShardedEngine::try_new(
        build_sccf(&split, seed),
        histories,
        ShardedConfig {
            n_shards: 2,
            queue_capacity: 16,
            router: RouterKind::Modulo,
        },
    )
    .expect("valid config");
    let (mut engines, _) = engine.shutdown_into_engines();
    let mut shard0 = engines.remove(0);
    let owned: Vec<u32> = (0..N_USERS).filter(|&u| shard0.owns(u)).collect();
    let foreign = (0..N_USERS)
        .find(|&u| !shard0.owns(u))
        .expect("2 shards ⇒ shard 0 does not own everyone");
    let probe = owned[0];
    let before = shard0.history(probe).len();

    let err = shard0
        .ingest_batch(&[(probe, 1), (foreign, 2)])
        .expect_err("foreign user must fail the batch");
    assert!(matches!(err, ServingError::NotOwned { .. }), "{err:?}");
    assert_eq!(
        shard0.history(probe).len(),
        before,
        "atomic batch: the owned user's event must not have been applied"
    );
    assert!(matches!(
        shard0.recommend_many(&[probe, foreign], &RecQuery::top(3)),
        Err(ServingError::NotOwned { .. })
    ));
    // Owned-only traffic still serves.
    assert_eq!(shard0.ingest_batch(&[(probe, 1)]).expect("owned user"), 1);
    assert!(!shard0
        .try_recommend(probe, &RecQuery::top(3))
        .expect("owned user")
        .items
        .is_empty());
}

#[test]
fn forced_exact_source_matches_configured_on_scan_builds() {
    let seed = 5u64;
    let (split, histories) = world(seed);
    let mut engine = RealtimeEngine::new(build_sccf(&split, seed), histories);
    engine.ingest_batch(&event_stream(seed, 40)).expect("valid");
    for u in 0..N_USERS {
        let configured = engine.try_recommend(u, &RecQuery::top(8)).expect("valid");
        let exact = engine
            .try_recommend(u, &RecQuery::top(8).with_source(CandidateSource::Exact))
            .expect("valid");
        assert_bit_identical(&configured.items, &exact.items, &format!("user {u}"));
    }
    // No HNSW was built, so forcing ANN is a typed error on both shapes.
    assert!(matches!(
        engine.try_recommend(0, &RecQuery::top(8).with_source(CandidateSource::Ann)),
        Err(ServingError::AnnUnavailable)
    ));
}

#[test]
fn exclusion_policies_apply_through_the_sharded_path() {
    let seed = 11u64;
    let (split, histories) = world(seed);
    let mut engine = ShardedEngine::try_new(
        build_sccf(&split, seed),
        histories.clone(),
        ShardedConfig {
            n_shards: 3,
            queue_capacity: 16,
            router: RouterKind::Modulo,
        },
    )
    .expect("valid config");
    let user = 2u32;
    let default = engine
        .try_recommend(user, &RecQuery::top(5))
        .expect("valid");
    assert!(!default.items.is_empty());
    let banned = default.items[0].id;
    let filtered = engine
        .try_recommend(
            user,
            &RecQuery::top(5).excluding(Exclusion::HistoryAnd(vec![banned])),
        )
        .expect("valid");
    assert!(filtered.items.iter().all(|s| s.id != banned));
    // Exclusion ids are validated at the router.
    assert!(matches!(
        engine.try_recommend(
            user,
            &RecQuery::top(5).excluding(Exclusion::HistoryAnd(vec![N_ITEMS + 100])),
        ),
        Err(ServingError::UnknownItem { .. })
    ));
    // Nothing-excluded may resurface the user's own history.
    let open = engine
        .try_recommend(
            user,
            &RecQuery::top(N_ITEMS as usize).excluding(Exclusion::Nothing),
        )
        .expect("valid");
    let hist: Vec<u32> = histories[user as usize].clone();
    assert!(
        open.items.iter().any(|s| hist.contains(&s.id)),
        "unmasked query should rank history items too"
    );
}

// ---------------------------------------------------------------------
// Snapshot / offline resharding N→M.

/// Build a drained N-shard fleet with a served stream, return it plus
/// the stream it saw.
fn drained_fleet(seed: u64, n_shards: usize) -> (ShardedEngine<Fism>, LeaveOneOut) {
    let (split, histories) = world(seed);
    let mut engine = ShardedEngine::try_new(
        build_sccf(&split, seed),
        histories,
        ShardedConfig {
            n_shards,
            queue_capacity: 32,
            router: RouterKind::Modulo,
        },
    )
    .expect("valid config");
    engine
        .ingest_batch(&event_stream(seed, 150))
        .expect("valid stream");
    engine.flush().expect("barrier");
    (engine, split)
}

fn slates(api: &mut impl ServingApi) -> Vec<Vec<Scored>> {
    api.recommend_many(&(0..N_USERS).collect::<Vec<_>>(), &RecQuery::top(8))
        .expect("all users valid")
        .into_iter()
        .map(|r| r.items)
        .collect()
}

#[test]
fn sharded_snapshot_restore_same_shard_count_is_identical() {
    let seed = 29u64;
    let (mut source, split) = drained_fleet(seed, 3);
    let before = slates(&mut source);
    let artifact = source.snapshot_state().expect("snapshot");

    let mut restored = ShardedEngine::restore(
        build_sccf(&split, seed),
        &artifact,
        ShardedConfig {
            n_shards: 3,
            queue_capacity: 32,
            router: RouterKind::Modulo,
        },
    )
    .expect("same-shape restore");
    let after = slates(&mut restored);
    for (u, (x, y)) in before.iter().zip(&after).enumerate() {
        assert_bit_identical(x, y, &format!("N→N user {u}"));
    }
}

#[test]
fn reshard_to_any_count_equals_fresh_engine_on_drained_state() {
    let seed = 31u64;
    let (mut source, split) = drained_fleet(seed, 3);
    let artifact = source.snapshot_state().expect("snapshot");
    let drained: Vec<Vec<u32>> = sccf::core::decode_histories(&artifact).expect("own artifact");

    // N→1 and N→2N: the restored fleet must equal a fresh fleet of the
    // target shape built from the same drained histories — the snapshot
    // carries the complete serving state, restore only re-partitions.
    for target in [1usize, 6] {
        let mut restored = ShardedEngine::restore(
            build_sccf(&split, seed),
            &artifact,
            ShardedConfig {
                n_shards: target,
                queue_capacity: 32,
                router: RouterKind::Modulo,
            },
        )
        .expect("reshard restore");
        let mut fresh = ShardedEngine::try_new(
            build_sccf(&split, seed),
            drained.clone(),
            ShardedConfig {
                n_shards: target,
                queue_capacity: 32,
                router: RouterKind::Modulo,
            },
        )
        .expect("fresh fleet");
        let a = slates(&mut restored);
        let b = slates(&mut fresh);
        for (u, (x, y)) in a.iter().zip(&b).enumerate() {
            assert_bit_identical(x, y, &format!("3→{target} user {u}"));
        }
    }
}

#[test]
fn snapshot_artifact_is_engine_agnostic() {
    let seed = 37u64;
    let (mut source, split) = drained_fleet(seed, 4);
    let artifact = source.snapshot_state().expect("snapshot");

    // Sharded artifact → plain engine (N→1 failover)…
    let mut plain =
        RealtimeEngine::restore(build_sccf(&split, seed), &artifact).expect("plain restore");
    // …must agree with a single-shard restore of the same artifact.
    let mut single = ShardedEngine::restore(
        build_sccf(&split, seed),
        &artifact,
        ShardedConfig {
            n_shards: 1,
            queue_capacity: 32,
            router: RouterKind::Modulo,
        },
    )
    .expect("single-shard restore");
    let a = slates(&mut plain);
    let b = slates(&mut single);
    for (u, (x, y)) in a.iter().zip(&b).enumerate() {
        assert_bit_identical(x, y, &format!("plain vs 1-shard user {u}"));
    }

    // And the plain engine's own snapshot restores into a sharded fleet.
    let plain_artifact = plain.snapshot_state().expect("plain snapshot");
    let mut fleet = ShardedEngine::restore(
        build_sccf(&split, seed),
        &plain_artifact,
        ShardedConfig {
            n_shards: 2,
            queue_capacity: 32,
            router: RouterKind::Modulo,
        },
    )
    .expect("plain artifact → 2 shards");
    assert_eq!(slates(&mut fleet).len(), N_USERS as usize);

    // Garbage artifacts surface a typed snapshot error.
    assert!(matches!(
        ShardedEngine::restore(
            build_sccf(&split, seed),
            b"not a snapshot",
            ShardedConfig::default(),
        ),
        Err(ServingError::Snapshot(_))
    ));
}

#[test]
fn restored_fleet_keeps_serving_writes() {
    // Restore is not a read-only replica: the resharded fleet ingests
    // and its recommendations move.
    let seed = 41u64;
    let (mut source, split) = drained_fleet(seed, 2);
    let artifact = source.snapshot_state().expect("snapshot");
    let mut fleet = ShardedEngine::restore(
        build_sccf(&split, seed),
        &artifact,
        ShardedConfig {
            n_shards: 5,
            queue_capacity: 16,
            router: RouterKind::Modulo,
        },
    )
    .expect("reshard restore");
    fleet
        .ingest_batch(&event_stream(seed ^ 0xF00D, 60))
        .expect("valid stream");
    fleet.flush().expect("barrier");
    let stats = fleet.serving_stats().expect("stats");
    assert_eq!(stats.events, 60);
    assert_eq!(stats.shards.len(), 5);
    for u in 0..N_USERS {
        assert!(!fleet
            .try_recommend(u, &RecQuery::top(4))
            .expect("valid user")
            .items
            .is_empty());
    }
}

// ---------------------------------------------------------------------
// Live resharding (ISSUE 4): the correctness pins.
//
// * Post-quiesce state is bit-identical to an offline `snapshot()` +
//   `restore(.., new_cfg)` of the same histories.
// * Events ingested *during* the migration land exactly once, in
//   per-user order — pinned both directly (the snapshot's histories
//   equal the replayed stream) and behaviorally (slates match a static
//   target-shape fleet that ingested the same stream).
// * Progress counters surface through `ServingStats::migration`.

fn consistent(n_shards: usize) -> ShardedConfig {
    ShardedConfig {
        n_shards,
        queue_capacity: 32,
        router: RouterKind::Consistent { vnodes: 32 },
    }
}

/// Begin a reshard, then alternate small ingest bursts with handoff
/// batches until the migration quiesces — the deployment interleaving
/// the runbook (docs/OPERATIONS.md) prescribes. Ingests all of
/// `during`, draining whatever the migration did not overlap.
fn reshard_interleaved(
    engine: &mut ShardedEngine<Fism>,
    new_cfg: ShardedConfig,
    batch: usize,
    during: &[(u32, u32)],
) {
    engine.begin_reshard(new_cfg, batch).expect("begin reshard");
    let mut events = during.iter();
    while engine.is_migrating() {
        for &(u, i) in events.by_ref().take(7) {
            engine.try_ingest(u, i).expect("mid-migration ingest");
        }
        engine.reshard_step().expect("handoff batch");
    }
    for &(u, i) in events {
        engine.try_ingest(u, i).expect("post-migration ingest");
    }
}

#[test]
fn live_reshard_is_bit_identical_to_offline_restore_and_static_fleet() {
    // Property-style sweep: scale-out and scale-in, several seeds, with
    // traffic flowing during every migration.
    for (seed, from, to) in [(3u64, 3usize, 5usize), (11, 2, 5), (29, 4, 2)] {
        let (split, histories) = world(seed);
        let pre = event_stream(seed, 60);
        let during = event_stream(seed ^ 0xABCD, 90);
        let full: Vec<(u32, u32)> = pre.iter().chain(&during).copied().collect();

        // --- live path: reshard while `during` flows ---------------
        let mut live = ShardedEngine::try_new(
            build_sccf(&split, seed),
            histories.clone(),
            consistent(from),
        )
        .expect("valid config");
        live.ingest_batch(&pre).expect("pre-migration stream");
        reshard_interleaved(&mut live, consistent(to), 4, &during);
        live.flush().expect("barrier");

        // Exactly-once, directly: the merged histories equal the
        // initial histories plus the full stream in per-user order.
        let stats = live.serving_stats().expect("stats");
        assert_eq!(stats.events, full.len() as u64, "seed {seed}: exactly once");
        let live_artifact = live.snapshot_state().expect("snapshot");
        let live_histories = sccf::core::decode_histories(&live_artifact).expect("own artifact");
        let mut expect = histories.clone();
        for &(u, i) in &full {
            expect[u as usize].push(i);
        }
        assert_eq!(
            live_histories, expect,
            "seed {seed}: every event exactly once, per-user order preserved"
        );
        let live_slates = slates(&mut live);

        // --- offline comparator: twin fleet, same stream, snapshot +
        // restore at the target shape -------------------------------
        let mut twin = ShardedEngine::try_new(
            build_sccf(&split, seed),
            histories.clone(),
            consistent(from),
        )
        .expect("valid config");
        twin.ingest_batch(&full).expect("full stream");
        let artifact = twin.snapshot_state().expect("twin snapshot");
        let mut restored =
            ShardedEngine::restore(build_sccf(&split, seed), &artifact, consistent(to))
                .expect("offline reshard");
        let offline_slates = slates(&mut restored);
        for (u, (x, y)) in live_slates.iter().zip(&offline_slates).enumerate() {
            assert_bit_identical(
                x,
                y,
                &format!("seed {seed}, live {from}→{to} vs offline restore, user {u}"),
            );
        }

        // --- static comparator: a fleet born at the target shape that
        // replayed the same stream ----------------------------------
        let mut static_fleet =
            ShardedEngine::try_new(build_sccf(&split, seed), histories.clone(), consistent(to))
                .expect("valid config");
        static_fleet.ingest_batch(&full).expect("full stream");
        let static_slates = slates(&mut static_fleet);
        for (u, (x, y)) in live_slates.iter().zip(&static_slates).enumerate() {
            assert_bit_identical(
                x,
                y,
                &format!("seed {seed}, live {from}→{to} vs static {to}-shard fleet, user {u}"),
            );
        }
    }
}

#[test]
fn migration_counters_track_progress_through_serving_stats() {
    let seed = 61u64;
    let (split, histories) = world(seed);
    let mut engine =
        ShardedEngine::try_new(build_sccf(&split, seed), histories, consistent(2)).expect("valid");
    engine.ingest_batch(&event_stream(seed, 50)).expect("valid");

    let plan_size = {
        let (old, new) = (
            consistent(2).ring().expect("valid"),
            consistent(6).ring().expect("valid"),
        );
        (0..N_USERS)
            .filter(|&u| old.route(u) != new.route(u))
            .count() as u64
    };
    assert!(plan_size >= 2, "world too small to observe batching");

    engine.begin_reshard(consistent(6), 1).expect("begin");
    let mid = engine.serving_stats().expect("stats");
    assert!(mid.migration.in_progress);
    assert_eq!(mid.migration.pending_users, plan_size);
    assert_eq!(mid.migration.migrated_users, 0);

    engine.reshard_step().expect("one batch of one user");
    let after_one = engine.serving_stats().expect("stats");
    assert_eq!(after_one.migration.migrated_users, 1);
    assert_eq!(after_one.migration.pending_users, plan_size - 1);
    assert_eq!(after_one.migration.batches, 1);

    while engine.is_migrating() {
        engine.reshard_step().expect("drive to completion");
    }
    let done = engine.serving_stats().expect("stats");
    assert!(!done.migration.in_progress);
    assert_eq!(done.migration.migrated_users, plan_size);
    assert_eq!(done.migration.pending_users, 0);
    assert_eq!(
        done.migration.batches, plan_size,
        "batch size 1 ⇒ one batch per user"
    );
    engine.shutdown();
}
