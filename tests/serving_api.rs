//! The unified `ServingApi` surface (ISSUE 3 acceptance):
//!
//! * one generic driver serves the plain and the sharded engine with
//!   zero engine-specific glue, and at `n_shards = 1` the two are
//!   bit-identical;
//! * `recommend_many` ≡ sequential `try_recommend`s and
//!   `ingest_batch` ≡ sequential `try_ingest`s (same floats, same
//!   counters) on both engines;
//! * the snapshot artifact is engine-agnostic: sharded
//!   `snapshot → restore` at N→N is recommendation-identical to the
//!   drained source fleet, N→1 (plain or single-shard) and N→2N equal
//!   a fresh engine of the target shape built from the same drained
//!   histories — state carries completely, only the partitioning
//!   changes;
//! * typed query knobs behave: forcing `Exact` on a scan-built engine
//!   changes nothing, `Ann` errors, exclusions shape the slate.

use rand::Rng;
use sccf::core::{
    CandidateSource, Exclusion, IntegratorConfig, RealtimeEngine, Sccf, SccfConfig, UserBasedConfig,
};
use sccf::data::{Dataset, Interaction, LeaveOneOut};
use sccf::models::{Fism, FismConfig, TrainConfig};
use sccf::serving::{
    HashRing, RecQuery, RouterKind, ServingApi, ServingError, ShardedConfig, ShardedEngine,
};
use sccf::util::topk::Scored;

const N_USERS: u32 = 24;
const N_ITEMS: u32 = 18;

/// Two taste groups over the catalog, deterministic for a given seed.
fn world(seed: u64) -> (LeaveOneOut, Vec<Vec<u32>>) {
    let mut rng = sccf::util::rng::rng_for(seed, 77);
    let mut inter = Vec::new();
    for u in 0..N_USERS {
        let base = if u < N_USERS / 2 { 0 } else { N_ITEMS / 2 };
        let mut seen = sccf::util::hash::fx_set();
        let mut t = 0i64;
        while (t as usize) < 6 {
            let item = base + rng.gen_range(0..N_ITEMS / 2);
            if seen.insert(item) {
                inter.push(Interaction {
                    user: u,
                    item,
                    ts: t,
                });
                t += 1;
            }
        }
    }
    let data = Dataset::from_interactions("api", N_USERS as usize, N_ITEMS as usize, &inter, None);
    let split = LeaveOneOut::split(&data);
    let histories = (0..N_USERS).map(|u| split.train_plus_val(u)).collect();
    (split, histories)
}

/// Deterministic build: same seed in, same floats out.
fn build_sccf(split: &LeaveOneOut, seed: u64) -> Sccf<Fism> {
    let fism = Fism::train(
        split,
        &FismConfig {
            train: TrainConfig {
                dim: 8,
                epochs: 6,
                seed,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let mut sccf = Sccf::build(
        fism,
        split,
        SccfConfig {
            user_based: UserBasedConfig {
                beta: 5,
                recent_window: 5,
            },
            candidate_n: 10,
            integrator: IntegratorConfig {
                epochs: 4,
                seed,
                ..Default::default()
            },
            threads: 1,
            profiles: None,
            ui_ann: None,
            frozen_tier: sccf_core::FrozenTierMode::Flat,
        },
    );
    sccf.refresh_for_test(split);
    sccf
}

fn event_stream(seed: u64, len: usize) -> Vec<(u32, u32)> {
    let mut rng = sccf::util::rng::rng_for(seed, 31);
    (0..len)
        .map(|_| (rng.gen_range(0..N_USERS), rng.gen_range(0..N_ITEMS)))
        .collect()
}

fn assert_bit_identical(a: &[Scored], b: &[Scored], ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: length mismatch");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x.id, y.id, "{ctx}: id mismatch");
        assert_eq!(
            x.score.to_bits(),
            y.score.to_bits(),
            "{ctx}: score bits differ for item {}",
            x.id
        );
    }
}

/// The whole point of the API: one function, any engine. Ingests a
/// stream, flushes, and returns every user's slate.
fn drive(api: &mut impl ServingApi, stream: &[(u32, u32)]) -> Vec<Vec<Scored>> {
    api.ingest_batch(stream).expect("stream ids are valid");
    api.flush().expect("barrier");
    api.recommend_many(&(0..N_USERS).collect::<Vec<_>>(), &RecQuery::top(8))
        .expect("all users exist")
        .into_iter()
        .map(|r| r.items)
        .collect()
}

#[test]
fn one_driver_serves_both_engines_bit_identically() {
    let seed = 3u64;
    let (split, histories) = world(seed);
    let stream = event_stream(seed, 120);

    let mut plain = RealtimeEngine::new(build_sccf(&split, seed), histories.clone());
    let mut sharded = ShardedEngine::try_new(
        build_sccf(&split, seed),
        histories,
        ShardedConfig {
            n_shards: 1,
            queue_capacity: 64,
            router: RouterKind::Modulo,
        },
    )
    .expect("valid config");

    let a = drive(&mut plain, &stream);
    let b = drive(&mut sharded, &stream);
    for (u, (x, y)) in a.iter().zip(&b).enumerate() {
        assert_bit_identical(x, y, &format!("user {u}"));
    }

    // Unified stats read identically too.
    let sa = plain.serving_stats().expect("plain stats");
    let sb = sharded.serving_stats().expect("sharded stats");
    assert_eq!(sa.events, stream.len() as u64);
    assert_eq!(sb.events, stream.len() as u64);
    assert_eq!(sa.recommends, N_USERS as u64);
    assert_eq!(sb.recommends, N_USERS as u64);
    assert!(sa.shards.is_empty());
    assert_eq!(sb.shards.len(), 1);
}

#[test]
fn recommend_many_equals_sequential_recommends() {
    for n_shards in [1usize, 4] {
        let seed = 7u64;
        let (split, histories) = world(seed);
        let mut engine = ShardedEngine::try_new(
            build_sccf(&split, seed),
            histories,
            ShardedConfig {
                n_shards,
                queue_capacity: 32,
                router: RouterKind::Modulo,
            },
        )
        .expect("valid config");
        engine
            .ingest_batch(&event_stream(seed, 90))
            .expect("valid stream");

        // An adversarial user list: duplicates, non-monotone order.
        let users: Vec<u32> = (0..N_USERS).chain([3, 3, 17, 0]).rev().collect();
        let query = RecQuery::top(6);
        let batched = engine
            .recommend_many(&users, &query)
            .expect("all users valid");
        assert_eq!(batched.len(), users.len());
        for (i, &u) in users.iter().enumerate() {
            let single = engine.try_recommend(u, &query).expect("valid user");
            assert_bit_identical(
                &batched[i].items,
                &single.items,
                &format!("{n_shards} shards, position {i} (user {u})"),
            );
        }
        engine.shutdown();
    }
}

#[test]
fn ingest_batch_equals_sequential_ingests() {
    let seed = 13u64;
    let (split, histories) = world(seed);
    let stream = event_stream(seed, 100);

    let mut batched = ShardedEngine::try_new(
        build_sccf(&split, seed),
        histories.clone(),
        ShardedConfig {
            n_shards: 4,
            queue_capacity: 16,
            router: RouterKind::Modulo,
        },
    )
    .expect("valid config");
    let mut sequential = ShardedEngine::try_new(
        build_sccf(&split, seed),
        histories,
        ShardedConfig {
            n_shards: 4,
            queue_capacity: 16,
            router: RouterKind::Modulo,
        },
    )
    .expect("valid config");

    batched.ingest_batch(&stream).expect("valid stream");
    for &(u, i) in &stream {
        sequential.try_ingest(u, i).expect("valid event");
    }
    let users: Vec<u32> = (0..N_USERS).collect();
    let a = batched
        .recommend_many(&users, &RecQuery::top(8))
        .expect("valid");
    let b = sequential
        .recommend_many(&users, &RecQuery::top(8))
        .expect("valid");
    for (u, (x, y)) in a.iter().zip(&b).enumerate() {
        assert_bit_identical(&x.items, &y.items, &format!("user {u}"));
    }
    assert_eq!(
        batched.serving_stats().expect("stats").events,
        sequential.serving_stats().expect("stats").events,
    );
}

#[test]
fn plain_and_sharded_agree_on_query_validation_edge_cases() {
    // Both implementations must reject an unsatisfiable query even over
    // an empty user list — code written against one engine cannot
    // observe a difference when the other is swapped in.
    let seed = 43u64;
    let (split, histories) = world(seed);
    let mut plain = RealtimeEngine::new(build_sccf(&split, seed), histories.clone());
    let mut sharded = ShardedEngine::try_new(
        build_sccf(&split, seed),
        histories,
        ShardedConfig {
            n_shards: 2,
            queue_capacity: 16,
            router: RouterKind::Modulo,
        },
    )
    .expect("valid config");
    let ann = RecQuery::top(5).with_source(CandidateSource::Ann);
    let bad_exclude = RecQuery::top(5).excluding(Exclusion::HistoryAnd(vec![N_ITEMS + 9]));
    assert!(matches!(
        plain.recommend_many(&[], &ann),
        Err(ServingError::AnnUnavailable)
    ));
    assert!(matches!(
        sharded.recommend_many(&[], &ann),
        Err(ServingError::AnnUnavailable)
    ));
    assert!(matches!(
        plain.recommend_many(&[], &bad_exclude),
        Err(ServingError::UnknownItem { .. })
    ));
    assert!(matches!(
        sharded.recommend_many(&[], &bad_exclude),
        Err(ServingError::UnknownItem { .. })
    ));
}

#[test]
fn shard_view_engine_batches_are_atomic_for_unowned_users() {
    // A shard-view RealtimeEngine (recovered via shutdown_into_engines)
    // owns a user subset; a batch naming a foreign user must reject
    // atomically — no partial application before the NotOwned error.
    let seed = 47u64;
    let (split, histories) = world(seed);
    let engine = ShardedEngine::try_new(
        build_sccf(&split, seed),
        histories,
        ShardedConfig {
            n_shards: 2,
            queue_capacity: 16,
            router: RouterKind::Modulo,
        },
    )
    .expect("valid config");
    let (mut engines, _) = engine.shutdown_into_engines();
    let mut shard0 = engines.remove(0);
    let owned: Vec<u32> = (0..N_USERS).filter(|&u| shard0.owns(u)).collect();
    let foreign = (0..N_USERS)
        .find(|&u| !shard0.owns(u))
        .expect("2 shards ⇒ shard 0 does not own everyone");
    let probe = owned[0];
    let before = shard0.history(probe).len();

    let err = shard0
        .ingest_batch(&[(probe, 1), (foreign, 2)])
        .expect_err("foreign user must fail the batch");
    assert!(matches!(err, ServingError::NotOwned { .. }), "{err:?}");
    assert_eq!(
        shard0.history(probe).len(),
        before,
        "atomic batch: the owned user's event must not have been applied"
    );
    assert!(matches!(
        shard0.recommend_many(&[probe, foreign], &RecQuery::top(3)),
        Err(ServingError::NotOwned { .. })
    ));
    // Owned-only traffic still serves.
    assert_eq!(shard0.ingest_batch(&[(probe, 1)]).expect("owned user"), 1);
    assert!(!shard0
        .try_recommend(probe, &RecQuery::top(3))
        .expect("owned user")
        .items
        .is_empty());
}

#[test]
fn forced_exact_source_matches_configured_on_scan_builds() {
    let seed = 5u64;
    let (split, histories) = world(seed);
    let mut engine = RealtimeEngine::new(build_sccf(&split, seed), histories);
    engine.ingest_batch(&event_stream(seed, 40)).expect("valid");
    for u in 0..N_USERS {
        let configured = engine.try_recommend(u, &RecQuery::top(8)).expect("valid");
        let exact = engine
            .try_recommend(u, &RecQuery::top(8).with_source(CandidateSource::Exact))
            .expect("valid");
        assert_bit_identical(&configured.items, &exact.items, &format!("user {u}"));
    }
    // No HNSW was built, so forcing ANN is a typed error on both shapes.
    assert!(matches!(
        engine.try_recommend(0, &RecQuery::top(8).with_source(CandidateSource::Ann)),
        Err(ServingError::AnnUnavailable)
    ));
}

#[test]
fn exclusion_policies_apply_through_the_sharded_path() {
    let seed = 11u64;
    let (split, histories) = world(seed);
    let mut engine = ShardedEngine::try_new(
        build_sccf(&split, seed),
        histories.clone(),
        ShardedConfig {
            n_shards: 3,
            queue_capacity: 16,
            router: RouterKind::Modulo,
        },
    )
    .expect("valid config");
    let user = 2u32;
    let default = engine
        .try_recommend(user, &RecQuery::top(5))
        .expect("valid");
    assert!(!default.items.is_empty());
    let banned = default.items[0].id;
    let filtered = engine
        .try_recommend(
            user,
            &RecQuery::top(5).excluding(Exclusion::HistoryAnd(vec![banned])),
        )
        .expect("valid");
    assert!(filtered.items.iter().all(|s| s.id != banned));
    // Exclusion ids are validated at the router.
    assert!(matches!(
        engine.try_recommend(
            user,
            &RecQuery::top(5).excluding(Exclusion::HistoryAnd(vec![N_ITEMS + 100])),
        ),
        Err(ServingError::UnknownItem { .. })
    ));
    // Nothing-excluded may resurface the user's own history.
    let open = engine
        .try_recommend(
            user,
            &RecQuery::top(N_ITEMS as usize).excluding(Exclusion::Nothing),
        )
        .expect("valid");
    let hist: Vec<u32> = histories[user as usize].clone();
    assert!(
        open.items.iter().any(|s| hist.contains(&s.id)),
        "unmasked query should rank history items too"
    );
}

// ---------------------------------------------------------------------
// Snapshot / offline resharding N→M.

/// Build a drained N-shard fleet with a served stream, return it plus
/// the stream it saw.
fn drained_fleet(seed: u64, n_shards: usize) -> (ShardedEngine<Fism>, LeaveOneOut) {
    let (split, histories) = world(seed);
    let mut engine = ShardedEngine::try_new(
        build_sccf(&split, seed),
        histories,
        ShardedConfig {
            n_shards,
            queue_capacity: 32,
            router: RouterKind::Modulo,
        },
    )
    .expect("valid config");
    engine
        .ingest_batch(&event_stream(seed, 150))
        .expect("valid stream");
    engine.flush().expect("barrier");
    (engine, split)
}

fn slates(api: &mut impl ServingApi) -> Vec<Vec<Scored>> {
    api.recommend_many(&(0..N_USERS).collect::<Vec<_>>(), &RecQuery::top(8))
        .expect("all users valid")
        .into_iter()
        .map(|r| r.items)
        .collect()
}

#[test]
fn sharded_snapshot_restore_same_shard_count_is_identical() {
    let seed = 29u64;
    let (mut source, split) = drained_fleet(seed, 3);
    let before = slates(&mut source);
    let artifact = source.snapshot_state().expect("snapshot");

    let mut restored = ShardedEngine::restore(
        build_sccf(&split, seed),
        &artifact,
        ShardedConfig {
            n_shards: 3,
            queue_capacity: 32,
            router: RouterKind::Modulo,
        },
    )
    .expect("same-shape restore");
    let after = slates(&mut restored);
    for (u, (x, y)) in before.iter().zip(&after).enumerate() {
        assert_bit_identical(x, y, &format!("N→N user {u}"));
    }
}

#[test]
fn reshard_to_any_count_equals_fresh_engine_on_drained_state() {
    let seed = 31u64;
    let (mut source, split) = drained_fleet(seed, 3);
    let artifact = source.snapshot_state().expect("snapshot");
    let drained: Vec<Vec<u32>> = sccf::core::decode_histories(&artifact).expect("own artifact");

    // N→1 and N→2N: the restored fleet must equal a fresh fleet of the
    // target shape built from the same drained histories — the snapshot
    // carries the complete serving state, restore only re-partitions.
    for target in [1usize, 6] {
        let mut restored = ShardedEngine::restore(
            build_sccf(&split, seed),
            &artifact,
            ShardedConfig {
                n_shards: target,
                queue_capacity: 32,
                router: RouterKind::Modulo,
            },
        )
        .expect("reshard restore");
        let mut fresh = ShardedEngine::try_new(
            build_sccf(&split, seed),
            drained.clone(),
            ShardedConfig {
                n_shards: target,
                queue_capacity: 32,
                router: RouterKind::Modulo,
            },
        )
        .expect("fresh fleet");
        let a = slates(&mut restored);
        let b = slates(&mut fresh);
        for (u, (x, y)) in a.iter().zip(&b).enumerate() {
            assert_bit_identical(x, y, &format!("3→{target} user {u}"));
        }
    }
}

#[test]
fn snapshot_artifact_is_engine_agnostic() {
    let seed = 37u64;
    let (mut source, split) = drained_fleet(seed, 4);
    let artifact = source.snapshot_state().expect("snapshot");

    // Sharded artifact → plain engine (N→1 failover)…
    let mut plain =
        RealtimeEngine::restore(build_sccf(&split, seed), &artifact).expect("plain restore");
    // …must agree with a single-shard restore of the same artifact.
    let mut single = ShardedEngine::restore(
        build_sccf(&split, seed),
        &artifact,
        ShardedConfig {
            n_shards: 1,
            queue_capacity: 32,
            router: RouterKind::Modulo,
        },
    )
    .expect("single-shard restore");
    let a = slates(&mut plain);
    let b = slates(&mut single);
    for (u, (x, y)) in a.iter().zip(&b).enumerate() {
        assert_bit_identical(x, y, &format!("plain vs 1-shard user {u}"));
    }

    // And the plain engine's own snapshot restores into a sharded fleet.
    let plain_artifact = plain.snapshot_state().expect("plain snapshot");
    let mut fleet = ShardedEngine::restore(
        build_sccf(&split, seed),
        &plain_artifact,
        ShardedConfig {
            n_shards: 2,
            queue_capacity: 32,
            router: RouterKind::Modulo,
        },
    )
    .expect("plain artifact → 2 shards");
    assert_eq!(slates(&mut fleet).len(), N_USERS as usize);

    // Garbage artifacts surface a typed snapshot error.
    assert!(matches!(
        ShardedEngine::restore(
            build_sccf(&split, seed),
            b"not a snapshot",
            ShardedConfig::default(),
        ),
        Err(ServingError::Snapshot(_))
    ));
}

#[test]
fn restored_fleet_keeps_serving_writes() {
    // Restore is not a read-only replica: the resharded fleet ingests
    // and its recommendations move.
    let seed = 41u64;
    let (mut source, split) = drained_fleet(seed, 2);
    let artifact = source.snapshot_state().expect("snapshot");
    let mut fleet = ShardedEngine::restore(
        build_sccf(&split, seed),
        &artifact,
        ShardedConfig {
            n_shards: 5,
            queue_capacity: 16,
            router: RouterKind::Modulo,
        },
    )
    .expect("reshard restore");
    fleet
        .ingest_batch(&event_stream(seed ^ 0xF00D, 60))
        .expect("valid stream");
    fleet.flush().expect("barrier");
    let stats = fleet.serving_stats().expect("stats");
    assert_eq!(stats.events, 60);
    assert_eq!(stats.shards.len(), 5);
    for u in 0..N_USERS {
        assert!(!fleet
            .try_recommend(u, &RecQuery::top(4))
            .expect("valid user")
            .items
            .is_empty());
    }
}

// ---------------------------------------------------------------------
// Live resharding (ISSUE 4): the correctness pins.
//
// * Post-quiesce state is bit-identical to an offline `snapshot()` +
//   `restore(.., new_cfg)` of the same histories.
// * Events ingested *during* the migration land exactly once, in
//   per-user order — pinned both directly (the snapshot's histories
//   equal the replayed stream) and behaviorally (slates match a static
//   target-shape fleet that ingested the same stream).
// * Progress counters surface through `ServingStats::migration`.

fn consistent(n_shards: usize) -> ShardedConfig {
    ShardedConfig {
        n_shards,
        queue_capacity: 32,
        router: RouterKind::Consistent { vnodes: 32 },
    }
}

/// Begin a reshard, then alternate small ingest bursts with handoff
/// batches until the migration quiesces — the deployment interleaving
/// the runbook (docs/OPERATIONS.md) prescribes. Ingests all of
/// `during`, draining whatever the migration did not overlap.
fn reshard_interleaved(
    engine: &mut ShardedEngine<Fism>,
    new_cfg: ShardedConfig,
    batch: usize,
    during: &[(u32, u32)],
) {
    engine.begin_reshard(new_cfg, batch).expect("begin reshard");
    let mut events = during.iter();
    while engine.is_migrating() {
        for &(u, i) in events.by_ref().take(7) {
            engine.try_ingest(u, i).expect("mid-migration ingest");
        }
        engine.reshard_step().expect("handoff batch");
    }
    for &(u, i) in events {
        engine.try_ingest(u, i).expect("post-migration ingest");
    }
}

#[test]
fn live_reshard_is_bit_identical_to_offline_restore_and_static_fleet() {
    // Property-style sweep: scale-out and scale-in, several seeds, with
    // traffic flowing during every migration.
    for (seed, from, to) in [(3u64, 3usize, 5usize), (11, 2, 5), (29, 4, 2)] {
        let (split, histories) = world(seed);
        let pre = event_stream(seed, 60);
        let during = event_stream(seed ^ 0xABCD, 90);
        let full: Vec<(u32, u32)> = pre.iter().chain(&during).copied().collect();

        // --- live path: reshard while `during` flows ---------------
        let mut live = ShardedEngine::try_new(
            build_sccf(&split, seed),
            histories.clone(),
            consistent(from),
        )
        .expect("valid config");
        live.ingest_batch(&pre).expect("pre-migration stream");
        reshard_interleaved(&mut live, consistent(to), 4, &during);
        live.flush().expect("barrier");

        // Exactly-once, directly: the merged histories equal the
        // initial histories plus the full stream in per-user order.
        let stats = live.serving_stats().expect("stats");
        assert_eq!(stats.events, full.len() as u64, "seed {seed}: exactly once");
        let live_artifact = live.snapshot_state().expect("snapshot");
        let live_histories = sccf::core::decode_histories(&live_artifact).expect("own artifact");
        let mut expect = histories.clone();
        for &(u, i) in &full {
            expect[u as usize].push(i);
        }
        assert_eq!(
            live_histories, expect,
            "seed {seed}: every event exactly once, per-user order preserved"
        );
        let live_slates = slates(&mut live);

        // --- offline comparator: twin fleet, same stream, snapshot +
        // restore at the target shape -------------------------------
        let mut twin = ShardedEngine::try_new(
            build_sccf(&split, seed),
            histories.clone(),
            consistent(from),
        )
        .expect("valid config");
        twin.ingest_batch(&full).expect("full stream");
        let artifact = twin.snapshot_state().expect("twin snapshot");
        let mut restored =
            ShardedEngine::restore(build_sccf(&split, seed), &artifact, consistent(to))
                .expect("offline reshard");
        let offline_slates = slates(&mut restored);
        for (u, (x, y)) in live_slates.iter().zip(&offline_slates).enumerate() {
            assert_bit_identical(
                x,
                y,
                &format!("seed {seed}, live {from}→{to} vs offline restore, user {u}"),
            );
        }

        // --- static comparator: a fleet born at the target shape that
        // replayed the same stream ----------------------------------
        let mut static_fleet =
            ShardedEngine::try_new(build_sccf(&split, seed), histories.clone(), consistent(to))
                .expect("valid config");
        static_fleet.ingest_batch(&full).expect("full stream");
        let static_slates = slates(&mut static_fleet);
        for (u, (x, y)) in live_slates.iter().zip(&static_slates).enumerate() {
            assert_bit_identical(
                x,
                y,
                &format!("seed {seed}, live {from}→{to} vs static {to}-shard fleet, user {u}"),
            );
        }
    }
}

// ---------------------------------------------------------------------
// Two-tier cross-shard neighborhoods (ISSUE 5): the correctness pins.
//
// * N-shard fleet + a global-tier refresh after every event ⇒ Eq. 11
//   neighbor sets identical to the N=1 plain engine on the same stream
//   (the full-population-recall recovery the tier exists for).
// * Without a refresh the tier is absent and the fleet is bit-identical
//   to the historical shard-local behavior (pinned in tests/sharded.rs).
// * Staleness semantics: same-shard neighbors are always fresh (the
//   local delta wins); cross-shard neighbors are frozen at the last
//   refresh and catch up on the next one.
// * `ServingStats::neighborhood` tracks epoch, coverage and staleness.

#[test]
fn synchronous_refresh_recovers_plain_engine_neighborhoods_exactly() {
    for (seed, n_shards) in [(71u64, 4usize), (73, 8)] {
        let (split, histories) = world(seed);
        let mut plain = RealtimeEngine::new(build_sccf(&split, seed), histories.clone());
        let mut fleet = ShardedEngine::try_new(
            build_sccf(&split, seed),
            histories,
            ShardedConfig {
                n_shards,
                queue_capacity: 32,
                router: RouterKind::Modulo,
            },
        )
        .expect("valid config");
        fleet.refresh_global_tier().expect("initial refresh");

        for (k, &(user, item)) in event_stream(seed, 40).iter().enumerate() {
            let (plain_neighbors, _) = plain.try_process_event(user, item).expect("valid ids");
            fleet.try_ingest(user, item).expect("valid ids");
            // Synchronous cadence: a refresh after *every* event keeps
            // the frozen tier exactly as fresh as the local deltas.
            fleet.refresh_global_tier().expect("refresh");
            let fleet_neighbors = fleet.neighbors_of(user).expect("owned user");
            assert_bit_identical(
                &plain_neighbors,
                &fleet_neighbors,
                &format!("seed {seed}, {n_shards} shards, event {k}, user {user}"),
            );
            // And not just for the event's user: every user's Eq. 11
            // neighborhood matches the plain engine's at a subsample.
            if k % 13 == 0 {
                for u in (0..N_USERS).step_by(5) {
                    let a = plain.neighbors_of(u).expect("valid user");
                    let b = fleet.neighbors_of(u).expect("valid user");
                    assert_bit_identical(&a, &b, &format!("seed {seed}, probe user {u}"));
                }
            }
        }
        fleet.shutdown();
    }
}

#[test]
fn local_delta_wins_and_cross_shard_staleness_clears_on_refresh() {
    let seed = 79u64;
    let (split, histories) = world(seed);
    // β ≥ population: every user appears in every neighborhood, so we
    // can read off the similarity each observer sees for a probe user.
    let fism = Fism::train(
        &split,
        &FismConfig {
            train: TrainConfig {
                dim: 8,
                epochs: 6,
                seed,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let mut sccf = Sccf::build(
        fism,
        &split,
        SccfConfig {
            user_based: UserBasedConfig {
                beta: N_USERS as usize,
                recent_window: 5,
            },
            candidate_n: 10,
            integrator: IntegratorConfig {
                epochs: 2,
                seed,
                ..Default::default()
            },
            threads: 1,
            profiles: None,
            ui_ann: None,
            frozen_tier: sccf_core::FrozenTierMode::Flat,
        },
    );
    sccf.refresh_for_test(&split);
    let mut fleet = ShardedEngine::try_new(
        sccf,
        histories,
        ShardedConfig {
            n_shards: 2,
            queue_capacity: 32,
            router: RouterKind::Modulo,
        },
    )
    .expect("valid config");
    fleet.refresh_global_tier().expect("initial refresh");

    let ring = HashRing::modulo(2);
    // A probe user, one observer on her shard, one on the other.
    let probe = 0u32;
    let same = (1..N_USERS)
        .find(|&u| ring.route(u) == ring.route(probe))
        .unwrap();
    let other = (1..N_USERS)
        .find(|&u| ring.route(u) != ring.route(probe))
        .unwrap();
    let sim_of = |neigh: &[Scored], id: u32| {
        neigh
            .iter()
            .find(|s| s.id == id)
            .unwrap_or_else(|| panic!("β covers the population, user {id} must appear"))
            .score
    };
    let before_same = sim_of(&fleet.neighbors_of(same).unwrap(), probe);
    let before_other = sim_of(&fleet.neighbors_of(other).unwrap(), probe);

    // Move the probe user's vector: a burst of events on her shard.
    for item in [1u32, 7, 12, 3, 16] {
        fleet.try_ingest(probe, item).expect("valid ids");
    }
    fleet.flush().expect("barrier");

    let after_same = sim_of(&fleet.neighbors_of(same).unwrap(), probe);
    let after_other = sim_of(&fleet.neighbors_of(other).unwrap(), probe);
    assert_ne!(
        before_same.to_bits(),
        after_same.to_bits(),
        "same-shard observer reads the probe from the fresh local delta"
    );
    assert_eq!(
        before_other.to_bits(),
        after_other.to_bits(),
        "cross-shard observer reads the probe from the frozen tier until a refresh"
    );

    // The next refresh clears the staleness: both observers agree on
    // the probe's similarity derived from her post-burst vector.
    fleet.refresh_global_tier().expect("refresh");
    let refreshed_other = sim_of(&fleet.neighbors_of(other).unwrap(), probe);
    assert_ne!(
        before_other.to_bits(),
        refreshed_other.to_bits(),
        "refresh must propagate the probe's new vector across shards"
    );
    fleet.shutdown();
}

#[test]
fn neighborhood_stats_track_epoch_coverage_and_staleness() {
    let seed = 83u64;
    let (split, histories) = world(seed);
    let mut fleet = ShardedEngine::try_new(
        build_sccf(&split, seed),
        histories,
        ShardedConfig {
            n_shards: 3,
            queue_capacity: 32,
            router: RouterKind::Modulo,
        },
    )
    .expect("valid config");

    // Before any refresh: the section reports the shard-local world.
    let s0 = fleet.serving_stats().expect("stats");
    assert!(!s0.neighborhood.two_tier);
    assert_eq!(s0.neighborhood.epoch, 0);
    assert_eq!(s0.neighborhood.users_covered, 0);
    assert_eq!(s0.neighborhood.events_since_refresh, 0);

    let report = fleet.refresh_global_tier().expect("refresh");
    assert_eq!(report.epoch, 1);
    assert_eq!(report.users, N_USERS as u64);
    assert!(report.batches >= 1);
    let s1 = fleet.serving_stats().expect("stats");
    assert!(s1.neighborhood.two_tier);
    assert_eq!(s1.neighborhood.epoch, 1);
    assert_eq!(s1.neighborhood.users_covered, N_USERS as u64);
    assert_eq!(s1.neighborhood.events_since_refresh, 0);
    assert!(s1.neighborhood.last_refresh_ms >= 0.0);

    fleet.ingest_batch(&event_stream(seed, 25)).expect("valid");
    let s2 = fleet.serving_stats().expect("stats");
    assert_eq!(
        s2.neighborhood.events_since_refresh, 25,
        "staleness counts events accepted since the last refresh"
    );
    fleet.refresh_global_tier().expect("second refresh");
    let s3 = fleet.serving_stats().expect("stats");
    assert_eq!(s3.neighborhood.epoch, 2);
    assert_eq!(s3.neighborhood.events_since_refresh, 0);

    // Disabling returns the section to the shard-local shape.
    fleet.clear_global_tier().expect("clear");
    let s4 = fleet.serving_stats().expect("stats");
    assert!(!s4.neighborhood.two_tier);
    assert_eq!(s4.neighborhood.users_covered, 0);
    fleet.shutdown();
}

#[test]
fn persisted_tier_installs_into_a_restored_fleet() {
    // The operational failover path: persist the tier snapshot next to
    // the engine snapshot; after restore (which always comes up
    // tier-less), install the persisted tier instead of paying a full
    // re-export — neighborhoods must match the source fleet's exactly.
    let seed = 97u64;
    let (split, histories) = world(seed);
    let mut source = ShardedEngine::try_new(
        build_sccf(&split, seed),
        histories,
        ShardedConfig {
            n_shards: 3,
            queue_capacity: 32,
            router: RouterKind::Modulo,
        },
    )
    .expect("valid config");
    source.ingest_batch(&event_stream(seed, 60)).expect("valid");
    source.refresh_global_tier().expect("refresh");
    let engine_artifact = source.snapshot_state().expect("snapshot");
    let tier_artifact = source.global_tier().expect("tier installed").encode();
    let expect: Vec<Vec<Scored>> = (0..N_USERS)
        .map(|u| source.neighbors_of(u).expect("valid user"))
        .collect();

    let mut restored = ShardedEngine::restore(
        build_sccf(&split, seed),
        &engine_artifact,
        ShardedConfig {
            n_shards: 3,
            queue_capacity: 32,
            router: RouterKind::Modulo,
        },
    )
    .expect("restore");
    assert!(
        !restored.serving_stats().unwrap().neighborhood.two_tier,
        "restore always comes up tier-less"
    );
    let tier = sccf::core::GlobalNeighborSnapshot::decode(&tier_artifact).expect("own artifact");
    restored.install_global_tier(tier).expect("install");
    let stats = restored.serving_stats().expect("stats");
    assert!(stats.neighborhood.two_tier);
    assert_eq!(stats.neighborhood.epoch, 1);
    assert_eq!(stats.neighborhood.users_covered, N_USERS as u64);
    for u in 0..N_USERS {
        let got = restored.neighbors_of(u).expect("valid user");
        assert_bit_identical(
            &expect[u as usize],
            &got,
            &format!("restored+installed, user {u}"),
        );
    }

    // Mismatched snapshots are rejected before touching any worker.
    let wrong_pop = sccf::core::GlobalNeighborSnapshot::build(9, 7, 8, std::iter::empty());
    assert!(matches!(
        restored.install_global_tier(wrong_pop),
        Err(ServingError::InvalidConfig(_))
    ));
    let wrong_dim =
        sccf::core::GlobalNeighborSnapshot::build(9, N_USERS as usize, 3, std::iter::empty());
    assert!(matches!(
        restored.install_global_tier(wrong_dim),
        Err(ServingError::InvalidConfig(_))
    ));
    // A corrupt-but-decodable snapshot whose frozen windows reference
    // out-of-catalog items is rejected at install, before it could
    // panic a worker's Eq. 12 accumulation at query time.
    let bad_windows = sccf::core::GlobalNeighborSnapshot::build(
        9,
        N_USERS as usize,
        8,
        vec![(0u32, vec![0.0f32; 8], vec![N_ITEMS + 5])],
    );
    assert!(matches!(
        restored.install_global_tier(bad_windows),
        Err(ServingError::UnknownItem { .. })
    ));
    assert!(
        restored.serving_stats().unwrap().neighborhood.two_tier,
        "rejected installs must leave the previous tier serving"
    );
    source.shutdown();
    restored.shutdown();
}

#[test]
fn refresh_survives_scale_out_and_new_workers_inherit_the_tier() {
    let seed = 89u64;
    let (split, histories) = world(seed);
    let mut fleet =
        ShardedEngine::try_new(build_sccf(&split, seed), histories, consistent(2)).expect("valid");
    fleet.ingest_batch(&event_stream(seed, 30)).expect("valid");
    fleet.refresh_global_tier().expect("refresh");

    // Live scale-out with the tier installed: spawned workers inherit
    // it, and every user's neighborhood stays full-population.
    fleet.reshard(consistent(5)).expect("live reshard");
    let s = fleet.serving_stats().expect("stats");
    assert!(s.neighborhood.two_tier, "the tier survives a reshard");
    for u in 0..N_USERS {
        let n = fleet.neighbors_of(u).expect("valid user");
        assert!(
            n.len() >= 5,
            "user {u}: two-tier neighborhoods must span shards (got {})",
            n.len()
        );
    }
    fleet.shutdown();
}

#[test]
fn migration_counters_track_progress_through_serving_stats() {
    let seed = 61u64;
    let (split, histories) = world(seed);
    let mut engine =
        ShardedEngine::try_new(build_sccf(&split, seed), histories, consistent(2)).expect("valid");
    engine.ingest_batch(&event_stream(seed, 50)).expect("valid");

    let plan_size = {
        let (old, new) = (
            consistent(2).ring().expect("valid"),
            consistent(6).ring().expect("valid"),
        );
        (0..N_USERS)
            .filter(|&u| old.route(u) != new.route(u))
            .count() as u64
    };
    assert!(plan_size >= 2, "world too small to observe batching");

    engine.begin_reshard(consistent(6), 1).expect("begin");
    let mid = engine.serving_stats().expect("stats");
    assert!(mid.migration.in_progress);
    assert_eq!(mid.migration.pending_users, plan_size);
    assert_eq!(mid.migration.migrated_users, 0);

    engine.reshard_step().expect("one batch of one user");
    let after_one = engine.serving_stats().expect("stats");
    assert_eq!(after_one.migration.migrated_users, 1);
    assert_eq!(after_one.migration.pending_users, plan_size - 1);
    assert_eq!(after_one.migration.batches, 1);

    while engine.is_migrating() {
        engine.reshard_step().expect("drive to completion");
    }
    let done = engine.serving_stats().expect("stats");
    assert!(!done.migration.in_progress);
    assert_eq!(done.migration.migrated_users, plan_size);
    assert_eq!(done.migration.pending_users, 0);
    assert_eq!(
        done.migration.batches, plan_size,
        "batch size 1 ⇒ one batch per user"
    );
    engine.shutdown();
}
