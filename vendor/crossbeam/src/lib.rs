//! Vendored shim for the two `crossbeam` APIs the workspace uses:
//!
//! * [`scope`] with handle-returning `spawn` — since Rust 1.63 the
//!   standard library's `std::thread::scope` provides the same guarantees
//!   (borrowed data may cross into threads because all threads join
//!   before the scope returns), so this is a thin adapter that preserves
//!   crossbeam's call shape:
//!   `crossbeam::scope(|s| { s.spawn(|_| ...) }).expect(...)`.
//! * [`channel`] — bounded blocking channels with crossbeam's
//!   `channel::bounded` signature, adapted over
//!   `std::sync::mpsc::sync_channel`. The sharded realtime engine uses
//!   one bounded queue per shard as an SPSC event pipe with backpressure.

use std::any::Any;

pub mod channel;

/// Handle mirroring `crossbeam::thread::Scope`. The closure passed to
/// [`Scope::spawn`] receives a copy of the scope (crossbeam's nested-spawn
/// affordance); every call site in this workspace ignores it (`|_|`).
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Clone for Scope<'scope, 'env> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped thread; the returned handle's `join` yields
    /// `Result<T, Box<dyn Any + Send>>` exactly like crossbeam's.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let me = *self;
        self.inner.spawn(move || f(&me))
    }
}

/// Run `f` with a scope in which borrowed-data threads can be spawned.
/// Always returns `Ok` (a panicking child surfaces through its handle's
/// `join`, or re-panics at scope exit if the handle was dropped).
pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u32, 2, 3, 4];
        let total: u32 = super::scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| s.spawn(move |_| c.iter().sum::<u32>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn child_panic_surfaces_via_join() {
        let caught = super::scope(|s| {
            let h = s.spawn(|_| panic!("boom"));
            h.join().is_err()
        })
        .unwrap();
        assert!(caught);
    }
}
