//! Bounded blocking channels, shimmed over `std::sync::mpsc`.
//!
//! The subset of `crossbeam_channel` this workspace needs: a
//! [`bounded`] constructor, a cloneable [`Sender`] whose `send` blocks
//! when the queue is full (backpressure), and a [`Receiver`] with
//! blocking `recv`, non-blocking `try_recv` and a draining iterator.
//! Capacity 0 is a rendezvous channel, exactly as in crossbeam.
//!
//! The sharded serving engine uses one bounded channel per shard as a
//! single-producer single-consumer event pipe; `std::sync::mpsc` is MPSC
//! so that usage is a strict narrowing.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};

/// Sending half of a bounded channel. Cloning is cheap (an `Arc` bump);
/// the channel disconnects when every sender is dropped.
pub struct Sender<T> {
    inner: mpsc::SyncSender<T>,
    depth: Arc<AtomicUsize>,
    cap: usize,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        Self {
            inner: self.inner.clone(),
            depth: Arc::clone(&self.depth),
            cap: self.cap,
        }
    }
}

impl<T> Sender<T> {
    /// Blocking send: parks until queue space is available or every
    /// receiver is gone (in which case the message comes back in the
    /// error).
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        // Count before the message becomes visible so the receiver's
        // matching decrement can never precede it (no underflow);
        // `len` may transiently over-report by in-flight sends.
        self.depth.fetch_add(1, Ordering::Relaxed);
        self.inner.send(msg).map_err(|mpsc::SendError(m)| {
            self.depth.fetch_sub(1, Ordering::Relaxed);
            SendError(m)
        })
    }

    /// Non-blocking send: fails fast with the message when the queue is
    /// full or disconnected.
    pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
        self.depth.fetch_add(1, Ordering::Relaxed);
        self.inner.try_send(msg).map_err(|e| {
            self.depth.fetch_sub(1, Ordering::Relaxed);
            match e {
                mpsc::TrySendError::Full(m) => TrySendError::Full(m),
                mpsc::TrySendError::Disconnected(m) => TrySendError::Disconnected(m),
            }
        })
    }

    /// Messages currently queued (as in `crossbeam_channel::Sender::len`).
    /// A relaxed snapshot: exact when the channel is quiescent, within
    /// one in-flight message otherwise.
    pub fn len(&self) -> usize {
        self.depth.load(Ordering::Relaxed)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The channel's bound (as in `crossbeam_channel::Sender::capacity`).
    pub fn capacity(&self) -> Option<usize> {
        Some(self.cap)
    }
}

/// Receiving half of a bounded channel.
pub struct Receiver<T> {
    inner: mpsc::Receiver<T>,
    depth: Arc<AtomicUsize>,
}

impl<T> Receiver<T> {
    /// Blocking receive: parks until a message arrives or every sender is
    /// dropped and the queue is drained.
    pub fn recv(&self) -> Result<T, RecvError> {
        let msg = self.inner.recv().map_err(|_| RecvError)?;
        self.depth.fetch_sub(1, Ordering::Relaxed);
        Ok(msg)
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let msg = self.inner.try_recv().map_err(|e| match e {
            mpsc::TryRecvError::Empty => TryRecvError::Empty,
            mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
        })?;
        self.depth.fetch_sub(1, Ordering::Relaxed);
        Ok(msg)
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.depth.load(Ordering::Relaxed)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Blocking iterator over incoming messages; ends when the channel
    /// disconnects.
    pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
        std::iter::from_fn(move || self.recv().ok())
    }
}

/// Create a bounded channel with the given capacity (0 = rendezvous:
/// every send blocks until a receiver takes the message).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::sync_channel(cap);
    let depth = Arc::new(AtomicUsize::new(0));
    (
        Sender {
            inner: tx,
            depth: Arc::clone(&depth),
            cap,
        },
        Receiver { inner: rx, depth },
    )
}

/// The channel disconnected; the unsent message is returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Why a `try_send` failed; the unsent message is returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    Full(T),
    Disconnected(T),
}

/// Every sender is gone and the queue is empty.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Why a `try_recv` returned no message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    Empty,
    Disconnected,
}

impl<T> std::fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "receiving on an empty and disconnected channel")
    }
}

impl<T: std::fmt::Debug> std::error::Error for SendError<T> {}
impl std::error::Error for RecvError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_one_sender() {
        let (tx, rx) = bounded(4);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        assert_eq!(rx.try_recv(), Ok(0));
        assert_eq!(
            (1..4).map(|_| rx.recv().unwrap()).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn bounded_capacity_applies_backpressure() {
        let (tx, rx) = bounded(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
        assert_eq!(rx.recv(), Ok(1));
        tx.send(3).unwrap();
    }

    #[test]
    fn drop_of_sender_disconnects_after_drain() {
        let (tx, rx) = bounded(8);
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn drop_of_receiver_fails_send_with_message() {
        let (tx, rx) = bounded(1);
        drop(rx);
        assert_eq!(tx.send(9), Err(SendError(9)));
    }

    #[test]
    fn len_tracks_queue_depth() {
        let (tx, rx) = bounded(4);
        assert_eq!(tx.len(), 0);
        assert!(tx.is_empty());
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(tx.len(), 2);
        assert_eq!(rx.len(), 2);
        assert_eq!(tx.capacity(), Some(4));
        rx.recv().unwrap();
        assert_eq!(tx.len(), 1);
        // Failed sends must not leak counts.
        let (tx2, rx2) = bounded(1);
        tx2.send(1).unwrap();
        assert!(tx2.try_send(2).is_err());
        assert_eq!(tx2.len(), 1);
        drop(rx2);
        assert!(tx2.send(3).is_err());
        assert_eq!(tx2.len(), 1);
    }

    #[test]
    fn blocking_send_crosses_threads() {
        let (tx, rx) = bounded(1);
        let producer = std::thread::spawn(move || {
            for i in 0..100u32 {
                tx.send(i).unwrap(); // blocks when the consumer lags
            }
        });
        let got: Vec<u32> = rx.iter().collect();
        producer.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }
}
