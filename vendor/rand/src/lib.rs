//! Vendored, API-compatible subset of the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace ships this minimal re-implementation of the slice of the
//! `rand` 0.8 API it actually uses: `Rng` (`gen`, `gen_range`,
//! `gen_bool`), `SeedableRng::seed_from_u64`, `rngs::StdRng`, and
//! `seq::SliceRandom::shuffle`.
//!
//! `StdRng` here is xoshiro256** seeded through SplitMix64 — a different
//! stream than upstream's ChaCha12, but the workspace only ever promises
//! *self*-consistent determinism (same seed → same run), never
//! cross-library bit-compatibility.

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Sampling front-end, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value of a [`Standard`]-distributed type (`f32`/`f64` in
    /// `[0, 1)`, full-range integers, fair `bool`).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Uniform sample from a range; panics on an empty range.
    #[inline]
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_uniform(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Construction from seeds. Only the `seed_from_u64` entry point is
/// provided; all workspace seeding goes through it.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from their "standard" distribution.
pub trait Standard: Sized {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 24 mantissa bits → uniform in [0, 1)
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    fn sample_uniform<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_uniform<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                // Multiply-shift bounded sampling (Lemire); the bias for
                // the spans used in this workspace is < 2^-32.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as $wide).wrapping_add(hi as $wide) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_uniform<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let h = ((rng.next_u64() as u128 * (span + 1) as u128) >> 64) as u64;
                (lo as $wide).wrapping_add(h as $wide) as $t
            }
        }
    )*};
}
impl_range_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_uniform<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u: $t = <$t as Standard>::sample_standard(rng);
                self.start + (self.end - self.start) * u
            }
        }
    )*};
}
impl_range_float!(f32, f64);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256** over a SplitMix64-
    /// expanded seed. Fast, Clone-able, and statistically solid.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::Rng;

    /// Slice extensions; only `shuffle` (Fisher–Yates) is needed here.
    pub trait SliceRandom {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = crate::SampleRange::sample_uniform(0..=i, rng);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = r.gen_range(3..17u32);
            assert!((3..17).contains(&x));
            let y = r.gen_range(-2.5f32..4.5);
            assert!((-2.5..4.5).contains(&y));
            let z = r.gen_range(0..=5usize);
            assert!(z <= 5);
            let neg = r.gen_range(-10i64..-3);
            assert!((-10..-3).contains(&neg));
        }
    }

    #[test]
    fn unit_floats_cover_unit_interval() {
        let mut r = StdRng::seed_from_u64(2);
        let mut lo = 1.0f32;
        let mut hi = 0.0f32;
        for _ in 0..10_000 {
            let x: f32 = r.gen();
            assert!((0.0..1.0).contains(&x));
            lo = lo.min(x);
            hi = hi.max(x);
        }
        assert!(lo < 0.01 && hi > 0.99);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }
}
