//! Vendored shim for `parking_lot::RwLock`: the same poison-free guard
//! API, implemented over `std::sync::RwLock`. Poisoning is collapsed by
//! handing back the inner guard — matching parking_lot semantics, where a
//! panicking writer does not wedge subsequent readers.

pub use std::sync::{RwLockReadGuard, RwLockWriteGuard};

#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        Self(std::sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::RwLock;

    #[test]
    fn read_write_roundtrip() {
        let l = RwLock::new(1u32);
        assert_eq!(*l.read(), 1);
        *l.write() = 5;
        assert_eq!(*l.read(), 5);
        assert_eq!(l.into_inner(), 5);
    }

    #[test]
    fn poisoned_lock_stays_usable() {
        let l = std::sync::Arc::new(RwLock::new(0u32));
        let l2 = l.clone();
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("poison the lock");
        })
        .join();
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }
}
