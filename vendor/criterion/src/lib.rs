//! Vendored shim exposing the slice of the `criterion` API the bench
//! suites use (`Criterion`, groups, `BenchmarkId`, `black_box`, the two
//! macros), backed by a simple calibrated wall-clock loop: warm up for a
//! fixed budget, pick an iteration count from the warmup rate, then time
//! several samples and report the median ns/iter.
//!
//! Environment knobs (useful in CI): `BENCH_WARMUP_MS` (default 100),
//! `BENCH_SAMPLE_MS` (default 300, total across samples).

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const SAMPLES: usize = 7;

fn env_ms(key: &str, default: u64) -> Duration {
    Duration::from_millis(
        std::env::var(key)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default),
    )
}

/// A single measured result, exposed so wrappers (e.g. the repro harness)
/// can consume numbers programmatically instead of scraping stdout.
#[derive(Debug, Clone)]
pub struct Measurement {
    pub name: String,
    pub ns_per_iter: f64,
    pub iters_per_sample: u64,
}

#[derive(Default)]
pub struct Criterion {
    results: Vec<Measurement>,
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        self.run_one(name.to_string(), f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.to_string(),
        }
    }

    /// All measurements recorded so far.
    pub fn measurements(&self) -> &[Measurement] {
        &self.results
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, name: String, mut f: F) {
        let mut b = Bencher {
            mode: Mode::Warmup {
                budget: env_ms("BENCH_WARMUP_MS", 100),
            },
            iters_done: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let rate = b.iters_done.max(1) as f64 / b.elapsed.as_secs_f64().max(1e-9);
        let sample_budget = env_ms("BENCH_SAMPLE_MS", 300).as_secs_f64() / SAMPLES as f64;
        let iters = ((rate * sample_budget) as u64).max(1);

        let mut samples = Vec::with_capacity(SAMPLES);
        for _ in 0..SAMPLES {
            let mut b = Bencher {
                mode: Mode::Fixed { iters },
                iters_done: 0,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples.push(b.elapsed.as_secs_f64() * 1e9 / b.iters_done.max(1) as f64);
        }
        samples.sort_by(f64::total_cmp);
        let ns = samples[samples.len() / 2];
        println!(
            "{name:<50} {:>14}/iter  ({iters} iters/sample)",
            format_ns(ns)
        );
        self.results.push(Measurement {
            name,
            ns_per_iter: ns,
            iters_per_sample: iters,
        });
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3}us", ns / 1e3)
    } else {
        format!("{ns:.1}ns")
    }
}

pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        self.c.run_one(format!("{}/{}", self.name, id.0), f);
        self
    }

    pub fn bench_with_input<I: Into<BenchmarkId>, P: ?Sized, F: FnMut(&mut Bencher, &P)>(
        &mut self,
        id: I,
        input: &P,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        self.c
            .run_one(format!("{}/{}", self.name, id.0), |b| f(b, input));
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn finish(self) {}
}

#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        Self(format!("{function}/{parameter}"))
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        Self(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self(s)
    }
}

enum Mode {
    Warmup { budget: Duration },
    Fixed { iters: u64 },
}

pub struct Bencher {
    mode: Mode,
    iters_done: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        match self.mode {
            Mode::Warmup { budget } => {
                let start = Instant::now();
                loop {
                    black_box(f());
                    self.iters_done += 1;
                    self.elapsed = start.elapsed();
                    if self.elapsed >= budget {
                        break;
                    }
                }
            }
            Mode::Fixed { iters } => {
                let start = Instant::now();
                for _ in 0..iters {
                    black_box(f());
                }
                self.elapsed = start.elapsed();
                self.iters_done = iters;
            }
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn measures_something_positive() {
        std::env::set_var("BENCH_WARMUP_MS", "5");
        std::env::set_var("BENCH_SAMPLE_MS", "10");
        let mut c = super::Criterion::default();
        c.bench_function("noop_sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let m = &c.measurements()[0];
        assert_eq!(m.name, "noop_sum");
        assert!(m.ns_per_iter > 0.0);
    }
}
