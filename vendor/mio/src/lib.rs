//! Vendored readiness shim — a deliberate subset of the `mio` surface.
//!
//! The fleet router needs one thing from an event library: "which of
//! these sockets can make progress right now?" so that a slow member
//! cannot head-of-line-block writes to the others. This crate provides
//! exactly that — [`Poll`] / [`Events`] / [`Token`] / [`Interest`] —
//! with two backends behind one API:
//!
//! * **epoll** (Linux, default): direct `extern "C"` bindings to
//!   `epoll_create1` / `epoll_ctl` / `epoll_wait`. std already links
//!   libc, so no crates.io dependency is involved. Level-triggered,
//!   which matches the "try the write, stop at `WouldBlock`" call
//!   sites.
//! * **portable** (any OS, or forced via `SCCF_NET_POLL=portable`):
//!   reports every registered source as ready on each call, after a
//!   short nap to avoid a hard spin. Correctness then rests entirely
//!   on the caller's nonblocking sockets returning `WouldBlock`; the
//!   backend only costs some extra syscalls on sources that cannot
//!   progress yet.
//!
//! Like the other `vendor/` shims, this is an API subset grown on
//! demand — extend it in place when new call sites need more surface.

use std::io;
use std::time::Duration;

/// Caller-chosen identifier attached to a registered source; echoed
/// back on every [`Event`] for that source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Token(pub usize);

/// Readiness classes a registration can watch. Combine with `|`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest(u8);

impl Interest {
    /// Wake when the source is readable.
    pub const READABLE: Interest = Interest(0b01);
    /// Wake when the source is writable.
    pub const WRITABLE: Interest = Interest(0b10);

    /// Does this interest include readability?
    pub fn is_readable(self) -> bool {
        self.0 & Self::READABLE.0 != 0
    }

    /// Does this interest include writability?
    pub fn is_writable(self) -> bool {
        self.0 & Self::WRITABLE.0 != 0
    }
}

impl std::ops::BitOr for Interest {
    type Output = Interest;
    fn bitor(self, rhs: Interest) -> Interest {
        Interest(self.0 | rhs.0)
    }
}

/// One readiness notification from [`Poll::poll`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    token: Token,
    readable: bool,
    writable: bool,
    error: bool,
}

impl Event {
    /// The token supplied at registration time.
    pub fn token(&self) -> Token {
        self.token
    }

    /// The source can (probably) be read without blocking. Error and
    /// hang-up conditions also report readable so callers attempt the
    /// I/O and observe the real `io::Error`.
    pub fn is_readable(&self) -> bool {
        self.readable || self.error
    }

    /// The source can (probably) be written without blocking. Error
    /// and hang-up conditions also report writable, for the same
    /// reason as [`Event::is_readable`].
    pub fn is_writable(&self) -> bool {
        self.writable || self.error
    }
}

/// Reusable buffer of [`Event`]s filled by [`Poll::poll`].
#[derive(Debug, Default)]
pub struct Events {
    inner: Vec<Event>,
    capacity: usize,
}

impl Events {
    /// An event buffer that yields at most `capacity` events per poll.
    pub fn with_capacity(capacity: usize) -> Events {
        Events {
            inner: Vec::with_capacity(capacity.max(1)),
            capacity: capacity.max(1),
        }
    }

    /// Iterate the events from the most recent poll.
    pub fn iter(&self) -> std::slice::Iter<'_, Event> {
        self.inner.iter()
    }

    /// True when the most recent poll produced no events.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

impl<'a> IntoIterator for &'a Events {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// Anything with a pollable OS handle. On Unix this is blanket-implemented
/// for every `AsRawFd` type (sockets, pipes, …); elsewhere every type
/// qualifies and only the portable backend is available.
#[cfg(unix)]
pub trait Source {
    /// The raw file descriptor to register with the OS poller.
    fn raw_fd(&self) -> i32;
}

#[cfg(unix)]
impl<T: std::os::unix::io::AsRawFd> Source for T {
    fn raw_fd(&self) -> i32 {
        self.as_raw_fd()
    }
}

/// Non-Unix stand-in: no OS handle is required because only the
/// portable backend exists there.
#[cfg(not(unix))]
pub trait Source {
    /// Identifier used only for registration bookkeeping.
    fn raw_fd(&self) -> i32 {
        0
    }
}

#[cfg(not(unix))]
impl<T> Source for T {}

/// Which implementation backs a [`Poll`] instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Linux epoll via direct libc bindings.
    Epoll,
    /// Always-ready fallback driven by nonblocking I/O + `WouldBlock`.
    Portable,
}

/// Reads `SCCF_NET_POLL` (`epoll` | `portable`) and falls back to the
/// platform default: epoll on Linux, portable elsewhere.
pub fn default_backend() -> Backend {
    match std::env::var("SCCF_NET_POLL").as_deref() {
        Ok("portable") => Backend::Portable,
        Ok("epoll") => Backend::Epoll,
        _ => {
            if cfg!(target_os = "linux") {
                Backend::Epoll
            } else {
                Backend::Portable
            }
        }
    }
}

/// Readiness selector over a set of registered sources.
#[derive(Debug)]
pub struct Poll {
    imp: Impl,
}

#[derive(Debug)]
enum Impl {
    #[cfg(target_os = "linux")]
    Epoll(epoll::Epoll),
    Portable(portable::Portable),
}

impl Poll {
    /// Build a poller on the backend chosen by [`default_backend`].
    /// If epoll is requested but unavailable, falls back to portable.
    pub fn new() -> io::Result<Poll> {
        Poll::with_backend(default_backend())
    }

    /// Build a poller on an explicit backend. Asking for epoll off
    /// Linux (or when the syscall fails) degrades to portable rather
    /// than erroring: the portable backend is always correct, just
    /// less efficient.
    pub fn with_backend(backend: Backend) -> io::Result<Poll> {
        #[cfg(target_os = "linux")]
        if backend == Backend::Epoll {
            if let Ok(ep) = epoll::Epoll::new() {
                return Ok(Poll {
                    imp: Impl::Epoll(ep),
                });
            }
        }
        let _ = backend;
        Ok(Poll {
            imp: Impl::Portable(portable::Portable::default()),
        })
    }

    /// Which backend this instance actually runs on.
    pub fn backend(&self) -> Backend {
        match &self.imp {
            #[cfg(target_os = "linux")]
            Impl::Epoll(_) => Backend::Epoll,
            Impl::Portable(_) => Backend::Portable,
        }
    }

    /// Start watching `source` for `interest`, tagging events with `token`.
    pub fn register(
        &mut self,
        source: &impl Source,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        match &mut self.imp {
            #[cfg(target_os = "linux")]
            Impl::Epoll(ep) => ep.ctl(epoll::EPOLL_CTL_ADD, source.raw_fd(), token, interest),
            Impl::Portable(p) => p.register(source.raw_fd(), token, interest),
        }
    }

    /// Replace the token/interest of an already-registered source.
    pub fn reregister(
        &mut self,
        source: &impl Source,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        match &mut self.imp {
            #[cfg(target_os = "linux")]
            Impl::Epoll(ep) => ep.ctl(epoll::EPOLL_CTL_MOD, source.raw_fd(), token, interest),
            Impl::Portable(p) => p.reregister(source.raw_fd(), token, interest),
        }
    }

    /// Stop watching `source`.
    pub fn deregister(&mut self, source: &impl Source) -> io::Result<()> {
        match &mut self.imp {
            #[cfg(target_os = "linux")]
            Impl::Epoll(ep) => ep.ctl(
                epoll::EPOLL_CTL_DEL,
                source.raw_fd(),
                Token(0),
                Interest::READABLE,
            ),
            Impl::Portable(p) => p.deregister(source.raw_fd()),
        }
    }

    /// Block until at least one source is ready (or `timeout` elapses),
    /// filling `events`. `None` waits indefinitely. Spurious wake-ups
    /// with an empty buffer are possible on both backends; callers
    /// should loop.
    pub fn poll(&mut self, events: &mut Events, timeout: Option<Duration>) -> io::Result<()> {
        events.inner.clear();
        match &mut self.imp {
            #[cfg(target_os = "linux")]
            Impl::Epoll(ep) => ep.wait(events, timeout),
            Impl::Portable(p) => p.wait(events, timeout),
        }
    }
}

/// Portable fallback: every registered source is reported ready each
/// call; a short nap keeps the resulting retry loop from hard-spinning.
mod portable {
    use super::{Event, Events, Interest, Token};
    use std::io;
    use std::time::Duration;

    #[derive(Debug, Default)]
    pub(super) struct Portable {
        regs: Vec<(i32, Token, Interest)>,
    }

    impl Portable {
        pub(super) fn register(
            &mut self,
            fd: i32,
            token: Token,
            interest: Interest,
        ) -> io::Result<()> {
            if self.regs.iter().any(|(f, _, _)| *f == fd) {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    "fd already registered",
                ));
            }
            self.regs.push((fd, token, interest));
            Ok(())
        }

        pub(super) fn reregister(
            &mut self,
            fd: i32,
            token: Token,
            interest: Interest,
        ) -> io::Result<()> {
            match self.regs.iter_mut().find(|(f, _, _)| *f == fd) {
                Some(slot) => {
                    *slot = (fd, token, interest);
                    Ok(())
                }
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            }
        }

        pub(super) fn deregister(&mut self, fd: i32) -> io::Result<()> {
            let before = self.regs.len();
            self.regs.retain(|(f, _, _)| *f != fd);
            if self.regs.len() == before {
                return Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"));
            }
            Ok(())
        }

        pub(super) fn wait(
            &mut self,
            events: &mut Events,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            if self.regs.is_empty() {
                // Nothing registered: honour the timeout (bounded so an
                // accidental `None` cannot hang forever here).
                std::thread::sleep(
                    timeout
                        .unwrap_or(Duration::from_millis(1))
                        .min(Duration::from_millis(10)),
                );
                return Ok(());
            }
            // Nap briefly so "nothing progressed" retry loops stay polite,
            // then claim readiness for everything.
            std::thread::sleep(Duration::from_micros(200));
            for &(_, token, interest) in self.regs.iter().take(events.capacity) {
                events.inner.push(Event {
                    token,
                    readable: interest.is_readable(),
                    writable: interest.is_writable(),
                    error: false,
                });
            }
            Ok(())
        }
    }
}

/// Linux epoll backend: direct `extern "C"` declarations against the
/// libc that std already links — no crates.io involved.
#[cfg(target_os = "linux")]
mod epoll {
    use super::{Event, Events, Interest, Token};
    use std::io;
    use std::time::Duration;

    pub(super) const EPOLL_CTL_ADD: i32 = 1;
    pub(super) const EPOLL_CTL_DEL: i32 = 2;
    pub(super) const EPOLL_CTL_MOD: i32 = 3;
    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;

    // The kernel ABI packs this struct on x86-64.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    #[derive(Debug)]
    pub(super) struct Epoll {
        epfd: i32,
        scratch: Vec<EpollEvent>,
    }

    impl std::fmt::Debug for EpollEvent {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            let (ev, data) = (self.events, self.data);
            write!(f, "EpollEvent {{ events: {ev:#x}, data: {data} }}")
        }
    }

    impl Epoll {
        pub(super) fn new() -> io::Result<Epoll> {
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Epoll {
                epfd,
                scratch: Vec::new(),
            })
        }

        pub(super) fn ctl(
            &mut self,
            op: i32,
            fd: i32,
            token: Token,
            interest: Interest,
        ) -> io::Result<()> {
            let mut bits = 0u32;
            if interest.is_readable() {
                bits |= EPOLLIN;
            }
            if interest.is_writable() {
                bits |= EPOLLOUT;
            }
            let mut ev = EpollEvent {
                events: bits,
                data: token.0 as u64,
            };
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub(super) fn wait(
            &mut self,
            events: &mut Events,
            timeout: Option<Duration>,
        ) -> io::Result<()> {
            let timeout_ms: i32 = match timeout {
                None => -1,
                Some(d) => d.as_millis().min(i32::MAX as u128) as i32,
            };
            self.scratch
                .resize(events.capacity, EpollEvent { events: 0, data: 0 });
            let n = loop {
                let rc = unsafe {
                    epoll_wait(
                        self.epfd,
                        self.scratch.as_mut_ptr(),
                        self.scratch.len() as i32,
                        timeout_ms,
                    )
                };
                if rc >= 0 {
                    break rc as usize;
                }
                let err = io::Error::last_os_error();
                if err.kind() != io::ErrorKind::Interrupted {
                    return Err(err);
                }
            };
            for raw in &self.scratch[..n] {
                let (bits, data) = (raw.events, raw.data);
                events.inner.push(Event {
                    token: Token(data as usize),
                    readable: bits & EPOLLIN != 0,
                    writable: bits & EPOLLOUT != 0,
                    error: bits & (EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Epoll {
        fn drop(&mut self) {
            unsafe {
                close(self.epfd);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};

    fn socket_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let a = TcpStream::connect(addr).expect("connect");
        let (b, _) = listener.accept().expect("accept");
        (a, b)
    }

    fn exercise(backend: Backend) {
        let (a, mut b) = socket_pair();
        let mut poll = Poll::with_backend(backend).expect("poll");
        poll.register(&a, Token(7), Interest::READABLE | Interest::WRITABLE)
            .expect("register");

        // A fresh socket with empty buffers is writable.
        let mut events = Events::with_capacity(8);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let mut writable = false;
        while std::time::Instant::now() < deadline && !writable {
            poll.poll(&mut events, Some(Duration::from_millis(100)))
                .expect("poll writable");
            writable = events
                .iter()
                .any(|e| e.token() == Token(7) && e.is_writable());
        }
        assert!(writable, "socket never reported writable on {backend:?}");

        // Readability appears once the peer writes.
        b.write_all(b"ping").expect("peer write");
        b.flush().expect("peer flush");
        let mut readable = false;
        while std::time::Instant::now() < deadline && !readable {
            poll.poll(&mut events, Some(Duration::from_millis(100)))
                .expect("poll readable");
            readable = events
                .iter()
                .any(|e| e.token() == Token(7) && e.is_readable());
        }
        assert!(readable, "socket never reported readable on {backend:?}");
        let mut buf = [0u8; 4];
        (&a).read_exact(&mut buf).expect("read");
        assert_eq!(&buf, b"ping");

        poll.deregister(&a).expect("deregister");
        poll.poll(&mut events, Some(Duration::from_millis(10)))
            .expect("poll after deregister");
        assert!(
            events.iter().all(|e| e.token() != Token(7)),
            "deregistered fd still reported"
        );
    }

    #[test]
    fn epoll_backend_reports_readiness() {
        if cfg!(target_os = "linux") {
            let poll = Poll::with_backend(Backend::Epoll).expect("poll");
            assert_eq!(poll.backend(), Backend::Epoll);
        }
        exercise(Backend::Epoll); // degrades to portable off Linux
    }

    #[test]
    fn portable_backend_reports_readiness() {
        exercise(Backend::Portable);
    }

    #[test]
    fn reregister_moves_token_and_interest() {
        let (a, _b) = socket_pair();
        let mut poll = Poll::new().expect("poll");
        poll.register(&a, Token(1), Interest::WRITABLE)
            .expect("register");
        poll.reregister(&a, Token(2), Interest::WRITABLE)
            .expect("reregister");
        let mut events = Events::with_capacity(4);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        let mut seen = false;
        while std::time::Instant::now() < deadline && !seen {
            poll.poll(&mut events, Some(Duration::from_millis(100)))
                .expect("poll");
            assert!(
                events.iter().all(|e| e.token() != Token(1)),
                "stale token after reregister"
            );
            seen = events
                .iter()
                .any(|e| e.token() == Token(2) && e.is_writable());
        }
        assert!(seen, "reregistered token never reported");
    }

    #[test]
    fn interest_combinators() {
        let both = Interest::READABLE | Interest::WRITABLE;
        assert!(both.is_readable() && both.is_writable());
        assert!(!Interest::READABLE.is_writable());
        assert!(!Interest::WRITABLE.is_readable());
    }
}
