//! Length-prefixed frame codec for append-only log files.
//!
//! A frame on disk is `[len: u32 le][check: u32 le][payload: len bytes]`.
//! The codec is checksum-agnostic: callers supply the check word (the
//! serving layer uses CRC-32 over the payload) and verify it on decode.
//! Decoding distinguishes *incomplete* (the stream ends mid-frame — the
//! normal shape of a torn tail after a crash) from *corrupt* (a length
//! that cannot be a real frame), so recovery can truncate the former
//! and refuse to reason about anything past either.

/// Hard ceiling on a single frame's payload, far above any legitimate
/// record but small enough that a corrupt length field can never turn
/// into a multi-gigabyte allocation.
pub const MAX_FRAME_LEN: usize = 1 << 24; // 16 MiB

/// Bytes of framing overhead preceding every payload.
pub const FRAME_HEADER_LEN: usize = 8;

/// Outcome of decoding one frame from the head of a byte stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Frame<'a> {
    /// A structurally complete frame: its check word and payload.
    /// The caller verifies the check word against the payload.
    Complete { check: u32, payload: &'a [u8] },
    /// The stream ended before the frame did (torn tail).
    Incomplete,
    /// The declared length exceeds [`MAX_FRAME_LEN`]; the stream is
    /// not trustworthy past this point.
    Corrupt,
}

/// Write one frame to a byte-oriented stream (socket, file, pipe).
///
/// Same layout as [`encode_frame_into`]; the caller supplies the check
/// word and should `flush` the writer when the frame must be visible to
/// the peer (the codec itself never flushes).
pub fn write_frame(w: &mut impl std::io::Write, check: u32, payload: &[u8]) -> std::io::Result<()> {
    assert!(payload.len() <= MAX_FRAME_LEN, "frame payload too large");
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(&check.to_le_bytes())?;
    w.write_all(payload)
}

/// Read one frame from a byte-oriented stream into `payload`.
///
/// Returns `Ok(Some(check))` with `payload` holding the frame body,
/// `Ok(None)` on clean EOF at a frame boundary (zero bytes read), and
/// `Err` for everything else: EOF mid-frame maps to
/// [`std::io::ErrorKind::UnexpectedEof`], a length field above
/// [`MAX_FRAME_LEN`] maps to [`std::io::ErrorKind::InvalidData`] (the
/// stream is not trustworthy past it). The caller verifies the returned
/// check word against `payload`.
pub fn read_frame(
    r: &mut impl std::io::Read,
    payload: &mut Vec<u8>,
) -> std::io::Result<Option<u32>> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    // Distinguish clean EOF (no bytes at all) from a torn header.
    let mut filled = 0;
    while filled < FRAME_HEADER_LEN {
        match r.read(&mut header[filled..])? {
            0 => {
                if filled == 0 {
                    return Ok(None);
                }
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "stream ended mid frame header",
                ));
            }
            n => filled += n,
        }
    }
    let len = u32::from_le_bytes(header[0..4].try_into().unwrap()) as usize;
    if len > MAX_FRAME_LEN {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "frame length exceeds MAX_FRAME_LEN",
        ));
    }
    let check = u32::from_le_bytes(header[4..8].try_into().unwrap());
    payload.clear();
    payload.resize(len, 0);
    r.read_exact(payload)?;
    Ok(Some(check))
}

/// Append one frame to `out`.
pub fn encode_frame_into(out: &mut Vec<u8>, check: u32, payload: &[u8]) {
    assert!(payload.len() <= MAX_FRAME_LEN, "frame payload too large");
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&check.to_le_bytes());
    out.extend_from_slice(payload);
}

/// Decode the frame at the head of `buf`. On `Complete`, the frame
/// occupies `FRAME_HEADER_LEN + payload.len()` bytes.
pub fn decode_frame(buf: &[u8]) -> Frame<'_> {
    if buf.len() < FRAME_HEADER_LEN {
        return Frame::Incomplete;
    }
    let len = u32::from_le_bytes(buf[0..4].try_into().unwrap()) as usize;
    if len > MAX_FRAME_LEN {
        return Frame::Corrupt;
    }
    let check = u32::from_le_bytes(buf[4..8].try_into().unwrap());
    let Some(end) = FRAME_HEADER_LEN.checked_add(len) else {
        return Frame::Corrupt;
    };
    if buf.len() < end {
        return Frame::Incomplete;
    }
    Frame::Complete {
        check,
        payload: &buf[FRAME_HEADER_LEN..end],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut buf = Vec::new();
        encode_frame_into(&mut buf, 0xABCD_EF01, b"payload");
        match decode_frame(&buf) {
            Frame::Complete { check, payload } => {
                assert_eq!(check, 0xABCD_EF01);
                assert_eq!(payload, b"payload");
            }
            other => panic!("expected complete frame, got {other:?}"),
        }
        assert_eq!(buf.len(), FRAME_HEADER_LEN + 7);
    }

    #[test]
    fn every_truncation_is_incomplete() {
        let mut buf = Vec::new();
        encode_frame_into(&mut buf, 7, b"some payload bytes");
        for cut in 0..buf.len() {
            assert_eq!(decode_frame(&buf[..cut]), Frame::Incomplete, "cut at {cut}");
        }
    }

    #[test]
    fn oversized_length_is_corrupt() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&[0u8; 32]);
        assert_eq!(decode_frame(&buf), Frame::Corrupt);
    }

    #[test]
    fn stream_roundtrip_and_eof() {
        let mut wire = Vec::new();
        write_frame(&mut wire, 11, b"first").unwrap();
        write_frame(&mut wire, 22, b"").unwrap();
        let mut cursor = &wire[..];
        let mut payload = Vec::new();
        assert_eq!(read_frame(&mut cursor, &mut payload).unwrap(), Some(11));
        assert_eq!(payload, b"first");
        assert_eq!(read_frame(&mut cursor, &mut payload).unwrap(), Some(22));
        assert_eq!(payload, b"");
        assert_eq!(read_frame(&mut cursor, &mut payload).unwrap(), None);
    }

    #[test]
    fn stream_truncation_is_unexpected_eof() {
        let mut wire = Vec::new();
        write_frame(&mut wire, 5, b"payload bytes").unwrap();
        let mut payload = Vec::new();
        for cut in 1..wire.len() {
            let mut cursor = &wire[..cut];
            let err = read_frame(&mut cursor, &mut payload).unwrap_err();
            assert_eq!(
                err.kind(),
                std::io::ErrorKind::UnexpectedEof,
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn stream_oversized_length_is_invalid_data() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&u32::MAX.to_le_bytes());
        wire.extend_from_slice(&0u32.to_le_bytes());
        let mut cursor = &wire[..];
        let mut payload = Vec::new();
        let err = read_frame(&mut cursor, &mut payload).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn empty_payload_frames() {
        let mut buf = Vec::new();
        encode_frame_into(&mut buf, 0, b"");
        assert!(matches!(
            decode_frame(&buf),
            Frame::Complete {
                check: 0,
                payload: b""
            }
        ));
    }
}
