//! Vendored shim for the `bytes` crate methods the tensor serializer
//! uses: `BufMut` append helpers on `Vec<u8>` and `Buf` cursor-style
//! reads on `&[u8]`. Reads advance the slice in place, exactly like the
//! upstream `Buf` impl for `&[u8]`.
//!
//! Reading past the end panics (as upstream does); callers that need
//! graceful failure check `remaining()` first.
//!
//! The [`framing`] module adds a small length-prefixed frame codec used
//! by the serving layer's write-ahead log; it has no upstream analogue
//! but lives here so the on-disk framing stays a leaf dependency.

pub mod framing;

pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

pub trait Buf {
    fn remaining(&self) -> usize;
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    fn get_f32_le(&mut self) -> f32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        f32::from_le_bytes(b)
    }

    fn get_f64_le(&mut self) -> f64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        f64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

#[cfg(test)]
mod tests {
    use super::{Buf, BufMut};

    #[test]
    fn roundtrip_all_widths() {
        let mut out: Vec<u8> = Vec::new();
        out.put_u8(7);
        out.put_u32_le(0xDEAD_BEEF);
        out.put_f32_le(1.5);
        out.put_u64_le(42);
        out.put_slice(b"xy");
        let mut r: &[u8] = &out;
        assert_eq!(r.remaining(), 1 + 4 + 4 + 8 + 2);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_f32_le(), 1.5);
        assert_eq!(r.get_u64_le(), 42);
        let mut tail = [0u8; 2];
        r.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xy");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut r: &[u8] = &[1u8];
        let _ = r.get_u32_le();
    }
}
