//! Vendored shim covering the `proptest` surface this workspace's
//! property tests use: the `proptest!` macro, range and
//! `prop::collection::vec` strategies, tuple strategies,
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!`, and
//! `ProptestConfig::with_cases`.
//!
//! Unlike upstream there is no shrinking: a failing case panics with the
//! case number and seed so it can be replayed deterministically (cases
//! derive from a fixed per-test seed, not from ambient entropy).

/// Deterministic generator handed to strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct Gen {
    state: u64,
}

impl Gen {
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }
}

/// Mix a per-test seed with the case index.
pub fn case_seed(test_seed: u64, case: u64) -> u64 {
    let mut g = Gen::new(test_seed ^ case.wrapping_mul(0xA076_1D64_78BD_642F));
    g.next_u64()
}

/// Something that can produce a value for one test case.
pub trait Strategy {
    type Value;
    fn generate(&self, g: &mut Gen) -> Self::Value;
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, g: &mut Gen) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + g.below(span) as i128) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, g: &mut Gen) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (self.end - self.start) * g.unit_f64() as $t
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, g: &mut Gen) -> Self::Value {
                ($(self.$idx.generate(g),)+)
            }
        }
    )*};
}
impl_tuple_strategy!((A.0)(A.0, B.1)(A.0, B.1, C.2)(A.0, B.1, C.2, D.3));

/// Size specification for collections: a fixed size or a range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n + 1 }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi: r.end,
        }
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, g: &mut Gen) -> Self::Value {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo + g.below(span.max(1)) as usize;
        (0..len).map(|_| self.element.generate(g)).collect()
    }
}

pub mod prop {
    pub mod collection {
        use super::super::{SizeRange, VecStrategy};

        /// `prop::collection::vec(element, size)` — size may be a fixed
        /// `usize` or a `Range<usize>`.
        pub fn vec<S>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }
    }
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
    pub seed: u64,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: 96,
            seed: 0x5CCF_u64,
        }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
    pub use crate::{Gen, ProptestConfig, Strategy};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Skip the current case when its inputs don't satisfy a precondition.
/// Expands to an early return from the per-case closure.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return;
        }
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            // Derive a per-test seed from the test name so distinct tests
            // explore distinct streams under the same config.
            let mut __h = 0xcbf2_9ce4_8422_2325u64;
            for b in stringify!($name).bytes() {
                __h = (__h ^ b as u64).wrapping_mul(0x1_0000_01b3);
            }
            for __case in 0..cfg.cases as u64 {
                let __seed = $crate::case_seed(cfg.seed ^ __h, __case);
                let mut __g = $crate::Gen::new(__seed);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __g);)+
                let mut __run = || { $body };
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(&mut __run));
                if let Err(payload) = outcome {
                    eprintln!(
                        "proptest shim: {} failed at case {} (seed {:#x})",
                        stringify!($name), __case, __seed
                    );
                    std::panic::resume_unwind(payload);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// Generated values respect their ranges.
        #[test]
        fn ranges_in_bounds(x in 3u32..9, y in -2.0f32..2.0, v in prop::collection::vec(0usize..5, 1..10)) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y), "y = {y}");
            prop_assert!(!v.is_empty() && v.len() < 10);
            prop_assert!(v.iter().all(|&e| e < 5));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(17))]

        /// Fixed-size vec and tuple strategies compose.
        #[test]
        fn fixed_size_and_tuples(v in prop::collection::vec(0u64..10, 4), t in (0i64..5, 0u32..3)) {
            prop_assert_eq!(v.len(), 4);
            prop_assert!(t.0 < 5 && t.1 < 3);
        }
    }

    proptest! {
        /// prop_assume skips cases without failing them.
        #[test]
        fn assume_skips(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a = crate::case_seed(1, 2);
        let b = crate::case_seed(1, 2);
        assert_eq!(a, b);
        assert_ne!(a, crate::case_seed(1, 3));
    }
}
