//! Real-time streaming demo (§III-C.2 / Table III): replay live events
//! through the engine, watch a user's neighborhood follow an interest
//! shift, and report the infer/identify latency split.
//!
//! ```sh
//! cargo run --release --example realtime_stream
//! ```

use sccf::core::{RealtimeEngine, Sccf, SccfConfig};
use sccf::data::catalog::{taobao_sim, Scale};
use sccf::data::synthetic::generate;
use sccf::data::LeaveOneOut;
use sccf::models::{InductiveUiModel, SasRec, SasRecConfig, TrainConfig};
use sccf::serving::{RecQuery, ServingApi};

fn main() {
    // --- a drift-heavy Taobao-like stream ---------------------------------
    let mut cfg = taobao_sim(Scale::Quick);
    cfg.n_users = 300;
    cfg.n_items = 400;
    // tighter category structure than raw taobao-sim so the adaptation
    // effect is visible within a short demo
    cfg.n_categories = 16;
    cfg.drift = 0.06;
    cfg.jump_prob = 0.06;
    let gen = generate(&cfg, 7);
    let data = &gen.dataset;
    let split = LeaveOneOut::split(data);

    // --- train SASRec, the sequential inductive model ---------------------
    println!("training SASRec ...");
    let sasrec = SasRec::train(
        &split,
        &SasRecConfig {
            train: TrainConfig {
                dim: 32,
                epochs: 15,
                ..Default::default()
            },
            max_len: 50,
            ..Default::default()
        },
    );

    let mut sccf = Sccf::build(sasrec, &split, SccfConfig::default());
    sccf.refresh_for_test(&split);
    let histories: Vec<Vec<u32>> = (0..split.n_users() as u32)
        .map(|u| split.train_plus_val(u))
        .collect();
    let mut engine = RealtimeEngine::new(sccf, histories);

    // --- watch one user adopt a brand-new category -------------------------
    let user = 0u32;
    let target_cat = {
        // a category the user has never touched
        let touched: sccf::util::FxHashSet<u32> = engine
            .history(user)
            .iter()
            .map(|&i| data.category_of(i))
            .collect();
        (0..data.n_categories() as u32)
            .find(|c| !touched.contains(c))
            .unwrap_or(0)
    };
    let new_items: Vec<u32> = (0..data.n_items() as u32)
        .filter(|&i| data.category_of(i) == target_cat)
        .take(12)
        .collect();

    let query = RecQuery::top(10);
    let before = engine
        .try_recommend(user, &query)
        .expect("user exists")
        .items;
    let cat_share = |recs: &[sccf::util::topk::Scored]| {
        recs.iter()
            .filter(|r| data.category_of(r.id) == target_cat)
            .count()
    };
    // mean UI rank of the new category's items: the crispest view of
    // real-time adaptation (lower = retrieved earlier)
    let mean_cat_rank = |engine: &RealtimeEngine<SasRec>| {
        let rep = engine.sccf().model().infer_user(engine.history(user));
        let scores = engine.sccf().model().score_by_rep(&rep);
        let ranks: Vec<usize> = (0..data.n_items() as u32)
            .filter(|&i| data.category_of(i) == target_cat)
            .map(|i| sccf::util::topk::rank_of(&scores, i))
            .collect();
        ranks.iter().sum::<usize>() as f64 / ranks.len().max(1) as f64
    };
    let rank_before = mean_cat_rank(&engine);
    println!(
        "\nuser {user} adopts category {target_cat}; recs from that category before: {}/10 \
         (mean UI rank of category items: {rank_before:.0}/{})",
        cat_share(&before),
        data.n_items()
    );

    for &item in &new_items {
        let t = engine
            .try_ingest(user, item)
            .expect("ids in range")
            .expect("plain engine reports timing");
        println!(
            "  event item {item:>4}  infer {:.3} ms  identify {:.3} ms",
            t.infer_ms, t.identify_ms
        );
    }
    let after = engine
        .try_recommend(user, &query)
        .expect("user exists")
        .items;
    let rank_after = mean_cat_rank(&engine);
    println!(
        "recs from category {target_cat} after the shift: {}/10 \
         (mean UI rank of category items: {rank_after:.0}, was {rank_before:.0} — \
         the representation follows the shift without any retraining)",
        cat_share(&after)
    );
    assert!(
        rank_after < rank_before,
        "real-time inference must move the new category up the ranking"
    );

    // --- replay bulk traffic and report Table III-style latency ------------
    println!("\nreplaying one event per user ...");
    let tail: Vec<(u32, u32)> = split
        .test_users()
        .into_iter()
        .filter_map(|u| split.test_item(u).map(|item| (u, item)))
        .collect();
    engine.ingest_batch(&tail).expect("test ids are in range");
    let stats = engine.serving_stats().expect("stats");
    let t = &stats.timings;
    println!("per-event latency over {} events:", t.infer.count());
    println!(
        "  inferring  : {:.3} ms mean (max {:.3})",
        t.infer.mean_ms(),
        t.infer.max_ms()
    );
    println!(
        "  identifying: {:.3} ms mean (max {:.3})",
        t.identify.mean_ms(),
        t.identify.max_ms()
    );
    println!("  total      : {:.3} ms mean", t.mean_total_ms());
    let d = engine.sccf().model().dim();
    println!("\n(user vectors are {d}-dimensional; identifying scans the user index, which is why it stays flat as catalogs grow — the paper's Table III argument)");
}
