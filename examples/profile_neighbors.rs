//! Side-information demo — the paper's §V future work, implemented:
//! *"we will investigate how to incorporate side information such as user
//! profile to identify similar users."*
//!
//! A cold-start scenario: the behavioral model has seen almost no
//! training (1 epoch), so its user representations are noisy. Blending a
//! registration-style profile vector into the neighbor search
//! (`[m̂_u ⊕ w·p̂_u]`) recovers meaningful neighborhoods.
//!
//! ```sh
//! cargo run --release --example profile_neighbors
//! ```

use sccf::core::{Sccf, SccfConfig, UserProfiles};
use sccf::data::catalog::{ml1m_sim, Scale};
use sccf::data::synthetic::generate;
use sccf::data::LeaveOneOut;
use sccf::eval::{evaluate, EvalTarget};
use sccf::models::{Fism, FismConfig, InductiveUiModel, TrainConfig};

fn main() {
    let mut cfg = ml1m_sim(Scale::Quick);
    cfg.n_users = 300;
    cfg.n_items = 260;
    let gen = generate(&cfg, 33);
    let split = LeaveOneOut::split(&gen.dataset);

    println!("cold-start: FISM trained for a single epoch\n");
    let train_weak = || {
        Fism::train(
            &split,
            &FismConfig {
                train: TrainConfig {
                    dim: 16,
                    epochs: 1,
                    ..Default::default()
                },
                ..Default::default()
            },
        )
    };

    let mut results = Vec::new();
    for &weight in &[0.0f32, 0.5, 1.0, 2.0] {
        let profiles = (weight > 0.0).then(|| UserProfiles::new(gen.profiles.clone(), weight));
        let mut sccf = Sccf::build(
            train_weak(),
            &split,
            SccfConfig {
                profiles,
                ..SccfConfig::default()
            },
        );
        sccf.refresh_for_test(&split);

        // neighborhood purity: same-group fraction among neighbors
        let groups = &gen.truth.user_group;
        let mut purity = 0.0;
        let mut n = 0u32;
        for u in 0..split.n_users() as u32 {
            let rep = sccf.model().infer_user(&split.train_plus_val(u));
            let neighbors = sccf.neighbors(u, &rep);
            if neighbors.is_empty() {
                continue;
            }
            let same = neighbors
                .iter()
                .filter(|s| groups[s.id as usize] == groups[u as usize])
                .count();
            purity += same as f64 / neighbors.len() as f64;
            n += 1;
        }
        purity /= n.max(1) as f64;

        let uu = evaluate(
            &sccf.uu_scorer(),
            &split,
            EvalTarget::Test,
            &[50],
            4,
            "UU",
            "profiles",
        );
        results.push((weight, purity, uu.metrics.hr(50), uu.metrics.ndcg(50)));
    }

    println!("profile weight w   neighborhood purity   UU HR@50   UU NDCG@50");
    for (w, purity, hr, ndcg) in &results {
        println!("      {w:>4.1}              {purity:.3}            {hr:.4}     {ndcg:.4}");
    }
    println!(
        "\n(random purity over {} groups would be ≈ {:.3}; w = 0 is the paper's\n pure Eq. 11 — profile blending repairs cold-start neighborhoods)",
        cfg.n_groups,
        1.0 / cfg.n_groups as f64
    );
}
