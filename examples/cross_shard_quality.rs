//! Two-tier cross-shard neighborhoods demo: recover the Eq. 11 recall
//! a sharded fleet silently gives up — **without** giving up
//! shard-local writes.
//!
//! A user-partitioned fleet computes each neighborhood from the
//! shard's own users only (~1/N of the population). This example
//! measures that loss directly — the overlap between every user's
//! in-shard neighborhood and the full-population one — then installs
//! the frozen global tier (`refresh_global_tier`) and measures again.
//! With a fresh snapshot, the merged two-tier neighborhoods are
//! *identical* to the N=1 engine's, asserted bit-for-bit as the
//! example runs; after more traffic, the frozen tier goes stale and a
//! single refresh catches it back up.
//!
//! ```sh
//! cargo run --release --example cross_shard_quality
//! ```

use sccf::core::{
    FrozenTierMode, IntegratorConfig, RealtimeEngine, Sccf, SccfConfig, UserBasedConfig,
};
use sccf::data::catalog::{ml1m_sim, Scale};
use sccf::data::synthetic::generate;
use sccf::data::LeaveOneOut;
use sccf::models::{Fism, FismConfig, TrainConfig};
use sccf::serving::{RecQuery, RouterKind, ServingApi, ShardedConfig, ShardedEngine};

fn main() {
    // --- world + deterministic framework builds -------------------------
    let mut cfg = ml1m_sim(Scale::Quick);
    cfg.n_users = 600;
    cfg.n_items = 300;
    let gen = generate(&cfg, 29);
    let split = LeaveOneOut::split(&gen.dataset);
    let n_users = split.n_users() as u32;
    println!("training FISM on {} users ...", split.n_users());
    let build = || {
        let fism = Fism::train(
            &split,
            &FismConfig {
                train: TrainConfig {
                    dim: 16,
                    epochs: 3,
                    seed: 11,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        let mut sccf = Sccf::build(
            fism,
            &split,
            SccfConfig {
                user_based: UserBasedConfig {
                    beta: 30,
                    recent_window: 15,
                },
                candidate_n: 40,
                integrator: IntegratorConfig {
                    epochs: 3,
                    seed: 11,
                    ..Default::default()
                },
                threads: 1,
                profiles: None,
                ui_ann: None,
                frozen_tier: FrozenTierMode::Flat,
            },
        );
        // Both engines must start from the same per-user state: the
        // plain engine keeps build-time (train-only) index rows unless
        // refreshed, while the sharded engine derives everything from
        // the handed-in train+val histories.
        sccf.refresh_for_test(&split);
        sccf
    };
    let histories: Vec<Vec<u32>> = (0..n_users).map(|u| split.train_plus_val(u)).collect();

    // The full-population reference: the plain single-writer engine.
    let mut reference = RealtimeEngine::new(build(), histories.clone());
    // The fleet under test: 4 shards, each owning ~1/4 of the users.
    let shard_cfg = ShardedConfig {
        n_shards: 4,
        queue_capacity: 256,
        router: RouterKind::Modulo,
    };
    let mut fleet =
        ShardedEngine::try_new(build(), histories, shard_cfg).expect("valid shard config");

    // --- 1. the in-shard recall loss ------------------------------------
    let probe: Vec<u32> = (0..n_users).step_by(7).collect();
    let overlap = |fleet: &mut ShardedEngine<Fism>, reference: &mut RealtimeEngine<Fism>| {
        let mut inter = 0usize;
        let mut total = 0usize;
        for &u in &probe {
            let full = reference.neighbors_of(u).expect("valid user");
            let got = fleet.neighbors_of(u).expect("valid user");
            total += full.len();
            inter += got
                .iter()
                .filter(|s| full.iter().any(|f| f.id == s.id))
                .count();
        }
        inter as f64 / total as f64
    };
    let local_recall = overlap(&mut fleet, &mut reference);
    println!(
        "shard-local neighborhoods: {:.1}% of the true β-neighborhood reachable \
         (4 shards ⇒ each search sees ~25% of the population)",
        100.0 * local_recall
    );

    // --- 2. install the frozen global tier ------------------------------
    let report = fleet.refresh_global_tier().expect("tier refresh");
    println!(
        "refreshed global tier: epoch {}, {} users exported in {} batch(es), {:.1} ms",
        report.epoch, report.users, report.batches, report.duration_ms
    );
    let two_tier_recall = overlap(&mut fleet, &mut reference);
    println!(
        "two-tier neighborhoods:   {:.1}% of the true β-neighborhood reachable",
        100.0 * two_tier_recall
    );
    assert!(
        two_tier_recall >= local_recall,
        "the global tier must not lose neighbors"
    );
    // With a fresh snapshot the merged search is *exactly* the plain
    // engine's Eq. 11 — same ids, same float bits, same order.
    for &u in &probe {
        let full = reference.neighbors_of(u).expect("valid user");
        let got = fleet.neighbors_of(u).expect("valid user");
        assert_eq!(full.len(), got.len(), "user {u}: neighborhood size");
        for (a, b) in full.iter().zip(&got) {
            assert_eq!(a.id, b.id, "user {u}: neighbor ids must match");
            assert_eq!(
                a.score.to_bits(),
                b.score.to_bits(),
                "user {u}: similarity bits must match"
            );
        }
    }
    println!("fresh snapshot ⇒ neighbor sets bit-identical to the N=1 engine ✓");

    // --- 3. staleness and the refresh cadence ---------------------------
    // Traffic moves user vectors; the shard-local deltas track it
    // instantly, the frozen tier lags until the next refresh.
    for k in 0..600u32 {
        let (u, i) = (k % n_users, (k * 13 + 5) % split.n_items() as u32);
        reference.try_ingest(u, i).expect("ids in range");
        fleet.try_ingest(u, i).expect("ids in range");
    }
    fleet.flush().expect("barrier");
    let stale = fleet.serving_stats().expect("stats");
    println!(
        "after 600 events: tier epoch {} is {} events stale (coverage {} users)",
        stale.neighborhood.epoch,
        stale.neighborhood.events_since_refresh,
        stale.neighborhood.users_covered
    );
    let stale_recall = overlap(&mut fleet, &mut reference);
    fleet.refresh_global_tier().expect("tier refresh");
    let fresh_recall = overlap(&mut fleet, &mut reference);
    println!(
        "stale-tier overlap {:.1}% → post-refresh overlap {:.1}%",
        100.0 * stale_recall,
        100.0 * fresh_recall
    );
    assert!(
        (fresh_recall - 1.0).abs() < 1e-9,
        "refresh restores exact recall"
    );

    // Recommendations flow through the merged neighborhoods end to end.
    let slate = fleet
        .try_recommend(0, &RecQuery::top(5))
        .expect("valid user");
    println!(
        "top-5 for user 0 through the two-tier path: {:?}",
        slate.ids()
    );
    fleet.shutdown();
    println!("done.");
}
