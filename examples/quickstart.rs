//! Quickstart: generate data, train an inductive UI model, wrap it in
//! SCCF, compare the three scoring views (UI / UU / fused) for one
//! user, and serve a live event through the unified `ServingApi`.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use sccf::core::RealtimeEngine;
use sccf::core::{Sccf, SccfConfig};
use sccf::data::catalog::{ml1m_sim, Scale};
use sccf::data::synthetic::generate;
use sccf::data::LeaveOneOut;
use sccf::eval::{evaluate, EvalTarget};
use sccf::models::{Fism, FismConfig, InductiveUiModel, TrainConfig};
use sccf::serving::{RecQuery, ServingApi};
use sccf::util::topk::topk_of_scores;

fn main() {
    // --- 1. a MovieLens-1M-like synthetic dataset ------------------------
    let mut cfg = ml1m_sim(Scale::Quick);
    cfg.n_users = 300;
    cfg.n_items = 260;
    let data = generate(&cfg, 42).dataset.core_filter(5);
    let split = LeaveOneOut::split(&data);
    let stats = data.stats();
    println!(
        "dataset: {} users × {} items, {} actions (density {:.2}%)",
        stats.n_users,
        stats.n_items,
        stats.n_actions,
        stats.density * 100.0
    );

    // --- 2. train FISM (Eq. 1): inductive, so SCCF-compatible ------------
    let fism = Fism::train(
        &split,
        &FismConfig {
            train: TrainConfig {
                dim: 32,
                epochs: 10,
                ..Default::default()
            },
            ..Default::default()
        },
    );

    // --- 3. build SCCF: user index + user-based component + integrator ---
    let mut sccf = Sccf::build(fism, &split, SccfConfig::default());
    sccf.refresh_for_test(&split);

    // --- 4. inspect one user ---------------------------------------------
    let user = split.test_users()[0];
    let history = split.train_plus_val(user);
    println!("\nuser {user}: history of {} items", history.len());

    let rep = sccf.model().infer_user(&history);
    let neighbors = sccf.neighbors(user, &rep);
    println!(
        "nearest neighbors (Eq. 11): {:?}",
        neighbors
            .iter()
            .take(5)
            .map(|n| (n.id, (n.score * 1000.0).round() / 1000.0))
            .collect::<Vec<_>>()
    );

    let ui_top = topk_of_scores(&sccf.model().score_by_rep(&rep), 5);
    println!(
        "top UI items (Eq. 10):    {:?}",
        ui_top.iter().map(|s| s.id).collect::<Vec<_>>()
    );
    let uu_top = topk_of_scores(&sccf.uu_scores(user, &rep), 5);
    println!(
        "top UU items (Eq. 12):    {:?}",
        uu_top.iter().map(|s| s.id).collect::<Vec<_>>()
    );
    let fused = sccf.recommend(user, &history, 5);
    println!(
        "fused SCCF top-5:         {:?}",
        fused.iter().map(|s| s.id).collect::<Vec<_>>()
    );

    // --- 5. protocol evaluation ------------------------------------------
    let ks = [20usize, 50];
    let base = evaluate(
        sccf.model(),
        &split,
        EvalTarget::Test,
        &ks,
        4,
        "FISM",
        "quickstart",
    );
    let full = evaluate(
        &sccf,
        &split,
        EvalTarget::Test,
        &ks,
        4,
        "FISM-SCCF",
        "quickstart",
    );
    println!("\n              HR@20    NDCG@20   HR@50    NDCG@50");
    println!(
        "FISM        {:.4}   {:.4}    {:.4}   {:.4}",
        base.metrics.hr(20),
        base.metrics.ndcg(20),
        base.metrics.hr(50),
        base.metrics.ndcg(50)
    );
    println!(
        "FISM-SCCF   {:.4}   {:.4}    {:.4}   {:.4}",
        full.metrics.hr(20),
        full.metrics.ndcg(20),
        full.metrics.hr(50),
        full.metrics.ndcg(50)
    );

    // --- 6. serve it: the typed real-time surface ------------------------
    // `ServingApi` is the one interface over the single-writer and the
    // sharded engine; see examples/realtime_stream.rs and
    // examples/sharded_serving.rs for the full story.
    let histories: Vec<Vec<u32>> = (0..split.n_users() as u32)
        .map(|u| split.train_plus_val(u))
        .collect();
    let mut engine = RealtimeEngine::new(sccf, histories);
    let item = fused[0].id;
    let timing = engine
        .try_ingest(user, item)
        .expect("ids are in range")
        .expect("the plain engine reports per-event timing");
    let res = engine
        .try_recommend(user, &RecQuery::top(5))
        .expect("user exists");
    println!(
        "
served a live event (infer {:.3} ms, identify {:.3} ms); fresh top-5: {:?}",
        timing.infer_ms,
        timing.identify_ms,
        res.ids()
    );
}
