//! Live resharding demo: scale a serving fleet out N→M **while it
//! keeps absorbing traffic** — no restart, no snapshot reload, no
//! dropped or duplicated event.
//!
//! The fleet routes users through a consistent-hash ring
//! (`RouterKind::Consistent`), so growing from 2 to 4 shards only
//! moves the users whose ring arc changed hands (≈ half of them;
//! a modulo router would move ~3/4). `begin_reshard` enters the
//! migration epoch, then handoff batches interleave with ingest
//! bursts: each `reshard_step` exports one batch of moving users from
//! their old shards and imports them into their new ones over the same
//! FIFO queues events ride, so per-user ordering survives end to end.
//! After quiesce, the fleet's state is bit-identical to what an
//! offline `snapshot_state()` + `restore(.., new_cfg)` of the same
//! histories would have produced — verified live at the end.
//!
//! ```sh
//! cargo run --release --example live_reshard
//! ```

use sccf::core::{FrozenTierMode, IntegratorConfig, Sccf, SccfConfig, UserBasedConfig};
use sccf::data::catalog::{ml1m_sim, Scale};
use sccf::data::synthetic::generate;
use sccf::data::LeaveOneOut;
use sccf::models::{Fism, FismConfig, TrainConfig};
use sccf::serving::{events_after, RecQuery, RouterKind, ServingApi, ShardedConfig, ShardedEngine};

fn main() {
    // --- world + deterministic framework builds -------------------------
    let mut cfg = ml1m_sim(Scale::Quick);
    cfg.n_users = 800;
    cfg.n_items = 400;
    let gen = generate(&cfg, 23);
    let split = LeaveOneOut::split(&gen.dataset);
    println!("training FISM on {} users ...", split.n_users());
    let build = || {
        let fism = Fism::train(
            &split,
            &FismConfig {
                train: TrainConfig {
                    dim: 16,
                    epochs: 3,
                    seed: 7,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        Sccf::build(
            fism,
            &split,
            SccfConfig {
                user_based: UserBasedConfig {
                    beta: 30,
                    recent_window: 15,
                },
                candidate_n: 40,
                integrator: IntegratorConfig {
                    epochs: 3,
                    seed: 7,
                    ..Default::default()
                },
                threads: 1,
                profiles: None,
                ui_ann: None,
                frozen_tier: FrozenTierMode::Flat,
            },
        )
    };
    let histories: Vec<Vec<u32>> = (0..split.n_users() as u32)
        .map(|u| split.train_plus_val(u))
        .collect();
    let shard_cfg = |n_shards: usize| ShardedConfig {
        n_shards,
        queue_capacity: 256,
        router: RouterKind::Consistent { vnodes: 64 },
    };

    // --- a 2-shard fleet absorbs the first wave of traffic --------------
    let mut fleet =
        ShardedEngine::try_new(build(), histories.clone(), shard_cfg(2)).expect("valid config");
    let traffic: Vec<(u32, u32)> = events_after(&gen.dataset, 0)
        .into_iter()
        .map(|e| (e.user, e.item))
        .take(3000)
        .collect();
    let (wave1, wave2) = traffic.split_at(traffic.len() / 2);
    fleet.ingest_batch(wave1).expect("stream ids in range");
    println!("2-shard fleet absorbed {} events", wave1.len());

    // --- scale out to 4 shards while the second wave flows --------------
    fleet
        .begin_reshard(shard_cfg(4), 64)
        .expect("enter the migration epoch");
    let mut wave2_it = wave2.iter();
    let mut bursts = 0usize;
    while fleet.is_migrating() {
        for &(u, i) in wave2_it.by_ref().take(50) {
            fleet.try_ingest(u, i).expect("mid-migration ingest");
        }
        bursts += 1;
        let remaining = fleet.reshard_step().expect("handoff batch");
        let stats = fleet.serving_stats().expect("stats");
        println!(
            "  handoff batch {bursts}: {} users moved, {remaining} pending, \
             {} events ingested so far",
            stats.migration.migrated_users, stats.events,
        );
    }
    for &(u, i) in wave2_it {
        fleet.try_ingest(u, i).expect("post-migration ingest");
    }
    fleet.flush().expect("barrier");
    let stats = fleet.serving_stats().expect("stats");
    println!(
        "quiesced: {} shards, {} users migrated in {} batches, {} events — none lost, none doubled",
        fleet.n_shards(),
        stats.migration.migrated_users,
        stats.migration.batches,
        stats.events,
    );
    assert_eq!(stats.events, traffic.len() as u64);

    // --- the punchline: live == offline ---------------------------------
    // A twin fleet that saw the same traffic, snapshotted and restored
    // at 4 shards the *offline* way, serves bit-identical slates.
    let probe: Vec<u32> = (0..10).collect();
    let live_slates: Vec<Vec<u32>> = fleet
        .recommend_many(&probe, &RecQuery::top(5))
        .expect("probe users exist")
        .into_iter()
        .map(|r| r.ids())
        .collect();

    let mut twin = ShardedEngine::try_new(build(), histories, shard_cfg(2)).expect("valid config");
    twin.ingest_batch(&traffic).expect("same traffic");
    let artifact = twin.snapshot_state().expect("snapshot");
    twin.shutdown();
    let mut offline =
        ShardedEngine::restore(build(), &artifact, shard_cfg(4)).expect("offline reshard");
    let offline_slates: Vec<Vec<u32>> = offline
        .recommend_many(&probe, &RecQuery::top(5))
        .expect("probe users exist")
        .into_iter()
        .map(|r| r.ids())
        .collect();
    assert_eq!(
        live_slates, offline_slates,
        "live resharding must land on the same state as snapshot + restore"
    );
    println!(
        "live reshard == offline snapshot+restore ✓  (user 0 top-5: {:?})",
        live_slates[0]
    );
    offline.shutdown();
    fleet.shutdown();
}
