//! Closed-loop control plane demo: a `ControlDriver` owns a serving
//! fleet, watches its queue pressure and tier staleness on virtual
//! ticks, and drives every operational decision itself — scale out on
//! sustained backpressure, scale in when the load drains away, keep
//! the frozen tier fresh with *delta* refreshes that re-export only
//! the users written since the last epoch.
//!
//! The traffic is a seeded `WorkloadGen` trace: a diurnal curve with a
//! flash-sale burst in the afternoon. Watch the decision log: the
//! policy rides out the quiet morning at one shard, doubles its way up
//! when the flash hits (hysteresis bands keep it from flapping on the
//! edge), parks tier refreshes in the calm troughs, and never overlaps
//! two epochs.
//!
//! ```sh
//! cargo run --release --example control_loop
//! ```

use sccf::core::{FrozenTierMode, IntegratorConfig, Sccf, SccfConfig, UserBasedConfig};
use sccf::data::catalog::{ml1m_sim, Scale};
use sccf::data::synthetic::generate;
use sccf::data::LeaveOneOut;
use sccf::models::{Fism, FismConfig, TrainConfig};
use sccf::serving::control::{ActuatorStep, Decision, PolicyConfig};
use sccf::serving::{ControlDriver, RouterKind, ServingApi, ShardedConfig, ShardedEngine};
use sccf_bench::workload::{FlashSale, WorkloadConfig, WorkloadGen};

fn main() {
    // --- a small world and one deterministic framework build ------------
    let mut cfg = ml1m_sim(Scale::Quick);
    cfg.n_users = 400;
    cfg.n_items = 200;
    let gen = generate(&cfg, 23);
    let split = LeaveOneOut::split(&gen.dataset);
    println!("training FISM on {} users ...", split.n_users());
    let fism = Fism::train(
        &split,
        &FismConfig {
            train: TrainConfig {
                dim: 16,
                epochs: 3,
                seed: 7,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let sccf = Sccf::build(
        fism,
        &split,
        SccfConfig {
            user_based: UserBasedConfig {
                beta: 20,
                recent_window: 10,
            },
            candidate_n: 30,
            integrator: IntegratorConfig {
                epochs: 3,
                seed: 7,
                ..Default::default()
            },
            threads: 1,
            profiles: None,
            ui_ann: None,
            frozen_tier: FrozenTierMode::Flat,
        },
    );
    let histories: Vec<Vec<u32>> = (0..split.n_users() as u32)
        .map(|u| split.train_plus_val(u))
        .collect();

    // --- fleet + policy --------------------------------------------------
    let base = ShardedConfig {
        n_shards: 1,
        queue_capacity: 256,
        router: RouterKind::Consistent { vnodes: 16 },
    };
    let mut engine = ShardedEngine::try_new(sccf, histories, base.clone()).expect("fleet builds");
    engine.refresh_global_tier().expect("initial tier build");
    let policy = PolicyConfig {
        min_shards: 1,
        max_shards: 8,
        scale_up_pressure: 0.5, // some queue ran half full
        scale_down_pressure: 0.05,
        sustain_ticks: 2,
        scale_in_sustain_ticks: 16,
        reshard_cooldown: 3,
        refresh_staleness: 8_000,
        refresh_cooldown: 6,
    };
    let mut driver = ControlDriver::new(engine, base, policy)
        .expect("valid policy")
        .with_batches(200, 200);

    // --- the day: diurnal traffic with an afternoon flash sale -----------
    let trace = WorkloadConfig {
        seed: 42,
        n_users: 400,
        n_items: 200,
        ticks: 96,
        base_events_per_tick: 128,
        recommends_per_tick: 8,
        diurnal_period: 48,
        diurnal_amplitude: 0.6,
        user_skew: 2.0,
        flash: Some(FlashSale {
            start: 54,
            len: 24,
            multiplier: 12.0,
            hot_item: 0,
            hot_percent: 40,
        }),
    };
    println!(
        "replaying {} ticks (flash x{} at t={}) under the control loop ...\n",
        trace.ticks, 12, 54
    );
    let query = sccf::serving::RecQuery::top(10);
    let mut gen = WorkloadGen::new(trace);
    while let Some(tick) = gen.next_tick() {
        driver
            .engine_mut()
            .ingest_batch(&tick.events)
            .expect("ingest");
        for &u in &tick.recommends {
            driver
                .engine_mut()
                .try_recommend(u, &query)
                .expect("recommend");
        }
        let r = driver.step().expect("control tick");
        // Print only the ticks where something happened.
        match (r.decision, r.step) {
            (Decision::Hold, ActuatorStep::Idle) => {}
            (d, s) => println!(
                "t={:>3}  shards={}  pressure={:.2}  stale={:>6}  {:?} -> {:?}",
                r.obs.tick, r.obs.n_shards, r.obs.pressure, r.obs.staleness, d, s
            ),
        }
    }
    let settle_ticks = driver.settle(64).expect("drain");
    println!("\nsettled in {settle_ticks} extra ticks");

    // --- the day in numbers ----------------------------------------------
    let (mut ups, mut downs, mut fulls, mut deltas) = (0, 0, 0, 0);
    let mut shards = 1usize;
    for r in driver.log() {
        match r.step {
            ActuatorStep::BeginReshard(m) => {
                if m > shards {
                    ups += 1;
                } else {
                    downs += 1;
                }
                shards = m;
            }
            ActuatorStep::BeginRefresh { delta: false } => fulls += 1,
            ActuatorStep::BeginRefresh { delta: true } => deltas += 1,
            _ => {}
        }
    }
    let stats = driver.engine_mut().serving_stats().expect("stats");
    println!(
        "final shards {}   scale-ups {}   scale-downs {}   refreshes {} full / {} delta",
        driver.engine().n_shards(),
        ups,
        downs,
        fulls,
        deltas
    );
    println!(
        "tier staleness at close: {} events (an open-loop fleet would be sitting on the whole day)",
        stats.neighborhood.events_since_refresh
    );
    driver.into_engine().shutdown();
    println!("done.");
}
