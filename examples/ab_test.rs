//! Online A/B experiment demo (§IV-F / Table V): two user buckets share
//! the ranking stage and click model; only candidate generation differs
//! (production-style AvgPoolDNN vs SCCF on top of the same model).
//!
//! ```sh
//! cargo run --release --example ab_test
//! ```

use std::sync::Mutex;

use sccf::core::{RealtimeEngine, Sccf, SccfConfig};
use sccf::data::catalog::{taobao_sim, Scale};
use sccf::data::synthetic::generate;
use sccf::data::LeaveOneOut;
use sccf::models::{AvgPoolConfig, AvgPoolDnn, Recommender, TrainConfig};
use sccf::serving::{run_ab_test, AbTestConfig, ApiCandidateGen, FnCandidateGen, ServingApi};

fn main() {
    let mut cfg = taobao_sim(Scale::Quick);
    cfg.n_users = 400;
    cfg.n_items = 500;
    let gen = generate(&cfg, 11);
    let split = LeaveOneOut::split(&gen.dataset);

    println!("training the production-style baseline (AvgPoolDNN) ...");
    let train = || {
        AvgPoolDnn::train(
            &split,
            &AvgPoolConfig {
                train: TrainConfig {
                    dim: 32,
                    epochs: 6,
                    ..Default::default()
                },
                ..Default::default()
            },
        )
    };
    let base_model = train();
    let exp_model = train(); // identical twin for the SCCF bucket

    println!("building SCCF on the experiment copy ...");
    let mut sccf = Sccf::build(exp_model, &split, SccfConfig::default());
    sccf.refresh_for_test(&split);
    let initial: Vec<Vec<u32>> = (0..split.n_users() as u32)
        .map(|u| split.train_plus_val(u))
        .collect();
    let engine = Mutex::new(RealtimeEngine::new(sccf, initial.clone()));

    let ab = AbTestConfig {
        n_days: 7,
        candidate_n: 50,
        slate_size: 10,
        ranker_noise: 0.25,
        // interests drift during the experiment, groups drift together —
        // the regime where fresh neighborhoods pay off (Figure 1)
        daily_drift: 0.2,
        ..Default::default()
    };

    let baseline_gen = FnCandidateGen(|u: u32, hist: &[u32], n: usize| {
        let mut scores = base_model.score_all(u, hist);
        for &i in hist {
            scores[i as usize] = f32::NEG_INFINITY;
        }
        sccf::util::topk::topk_of_scores(&scores, n)
            .into_iter()
            .map(|s| s.id)
            .collect()
    });
    // The experiment bucket plugs the live engine in through the unified
    // ServingApi adapter — swap the RealtimeEngine for a ShardedEngine
    // and this line is the only one that knows nothing changed.
    let experiment_gen = ApiCandidateGen(&engine);

    println!("running the 7-day simulation ...");
    let res = run_ab_test(
        split.n_users(),
        &initial,
        &baseline_gen,
        &experiment_gen,
        &gen.truth,
        &ab,
        |u, i| {
            engine
                .lock()
                .expect("engine")
                .try_ingest(u, i)
                .expect("click ids come from the catalog");
        },
    );

    println!("\n                  impressions   clicks   trades    CTR");
    println!(
        "A (baseline)      {:>11}  {:>7}  {:>7}  {:.4}",
        res.baseline.impressions,
        res.baseline.clicks,
        res.baseline.trades,
        res.baseline.ctr()
    );
    println!(
        "B (SCCF)          {:>11}  {:>7}  {:>7}  {:.4}",
        res.experiment.impressions,
        res.experiment.clicks,
        res.experiment.trades,
        res.experiment.ctr()
    );
    println!(
        "\nlift: clicks {:+.2}%  trades {:+.2}%   (paper: +2.5% / +2.3%)",
        res.click_lift() * 100.0,
        res.trade_lift() * 100.0
    );
}
