//! Offline resharding demo: snapshot a live N-shard fleet and restore
//! it at any other shard count — N→1, N→N, N→2N — from one
//! engine-agnostic artifact.
//!
//! The snapshot is the whole-population per-user history table
//! (`sccf::core::encode_histories`); everything else an engine holds
//! (user vectors, index rows, recent-item rings) is *derived* from it
//! by inference, so `ShardedEngine::restore(sccf, bytes, new_cfg)`
//! re-partitions at load time and the restored fleet is exactly the
//! fleet you would have built from the drained histories directly.
//!
//! ```sh
//! cargo run --release --example reshard
//! ```

use sccf::core::{
    FrozenTierMode, IntegratorConfig, RealtimeEngine, Sccf, SccfConfig, UserBasedConfig,
};
use sccf::data::catalog::{ml1m_sim, Scale};
use sccf::data::synthetic::generate;
use sccf::data::LeaveOneOut;
use sccf::models::{Fism, FismConfig, TrainConfig};
use sccf::serving::{
    events_after, replay_into, RecQuery, RouterKind, ServingApi, ShardedConfig, ShardedEngine,
};

fn main() {
    // --- world + framework ---------------------------------------------
    let mut cfg = ml1m_sim(Scale::Quick);
    cfg.n_users = 800;
    cfg.n_items = 400;
    let gen = generate(&cfg, 23);
    let split = LeaveOneOut::split(&gen.dataset);
    println!("training FISM on {} users ...", split.n_users());
    // Deterministic builds: the same seed yields the same floats, so
    // restored and fresh fleets are comparable bit-for-bit.
    let build = || {
        let fism = Fism::train(
            &split,
            &FismConfig {
                train: TrainConfig {
                    dim: 16,
                    epochs: 3,
                    seed: 7,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        Sccf::build(
            fism,
            &split,
            SccfConfig {
                user_based: UserBasedConfig {
                    beta: 30,
                    recent_window: 15,
                },
                candidate_n: 40,
                integrator: IntegratorConfig {
                    epochs: 3,
                    seed: 7,
                    ..Default::default()
                },
                threads: 1,
                profiles: None,
                ui_ann: None,
                frozen_tier: FrozenTierMode::Flat,
            },
        )
    };
    let histories: Vec<Vec<u32>> = (0..split.n_users() as u32)
        .map(|u| split.train_plus_val(u))
        .collect();

    // --- a live 3-shard fleet absorbs traffic ---------------------------
    let source_shards = 3usize;
    let mut fleet = ShardedEngine::try_new(
        build(),
        histories,
        ShardedConfig {
            n_shards: source_shards,
            queue_capacity: 256,
            router: RouterKind::Modulo,
        },
    )
    .expect("valid config");
    let traffic: Vec<_> = events_after(&gen.dataset, 0)
        .into_iter()
        .take(2500)
        .collect();
    let n = replay_into(&mut fleet, &traffic).expect("stream ids in range");
    fleet.flush().expect("barrier");
    println!("{source_shards}-shard fleet absorbed {n} live events");

    // --- snapshot: one whole-population artifact ------------------------
    let artifact = fleet.snapshot_state().expect("snapshot");
    println!(
        "snapshot artifact: {} KiB for {} users",
        artifact.len() / 1024,
        split.n_users()
    );
    let probe_users: Vec<u32> = (0..8).collect();
    let source_slates: Vec<Vec<u32>> = fleet
        .recommend_many(&probe_users, &RecQuery::top(5))
        .expect("probe users exist")
        .into_iter()
        .map(|r| r.ids())
        .collect();
    fleet.shutdown();

    // --- restore at N (identical), 1 (plain failover), 2N (scale-out) --
    for target in [source_shards, 1, 2 * source_shards] {
        let mut restored = ShardedEngine::restore(
            build(),
            &artifact,
            ShardedConfig {
                n_shards: target,
                queue_capacity: 256,
                router: RouterKind::Modulo,
            },
        )
        .expect("restore re-partitions at load time");
        let slates: Vec<Vec<u32>> = restored
            .recommend_many(&probe_users, &RecQuery::top(5))
            .expect("probe users exist")
            .into_iter()
            .map(|r| r.ids())
            .collect();
        let identical = slates == source_slates;
        println!(
            "restored at {target} shard(s): user 0 top-5 {:?}{}",
            slates[0],
            if target == source_shards {
                assert!(identical, "same shard count must serve identical slates");
                "  (bit-identical to the source fleet ✓)"
            } else {
                "  (state identical; neighborhoods re-partitioned)"
            }
        );
        restored.shutdown();
    }

    // --- the same artifact also boots a plain single-writer engine ------
    let mut plain = RealtimeEngine::restore(build(), &artifact).expect("plain restore");
    let recs = plain
        .try_recommend(0, &RecQuery::top(5))
        .expect("user 0 exists");
    println!(
        "plain RealtimeEngine from the same artifact: user 0 top-5 {:?}",
        recs.ids()
    );
}
