//! Operational lifecycle demo: train → persist → reload → serve →
//! snapshot → fail over.
//!
//! Production recommenders separate *model state* (weights, retrained
//! offline, shipped as artifacts) from *serving state* (per-user
//! histories, mutated on every click). This example exercises both:
//! model weights roundtrip through `save_bytes`/`load_bytes`, the live
//! engine state roundtrips through the realtime snapshot, and the failed-
//! over replica serves identical recommendations.
//!
//! ```sh
//! cargo run --release --example save_load_serve
//! ```

use sccf::core::{RealtimeEngine, Sccf, SccfConfig};
use sccf::data::catalog::{games_sim, Scale};
use sccf::data::synthetic::generate;
use sccf::data::LeaveOneOut;
use sccf::models::{SasRec, SasRecConfig, TrainConfig};

fn main() {
    // --- offline: train and persist the model ---------------------------
    let mut cfg = games_sim(Scale::Quick);
    cfg.n_users = 250;
    cfg.n_items = 200;
    let data = generate(&cfg, 7).dataset.core_filter(5);
    let split = LeaveOneOut::split(&data);
    let model_cfg = SasRecConfig {
        train: TrainConfig {
            dim: 32,
            epochs: 8,
            ..Default::default()
        },
        max_len: 20,
        ..Default::default()
    };
    let sasrec = SasRec::train(&split, &model_cfg);
    let weights = sasrec.save_bytes();
    println!(
        "trained SASRec; weight snapshot = {} KiB",
        weights.len() / 1024
    );

    // --- a fresh process reloads the artifact ----------------------------
    let reloaded = SasRec::load_bytes(split.n_items(), &model_cfg, &weights)
        .expect("weights match the architecture");

    // --- online: build the framework and serve events --------------------
    let mut sccf = Sccf::build(reloaded, &split, SccfConfig::default());
    sccf.refresh_for_test(&split);
    let histories: Vec<Vec<u32>> = (0..split.n_users() as u32)
        .map(|u| split.train_plus_val(u))
        .collect();
    let mut engine = RealtimeEngine::new(sccf, histories);

    for (user, item) in [(0u32, 3u32), (1, 9), (0, 14), (2, 5)] {
        let (_neighbors, t) = engine.process_event(user, item % split.n_items() as u32);
        println!(
            "event (user {user}, item {item}): infer {:.3} ms, identify {:.3} ms",
            t.infer_ms, t.identify_ms
        );
    }
    let recs_primary = engine.recommend(0, 5);
    println!(
        "primary replica recommends for user 0: {:?}",
        recs_primary.iter().map(|s| s.id).collect::<Vec<_>>()
    );

    // --- failover: snapshot, restore on a standby, compare ---------------
    let state = engine.snapshot();
    println!("engine snapshot = {} bytes", state.len());
    let mut standby = RealtimeEngine::restore(engine.into_sccf(), &state)
        .expect("snapshot decodes against the same framework");
    let recs_standby = standby.recommend(0, 5);
    assert_eq!(
        recs_primary.iter().map(|s| s.id).collect::<Vec<_>>(),
        recs_standby.iter().map(|s| s.id).collect::<Vec<_>>(),
        "failover must not change what the user sees"
    );
    println!("standby replica serves identical recommendations ✓");
}
