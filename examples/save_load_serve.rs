//! Operational lifecycle demo: train → persist → reload → serve →
//! snapshot → fail over → scale out.
//!
//! Production recommenders separate *model state* (weights, retrained
//! offline, shipped as artifacts) from *serving state* (per-user
//! histories, mutated on every click). This example exercises both:
//! model weights roundtrip through `save_bytes`/`load_bytes`, the live
//! engine state roundtrips through the snapshot artifact, the failed-
//! over replica serves identical recommendations — and because the
//! artifact is engine-agnostic, the same bytes then boot a *sharded*
//! fleet (scale-out via snapshot, no replay).
//!
//! ```sh
//! cargo run --release --example save_load_serve
//! ```

use sccf::core::{RealtimeEngine, Sccf, SccfConfig};
use sccf::data::catalog::{games_sim, Scale};
use sccf::data::synthetic::generate;
use sccf::data::LeaveOneOut;
use sccf::models::{SasRec, SasRecConfig, TrainConfig};
use sccf::serving::{RecQuery, RouterKind, ServingApi, ShardedConfig, ShardedEngine};

fn main() {
    // --- offline: train and persist the model ---------------------------
    let mut cfg = games_sim(Scale::Quick);
    cfg.n_users = 250;
    cfg.n_items = 200;
    let data = generate(&cfg, 7).dataset.core_filter(5);
    let split = LeaveOneOut::split(&data);
    let model_cfg = SasRecConfig {
        train: TrainConfig {
            dim: 32,
            epochs: 8,
            ..Default::default()
        },
        max_len: 20,
        ..Default::default()
    };
    let sasrec = SasRec::train(&split, &model_cfg);
    let weights = sasrec.save_bytes();
    println!(
        "trained SASRec; weight snapshot = {} KiB",
        weights.len() / 1024
    );

    // --- a fresh process reloads the artifact ----------------------------
    let reloaded = SasRec::load_bytes(split.n_items(), &model_cfg, &weights)
        .expect("weights match the architecture");

    // --- online: build the framework and serve events --------------------
    let mut sccf = Sccf::build(reloaded, &split, SccfConfig::default());
    sccf.refresh_for_test(&split);
    let histories: Vec<Vec<u32>> = (0..split.n_users() as u32)
        .map(|u| split.train_plus_val(u))
        .collect();
    let mut engine = RealtimeEngine::new(sccf, histories);

    for (user, item) in [(0u32, 3u32), (1, 9), (0, 14), (2, 5)] {
        let t = engine
            .try_ingest(user, item % split.n_items() as u32)
            .expect("ids in range")
            .expect("plain engine reports timing");
        println!(
            "event (user {user}, item {item}): infer {:.3} ms, identify {:.3} ms",
            t.infer_ms, t.identify_ms
        );
    }
    let recs_primary = engine
        .try_recommend(0, &RecQuery::top(5))
        .expect("user 0 exists")
        .ids();
    println!("primary replica recommends for user 0: {recs_primary:?}");

    // --- failover: snapshot, restore on a standby, compare ---------------
    let state = engine.snapshot_state().expect("snapshot");
    println!("engine snapshot = {} bytes", state.len());
    let mut standby = RealtimeEngine::restore(engine.into_sccf(), &state)
        .expect("snapshot decodes against the same framework");
    let recs_standby = standby
        .try_recommend(0, &RecQuery::top(5))
        .expect("user 0 exists")
        .ids();
    assert_eq!(
        recs_primary, recs_standby,
        "failover must not change what the user sees"
    );
    println!("standby replica serves identical recommendations ✓");

    // --- scale out: the same artifact boots a sharded fleet --------------
    // The snapshot format is engine-agnostic, so the single-writer
    // replica's state re-partitions straight into worker shards
    // (1 → N resharding; the sharded engine's snapshot goes back the
    // other way, N → 1, or to any other shard count).
    let reloaded = SasRec::load_bytes(split.n_items(), &model_cfg, &weights)
        .expect("weights match the architecture");
    let mut sccf2 = Sccf::build(reloaded, &split, SccfConfig::default());
    sccf2.refresh_for_test(&split);
    let mut fleet = ShardedEngine::restore(
        sccf2,
        &state,
        ShardedConfig {
            n_shards: 2,
            queue_capacity: 128,
            router: RouterKind::Modulo,
        },
    )
    .expect("the plain snapshot re-partitions into shards");
    let recs_fleet = fleet
        .try_recommend(0, &RecQuery::top(5))
        .expect("user 0 exists")
        .ids();
    println!("2-shard fleet restored from the same artifact; user 0 sees {recs_fleet:?}");
    fleet.shutdown();
}
