//! Networked shard fleet smoke test: real processes, real sockets.
//!
//! This example is **dual-role**. Run with no arguments it is the
//! orchestrator: it trains one model, re-executes itself twice as
//! `serve-shard` processes (each hosting 2 of the 4 global shards with
//! its own WAL + checkpoint directory), connects a `FleetRouter` over
//! loopback TCP, streams events, kills one member with SIGKILL, lets
//! the supervisor's control loop restart it from its durability
//! directory, verifies recommendations survive the crash seam, and
//! shuts the fleet down gracefully. Run with `serve-shard ...` argv it
//! plays the shard-server role (that is what the re-exec invokes).
//!
//! ```sh
//! cargo run --release --example fleet
//! ```

use sccf::net::{FleetRouter, ServeShardArgs, ShardSpec, Supervisor, WorldSpec};
use sccf::serving::fleet::{FleetMember, FleetTopology};
use sccf::serving::{RecQuery, ServingApi};

const PROCS: usize = 2;
const PER_PROC: usize = 2;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("serve-shard") {
        // Child role: host one window of the shard space and serve.
        if let Err(e) = sccf::net::serve_shard_main(&args[1..]) {
            eprintln!("serve-shard error: {e}");
            std::process::exit(1);
        }
        return;
    }
    orchestrate().unwrap_or_else(|e| {
        eprintln!("fleet example failed: {e}");
        std::process::exit(1);
    });
}

fn orchestrate() -> Result<(), String> {
    let spec = WorldSpec {
        n_users: 80,
        n_items: 48,
        ..WorldSpec::default()
    };
    let total = PROCS * PER_PROC;
    let root = std::env::temp_dir().join(format!("sccf-fleet-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).map_err(|e| e.to_string())?;

    // --- one trained model, shared by file ----------------------------
    println!("training the shared model ({} users)…", spec.n_users);
    let model_path = root.join("model.fism");
    std::fs::write(&model_path, spec.train_model()).map_err(|e| e.to_string())?;

    // --- launch 2 real shard-server processes -------------------------
    let exe = std::env::current_exe().map_err(|e| e.to_string())?;
    let specs: Vec<ShardSpec> = (0..PROCS)
        .map(|p| {
            let shard_args = ServeShardArgs {
                base: p * PER_PROC,
                count: PER_PROC,
                total,
                dir: Some(root.join(format!("member-{p}"))),
                world: spec.clone(),
                model_file: Some(model_path.clone()),
                ..ServeShardArgs::default()
            };
            let mut argv = vec!["serve-shard".to_string()];
            argv.extend(shard_args.to_args());
            ShardSpec::new(exe.clone(), argv)
        })
        .collect();
    let mut sup = Supervisor::launch(specs)?;
    println!(
        "fleet up: {PROCS} processes × {PER_PROC} shards on ports {:?}",
        (0..PROCS).map(|p| sup.port(p)).collect::<Vec<_>>()
    );

    // --- connect the router and stream events -------------------------
    let members = (0..PROCS)
        .map(|p| FleetMember {
            base: p * PER_PROC,
            count: PER_PROC,
            addr: sup.addr(p),
        })
        .collect();
    let topology = FleetTopology::try_new(total, 0, members).map_err(|e| e.to_string())?;
    let mut router = FleetRouter::connect(topology).map_err(|e| e.to_string())?;

    let n_users = spec.n_users as u32;
    let n_items = spec.n_items as u32;
    let events: Vec<(u32, u32)> = (0u32..300)
        .map(|k| {
            (
                k.wrapping_mul(131) % n_users,
                (k.wrapping_mul(7919) + 13) % n_items,
            )
        })
        .collect();
    router.ingest_batch(&events).map_err(|e| e.to_string())?;
    router.flush().map_err(|e| e.to_string())?;
    let probe: Vec<u32> = (0..n_users).step_by(9).collect();
    let before = router
        .recommend_many(&probe, &RecQuery::top(5))
        .map_err(|e| e.to_string())?;
    println!(
        "ingested {} events; user {} sees {:?}",
        events.len(),
        probe[0],
        before[0].ids()
    );

    // --- crash one member, supervise it back --------------------------
    router.checkpoint_all().map_err(|e| e.to_string())?;
    router.wal_sync_all().map_err(|e| e.to_string())?;
    println!("killing member 1 (SIGKILL)…");
    sup.kill(1)?;
    let restarted = sup.check_and_restart()?;
    assert_eq!(
        restarted,
        vec![1],
        "the control loop restarts the dead member"
    );
    router
        .reconnect(1, &sup.addr(1))
        .map_err(|e| e.to_string())?;
    let after = router
        .recommend_many(&probe, &RecQuery::top(5))
        .map_err(|e| e.to_string())?;
    let same = |a: &sccf::serving::RecResponse, b: &sccf::serving::RecResponse| {
        let bits = |r: &sccf::serving::RecResponse| -> Vec<(u32, u32)> {
            r.items.iter().map(|s| (s.id, s.score.to_bits())).collect()
        };
        bits(a) == bits(b)
    };
    assert!(
        before.iter().zip(&after).all(|(a, b)| same(a, b)),
        "slates must be bit-identical across the crash + recovery seam"
    );
    println!(
        "restarted from WAL + checkpoints: all {} probe slates bit-identical",
        probe.len()
    );

    // --- the stream continues across the seam -------------------------
    let more: Vec<(u32, u32)> = (300u32..400)
        .map(|k| {
            (
                k.wrapping_mul(131) % n_users,
                (k.wrapping_mul(7919) + 13) % n_items,
            )
        })
        .collect();
    router.ingest_batch(&more).map_err(|e| e.to_string())?;
    router.flush().map_err(|e| e.to_string())?;
    let stats = router.serving_stats().map_err(|e| e.to_string())?;
    println!(
        "final stats: {} shard reports, durable={}",
        stats.shards.len(),
        stats.durability.enabled
    );
    assert_eq!(stats.shards.len(), total);

    router.shutdown_all().map_err(|e| e.to_string())?;
    sup.shutdown();
    let _ = std::fs::remove_dir_all(&root);
    println!("fleet shut down cleanly");
    Ok(())
}
