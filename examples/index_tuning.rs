//! ANN index tuning: recall/latency/memory trade-offs for the neighbor
//! search that serves Eq. 11.
//!
//! The paper leans on Faiss for billion-scale neighbor identification;
//! this workspace provides four index structures with different
//! trade-offs. This example measures, on one synthetic user-embedding
//! distribution:
//!
//! * exact recall (flat) vs IVF at several `nprobe` settings,
//! * HNSW at several `ef_search` settings,
//! * SQ8 quantization (4× smaller storage) recall loss,
//! * per-query latency of each configuration.
//!
//! ```sh
//! cargo run --release --example index_tuning
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sccf::index::{FlatIndex, HnswConfig, HnswIndex, IvfIndex, Metric, PqConfig, PqIndex, SqIndex};
use sccf::util::timer::Stopwatch;

/// Clustered embeddings (user vectors concentrate around interest groups,
/// which is exactly why IVF works on them).
fn clustered_vectors(rng: &mut StdRng, n: usize, d: usize, clusters: usize) -> Vec<f32> {
    let centers: Vec<Vec<f32>> = (0..clusters)
        .map(|_| (0..d).map(|_| rng.gen_range(-1.0..1.0f32)).collect())
        .collect();
    let mut out = Vec::with_capacity(n * d);
    for i in 0..n {
        let c = &centers[i % clusters];
        out.extend(c.iter().map(|&v| v + rng.gen_range(-0.25f32..0.25)));
    }
    out
}

fn recall(exact: &[u32], approx: &[u32]) -> f64 {
    if exact.is_empty() {
        return 1.0;
    }
    let hits = exact.iter().filter(|id| approx.contains(id)).count();
    hits as f64 / exact.len() as f64
}

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    let (n, d, k, n_queries) = (4000usize, 32usize, 100usize, 50usize);
    let data = clustered_vectors(&mut rng, n, d, 24);
    let queries: Vec<Vec<f32>> = (0..n_queries)
        .map(|_| (0..d).map(|_| rng.gen_range(-1.0..1.0f32)).collect())
        .collect();

    // ground truth + flat timing
    let mut flat = FlatIndex::new(d, Metric::Cosine);
    flat.add_batch(&data);
    let sw = Stopwatch::start();
    let exact: Vec<Vec<u32>> = queries
        .iter()
        .map(|q| flat.search(q, k, None).iter().map(|s| s.id).collect())
        .collect();
    let flat_ms = sw.elapsed_ms() / n_queries as f64;
    println!("index        config          recall@{k}   ms/query   storage");
    println!(
        "flat         exact           1.0000      {flat_ms:.3}     {} KiB",
        n * d * 4 / 1024
    );

    // IVF sweeps
    for nprobe in [1usize, 4, 8, 16] {
        let mut ivf_rng = StdRng::seed_from_u64(42);
        let mut ivf = IvfIndex::train(d, Metric::Cosine, 32, &data, &mut ivf_rng);
        for row in data.chunks_exact(d) {
            ivf.add(row);
        }
        ivf.nprobe = nprobe;
        let sw = Stopwatch::start();
        let mut r = 0.0;
        for (q, ex) in queries.iter().zip(&exact) {
            let got: Vec<u32> = ivf.search(q, k, None).iter().map(|s| s.id).collect();
            r += recall(ex, &got);
        }
        let ms = sw.elapsed_ms() / n_queries as f64;
        println!(
            "ivf          nprobe={nprobe:<3}      {:.4}      {ms:.3}     {} KiB",
            r / n_queries as f64,
            n * d * 4 / 1024
        );
    }

    // HNSW sweeps
    // ef below k is floored to k by the index, so sweep from k upward
    for ef in [100usize, 200, 400] {
        let mut hnsw = HnswIndex::new(
            d,
            Metric::Cosine,
            HnswConfig {
                ef_search: ef,
                seed: 42,
                ..Default::default()
            },
        );
        for row in data.chunks_exact(d) {
            hnsw.add(row);
        }
        let sw = Stopwatch::start();
        let mut r = 0.0;
        for (q, ex) in queries.iter().zip(&exact) {
            let got: Vec<u32> = hnsw.search(q, k, None).iter().map(|s| s.id).collect();
            r += recall(ex, &got);
        }
        let ms = sw.elapsed_ms() / n_queries as f64;
        println!(
            "hnsw         ef_search={ef:<4}  {:.4}      {ms:.3}     {} KiB + graph",
            r / n_queries as f64,
            n * d * 4 / 1024
        );
    }

    // SQ8: same scan, quarter the bytes
    let sq = SqIndex::build(&data, d, Metric::Cosine);
    let sw = Stopwatch::start();
    let mut r = 0.0;
    for (q, ex) in queries.iter().zip(&exact) {
        let got: Vec<u32> = sq.search(q, k, None).iter().map(|s| s.id).collect();
        r += recall(ex, &got);
    }
    let ms = sw.elapsed_ms() / n_queries as f64;
    println!(
        "sq8          asymmetric      {:.4}      {ms:.3}     {} KiB",
        r / n_queries as f64,
        sq.storage_bytes() / 1024
    );

    // PQ: m bytes/vector — the billion-row memory point
    for m in [8usize, 16] {
        let pq = PqIndex::build(
            &data,
            d,
            Metric::Cosine,
            PqConfig {
                m,
                k: 128,
                ..Default::default()
            },
        );
        let sw = Stopwatch::start();
        let mut r = 0.0;
        for (q, ex) in queries.iter().zip(&exact) {
            let got: Vec<u32> = pq.search(q, k, None).iter().map(|s| s.id).collect();
            r += recall(ex, &got);
        }
        let ms = sw.elapsed_ms() / n_queries as f64;
        println!(
            "pq           m={m:<4} k=128    {:.4}      {ms:.3}     {} KiB",
            r / n_queries as f64,
            pq.storage_bytes() / 1024
        );
    }

    println!(
        "\nReading the table: IVF trades recall for fewer probed lists; HNSW \
         holds recall at logarithmic search cost; SQ8 keeps the linear scan \
         but quarters memory with negligible recall loss; PQ compresses to \
         m bytes/vector for the regime where even SQ8 is too large — pick \
         per shard budget. The paper's Table III point (dense low-dim search ≪ sparse \
         set intersection) holds for every configuration here."
    );
}
