//! Ranking-stage demo (§V future work): apply SCCF's fused UI+UU
//! evidence to the candidates of an *upstream* generator, instead of the
//! pure user-item scores production rankers use.
//!
//! Pipeline: AvgPoolDnn (the YouTube-DNN-like generator of the paper's
//! online deployment) retrieves a fixed candidate set per user; a trained
//! [`RankingStage`] re-orders it; we compare the target item's rank under
//! the upstream order, a UI-only order, and the SCCF order.
//!
//! ```sh
//! cargo run --release --example ranking_stage
//! ```

use sccf::core::{IntegratorConfig, RankingStage, Sccf, SccfConfig};
use sccf::data::catalog::{ml1m_sim, Scale};
use sccf::data::synthetic::generate;
use sccf::data::LeaveOneOut;
use sccf::models::{AvgPoolConfig, AvgPoolDnn, Fism, FismConfig, Recommender, TrainConfig};
use sccf::util::topk::topk_of_scores;

fn main() {
    // --- data + upstream candidate generator ----------------------------
    let mut cfg = ml1m_sim(Scale::Quick);
    cfg.n_users = 300;
    cfg.n_items = 260;
    let data = generate(&cfg, 42).dataset.core_filter(5);
    let split = LeaveOneOut::split(&data);
    println!(
        "dataset: {} users × {} items",
        split.n_users(),
        split.n_items()
    );

    let tc = TrainConfig {
        dim: 32,
        epochs: 10,
        ..Default::default()
    };
    let upstream = AvgPoolDnn::train(
        &split,
        &AvgPoolConfig {
            train: tc.clone(),
            ..Default::default()
        },
    );
    let candidate_n = 60;
    let candidates_for = |history: &[u32]| -> Vec<u32> {
        let mut scores = upstream.score_all(0, history);
        for &i in history {
            scores[i as usize] = f32::NEG_INFINITY;
        }
        topk_of_scores(&scores, candidate_n)
            .into_iter()
            .map(|s| s.id)
            .collect()
    };

    // --- SCCF backend + ranking stage ------------------------------------
    let fism = Fism::train(
        &split,
        &FismConfig {
            train: tc,
            ..Default::default()
        },
    );
    let mut sccf = Sccf::build(fism, &split, SccfConfig::default());
    let (stage, used) = RankingStage::train(
        &sccf,
        &split,
        |u| candidates_for(split.train_seq(u)),
        IntegratorConfig::default(),
    );
    println!("ranking stage trained on {used} users");
    sccf.refresh_for_test(&split);

    // --- compare target ranks on test users ------------------------------
    let mut better = 0usize;
    let mut worse = 0usize;
    let mut same = 0usize;
    let mut covered = 0usize;
    let mut shown = 0usize;
    for u in split.test_users() {
        let hist = split.train_plus_val(u);
        let target = split.test_item(u).unwrap();
        let cands = candidates_for(&hist);
        let Some(up_rank) = cands.iter().position(|&i| i == target).map(|p| p + 1) else {
            continue; // the generator missed — the ranking stage cannot fix that
        };
        covered += 1;
        let sccf_rank = stage
            .rank_of_target(&sccf, u, &hist, &cands, target)
            .expect("target is among candidates");
        match sccf_rank.cmp(&up_rank) {
            std::cmp::Ordering::Less => better += 1,
            std::cmp::Ordering::Greater => worse += 1,
            std::cmp::Ordering::Equal => same += 1,
        }
        if shown < 5 {
            println!(
                "user {u:>4}: target rank upstream {up_rank:>3} → SCCF {sccf_rank:>3}{}",
                if sccf_rank < up_rank { "  ↑" } else { "" }
            );
            shown += 1;
        }
    }
    println!(
        "\ncoverage: {covered}/{} test users had their target retrieved",
        split.test_users().len()
    );
    println!("SCCF ranking vs upstream order: {better} better / {same} equal / {worse} worse");
}
