//! Sharded multi-writer serving demo: partition users across worker
//! shards, replay a live event stream through the router, interleave
//! recommendation requests, and read the per-shard Table III timing
//! split at shutdown.
//!
//! ```sh
//! cargo run --release --example sharded_serving
//! ```

use sccf::core::{IntegratorConfig, Sccf, SccfConfig, UserBasedConfig};
use sccf::data::catalog::{ml1m_sim, Scale};
use sccf::data::synthetic::generate;
use sccf::data::LeaveOneOut;
use sccf::models::{Fism, FismConfig, TrainConfig};
use sccf::serving::{events_after, shard_of, ShardedConfig, ShardedEngine};
use sccf::util::timer::Stopwatch;

fn main() {
    // --- a mid-sized world: enough users that identify dominates -------
    let mut cfg = ml1m_sim(Scale::Quick);
    cfg.n_users = 2000;
    cfg.n_items = 600;
    let gen = generate(&cfg, 11);
    let data = &gen.dataset;
    let split = LeaveOneOut::split(data);

    println!("training FISM on {} users ...", split.n_users());
    let fism = Fism::train(
        &split,
        &FismConfig {
            train: TrainConfig {
                dim: 32,
                epochs: 3,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let sccf = Sccf::build(
        fism,
        &split,
        SccfConfig {
            user_based: UserBasedConfig {
                beta: 50,
                recent_window: 15,
            },
            candidate_n: 50,
            integrator: IntegratorConfig {
                epochs: 3,
                ..Default::default()
            },
            ..SccfConfig::default()
        },
    );
    let histories: Vec<Vec<u32>> = (0..split.n_users() as u32)
        .map(|u| split.train_plus_val(u))
        .collect();

    // --- partition users across 4 shard workers ------------------------
    let n_shards = 4;
    let mut engine = ShardedEngine::new(
        sccf,
        histories,
        ShardedConfig {
            n_shards,
            queue_capacity: 512,
        },
    );
    println!(
        "sharded engine up: {} workers, user 0 → shard {}, user 1 → shard {}",
        engine.n_shards(),
        shard_of(0, n_shards),
        shard_of(1, n_shards),
    );

    // --- replay "live traffic": everything after each user's first
    // interaction (ts > 0), in global timestamp order ------------------
    let events = events_after(data, 0);
    let replay: Vec<_> = events.iter().take(4000).cloned().collect();
    println!("replaying {} events through the router ...", replay.len());
    let sw = Stopwatch::start();
    engine.ingest_stream(&replay);
    engine.drain(); // barrier: every queued event is processed
    let ms = sw.elapsed_ms();
    println!(
        "ingested + drained in {ms:.0} ms  ({:.0} events/sec across {n_shards} shards)",
        replay.len() as f64 / (ms / 1000.0),
    );

    // --- recommendations are served by the owning shard ----------------
    for user in [0u32, 1, 2] {
        let recs = engine.recommend(user, 5);
        let ids: Vec<u32> = recs.iter().map(|r| r.id).collect();
        println!(
            "user {user} (shard {}): top-5 {:?}",
            shard_of(user, n_shards),
            ids
        );
    }

    // --- graceful shutdown: drain, join, report ------------------------
    let reports = engine.shutdown();
    println!("\nper-shard report (Table III split):");
    for r in &reports {
        println!(
            "  shard {}: {:>5} events, {} recommends, infer {:.3} ms, identify {:.3} ms / event",
            r.shard,
            r.events,
            r.recommends,
            r.timings.infer.mean_ms(),
            r.timings.identify.mean_ms(),
        );
    }
    let total: u64 = reports.iter().map(|r| r.events).sum();
    assert_eq!(
        total,
        replay.len() as u64,
        "every event must be accounted for"
    );
    println!("\nall {total} events accounted for across {n_shards} shards");
}
