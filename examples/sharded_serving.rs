//! Sharded multi-writer serving demo, driven entirely through the
//! unified `ServingApi`: partition users across worker shards, replay a
//! live event stream, batch recommendation requests, read the unified
//! stats, then snapshot the fleet and reshard it offline (4 → 8
//! workers) without losing a single event.
//!
//! ```sh
//! cargo run --release --example sharded_serving
//! ```

use sccf::core::{IntegratorConfig, Sccf, SccfConfig, UserBasedConfig};
use sccf::data::catalog::{ml1m_sim, Scale};
use sccf::data::synthetic::generate;
use sccf::data::LeaveOneOut;
use sccf::models::{Fism, FismConfig, TrainConfig};
use sccf::serving::{
    events_after, replay_into, HashRing, RecQuery, RouterKind, ServingApi, ShardedConfig,
    ShardedEngine,
};
use sccf::util::timer::Stopwatch;

fn main() {
    // --- a mid-sized world: enough users that identify dominates -------
    let mut cfg = ml1m_sim(Scale::Quick);
    cfg.n_users = 2000;
    cfg.n_items = 600;
    let gen = generate(&cfg, 11);
    let data = &gen.dataset;
    let split = LeaveOneOut::split(data);

    println!("training FISM on {} users ...", split.n_users());
    let fism = Fism::train(
        &split,
        &FismConfig {
            train: TrainConfig {
                dim: 32,
                epochs: 3,
                ..Default::default()
            },
            ..Default::default()
        },
    );
    let build = |fism| {
        Sccf::build(
            fism,
            &split,
            SccfConfig {
                user_based: UserBasedConfig {
                    beta: 50,
                    recent_window: 15,
                },
                candidate_n: 50,
                integrator: IntegratorConfig {
                    epochs: 3,
                    ..Default::default()
                },
                ..SccfConfig::default()
            },
        )
    };
    let sccf = build(fism);
    let histories: Vec<Vec<u32>> = (0..split.n_users() as u32)
        .map(|u| split.train_plus_val(u))
        .collect();

    // --- partition users across 4 shard workers ------------------------
    let n_shards = 4;
    let ring = HashRing::modulo(n_shards);
    let mut engine = ShardedEngine::try_new(
        sccf,
        histories,
        ShardedConfig {
            n_shards,
            queue_capacity: 512,
            router: RouterKind::Modulo,
        },
    )
    .expect("valid shard config");
    println!(
        "sharded engine up: {} workers, user 0 → shard {}, user 1 → shard {}",
        engine.n_shards(),
        ring.route(0),
        ring.route(1),
    );

    // --- replay "live traffic": everything after each user's first
    // interaction (ts > 0), in global timestamp order ------------------
    let events = events_after(data, 0);
    let replay: Vec<_> = events.iter().take(4000).cloned().collect();
    println!("replaying {} events through the router ...", replay.len());
    let sw = Stopwatch::start();
    let ingested = replay_into(&mut engine, &replay).expect("stream ids are in range");
    engine
        .flush()
        .expect("barrier: every queued event processed");
    let ms = sw.elapsed_ms();
    println!(
        "ingested + drained {ingested} events in {ms:.0} ms  ({:.0} events/sec across {n_shards} shards)",
        ingested as f64 / (ms / 1000.0),
    );

    // --- batched recommendations: one fan-out wave, owning shards serve
    let users = [0u32, 1, 2];
    let slates = engine
        .recommend_many(&users, &RecQuery::top(5))
        .expect("users exist");
    for (&user, slate) in users.iter().zip(&slates) {
        println!(
            "user {user} (shard {}): top-5 {:?}  (infer {:.3} ms, identify {:.3} ms)",
            ring.route(user),
            slate.ids(),
            slate.timing.infer_ms,
            slate.timing.identify_ms,
        );
    }

    // --- unified stats: one shape for any engine kind ------------------
    let stats = engine.serving_stats().expect("stats");
    println!("\nunified ServingStats (Table III split, merged + per shard):");
    println!(
        "  fleet: {:>5} events, {} recommends, infer {:.3} ms, identify {:.3} ms / event",
        stats.events,
        stats.recommends,
        stats.timings.infer.mean_ms(),
        stats.timings.identify.mean_ms(),
    );
    for r in &stats.shards {
        println!(
            "  shard {}: {:>5} events, {} recommends, infer {:.3} ms, identify {:.3} ms / event",
            r.shard,
            r.events,
            r.recommends,
            r.timings.infer.mean_ms(),
            r.timings.identify.mean_ms(),
        );
    }
    assert_eq!(
        stats.events,
        replay.len() as u64,
        "every event must be accounted for"
    );

    // --- offline reshard: snapshot the fleet, restore at 2× the shards.
    // The artifact is the whole-population history table; restore
    // re-partitions it under the new config — no replay, no downtime
    // beyond the restart.
    let artifact = engine.snapshot_state().expect("snapshot");
    println!(
        "\nsnapshot: {} KiB; resharding {n_shards} → {} workers ...",
        artifact.len() / 1024,
        2 * n_shards
    );
    let recs_before = engine
        .try_recommend(0, &RecQuery::top(5))
        .expect("user 0")
        .ids();
    let (mut engines, _) = engine.shutdown_into_engines();
    let last = engines.pop().expect("at least one shard");
    drop(engines); // release the other shards' Arc<SccfShared> refs first
    let fism = last.into_sccf().into_model();

    let mut resharded = ShardedEngine::restore(
        build(fism),
        &artifact,
        ShardedConfig {
            n_shards: 2 * n_shards,
            queue_capacity: 512,
            router: RouterKind::Modulo,
        },
    )
    .expect("reshard restore");
    let recs_after = resharded
        .try_recommend(0, &RecQuery::top(5))
        .expect("user 0")
        .ids();
    println!(
        "user 0 top-5 before reshard {recs_before:?} / after {recs_after:?} \
         (neighborhoods are per-shard, so slates can shift — state did not)"
    );
    let reports = resharded.shutdown();
    println!(
        "resharded fleet up and shut down cleanly: {} workers",
        reports.len()
    );
}
